//! The path instances of Section 2 (Fig. 1 and the Θ(n log n) lower bound of
//! Theorem 2.11 / Lemma 2.14).
//!
//! The lower-bound construction runs the MAX Swap Game on the path
//! `P_n = v1 v2 … vn` under the max cost policy with deterministic tie-breaking
//! (smallest index first). Fig. 1 illustrates the resulting convergence process for
//! `n = 9`: the maximum-cost leaf repeatedly swaps towards the current center until
//! the tree collapses into a star.

use ncg_graph::{generators, OwnedGraph};

/// The path `P_n` used by Fig. 1 and Lemma 2.14. Vertex `i` of the figure is index
/// `i - 1`; edge `{i, i+1}` is owned by the left endpoint (ownership is irrelevant
/// in the symmetric Swap Game).
pub fn figure1_path(n: usize) -> OwnedGraph {
    generators::path(n)
}

/// The concrete 9-vertex path of Fig. 1.
pub fn figure1_p9() -> OwnedGraph {
    figure1_path(9)
}

/// Lower bound on the number of moves of the MAX-SG on `P_n` under the max cost
/// policy (Lemma 2.14): `Σ_{c=4}^{n-1} log2(c / 3)`, which is `Ω(n log n)`.
pub fn lemma_2_14_lower_bound(n: usize) -> f64 {
    (4..n)
        .map(|c| (c as f64 / 3.0).log2())
        .sum::<f64>()
        .max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncg_core::dynamics::{run_dynamics, DynamicsConfig};
    use ncg_core::policy::{Policy, TieBreak};
    use ncg_core::SwapGame;
    use ncg_graph::properties;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn p9_is_a_path() {
        let g = figure1_p9();
        assert_eq!(g.num_nodes(), 9);
        assert_eq!(g.num_edges(), 8);
        assert!(properties::is_tree(&g));
        assert_eq!(properties::diameter(&g), Some(8));
    }

    #[test]
    fn p9_max_cost_dynamics_converges_to_a_star_like_tree() {
        // Fig. 1: the MAX-SG on P9 under the max cost policy ends in a star.
        let game = SwapGame::max();
        let g = figure1_p9();
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = DynamicsConfig::simulation(1_000)
            .with_policy(Policy::MaxCost)
            .with_tie_break(TieBreak::Deterministic);
        let out = run_dynamics(&game, &g, &cfg, &mut rng);
        assert!(out.converged());
        assert!(properties::is_star_or_double_star(&out.final_graph));
        // Θ(n log n) regime: well below the generic O(n^3) bound.
        assert!(out.steps <= 9 * 9);
    }

    #[test]
    fn lower_bound_grows_superlinearly() {
        let b20 = lemma_2_14_lower_bound(20);
        let b200 = lemma_2_14_lower_bound(200);
        assert!(b200 > 10.0 * b20 * 0.9, "n log n growth: {b20} vs {b200}");
        assert_eq!(lemma_2_14_lower_bound(3), 0.0);
    }
}
