//! # ncg-instances
//!
//! The constructed instances of *On Dynamics in Selfish Network Creation*
//! (Kawald & Lenzner, SPAA 2013): the networks behind every best-response-cycle
//! figure, the lower-bound path of Fig. 1 and the host graphs of Cor. 3.6 / 4.2.
//!
//! The paper's arXiv text describes each construction through its proof (agent
//! costs, improving moves and their cost decreases) rather than through an explicit
//! edge list; where the figure itself is needed to pin the topology down we
//! reconstruct a network that satisfies **every quantitative claim made in the
//! proof** and state so in the module documentation. All reconstructions are
//! verified end-to-end by this crate's tests and by `tests/` at the workspace root:
//! each claimed move is a best response of the claimed mover, and the claimed cycle
//! closes exactly.
//!
//! | Module | Paper artefact | Status |
//! |--------|----------------|--------|
//! | [`paths`] | Fig. 1, Thm 2.11 lower bound | exact |
//! | [`fig09`] | Fig. 9, Thm 4.1 (SUM-(G)BG cycle) | exact (derived from the proof) |
//! | [`fig10`] | Fig. 10, Thm 4.1 (MAX-(G)BG cycle) | reconstruction matching all proof values |
//! | [`fig05`] | Fig. 5, Thm 3.7 (SUM-ASG, uniform budget) | reconstruction matching the proof's counting argument |
//! | [`hosts`] | Cor. 4.2 host graphs | exact (described in the corollary) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig05;
pub mod fig09;
pub mod fig10;
pub mod hosts;
pub mod paths;

use ncg_core::moves::{apply_move, Move};
use ncg_core::{Game, Workspace};
use ncg_graph::{NodeId, OwnedGraph};

/// One step of a documented best-response cycle: the moving agent and the move the
/// paper prescribes for her.
#[derive(Debug, Clone)]
pub struct CycleStep {
    /// The moving agent.
    pub agent: NodeId,
    /// The prescribed best response.
    pub mv: Move,
    /// Short description matching the paper's narration (for reports).
    pub description: &'static str,
}

/// A best-response cycle instance: an initial network, a game, and the sequence of
/// moves that returns to the initial network.
pub struct CycleInstance<G> {
    /// The underlying game (including α where applicable).
    pub game: G,
    /// The first network of the cycle.
    pub initial: OwnedGraph,
    /// The moves of one full round of the cycle.
    pub steps: Vec<CycleStep>,
    /// Human-readable vertex names (index = vertex id).
    pub names: Vec<&'static str>,
}

impl<G: Game> CycleInstance<G> {
    /// Verifies the cycle: every prescribed move must be a best response of the
    /// prescribed agent in the current state — i.e. it must be improving and its
    /// resulting cost must equal the optimal achievable cost (different games may
    /// represent the same strategy change with different [`Move`] variants, so the
    /// comparison is by value, not by representation) — and after all steps the
    /// network must be exactly the initial one again. Returns the list of states.
    ///
    /// # Errors
    /// Returns a description of the first violated claim.
    pub fn verify(&self) -> Result<Vec<OwnedGraph>, String> {
        let mut g = self.initial.clone();
        let mut ws = Workspace::new(g.num_nodes());
        let mut states = vec![g.clone()];
        for (i, step) in self.steps.iter().enumerate() {
            let best = self.game.best_responses(&g, step.agent, &mut ws);
            if best.is_empty() {
                return Err(format!(
                    "step {i} ({}): agent {} ({}) has no improving move",
                    step.description, step.agent, self.names[step.agent]
                ));
            }
            let best_cost = best[0].new_cost;
            let old_cost = best[0].old_cost;
            // Score the prescribed move on a scratch copy.
            let mut scratch = g.clone();
            if apply_move(&mut scratch, step.agent, &step.mv).is_none() {
                return Err(format!("step {i}: move {:?} not applicable", step.mv));
            }
            let new_cost = self.game.cost(&scratch, step.agent, &mut ws.bfs);
            if new_cost >= old_cost {
                return Err(format!(
                    "step {i} ({}): prescribed move {:?} is not improving ({old_cost} -> {new_cost})",
                    step.description, step.mv
                ));
            }
            if new_cost > best_cost + 1e-9 {
                return Err(format!(
                    "step {i} ({}): prescribed move {:?} of agent {} achieves {new_cost} but the best response achieves {best_cost}",
                    step.description, step.mv, self.names[step.agent]
                ));
            }
            if apply_move(&mut g, step.agent, &step.mv).is_none() {
                return Err(format!("step {i}: move {:?} not applicable", step.mv));
            }
            states.push(g.clone());
        }
        if g != self.initial {
            return Err("the prescribed moves do not return to the initial network".to_string());
        }
        Ok(states)
    }

    /// Number of moves in one round of the cycle.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if the cycle has no steps (never the case for the paper's instances).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}
