//! Fig. 5 / Theorem 3.7 (SUM version): a best-response cycle for the SUM Asymmetric
//! Swap Game on a network in which **every agent owns exactly one edge** — the
//! uniform unit-budget case of Ehsani et al. (SPAA'11). One non-tree edge already
//! suffices for cyclic behaviour.
//!
//! The arXiv text gives the construction through its counting argument; the network
//! below is a reconstruction that satisfies every quantitative claim of the proof:
//!
//! * `n_c = n_b + n_d + 1` (here `8 = 3 + 4 + 1`), so agent `a1`'s swap `b1 → c1`
//!   improves her cost by exactly 1,
//! * agent `b1`'s swap `d1 → a4` improves her cost by exactly 2 (a swap towards
//!   `a3` ties),
//! * agent `a1`'s swap back `c1 → b1` improves by exactly 1 (distances to all `b`,
//!   `d` vertices and to `a4`, `a5` drop by 1, distances to all `c` vertices grow
//!   by 1),
//! * agent `b1`'s swap back `a4 → d1` improves by exactly 1 (the `a4` edge is worth
//!   a distance decrease of 7 while reconnecting to `d1` gains 8 on the `d`
//!   vertices).
//!
//! Note: the figure labels only `c1 … c7`, but the proof's identity
//! `n_c = n_b + n_d + 1` requires eight `c`-vertices; we follow the proof.
//!
//! Structure (owner → target, one owned edge per agent):
//!
//! ```text
//! a5→a4→a3→a2→a1 ⇢ b1        (a1's edge is the first dynamic edge)
//! b2→b1, b3→b2
//! c1→b1, c2…c8→c1            (the c-star hangs off b1 via c1)
//! d1→b3, d2…d4→d1            (the d-star hangs off b3 via d1)
//! b1 ⇢ d1                     (b1's edge is the second dynamic edge)
//! ```

use crate::{CycleInstance, CycleStep};
use ncg_core::moves::Move;
use ncg_core::AsymSwapGame;
use ncg_graph::OwnedGraph;

/// Number of vertices of the instance.
pub const N: usize = 20;

/// Vertex indices of the figure's labels.
pub mod v {
    /// `a1` … `a5` are vertices 0…4.
    pub const A1: usize = 0;
    /// `a2`.
    pub const A2: usize = 1;
    /// `a3`.
    pub const A3: usize = 2;
    /// `a4`.
    pub const A4: usize = 3;
    /// `a5`.
    pub const A5: usize = 4;
    /// `b1`.
    pub const B1: usize = 5;
    /// `b2`.
    pub const B2: usize = 6;
    /// `b3`.
    pub const B3: usize = 7;
    /// `c1`; `c2` … `c8` follow consecutively (indices 9…15).
    pub const C1: usize = 8;
    /// `d1`; `d2` … `d4` follow consecutively (indices 17…19).
    pub const D1: usize = 16;
}

/// Vertex names, indexed by vertex id.
pub fn names() -> Vec<&'static str> {
    vec![
        "a1", "a2", "a3", "a4", "a5", "b1", "b2", "b3", "c1", "c2", "c3", "c4", "c5", "c6", "c7",
        "c8", "d1", "d2", "d3", "d4",
    ]
}

/// The initial network (state (1) of Fig. 5). Every agent owns exactly one edge.
pub fn initial() -> OwnedGraph {
    use v::*;
    let mut edges: Vec<(usize, usize)> = vec![
        // The a-path hangs off a1; each deeper vertex owns the edge towards a1.
        (A2, A1),
        (A3, A2),
        (A4, A3),
        (A5, A4),
        // a1's dynamic edge.
        (A1, B1),
        // The b-path.
        (B2, B1),
        (B3, B2),
        // b1's dynamic edge.
        (B1, D1),
        // The c-star, attached to b1 via c1.
        (C1, B1),
        // d1 attaches to b3; the remaining d-vertices hang off d1.
        (D1, B3),
    ];
    for cj in (C1 + 1)..=(C1 + 7) {
        edges.push((cj, C1));
    }
    for dj in (D1 + 1)..=(D1 + 3) {
        edges.push((dj, D1));
    }
    OwnedGraph::from_owned_edges(N, &edges)
}

/// The four moves of one round of the cycle.
pub fn steps() -> Vec<CycleStep> {
    use v::*;
    vec![
        CycleStep {
            agent: A1,
            mv: Move::Swap { from: B1, to: C1 },
            description: "a1 swaps b1 → c1 (improves by 1, n_c = n_b + n_d + 1)",
        },
        CycleStep {
            agent: B1,
            mv: Move::Swap { from: D1, to: A4 },
            description: "b1 swaps d1 → a4 (improves by 2)",
        },
        CycleStep {
            agent: A1,
            mv: Move::Swap { from: C1, to: B1 },
            description: "a1 swaps back c1 → b1 (improves by 1)",
        },
        CycleStep {
            agent: B1,
            mv: Move::Swap { from: A4, to: D1 },
            description: "b1 swaps back a4 → d1 (improves by 1, d-distances gain 8)",
        },
    ]
}

/// The cycle as an instance of the SUM Asymmetric Swap Game.
pub fn cycle() -> CycleInstance<AsymSwapGame> {
    CycleInstance {
        game: AsymSwapGame::sum(),
        initial: initial(),
        steps: steps(),
        names: names(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncg_core::moves::apply_move;
    use ncg_core::{Game, Workspace};
    use ncg_graph::properties;

    #[test]
    fn every_agent_owns_exactly_one_edge() {
        let g = initial();
        assert_eq!(g.num_nodes(), N);
        assert_eq!(
            g.num_edges(),
            N,
            "n vertices, n edges: exactly one non-tree edge"
        );
        for u in 0..N {
            assert_eq!(g.owned_degree(u), 1, "agent {u} must own exactly one edge");
        }
        assert!(properties::is_connected(&g));
    }

    #[test]
    fn stated_improvements_match_the_proof() {
        let game = AsymSwapGame::sum();
        let mut ws = Workspace::new(N);
        let mut g = initial();
        let expected_gains = [1.0, 2.0, 1.0, 1.0];
        for (step, gain) in steps().into_iter().zip(expected_gains) {
            let before = game.cost(&g, step.agent, &mut ws.bfs);
            apply_move(&mut g, step.agent, &step.mv).expect("move applies");
            let after = game.cost(&g, step.agent, &mut ws.bfs);
            assert_eq!(before - after, gain, "gain of '{}'", step.description);
        }
        assert_eq!(g, initial(), "four moves close the cycle");
    }

    #[test]
    fn cycle_verifies_as_best_responses() {
        let states = cycle().verify().expect("Fig. 5 cycle must verify");
        assert_eq!(states.len(), 5);
    }
}
