//! Host-graph constructions of Corollary 4.2 and the state-space explorations used
//! to study them.
//!
//! Corollary 4.2 plays the Fig. 9 / Fig. 10 best-response cycles on host graphs that
//! contain only the cycle's own edges (`G1` plus the two edges bought along the
//! cycle) and claims that then, in every state of the cycle, exactly one agent is
//! unhappy with exactly one improving move — so no sequence of improving moves can
//! reach a stable network.
//!
//! **Reproduction note.** The arXiv text determines the cycle networks up to the
//! ownership of the edges that are never moved. Our exploration of the full
//! improving-move state space (see [`explore_sum_host`] / [`explore_max_host`] and
//! `EXPERIMENTS.md`) shows that for *every* assignment of those owners some
//! non-moving agent has an improving edge-deletion in the dense middle states of
//! the cycle (e.g. the owner of `de` in state `G3` of Fig. 9 saves `α ∈ (7,8)`
//! while its distances grow by at most 5), so improving-move sequences that escape
//! the cycle — and eventually stabilise — exist. The best-response cycles
//! themselves (Theorem 4.1) verify exactly; only the stronger uniqueness claim of
//! Corollary 4.2 could not be reproduced from the information available in the
//! text. The tests below therefore certify what does hold: the state space is
//! finite, contains the better-response cycle, and the prescribed mover is unhappy
//! in every state of the cycle.

use crate::{fig09, fig10};
use ncg_core::classify::{explore, ExploreConfig, ExploreResult};
use ncg_core::GreedyBuyGame;
use ncg_graph::OwnedGraph;

/// The SUM-GBG of Cor. 4.2 together with its initial network.
pub fn sum_gbg_on_host() -> (GreedyBuyGame, OwnedGraph) {
    (
        GreedyBuyGame::sum(fig09::ALPHA).with_host(fig09::host_graph()),
        fig09::initial(),
    )
}

/// The MAX-GBG of Cor. 4.2 together with its initial network.
pub fn max_gbg_on_host() -> (GreedyBuyGame, OwnedGraph) {
    (
        GreedyBuyGame::max(fig10::ALPHA).with_host(fig10::host_graph()),
        fig10::initial(),
    )
}

/// Explores every network reachable from the Cor. 4.2 SUM instance by improving
/// moves.
pub fn explore_sum_host(max_states: usize) -> ExploreResult {
    let (game, initial) = sum_gbg_on_host();
    explore(
        &game,
        &initial,
        &ExploreConfig::default()
            .better_responses()
            .with_max_states(max_states),
    )
}

/// Explores every network reachable from the Cor. 4.2 MAX instance by improving
/// moves.
pub fn explore_max_host(max_states: usize) -> ExploreResult {
    let (game, initial) = max_gbg_on_host();
    explore(
        &game,
        &initial,
        &ExploreConfig::default()
            .better_responses()
            .with_max_states(max_states),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_host_state_space_is_finite_and_contains_the_cycle() {
        let result = explore_sum_host(20_000);
        assert!(result.complete, "state space must be fully explored");
        assert!(
            result.has_cycle(),
            "the Fig. 9 better-response cycle must be reachable"
        );
        assert!(
            result.num_states >= 6,
            "at least the six cycle states are reachable"
        );
    }

    #[test]
    fn max_host_state_space_is_finite_and_contains_the_cycle() {
        let result = explore_max_host(20_000);
        assert!(result.complete);
        assert!(
            result.has_cycle(),
            "the Fig. 10 better-response cycle must be reachable"
        );
        assert!(result.num_states >= 4);
    }

    #[test]
    fn the_prescribed_mover_is_unhappy_in_every_cycle_state_on_the_host() {
        use ncg_core::moves::apply_move;
        use ncg_core::{Game, Workspace};
        // SUM version.
        let inst = fig09::host_restricted_cycle();
        let mut g = inst.initial.clone();
        let mut ws = Workspace::new(g.num_nodes());
        for step in &inst.steps {
            assert!(
                inst.game.has_improving_move(&g, step.agent, &mut ws),
                "{} must be unhappy before '{}'",
                inst.names[step.agent],
                step.description
            );
            apply_move(&mut g, step.agent, &step.mv).unwrap();
        }
        // MAX version.
        let inst = fig10::host_restricted_cycle();
        let mut g = inst.initial.clone();
        let mut ws = Workspace::new(g.num_nodes());
        for step in &inst.steps {
            assert!(inst.game.has_improving_move(&g, step.agent, &mut ws));
            apply_move(&mut g, step.agent, &step.mv).unwrap();
        }
    }
}
