//! Fig. 9 / Theorem 4.1 (SUM version): a best-response cycle for the SUM Buy Game
//! and the SUM Greedy Buy Game with edge price `7 < α < 8`.
//!
//! The construction is fully determined by the proof text: `G1` is the path
//! `a–b–c–d–e–f–g` where agent `g` owns the edge `gf` and agent `c` owns the edge
//! `cb`; the six-step cycle is
//!
//! 1. `g` swaps `gf → gc` (cost `α+21 → α+15`),
//! 2. `f` buys `fb` (cost `19 → 11+α`),
//! 3. `c` deletes `cb` (cost `9+α → 16`),
//! 4. `g` swaps `gc → gf` (mirror of step 1),
//! 5. `c` buys `cb` (mirror of step 2),
//! 6. `f` deletes `fb` (mirror of step 3), returning to `G1`.
//!
//! Every step is a best response even among arbitrary strategy changes, so the
//! cycle applies to the Buy Game as well as to the Greedy Buy Game. Corollary 4.2
//! plays the same cycle on the host graph `G1 + {bf, cg}`, where in every state the
//! moving agent has exactly one improving move — the game is then not weakly
//! acyclic ([`host_graph`]).

use crate::{CycleInstance, CycleStep};
use ncg_core::moves::Move;
use ncg_core::{BuyGame, GreedyBuyGame};
use ncg_graph::{HostGraph, OwnedGraph};

/// Vertex indices of the figure's labels `a..g`.
pub mod v {
    /// Vertex `a`.
    pub const A: usize = 0;
    /// Vertex `b`.
    pub const B: usize = 1;
    /// Vertex `c`.
    pub const C: usize = 2;
    /// Vertex `d`.
    pub const D: usize = 3;
    /// Vertex `e`.
    pub const E: usize = 4;
    /// Vertex `f`.
    pub const F: usize = 5;
    /// Vertex `g`.
    pub const G: usize = 6;
}

/// A valid edge price for the cycle (`7 < α < 8`).
pub const ALPHA: f64 = 7.5;

/// Vertex names, indexed by vertex id.
pub fn names() -> Vec<&'static str> {
    vec!["a", "b", "c", "d", "e", "f", "g"]
}

/// The initial network `G1`: the path `a–b–c–d–e–f–g` with `g` owning `gf` and `c`
/// owning `cb`. The owners of the remaining edges never move them; they are
/// assigned to the lower-index endpoint.
pub fn initial() -> OwnedGraph {
    use v::*;
    OwnedGraph::from_owned_edges(
        7,
        &[
            (A, B), // a owns ab
            (C, B), // c owns cb (deleted in step 3, re-bought in step 5); c owns nothing else
            (D, C), // static
            (D, E), // static
            (E, F), // static; f owns nothing in G1
            (G, F), // g owns gf (swapped in steps 1 and 4)
        ],
    )
}

/// The six moves of one round of the cycle.
pub fn steps() -> Vec<CycleStep> {
    use v::*;
    vec![
        CycleStep {
            agent: G,
            mv: Move::Swap { from: F, to: C },
            description: "g swaps gf to gc (α+21 → α+15)",
        },
        CycleStep {
            agent: F,
            mv: Move::Buy { to: B },
            description: "f buys fb (19 → 11+α)",
        },
        CycleStep {
            agent: C,
            mv: Move::Delete { to: B },
            description: "c deletes cb (9+α → 16)",
        },
        CycleStep {
            agent: G,
            mv: Move::Swap { from: C, to: F },
            description: "g swaps gc to gf",
        },
        CycleStep {
            agent: C,
            mv: Move::Buy { to: B },
            description: "c buys cb",
        },
        CycleStep {
            agent: F,
            mv: Move::Delete { to: B },
            description: "f deletes fb",
        },
    ]
}

/// The cycle as an instance of the SUM Buy Game (arbitrary strategy changes).
pub fn buy_game_cycle() -> CycleInstance<BuyGame> {
    CycleInstance {
        game: BuyGame::sum(ALPHA),
        initial: initial(),
        steps: steps(),
        names: names(),
    }
}

/// The cycle as an instance of the SUM Greedy Buy Game (single-edge moves).
pub fn greedy_buy_game_cycle() -> CycleInstance<GreedyBuyGame> {
    CycleInstance {
        game: GreedyBuyGame::sum(ALPHA),
        initial: initial(),
        steps: steps(),
        names: names(),
    }
}

/// The non-complete host graph of Corollary 4.2 (SUM version): the edges of `G1`
/// plus `{b, f}` and `{c, g}`. On this host every state of the cycle has exactly
/// one unhappy agent with exactly one improving move, so no sequence of improving
/// moves can reach a stable network.
pub fn host_graph() -> HostGraph {
    use v::*;
    HostGraph::restricted(
        7,
        &[
            (A, B),
            (B, C),
            (C, D),
            (D, E),
            (E, F),
            (F, G),
            (B, F),
            (C, G),
        ],
    )
}

/// The cycle on the restricted host graph (Cor. 4.2, SUM version).
pub fn host_restricted_cycle() -> CycleInstance<GreedyBuyGame> {
    CycleInstance {
        game: GreedyBuyGame::sum(ALPHA).with_host(host_graph()),
        initial: initial(),
        steps: steps(),
        names: names(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncg_core::{Game, Workspace};

    #[test]
    fn initial_network_matches_the_figure() {
        let g = initial();
        assert_eq!(g.num_nodes(), 7);
        assert_eq!(g.num_edges(), 6);
        assert!(g.owns_edge(v::G, v::F), "g owns gf");
        assert!(g.owns_edge(v::C, v::B), "c owns cb");
        assert!(ncg_graph::is_tree(&g));
    }

    #[test]
    fn stated_costs_of_g1_match_the_paper() {
        let game = GreedyBuyGame::sum(ALPHA);
        let g = initial();
        let mut ws = Workspace::new(7);
        // g: α + 21 (leaf of a path of length 6).
        assert_eq!(game.cost(&g, v::G, &mut ws.bfs), ALPHA + 21.0);
        // f in G2 has cost 19; in G1 it owns nothing and pays only distances.
        assert_eq!(game.cost(&g, v::F, &mut ws.bfs), 16.0);
    }

    #[test]
    fn greedy_cycle_verifies() {
        let states = greedy_buy_game_cycle().verify().expect("cycle must verify");
        assert_eq!(states.len(), 7);
        assert_eq!(states[0], states[6]);
    }

    #[test]
    fn buy_game_cycle_verifies() {
        // The same moves are best responses even among arbitrary strategy changes.
        buy_game_cycle().verify().expect("BG cycle must verify");
    }

    #[test]
    fn host_restricted_cycle_verifies() {
        host_restricted_cycle()
            .verify()
            .expect("host cycle must verify");
    }
}
