//! Fig. 10 / Theorem 4.1 (MAX version): a best-response cycle for the MAX Buy Game
//! and the MAX Greedy Buy Game with edge price `1 < α < 2`.
//!
//! The arXiv text describes the construction through the proof rather than an edge
//! list. The network used here is a reconstruction that satisfies **every**
//! quantitative statement of the proof:
//!
//! * `G1`: agent `g` has cost 5, buying `ga` is a best response and yields
//!   distance-cost 3 (and no single edge achieves 2),
//! * `G2 = G1 + ga`: agent `e` has cost 4, buying `ea` yields distance-cost 2,
//! * `G3 = G2 + ea`: agent `g` has cost `3 + α`, deleting `ga` yields cost 4
//!   (no swap achieves distance-cost < 3),
//! * `G4 = G1 + ea`: agent `e` has cost `3 + α`, deleting `ea` yields cost 4 and
//!   returns to `G1`.
//!
//! The reconstructed `G1` is the tree `a–b–c–d` with `e`, `f`, `h` attached to `d`
//! and `g` attached to `f`; agents `e` and `g` own no edges, exactly as required.

use crate::{CycleInstance, CycleStep};
use ncg_core::moves::Move;
use ncg_core::{BuyGame, GreedyBuyGame};
use ncg_graph::{HostGraph, OwnedGraph};

/// Vertex indices of the figure's labels `a..h`.
pub mod v {
    /// Vertex `a`.
    pub const A: usize = 0;
    /// Vertex `b`.
    pub const B: usize = 1;
    /// Vertex `c`.
    pub const C: usize = 2;
    /// Vertex `d`.
    pub const D: usize = 3;
    /// Vertex `e`.
    pub const E: usize = 4;
    /// Vertex `f`.
    pub const F: usize = 5;
    /// Vertex `g`.
    pub const G: usize = 6;
    /// Vertex `h`.
    pub const H: usize = 7;
}

/// A valid edge price for the cycle (`1 < α < 2`).
pub const ALPHA: f64 = 1.5;

/// Vertex names, indexed by vertex id.
pub fn names() -> Vec<&'static str> {
    vec!["a", "b", "c", "d", "e", "f", "g", "h"]
}

/// The initial network `G1` (reconstruction, see module docs). Agents `e` and `g`
/// own no edges; all other edges are owned by the lower-lettered endpoint.
pub fn initial() -> OwnedGraph {
    use v::*;
    OwnedGraph::from_owned_edges(8, &[(A, B), (B, C), (C, D), (D, F), (D, E), (D, H), (F, G)])
}

/// The four moves of one round of the cycle.
pub fn steps() -> Vec<CycleStep> {
    use v::*;
    vec![
        CycleStep {
            agent: G,
            mv: Move::Buy { to: A },
            description: "g buys ga (5 → 3+α)",
        },
        CycleStep {
            agent: E,
            mv: Move::Buy { to: A },
            description: "e buys ea (4 → 2+α)",
        },
        CycleStep {
            agent: G,
            mv: Move::Delete { to: A },
            description: "g deletes ga (3+α → 4)",
        },
        CycleStep {
            agent: E,
            mv: Move::Delete { to: A },
            description: "e deletes ea (3+α → 4)",
        },
    ]
}

/// The cycle as an instance of the MAX Buy Game (arbitrary strategy changes).
pub fn buy_game_cycle() -> CycleInstance<BuyGame> {
    CycleInstance {
        game: BuyGame::max(ALPHA),
        initial: initial(),
        steps: steps(),
        names: names(),
    }
}

/// The cycle as an instance of the MAX Greedy Buy Game (single-edge moves).
pub fn greedy_buy_game_cycle() -> CycleInstance<GreedyBuyGame> {
    CycleInstance {
        game: GreedyBuyGame::max(ALPHA),
        initial: initial(),
        steps: steps(),
        names: names(),
    }
}

/// The non-complete host graph of Corollary 4.2 (MAX version): the edges of `G1`
/// plus `{a, g}` and `{a, e}` — exactly the two edges bought and deleted along the
/// cycle. On this host the moving agent always has exactly one improving move.
pub fn host_graph() -> HostGraph {
    use v::*;
    HostGraph::restricted(
        8,
        &[
            (A, B),
            (B, C),
            (C, D),
            (D, F),
            (D, E),
            (D, H),
            (F, G),
            (A, G),
            (A, E),
        ],
    )
}

/// The cycle on the restricted host graph (Cor. 4.2, MAX version).
pub fn host_restricted_cycle() -> CycleInstance<GreedyBuyGame> {
    CycleInstance {
        game: GreedyBuyGame::max(ALPHA).with_host(host_graph()),
        initial: initial(),
        steps: steps(),
        names: names(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncg_core::moves::apply_move;
    use ncg_core::{Game, Workspace};

    #[test]
    fn stated_costs_match_the_proof() {
        let game = GreedyBuyGame::max(ALPHA);
        let mut ws = Workspace::new(8);
        let g1 = initial();
        // G1: g has cost 5 (owns nothing), e has eccentricity 4.
        assert_eq!(game.cost(&g1, v::G, &mut ws.bfs), 5.0);
        assert_eq!(game.cost(&g1, v::E, &mut ws.bfs), 4.0);
        // G2 = G1 + ga: g has 3 + α, e has 4.
        let mut g2 = g1.clone();
        apply_move(&mut g2, v::G, &Move::Buy { to: v::A }).unwrap();
        assert_eq!(game.cost(&g2, v::G, &mut ws.bfs), 3.0 + ALPHA);
        assert_eq!(game.cost(&g2, v::E, &mut ws.bfs), 4.0);
        // G3 = G2 + ea: e has 2 + α, g has 3 + α.
        let mut g3 = g2.clone();
        apply_move(&mut g3, v::E, &Move::Buy { to: v::A }).unwrap();
        assert_eq!(game.cost(&g3, v::E, &mut ws.bfs), 2.0 + ALPHA);
        assert_eq!(game.cost(&g3, v::G, &mut ws.bfs), 3.0 + ALPHA);
        // G4 = G1 + ea: e has 3 + α, g has 4.
        let mut g4 = g3.clone();
        apply_move(&mut g4, v::G, &Move::Delete { to: v::A }).unwrap();
        assert_eq!(game.cost(&g4, v::E, &mut ws.bfs), 3.0 + ALPHA);
        assert_eq!(game.cost(&g4, v::G, &mut ws.bfs), 4.0);
    }

    #[test]
    fn e_and_g_own_no_edges_in_g1() {
        let g = initial();
        assert_eq!(g.owned_degree(v::E), 0);
        assert_eq!(g.owned_degree(v::G), 0);
    }

    #[test]
    fn greedy_cycle_verifies() {
        let states = greedy_buy_game_cycle().verify().expect("cycle must verify");
        assert_eq!(states.len(), 5);
        assert_eq!(states[0], states[4]);
    }

    #[test]
    fn buy_game_cycle_verifies() {
        buy_game_cycle().verify().expect("BG cycle must verify");
    }

    #[test]
    fn host_restricted_cycle_verifies() {
        host_restricted_cycle()
            .verify()
            .expect("host cycle must verify");
    }
}
