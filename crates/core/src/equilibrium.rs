//! Stability (pure Nash equilibrium) checks and social cost.

use crate::game::{Game, Workspace};
use ncg_graph::oracle::OracleKind;
use ncg_graph::{NodeId, OwnedGraph};

/// All agents that currently have a feasible improving move (the set `U_i` of the paper).
pub fn unhappy_agents<G: Game + ?Sized>(
    game: &G,
    g: &OwnedGraph,
    ws: &mut Workspace,
) -> Vec<NodeId> {
    (0..g.num_nodes())
        .filter(|&u| game.has_improving_move(g, u, ws))
        .collect()
}

/// Shared scaffolding for chunked parallel per-agent scans: evaluates
/// `per_agent` for every agent `0..n`, distributing the agents over scoped
/// worker threads. Workspaces are reused from (and lazily added to) `pool`,
/// one per thread, so repeated scans allocate nothing.
#[allow(clippy::too_many_arguments)] // internal plumbing: every arg is a workspace knob
pub(crate) fn scan_agents_parallel<G, T, F>(
    game: &G,
    g: &OwnedGraph,
    kind: OracleKind,
    cache_budget: Option<usize>,
    byte_budget: Option<u64>,
    threads: usize,
    pool: &mut Vec<Workspace>,
    per_agent: F,
) -> Vec<T>
where
    G: Game + Sync + ?Sized,
    T: Send + Default + Clone,
    F: Fn(&G, &OwnedGraph, NodeId, &mut Workspace) -> T + Sync,
{
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    let chunk = n.div_ceil(threads);
    while pool.len() < threads {
        pool.push(Workspace::with_engine_budgets(
            n,
            kind,
            cache_budget,
            byte_budget,
        ));
    }
    let mut results = vec![T::default(); n];
    std::thread::scope(|scope| {
        for ((tid, slots), ws) in results.chunks_mut(chunk).enumerate().zip(pool.iter_mut()) {
            let start = tid * chunk;
            let per_agent = &per_agent;
            scope.spawn(move || {
                for (off, slot) in slots.iter_mut().enumerate() {
                    *slot = per_agent(game, g, start + off, ws);
                }
            });
        }
    });
    results
}

/// Like [`unhappy_agents`], but distributes the per-agent unhappiness checks
/// over `threads` scoped worker threads, each with its own workspace of the
/// given oracle backend. The result is identical (and sorted by agent index).
pub fn unhappy_agents_parallel<G: Game + Sync + ?Sized>(
    game: &G,
    g: &OwnedGraph,
    kind: OracleKind,
    threads: usize,
) -> Vec<NodeId> {
    let mut pool = Vec::new();
    let unhappy = scan_agents_parallel(
        game,
        g,
        kind,
        None,
        None,
        threads,
        &mut pool,
        |game, g, u, ws| game.has_improving_move(g, u, ws),
    );
    unhappy
        .into_iter()
        .enumerate()
        .filter_map(|(u, bad)| bad.then_some(u))
        .collect()
}

/// Returns `true` iff no agent has a feasible improving move, i.e. the network is
/// stable (a pure Nash equilibrium of the underlying game; a pairwise Nash
/// equilibrium for the bilateral game).
pub fn is_stable<G: Game + ?Sized>(game: &G, g: &OwnedGraph, ws: &mut Workspace) -> bool {
    (0..g.num_nodes()).all(|u| !game.has_improving_move(g, u, ws))
}

/// Sum of all agents' costs (the social cost).
pub fn social_cost<G: Game + ?Sized>(game: &G, g: &OwnedGraph, ws: &mut Workspace) -> f64 {
    (0..g.num_nodes())
        .map(|u| game.cost(g, u, &mut ws.bfs))
        .sum()
}

/// Costs of all agents in index order.
pub fn cost_vector<G: Game + ?Sized>(game: &G, g: &OwnedGraph, ws: &mut Workspace) -> Vec<f64> {
    (0..g.num_nodes())
        .map(|u| game.cost(g, u, &mut ws.bfs))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::{GreedyBuyGame, SwapGame};
    use ncg_graph::generators;

    #[test]
    fn star_is_stable_in_sum_swap_game() {
        let game = SwapGame::sum();
        let g = generators::star(8);
        let mut ws = Workspace::new(8);
        assert!(is_stable(&game, &g, &mut ws));
        assert!(unhappy_agents(&game, &g, &mut ws).is_empty());
    }

    #[test]
    fn path_is_not_stable() {
        let game = SwapGame::sum();
        let g = generators::path(6);
        let mut ws = Workspace::new(6);
        assert!(!is_stable(&game, &g, &mut ws));
        let unhappy = unhappy_agents(&game, &g, &mut ws);
        assert!(unhappy.contains(&0) && unhappy.contains(&5));
    }

    #[test]
    fn social_cost_of_star_sum_swap() {
        let game = SwapGame::sum();
        let n = 6;
        let g = generators::star(n);
        let mut ws = Workspace::new(n);
        // Center: n-1. Each leaf: 1 + 2(n-2).
        let expected = (n - 1) as f64 + (n - 1) as f64 * (1.0 + 2.0 * (n - 2) as f64);
        assert_eq!(social_cost(&game, &g, &mut ws), expected);
    }

    #[test]
    fn parallel_unhappy_scan_matches_sequential() {
        let game = GreedyBuyGame::sum(3.0);
        let g = generators::path(12);
        let mut ws = Workspace::new(12);
        let sequential = unhappy_agents(&game, &g, &mut ws);
        for threads in [1usize, 2, 5, 32] {
            let parallel = unhappy_agents_parallel(&game, &g, OracleKind::Incremental, threads);
            assert_eq!(parallel, sequential, "threads={threads}");
        }
        let empty = ncg_graph::OwnedGraph::new(0);
        assert!(unhappy_agents_parallel(&game, &empty, OracleKind::FullBfs, 4).is_empty());
    }

    #[test]
    fn cost_vector_matches_social_cost() {
        let game = GreedyBuyGame::sum(1.5);
        let g = generators::path(5);
        let mut ws = Workspace::new(5);
        let vec = cost_vector(&game, &g, &mut ws);
        let sum: f64 = vec.iter().sum();
        assert!((sum - social_cost(&game, &g, &mut ws)).abs() < 1e-9);
        assert_eq!(vec.len(), 5);
    }
}
