//! Stability (pure Nash equilibrium) checks and social cost.

use crate::game::{Game, Workspace};
use ncg_graph::{NodeId, OwnedGraph};

/// All agents that currently have a feasible improving move (the set `U_i` of the paper).
pub fn unhappy_agents<G: Game + ?Sized>(game: &G, g: &OwnedGraph, ws: &mut Workspace) -> Vec<NodeId> {
    (0..g.num_nodes())
        .filter(|&u| game.has_improving_move(g, u, ws))
        .collect()
}

/// Returns `true` iff no agent has a feasible improving move, i.e. the network is
/// stable (a pure Nash equilibrium of the underlying game; a pairwise Nash
/// equilibrium for the bilateral game).
pub fn is_stable<G: Game + ?Sized>(game: &G, g: &OwnedGraph, ws: &mut Workspace) -> bool {
    (0..g.num_nodes()).all(|u| !game.has_improving_move(g, u, ws))
}

/// Sum of all agents' costs (the social cost).
pub fn social_cost<G: Game + ?Sized>(game: &G, g: &OwnedGraph, ws: &mut Workspace) -> f64 {
    (0..g.num_nodes()).map(|u| game.cost(g, u, &mut ws.bfs)).sum()
}

/// Costs of all agents in index order.
pub fn cost_vector<G: Game + ?Sized>(game: &G, g: &OwnedGraph, ws: &mut Workspace) -> Vec<f64> {
    (0..g.num_nodes()).map(|u| game.cost(g, u, &mut ws.bfs)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::{GreedyBuyGame, SwapGame};
    use ncg_graph::generators;

    #[test]
    fn star_is_stable_in_sum_swap_game() {
        let game = SwapGame::sum();
        let g = generators::star(8);
        let mut ws = Workspace::new(8);
        assert!(is_stable(&game, &g, &mut ws));
        assert!(unhappy_agents(&game, &g, &mut ws).is_empty());
    }

    #[test]
    fn path_is_not_stable() {
        let game = SwapGame::sum();
        let g = generators::path(6);
        let mut ws = Workspace::new(6);
        assert!(!is_stable(&game, &g, &mut ws));
        let unhappy = unhappy_agents(&game, &g, &mut ws);
        assert!(unhappy.contains(&0) && unhappy.contains(&5));
    }

    #[test]
    fn social_cost_of_star_sum_swap() {
        let game = SwapGame::sum();
        let n = 6;
        let g = generators::star(n);
        let mut ws = Workspace::new(n);
        // Center: n-1. Each leaf: 1 + 2(n-2).
        let expected = (n - 1) as f64 + (n - 1) as f64 * (1.0 + 2.0 * (n - 2) as f64);
        assert_eq!(social_cost(&game, &g, &mut ws), expected);
    }

    #[test]
    fn cost_vector_matches_social_cost() {
        let game = GreedyBuyGame::sum(1.5);
        let g = generators::path(5);
        let mut ws = Workspace::new(5);
        let vec = cost_vector(&game, &g, &mut ws);
        let sum: f64 = vec.iter().sum();
        assert!((sum - social_cost(&game, &g, &mut ws)).abs() < 1e-9);
        assert_eq!(vec.len(), 5);
    }
}
