//! Move policies: who is allowed to move in the current state.
//!
//! A move policy only decides *which* unhappy agent moves, never *which* move she
//! performs (paper §1.1: "we do not consider such strong policies"). The paper's
//! results use the **max cost** policy and, in the experiments, the **random**
//! policy; min-index and round-robin are provided as additional natural baselines
//! and for the adversarial constructions in the tests.

use crate::game::{Game, Workspace};
use ncg_graph::{NodeId, OwnedGraph};
use rand::seq::SliceRandom;
use rand::Rng;

/// Which unhappy agent is selected to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// The unhappy agent of maximum cost moves; ties broken according to
    /// [`TieBreak`]. This is the paper's *max cost policy*.
    MaxCost,
    /// A uniformly random unhappy agent moves (the paper's experimental
    /// *random policy*).
    Random,
    /// The unhappy agent with the smallest index moves (used in the Fig. 1
    /// lower-bound construction).
    MinIndex,
    /// Agents are scanned cyclically starting after the previous mover.
    RoundRobin,
}

/// How ties (among maximum-cost agents, or among equally good best responses)
/// are broken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TieBreak {
    /// Lowest agent index / lexicographically smallest move. Fully reproducible
    /// independent of the RNG; matches the tie-breaking used in the paper's proofs.
    Deterministic,
    /// Uniformly at random (the paper's experimental setup).
    Random,
}

impl Policy {
    /// Human-readable label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Policy::MaxCost => "max cost",
            Policy::Random => "random",
            Policy::MinIndex => "min index",
            Policy::RoundRobin => "round robin",
        }
    }

    /// Inverse of [`Policy::label`] (plan-spec round trips).
    pub fn parse(s: &str) -> Option<Policy> {
        match s {
            "max cost" => Some(Policy::MaxCost),
            "random" => Some(Policy::Random),
            "min index" => Some(Policy::MinIndex),
            "round robin" => Some(Policy::RoundRobin),
            _ => None,
        }
    }

    /// Selects the moving agent in state `g`, or `None` if every agent is happy
    /// (the state is stable).
    ///
    /// `last_mover` is only used by [`Policy::RoundRobin`].
    pub fn select_mover<G: Game + ?Sized, R: Rng>(
        &self,
        game: &G,
        g: &OwnedGraph,
        ws: &mut Workspace,
        tie_break: TieBreak,
        last_mover: Option<NodeId>,
        rng: &mut R,
    ) -> Option<NodeId> {
        let n = g.num_nodes();
        let mut order: Vec<NodeId> = (0..n).collect();
        match self {
            Policy::MaxCost => {
                if tie_break == TieBreak::Random {
                    order.shuffle(rng);
                }
                // `workspace_cost` serves the per-agent costs from the
                // persistent oracle's cross-step cache when available — the
                // value is identical to `Game::cost`, so mover selection (and
                // hence the trajectory) does not depend on the backend.
                let _sp = ncg_trace::span(ncg_trace::Phase::CostRefresh);
                let costs: Vec<f64> = (0..n)
                    .map(|u| crate::game::workspace_cost(game, g, u, ws))
                    .collect();
                // Stable sort: the shuffled order implements random tie-breaking.
                order.sort_by(|&a, &b| {
                    costs[b]
                        .partial_cmp(&costs[a])
                        .expect("costs are never NaN")
                });
            }
            Policy::Random => {
                order.shuffle(rng);
            }
            Policy::MinIndex => {}
            Policy::RoundRobin => {
                let start = last_mover.map_or(0, |m| (m + 1) % n.max(1));
                order = (0..n).map(|i| (start + i) % n).collect();
            }
        }
        let mut scanned = 0u64;
        let found = order.into_iter().find(|&u| {
            scanned += 1;
            game.has_improving_move(g, u, ws)
        });
        ncg_trace::add(ncg_trace::Counter::AgentsScanned, scanned);
        ncg_trace::record(ncg_trace::HistId::ScanWidth, scanned);
        if found.is_some() {
            ncg_trace::add(ncg_trace::Counter::ImprovingMoves, 1);
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::{AsymSwapGame, SwapGame};
    use ncg_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn labels() {
        assert_eq!(Policy::MaxCost.label(), "max cost");
        assert_eq!(Policy::Random.label(), "random");
    }

    #[test]
    fn max_cost_policy_selects_a_leaf_on_trees() {
        // Observation 2.12: an agent of maximum cost in a tree is a leaf.
        let game = SwapGame::max();
        let g = generators::path(7);
        let mut ws = Workspace::new(7);
        let mut rng = StdRng::seed_from_u64(0);
        let mover = Policy::MaxCost
            .select_mover(&game, &g, &mut ws, TieBreak::Deterministic, None, &mut rng)
            .expect("path is not stable");
        assert!(
            g.degree(mover) == 1,
            "max-cost mover must be a leaf, got {mover}"
        );
        // Deterministic tie-break picks the lowest-index endpoint.
        assert_eq!(mover, 0);
    }

    #[test]
    fn stable_state_selects_nobody() {
        let game = SwapGame::sum();
        let g = generators::star(6);
        let mut ws = Workspace::new(6);
        let mut rng = StdRng::seed_from_u64(0);
        for p in [
            Policy::MaxCost,
            Policy::Random,
            Policy::MinIndex,
            Policy::RoundRobin,
        ] {
            assert_eq!(
                p.select_mover(&game, &g, &mut ws, TieBreak::Random, None, &mut rng),
                None
            );
        }
    }

    #[test]
    fn min_index_and_round_robin_orderings() {
        let game = AsymSwapGame::sum();
        let g = generators::path(6);
        let mut ws = Workspace::new(6);
        let mut rng = StdRng::seed_from_u64(1);
        let first = Policy::MinIndex
            .select_mover(&game, &g, &mut ws, TieBreak::Deterministic, None, &mut rng)
            .unwrap();
        assert_eq!(first, 0, "vertex 0 owns an edge and can improve");
        let rr = Policy::RoundRobin
            .select_mover(
                &game,
                &g,
                &mut ws,
                TieBreak::Deterministic,
                Some(0),
                &mut rng,
            )
            .unwrap();
        assert!(rr != 0 || !game.has_improving_move(&g, 1, &mut ws));
    }

    #[test]
    fn random_policy_only_picks_unhappy_agents() {
        let game = AsymSwapGame::sum();
        let g = generators::path(8);
        let mut ws = Workspace::new(8);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let u = Policy::Random
                .select_mover(&game, &g, &mut ws, TieBreak::Random, None, &mut rng)
                .unwrap();
            assert!(game.has_improving_move(&g, u, &mut ws));
        }
    }
}
