//! Potential functions used in the convergence proofs.
//!
//! * The **social cost** is an ordinal potential of the SUM Swap Game on trees
//!   (Lenzner, SAGT'11).
//! * The **sorted cost vector**, compared lexicographically, is a generalized
//!   ordinal potential of the MAX Swap Game on trees (paper Lemma 2.6).
//!
//! The property tests of this crate verify both along simulated trajectories.

use crate::game::{Game, Workspace};
use ncg_graph::OwnedGraph;
use std::cmp::Ordering;

/// The sorted cost vector `(γ¹, …, γⁿ)` of a network: the agents' costs sorted in
/// non-increasing order (Definition 2.5).
pub fn sorted_cost_vector<G: Game + ?Sized>(
    game: &G,
    g: &OwnedGraph,
    ws: &mut Workspace,
) -> Vec<f64> {
    let mut costs: Vec<f64> = (0..g.num_nodes())
        .map(|u| game.cost(g, u, &mut ws.bfs))
        .collect();
    costs.sort_by(|a, b| b.partial_cmp(a).expect("costs are never NaN"));
    costs
}

/// Lexicographic comparison of two equally long cost vectors.
///
/// Returns `Ordering::Less` if `a` precedes `b`, i.e. `a` is the *smaller*
/// potential value.
pub fn lex_cmp(a: &[f64], b: &[f64]) -> Ordering {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        match x.partial_cmp(y).expect("costs are never NaN") {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    Ordering::Equal
}

/// Returns `true` if `after` is strictly lexicographically smaller than `before`
/// — the decrease required from a generalized ordinal potential step.
pub fn lex_decreased(before: &[f64], after: &[f64]) -> bool {
    lex_cmp(after, before) == Ordering::Less
}

/// Social cost (sum of all agents' costs) — the ordinal potential of the SUM
/// swap games on trees.
pub fn social_cost_potential<G: Game + ?Sized>(
    game: &G,
    g: &OwnedGraph,
    ws: &mut Workspace,
) -> f64 {
    crate::equilibrium::social_cost(game, g, ws)
}

/// Observation 2.9: in any connected network the two largest entries of the sorted
/// cost vector (MAX metric) are equal and the smallest entry is `⌈γ¹ / 2⌉`.
/// Exposed for the property tests.
pub fn max_cost_vector_observation_holds(sorted_desc: &[f64]) -> bool {
    if sorted_desc.len() < 2 {
        return true;
    }
    let gamma1 = sorted_desc[0];
    let gamma2 = sorted_desc[1];
    let gamma_n = *sorted_desc.last().expect("non-empty");
    if !gamma1.is_finite() {
        return true; // disconnected: the observation only speaks about connected networks
    }
    gamma1 == gamma2 && gamma_n == (gamma1 / 2.0).ceil()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::{Dynamics, DynamicsConfig};
    use crate::games::SwapGame;
    use ncg_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sorted_vector_is_non_increasing() {
        let game = SwapGame::max();
        let g = generators::path(7);
        let mut ws = Workspace::new(7);
        let v = sorted_cost_vector(&game, &g, &mut ws);
        for w in v.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert_eq!(v.len(), 7);
    }

    #[test]
    fn lexicographic_comparison() {
        assert_eq!(lex_cmp(&[3.0, 2.0], &[3.0, 2.0]), Ordering::Equal);
        assert_eq!(lex_cmp(&[3.0, 1.0], &[3.0, 2.0]), Ordering::Less);
        assert_eq!(lex_cmp(&[4.0, 0.0], &[3.0, 9.0]), Ordering::Greater);
        assert!(lex_decreased(&[4.0, 4.0], &[4.0, 3.0]));
        assert!(!lex_decreased(&[4.0, 3.0], &[4.0, 3.0]));
    }

    #[test]
    fn observation_2_9_on_trees() {
        let game = SwapGame::max();
        let mut ws = Workspace::new(9);
        for g in [
            generators::path(9),
            generators::star(9),
            generators::double_star(3, 4),
        ] {
            let v = sorted_cost_vector(&game, &g, &mut ws);
            assert!(max_cost_vector_observation_holds(&v), "failed on {g:?}");
        }
    }

    #[test]
    fn max_sg_tree_dynamics_decreases_sorted_cost_vector() {
        // Lemma 2.6 along an actual trajectory.
        let game = SwapGame::max();
        let g = generators::path(9);
        let mut rng = StdRng::seed_from_u64(11);
        let mut dynamics = Dynamics::new(&game, g, DynamicsConfig::simulation(1_000));
        let mut ws = Workspace::new(9);
        let mut prev = sorted_cost_vector(&game, dynamics.graph(), &mut ws);
        while dynamics.step(&mut rng).is_some() {
            let next = sorted_cost_vector(&game, dynamics.graph(), &mut ws);
            assert!(
                lex_decreased(&prev, &next),
                "potential must strictly decrease: {prev:?} -> {next:?}"
            );
            prev = next;
        }
    }

    #[test]
    fn sum_sg_tree_dynamics_decreases_social_cost() {
        let game = SwapGame::sum();
        let g = generators::path(10);
        let mut rng = StdRng::seed_from_u64(12);
        let mut dynamics = Dynamics::new(&game, g, DynamicsConfig::simulation(1_000));
        let mut ws = Workspace::new(10);
        let mut prev = social_cost_potential(&game, dynamics.graph(), &mut ws);
        while dynamics.step(&mut rng).is_some() {
            let next = social_cost_potential(&game, dynamics.graph(), &mut ws);
            assert!(next < prev, "social cost must strictly decrease on trees");
            prev = next;
        }
    }
}
