//! # ncg-core
//!
//! Sequential-move dynamics of network creation games — a faithful implementation
//! of the models analysed in *On Dynamics in Selfish Network Creation*
//! (Kawald & Lenzner, SPAA 2013).
//!
//! The crate provides:
//!
//! * the five game families of the paper ([`games`]): the Swap Game, the Asymmetric
//!   Swap Game, the Greedy Buy Game, the (original) Buy Game and the bilateral
//!   equal-split Buy Game, each in the SUM and MAX distance-cost flavour and
//!   optionally on a restricted host graph;
//! * the agent cost model ([`cost`]) and strategy changes ([`moves`]);
//! * best-response and improving-move computation (the [`Game`] trait);
//! * move policies ([`policy`]): max-cost, random, min-index, round-robin;
//! * the sequential dynamics engine ([`dynamics`]) with trajectory recording and
//!   exact better-response-cycle detection;
//! * potential functions ([`potential`]) and equilibrium checks ([`equilibrium`]);
//! * a bounded explorer of the improving-response state graph ([`classify`]) used
//!   to certify non-weak-acyclicity on the paper's constructed instances.
//!
//! ## Quick start
//!
//! ```
//! use ncg_core::games::GreedyBuyGame;
//! use ncg_core::dynamics::{run_dynamics, DynamicsConfig};
//! use ncg_core::policy::Policy;
//! use ncg_graph::generators;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let n = 20;
//! let initial = generators::random_with_m_edges(n, 2 * n, &mut rng);
//! let game = GreedyBuyGame::sum(n as f64 / 4.0);
//! let config = DynamicsConfig::simulation(100 * n).with_policy(Policy::MaxCost);
//! let outcome = run_dynamics(&game, &initial, &config, &mut rng);
//! assert!(outcome.converged());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod cost;
pub mod dynamics;
pub mod equilibrium;
pub mod evaluator;
pub mod game;
pub mod games;
pub mod moves;
pub mod policy;
pub mod potential;

pub use cost::{agent_cost, agent_cost_total, AgentCost, DistanceMetric, EdgeCostMode};
pub use dynamics::{
    run_dynamics, Dynamics, DynamicsConfig, DynamicsOutcome, MoveRecord, ResponseMode, Termination,
};
pub use equilibrium::{
    cost_vector, is_stable, social_cost, unhappy_agents, unhappy_agents_parallel,
};
pub use evaluator::{edge_cost_after, party_edge_cost_after, CostEvaluator, DeltaScore};
pub use game::{Game, ScoredMove, Workspace};
pub use games::{AsymSwapGame, BilateralBuyGame, BuyGame, GreedyBuyGame, SwapGame};
pub use moves::{apply_move, undo_move, Move, UndoMove};
pub use ncg_graph::oracle::{OracleKind, OracleStats};
pub use policy::{Policy, TieBreak};
