//! Delta-based candidate scoring on top of the pluggable distance oracles.
//!
//! [`CostEvaluator`] is the bridge between the game layer and
//! [`ncg_graph::oracle`]: it pins the moving agent's base distance vector once
//! per best-response scan and then scores every single-edge candidate move
//! ([`Move::Swap`], [`Move::Buy`], [`Move::Delete`]) as a pair of
//! [`EdgeDelta`]s — no graph mutation, no full BFS per candidate. The edge-cost
//! component of the agent's cost is reconstructed arithmetically from the move
//! kind, so a candidate evaluation never needs the mutated graph at all.
//!
//! Whole-strategy moves ([`Move::SetOwned`], [`Move::SetNeighbors`]) and games
//! that need a consent check on the post-move state fall back to the classic
//! apply → BFS → undo cycle in [`crate::game`].

use crate::cost::EdgeCostMode;
use crate::moves::Move;
use ncg_graph::oracle::{make_oracle, DistanceOracle, EdgeDelta, OracleKind, OracleStats};
use ncg_graph::{DistanceSummary, NodeId, OwnedGraph};

/// Outcome of a delta-based candidate evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeltaScore {
    /// The move applies; this is the agent's distance summary afterwards.
    Summary(DistanceSummary),
    /// The move does not apply in the current state (mirrors the moves
    /// rejected by [`crate::moves::apply_move`]); skip it.
    Inapplicable,
    /// The move is not expressible as edge deltas; use the fallback path.
    Unsupported,
}

/// A distance-oracle-backed scorer for one agent's candidate moves.
pub struct CostEvaluator {
    kind: OracleKind,
    oracle: Box<dyn DistanceOracle>,
    deltas: Vec<EdgeDelta>,
}

impl CostEvaluator {
    /// Creates an evaluator with the given backend for graphs on `n` vertices.
    pub fn new(kind: OracleKind, n: usize) -> Self {
        CostEvaluator {
            kind,
            oracle: make_oracle(kind, n),
            deltas: Vec::with_capacity(4),
        }
    }

    /// The configured backend.
    pub fn kind(&self) -> OracleKind {
        self.kind
    }

    /// Work counters of the underlying oracle.
    pub fn stats(&self) -> OracleStats {
        self.oracle.stats()
    }

    /// Clears the work counters.
    pub fn reset_stats(&mut self) {
        self.oracle.reset_stats();
    }

    /// Pins the base state `(g, u)` for the following
    /// [`CostEvaluator::try_score`] calls and returns `u`'s base summary.
    pub fn begin_agent(&mut self, g: &OwnedGraph, u: NodeId) -> DistanceSummary {
        self.oracle.begin(g, u)
    }

    /// Scores candidate `mv` of agent `u` against the pinned base state.
    ///
    /// `g` must be the same graph passed to the preceding
    /// [`CostEvaluator::begin_agent`]; it is only consulted for applicability
    /// checks, never mutated.
    pub fn try_score(&mut self, g: &OwnedGraph, u: NodeId, mv: &Move) -> DeltaScore {
        self.deltas.clear();
        match *mv {
            Move::Swap { from, to } => {
                if !g.has_edge(u, from) || g.has_edge(u, to) || to == u || to >= g.num_nodes() {
                    return DeltaScore::Inapplicable;
                }
                self.deltas.push(EdgeDelta::Remove { u, v: from });
                self.deltas.push(EdgeDelta::Insert { u, v: to });
            }
            Move::Buy { to } => {
                if to == u || to >= g.num_nodes() || g.has_edge(u, to) {
                    return DeltaScore::Inapplicable;
                }
                self.deltas.push(EdgeDelta::Insert { u, v: to });
            }
            Move::Delete { to } => {
                if !g.owns_edge(u, to) {
                    return DeltaScore::Inapplicable;
                }
                self.deltas.push(EdgeDelta::Remove { u, v: to });
            }
            Move::SetOwned { .. } | Move::SetNeighbors { .. } => {
                return DeltaScore::Unsupported;
            }
        }
        let deltas = std::mem::take(&mut self.deltas);
        let summary = self.oracle.evaluate(&deltas);
        self.deltas = deltas;
        DeltaScore::Summary(summary)
    }
}

impl std::fmt::Debug for CostEvaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CostEvaluator")
            .field("kind", &self.kind)
            .finish_non_exhaustive()
    }
}

/// Edge-cost of agent `u` *after* performing the single-edge move `mv`,
/// reconstructed without mutating the graph.
///
/// Only meaningful for the move kinds [`CostEvaluator::try_score`] supports;
/// whole-strategy moves take the fallback path which measures the real state.
pub fn edge_cost_after(
    g: &OwnedGraph,
    u: NodeId,
    mv: &Move,
    mode: EdgeCostMode,
    alpha: f64,
) -> f64 {
    match mode {
        EdgeCostMode::Free => 0.0,
        EdgeCostMode::OwnerPays => {
            let owned = g.owned_degree(u) as isize
                + match *mv {
                    Move::Buy { .. } => 1,
                    Move::Delete { .. } => -1,
                    // Swapping an owned edge keeps the owned degree; swapping a
                    // foreign-owned edge (symmetric Swap Game) transfers the
                    // replacement edge to the mover.
                    Move::Swap { from, .. } => {
                        if g.owns_edge(u, from) {
                            0
                        } else {
                            1
                        }
                    }
                    Move::SetOwned { .. } | Move::SetNeighbors { .. } => 0,
                };
            alpha * owned.max(0) as f64
        }
        EdgeCostMode::EqualSplit => {
            let degree = g.degree(u) as isize
                + match *mv {
                    Move::Buy { .. } => 1,
                    Move::Delete { .. } => -1,
                    _ => 0,
                };
            alpha / 2.0 * degree.max(0) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::agent_cost_total;
    use crate::cost::DistanceMetric;
    use crate::moves::apply_move;
    use ncg_graph::{generators, BfsBuffer};

    /// Delta scoring must agree exactly with apply + BFS for every supported
    /// move kind and both backends.
    #[test]
    fn delta_scores_match_apply_and_bfs() {
        let g = {
            let mut g = generators::path(9);
            g.add_edge(0, 5);
            g.add_edge(2, 7);
            g
        };
        let moves = [
            Move::Swap { from: 1, to: 4 },
            Move::Buy { to: 8 },
            Move::Delete { to: 1 },
            Move::Delete { to: 5 },
        ];
        for kind in [OracleKind::FullBfs, OracleKind::Incremental] {
            for u in 0..g.num_nodes() {
                let mut evaluator = CostEvaluator::new(kind, g.num_nodes());
                evaluator.begin_agent(&g, u);
                for mv in &moves {
                    let score = evaluator.try_score(&g, u, mv);
                    let mut h = g.clone();
                    match apply_move(&mut h, u, mv) {
                        None => {
                            assert_eq!(
                                score,
                                DeltaScore::Inapplicable,
                                "{} agent {u} move {mv:?}",
                                kind.label()
                            );
                        }
                        Some(_) => {
                            let mut buf = BfsBuffer::new(h.num_nodes());
                            let expect = buf.summary(&h, u);
                            assert_eq!(
                                score,
                                DeltaScore::Summary(expect),
                                "{} agent {u} move {mv:?}",
                                kind.label()
                            );
                            // Total cost agrees too (edge + distance).
                            let metric = DistanceMetric::Sum;
                            let mode = EdgeCostMode::OwnerPays;
                            let alpha = 1.75;
                            let measured = agent_cost_total(&h, u, metric, alpha, mode, &mut buf);
                            let DeltaScore::Summary(s) = score else {
                                unreachable!()
                            };
                            let scored =
                                edge_cost_after(&g, u, mv, mode, alpha) + metric.distance_cost(&s);
                            assert!(
                                (measured - scored).abs() < 1e-12,
                                "{} agent {u} move {mv:?}: {measured} vs {scored}",
                                kind.label()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn whole_strategy_moves_are_unsupported() {
        let g = generators::path(4);
        let mut evaluator = CostEvaluator::new(OracleKind::Incremental, 4);
        evaluator.begin_agent(&g, 0);
        assert_eq!(
            evaluator.try_score(&g, 0, &Move::SetOwned { new_owned: vec![2] }),
            DeltaScore::Unsupported
        );
        assert_eq!(
            evaluator.try_score(
                &g,
                0,
                &Move::SetNeighbors {
                    new_neighbors: vec![2]
                }
            ),
            DeltaScore::Unsupported
        );
    }

    #[test]
    fn edge_cost_arithmetic() {
        let g = generators::path(4); // 0 owns {0,1}; 1 owns {1,2}; 2 owns {2,3}
        let alpha = 2.0;
        // Buy adds an owned edge.
        assert_eq!(
            edge_cost_after(&g, 0, &Move::Buy { to: 2 }, EdgeCostMode::OwnerPays, alpha),
            4.0
        );
        // Delete removes one.
        assert_eq!(
            edge_cost_after(
                &g,
                0,
                &Move::Delete { to: 1 },
                EdgeCostMode::OwnerPays,
                alpha
            ),
            0.0
        );
        // Owned swap keeps the owned degree; foreign swap adopts the edge.
        assert_eq!(
            edge_cost_after(
                &g,
                0,
                &Move::Swap { from: 1, to: 3 },
                EdgeCostMode::OwnerPays,
                alpha
            ),
            2.0
        );
        assert_eq!(
            edge_cost_after(
                &g,
                1,
                &Move::Swap { from: 0, to: 3 },
                EdgeCostMode::OwnerPays,
                alpha
            ),
            4.0,
            "vertex 1 does not own {{0,1}} and adopts the replacement edge"
        );
        // Equal-split counts incident edges.
        assert_eq!(
            edge_cost_after(&g, 1, &Move::Buy { to: 3 }, EdgeCostMode::EqualSplit, alpha),
            3.0
        );
        assert_eq!(
            edge_cost_after(&g, 0, &Move::Buy { to: 2 }, EdgeCostMode::Free, alpha),
            0.0
        );
    }
}
