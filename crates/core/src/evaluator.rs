//! Delta-based candidate scoring on top of the pluggable distance oracles.
//!
//! [`CostEvaluator`] is the bridge between the game layer and
//! [`ncg_graph::oracle`]: it pins the moving agent's base distance vector once
//! per best-response scan and then scores every candidate move as an ordered
//! [`EdgeDelta`] sequence — no graph mutation, no full BFS per candidate. The
//! edge-cost component of the agent's cost is reconstructed arithmetically
//! from the move kind, so a candidate evaluation never needs the mutated
//! graph at all.
//!
//! Single-edge moves ([`Move::Swap`], [`Move::Buy`], [`Move::Delete`]) map to
//! one or two deltas. Whole-strategy moves ([`Move::SetOwned`],
//! [`Move::SetNeighbors`]) map to their full remove/insert sequence, emitted
//! in **descending vertex order**: the Buy-Game enumeration walks strategy
//! subsets in Gray-code order (consecutive masks toggle one low pool element),
//! so consecutive candidates share a long delta-sequence prefix and the
//! incremental oracle's delta-stack prefix reuse pays the shared repairs only
//! once across the exponential enumeration.
//!
//! Games that need a consent check on the post-move state fall back to the
//! classic apply → BFS → undo cycle in [`crate::game`].
//!
//! Observability: the oracle layer beneath emits the `oracle-begin`,
//! `fused-kernel`, `delta-repair`, `warm-pass` and `pin-sources` trace phases,
//! so every evaluator entry point is attributed for free. The evaluator adds
//! only the [`ncg_trace::Phase::Consent`] span around consent-oracle work,
//! separating counterpart time from mover time in the profile.

use crate::cost::EdgeCostMode;
use crate::moves::Move;
use ncg_graph::oracle::{
    make_oracle_with_budgets, DistanceOracle, EdgeDelta, OracleKind, OracleStats,
};
use ncg_graph::{DistanceSummary, NodeId, OwnedGraph};

/// Outcome of a delta-based candidate evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeltaScore {
    /// The move applies; this is the agent's distance summary afterwards.
    Summary(DistanceSummary),
    /// The move applies and this is a **lower bound** on the agent's distance
    /// summary afterwards (sum and max are each `≤` their true values), served
    /// arithmetically from the persistent oracle's per-source caches without
    /// touching the repair machinery. A candidate whose lower-bound cost is
    /// already not an improvement is guaranteed non-improving and may be
    /// skipped; otherwise re-score it with
    /// [`CostEvaluator::score_exact_last`].
    LowerBound(DistanceSummary),
    /// The move does not apply in the current state (mirrors the moves
    /// rejected by [`crate::moves::apply_move`]); skip it.
    Inapplicable,
    /// The move is not expressible as edge deltas (e.g. a whole-strategy
    /// change whose vertex list violates the sorted/no-duplicates contract);
    /// use the fallback path.
    Unsupported,
}

/// A distance-oracle-backed scorer for one agent's candidate moves.
pub struct CostEvaluator {
    kind: OracleKind,
    cache_budget: Option<usize>,
    byte_budget: Option<u64>,
    /// Word-parallel bulk waves on the persistent backend (see
    /// [`DistanceOracle::set_warm_batching`]); applied to both oracles,
    /// including a consent oracle created after the flag is set.
    warm_batching: bool,
    oracle: Box<dyn DistanceOracle>,
    deltas: Vec<EdgeDelta>,
    /// Second oracle of the same backend answering *counterpart* queries
    /// ("what does agent `v` pay after the mover's candidate?") for consent
    /// checks. Kept separate from the main oracle so consent queries never
    /// evict the mover's pinned base vector or its delta-stack prefix. Lazily
    /// created on the first consent-checked scan.
    consent: Option<Box<dyn DistanceOracle>>,
}

impl CostEvaluator {
    /// Creates an evaluator with the given backend for graphs on `n` vertices.
    pub fn new(kind: OracleKind, n: usize) -> Self {
        CostEvaluator::with_budget(kind, n, None)
    }

    /// Like [`CostEvaluator::new`], with an explicit cap on the persistent
    /// backend's per-source distance cache (`None` = the backend default:
    /// a byte budget that is unlimited at `n ≤ 4096`). Ignored by the
    /// stateless backends.
    pub fn with_budget(kind: OracleKind, n: usize, cache_budget: Option<usize>) -> Self {
        CostEvaluator::with_budgets(kind, n, cache_budget, None)
    }

    /// Like [`CostEvaluator::with_budget`], additionally capping the
    /// persistent backend's parked-vector **bytes** (`None` = the backend's
    /// 128 MiB default). Over the byte budget, parked vectors are first
    /// demoted to their ball-sparse representation and then evicted — both
    /// oracles (main and consent) share the same caps. Pure memory knob:
    /// trajectories are bit-identical under any budget.
    pub fn with_budgets(
        kind: OracleKind,
        n: usize,
        cache_budget: Option<usize>,
        byte_budget: Option<u64>,
    ) -> Self {
        CostEvaluator {
            kind,
            cache_budget,
            byte_budget,
            warm_batching: true,
            oracle: make_oracle_with_budgets(kind, n, cache_budget, byte_budget),
            deltas: Vec::with_capacity(4),
            consent: None,
        }
    }

    /// Enables or disables the persistent backend's word-parallel bulk
    /// (re)pin waves on both oracles — a pure performance knob, the scalar
    /// path computes identical distances (see
    /// [`DistanceOracle::set_warm_batching`]).
    pub fn set_warm_batching(&mut self, on: bool) {
        self.warm_batching = on;
        self.oracle.set_warm_batching(on);
        if let Some(consent) = self.consent.as_mut() {
            consent.set_warm_batching(on);
        }
    }

    /// Whether the word-parallel bulk waves are enabled.
    pub fn warm_batching(&self) -> bool {
        self.warm_batching
    }

    /// The configured backend.
    pub fn kind(&self) -> OracleKind {
        self.kind
    }

    /// The configured persistent-cache budget (`None` = backend default).
    pub fn cache_budget(&self) -> Option<usize> {
        self.cache_budget
    }

    /// The configured parked-vector byte budget (`None` = backend default).
    pub fn byte_budget(&self) -> Option<u64> {
        self.byte_budget
    }

    /// Work counters of the underlying oracle.
    pub fn stats(&self) -> OracleStats {
        self.oracle.stats()
    }

    /// Work counters of the consent (counterpart) oracle, if one was created.
    pub fn consent_stats(&self) -> Option<OracleStats> {
        self.consent.as_ref().map(|o| o.stats())
    }

    /// Clears the work counters.
    pub fn reset_stats(&mut self) {
        self.oracle.reset_stats();
    }

    /// Pins the base state `(g, u)` for the following
    /// [`CostEvaluator::try_score`] calls and returns `u`'s base summary.
    pub fn begin_agent(&mut self, g: &OwnedGraph, u: NodeId) -> DistanceSummary {
        self.oracle.begin(g, u)
    }

    /// Scores candidate `mv` of agent `u` against the pinned base state.
    ///
    /// `g` must be the same graph passed to the preceding
    /// [`CostEvaluator::begin_agent`]; it is only consulted for applicability
    /// checks, never mutated.
    pub fn try_score(&mut self, g: &OwnedGraph, u: NodeId, mv: &Move) -> DeltaScore {
        self.try_score_bounded(g, u, mv, false)
    }

    /// Like [`CostEvaluator::try_score`], with an opt-in lower-bound fast
    /// path: with `allow_bound == true` a candidate ending in an insertion on
    /// a removal-only prefix may come back as [`DeltaScore::LowerBound`]
    /// (served from the persistent oracle's per-source caches), which the
    /// caller either prunes or upgrades via
    /// [`CostEvaluator::score_exact_last`]. With `false` every answer is
    /// exact — [`try_score`](CostEvaluator::try_score)'s behaviour. Exact
    /// cache arithmetic (pure purchases) is used either way.
    pub fn try_score_bounded(
        &mut self,
        g: &OwnedGraph,
        u: NodeId,
        mv: &Move,
        allow_bound: bool,
    ) -> DeltaScore {
        self.deltas.clear();
        match *mv {
            Move::Swap { from, to } => {
                if !g.has_edge(u, from) || g.has_edge(u, to) || to == u || to >= g.num_nodes() {
                    return DeltaScore::Inapplicable;
                }
                self.deltas.push(EdgeDelta::Remove { u, v: from });
                self.deltas.push(EdgeDelta::Insert { u, v: to });
            }
            Move::Buy { to } => {
                if to == u || to >= g.num_nodes() || g.has_edge(u, to) {
                    return DeltaScore::Inapplicable;
                }
                self.deltas.push(EdgeDelta::Insert { u, v: to });
            }
            Move::Delete { to } => {
                if !g.owns_edge(u, to) {
                    return DeltaScore::Inapplicable;
                }
                self.deltas.push(EdgeDelta::Remove { u, v: to });
            }
            Move::SetOwned { ref new_owned } => {
                if !strictly_sorted(new_owned) {
                    return DeltaScore::Unsupported;
                }
                if new_owned.iter().any(|&v| v == u || v >= g.num_nodes()) {
                    return DeltaScore::Inapplicable;
                }
                push_set_deltas(g.owned_neighbors(u), new_owned, g, u, &mut self.deltas);
            }
            Move::SetNeighbors { ref new_neighbors } => {
                if !strictly_sorted(new_neighbors) {
                    return DeltaScore::Unsupported;
                }
                if new_neighbors.iter().any(|&v| v == u || v >= g.num_nodes()) {
                    return DeltaScore::Inapplicable;
                }
                push_set_deltas(g.neighbors(u), new_neighbors, g, u, &mut self.deltas);
            }
        }
        // Candidates ending in an insertion incident to the pinned source are
        // first tried against the persistent oracle's cache arithmetic: exact
        // for pure purchases (empty prefix), a prunable lower bound for swaps
        // and other removal-prefixed sequences. Everything else (or a cache
        // miss) takes the repair machinery.
        if let Some((&EdgeDelta::Insert { u: a, v: b }, prefix)) = self.deltas.split_last() {
            if a == u && (allow_bound || prefix.is_empty()) {
                if let Some((summary, exact)) =
                    self.oracle.evaluate_insert_via_cache(g, prefix, a, b)
                {
                    return if exact {
                        DeltaScore::Summary(summary)
                    } else {
                        DeltaScore::LowerBound(summary)
                    };
                }
            }
        }
        let deltas = std::mem::take(&mut self.deltas);
        let summary = self.oracle.evaluate(&deltas);
        self.deltas = deltas;
        DeltaScore::Summary(summary)
    }

    /// Exact summary of the last candidate scored by
    /// [`CostEvaluator::try_score`] — used to upgrade a
    /// [`DeltaScore::LowerBound`] that survived its prune, by running the
    /// buffered delta sequence through the repair machinery.
    pub fn score_exact_last(&mut self) -> DistanceSummary {
        let deltas = std::mem::take(&mut self.deltas);
        let summary = self.oracle.evaluate(&deltas);
        self.deltas = deltas;
        summary
    }

    /// The agent's distance summary served from the main oracle's parked (or
    /// pinned) vector at the current version of `g`, without re-pinning —
    /// `None` when answering would need repair work. See
    /// [`DistanceOracle::cached_summary`].
    pub fn cached_summary(&mut self, g: &OwnedGraph, u: NodeId) -> Option<DistanceSummary> {
        self.oracle.cached_summary(g, u)
    }

    /// Parks the distance vectors of `sources` in the **main** oracle at the
    /// current version of `g`, so a later [`CostEvaluator::begin_agent_diff`]
    /// of the same source can export an exact change diff. Lazy on the
    /// persistent backend: sources whose vector is already parked (or
    /// pinned) at the current version cost nothing, and stale parked vectors
    /// are repaired in place without churning the working pin.
    pub fn pin_sources(&mut self, g: &OwnedGraph, sources: &[NodeId]) {
        self.oracle.pin_sources(g, sources);
    }

    /// Number of the main oracle's parked vectors currently demoted to the
    /// ball-sparse representation — see [`DistanceOracle::sparse_parked`].
    pub fn sparse_parked(&self) -> usize {
        self.oracle.sparse_parked()
    }

    /// The fused post-move pass: replays the move endpoints' vectors on the
    /// main oracle collecting the exact invalidation union into `changed`,
    /// then warms every other parked vector (and the consent oracle) in the
    /// same sweep. `false` = some endpoint window was unreplayable; the
    /// caller must invalidate conservatively and warm with an all-dirty set.
    /// See [`DistanceOracle::warm_after_move`].
    pub fn warm_after_move(
        &mut self,
        g: &OwnedGraph,
        seeds: &[NodeId],
        changed: &mut Vec<NodeId>,
    ) -> bool {
        let ok = self.oracle.warm_after_move(g, seeds, changed);
        if ok {
            if let Some(consent) = self.consent.as_mut() {
                let _sp = ncg_trace::span(ncg_trace::Phase::Consent);
                consent.warm_sources(g, changed);
            }
        }
        ok
    }

    /// Bulk-warms the parked per-source vectors of the main oracle (and the
    /// consent oracle, when one exists) to the current version of `g` — see
    /// [`DistanceOracle::warm_sources`] for the contract on `dirty` (every
    /// source whose distance vector may have changed since the previous
    /// warming call). The dirty engine calls this once per committed move
    /// with the move's exact change union, which is what keeps the
    /// cache-arithmetic scoring path lit under sparse dirty-agent re-pins.
    pub fn warm_sources(&mut self, g: &OwnedGraph, dirty: &[NodeId]) {
        self.oracle.warm_sources(g, dirty);
        if let Some(consent) = self.consent.as_mut() {
            let _sp = ncg_trace::span(ncg_trace::Phase::Consent);
            consent.warm_sources(g, dirty);
        }
    }

    /// Warms the consent oracle's per-source cache for `sources` at the
    /// current version of `g`, so the counterpart queries of the following
    /// scans are served by journal replay instead of full BFS re-pins.
    pub fn pin_consent_sources(&mut self, g: &OwnedGraph, sources: &[NodeId]) {
        let _sp = ncg_trace::span(ncg_trace::Phase::Consent);
        let (kind, budget, bytes, n, wb) = (
            self.kind,
            self.cache_budget,
            self.byte_budget,
            g.num_nodes(),
            self.warm_batching,
        );
        self.consent
            .get_or_insert_with(|| {
                let mut oracle = make_oracle_with_budgets(kind, n, budget, bytes);
                oracle.set_warm_batching(wb);
                oracle
            })
            .pin_sources(g, sources);
    }

    /// Counterpart what-if for the **last scored candidate**: re-pins agent
    /// `v` on the consent oracle and scores the candidate's delta sequence
    /// from `v`'s point of view, returning `v`'s `(base, post-move)` distance
    /// summaries. With the persistent backend both halves are `O(changes)`
    /// journal replays — no apply/undo, no full BFS.
    ///
    /// Must follow a [`CostEvaluator::try_score`] that returned
    /// [`DeltaScore::Summary`]; the delta sequence of that candidate is still
    /// buffered and is what `v` is scored against.
    pub fn score_counterpart(
        &mut self,
        g: &OwnedGraph,
        v: NodeId,
    ) -> (DistanceSummary, DistanceSummary) {
        let _sp = ncg_trace::span(ncg_trace::Phase::Consent);
        let (kind, budget, bytes, n, wb) = (
            self.kind,
            self.cache_budget,
            self.byte_budget,
            g.num_nodes(),
            self.warm_batching,
        );
        let consent = self.consent.get_or_insert_with(|| {
            let mut oracle = make_oracle_with_budgets(kind, n, budget, bytes);
            oracle.set_warm_batching(wb);
            oracle
        });
        consent.evaluate_for_source(g, v, &self.deltas)
    }

    /// Degree change of vertex `v` under the last scored candidate's delta
    /// sequence (inserts touching `v` minus removes touching `v`).
    pub fn last_delta_degree(&self, vertex: NodeId) -> isize {
        let mut delta = 0isize;
        for d in &self.deltas {
            let (a, b, sign) = match *d {
                EdgeDelta::Insert { u, v } => (u, v, 1),
                EdgeDelta::Remove { u, v } => (u, v, -1),
            };
            if a == vertex || b == vertex {
                delta += sign;
            }
        }
        delta
    }

    /// Pins `(g, src)` like [`CostEvaluator::begin_agent`] and additionally
    /// reports the exact vertices whose base distance changed since the last
    /// pin of the same source, when the backend can tell (persistent oracle
    /// served by journal replay). `None` means the caller must treat every
    /// vertex as potentially changed.
    pub fn begin_agent_diff(
        &mut self,
        g: &OwnedGraph,
        src: NodeId,
        changed: &mut Vec<NodeId>,
    ) -> (DistanceSummary, bool) {
        let summary = self.oracle.begin(g, src);
        match self.oracle.changed_since_begin() {
            Some(diff) => {
                changed.clear();
                changed.extend(diff.iter().map(|&x| x as NodeId));
                (summary, true)
            }
            None => (summary, false),
        }
    }
}

/// `true` iff the slice is strictly ascending (the documented contract of the
/// whole-strategy moves; unsorted inputs take the scratch fallback instead).
fn strictly_sorted(v: &[NodeId]) -> bool {
    v.windows(2).all(|w| w[0] < w[1])
}

/// Emits the delta sequence turning agent `u`'s incident edge set from `old`
/// into `new` (both strictly ascending), in **descending vertex order**.
///
/// The descending order is what makes Gray-code strategy enumeration fast:
/// each pool element contributes at most one delta whose presence depends
/// only on that element's membership bit, so consecutive masks that toggle a
/// low element share the entire high-element delta prefix on the oracle's
/// delta stack.
///
/// Inserts of edges that already exist (foreign-owned edges in a `SetOwned`
/// strategy) are skipped — buying them transfers no structure, exactly as
/// [`crate::moves::apply_move`] treats them.
fn push_set_deltas(
    old: &[NodeId],
    new: &[NodeId],
    g: &OwnedGraph,
    u: NodeId,
    out: &mut Vec<EdgeDelta>,
) {
    let (mut i, mut j) = (old.len(), new.len());
    while i > 0 || j > 0 {
        if j == 0 || (i > 0 && old[i - 1] > new[j - 1]) {
            i -= 1;
            out.push(EdgeDelta::Remove { u, v: old[i] });
        } else if i == 0 || new[j - 1] > old[i - 1] {
            j -= 1;
            let v = new[j];
            if !g.has_edge(u, v) {
                out.push(EdgeDelta::Insert { u, v });
            }
        } else {
            // Present on both sides: the edge is kept.
            i -= 1;
            j -= 1;
        }
    }
}

impl std::fmt::Debug for CostEvaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CostEvaluator")
            .field("kind", &self.kind)
            .finish_non_exhaustive()
    }
}

/// Edge-cost of agent `u` *after* performing the move `mv`, reconstructed
/// without mutating the graph.
///
/// Covers every move kind [`CostEvaluator::try_score`] supports, including
/// the whole-strategy changes: an edge named in a `SetOwned` / `SetNeighbors`
/// strategy that already exists as a *foreign-owned* edge stays with its
/// owner, so the mover is not charged for it (mirroring
/// [`crate::moves::apply_move`]).
pub fn edge_cost_after(
    g: &OwnedGraph,
    u: NodeId,
    mv: &Move,
    mode: EdgeCostMode,
    alpha: f64,
) -> f64 {
    // Edges of `new` that agent `u` pays for afterwards: kept own edges plus
    // genuinely new ones (foreign-owned existing edges stay foreign).
    let owned_after = |new: &[NodeId]| {
        new.iter()
            .filter(|&&v| g.owns_edge(u, v) || !g.has_edge(u, v))
            .count() as isize
    };
    match mode {
        EdgeCostMode::Free => 0.0,
        EdgeCostMode::OwnerPays => {
            let owned = match *mv {
                Move::Buy { .. } => g.owned_degree(u) as isize + 1,
                Move::Delete { .. } => g.owned_degree(u) as isize - 1,
                // Swapping an owned edge keeps the owned degree; swapping a
                // foreign-owned edge (symmetric Swap Game) transfers the
                // replacement edge to the mover.
                Move::Swap { from, .. } => {
                    g.owned_degree(u) as isize + isize::from(!g.owns_edge(u, from))
                }
                Move::SetOwned { ref new_owned } => owned_after(new_owned),
                Move::SetNeighbors { ref new_neighbors } => owned_after(new_neighbors),
            };
            alpha * owned.max(0) as f64
        }
        EdgeCostMode::EqualSplit => {
            let degree = match *mv {
                Move::Buy { .. } => g.degree(u) as isize + 1,
                Move::Delete { .. } => g.degree(u) as isize - 1,
                Move::Swap { .. } => g.degree(u) as isize,
                // The neighbour set is replaced wholesale.
                Move::SetNeighbors { ref new_neighbors } => new_neighbors.len() as isize,
                // Own edges not kept disappear, absent strategy edges appear;
                // foreign edges are untouched either way.
                Move::SetOwned { ref new_owned } => {
                    let inserted =
                        new_owned.iter().filter(|&&v| !g.has_edge(u, v)).count() as isize;
                    let removed = g
                        .owned_neighbors(u)
                        .iter()
                        .filter(|&v| new_owned.binary_search(v).is_err())
                        .count() as isize;
                    g.degree(u) as isize + inserted - removed
                }
            };
            alpha / 2.0 * degree.max(0) as f64
        }
    }
}

/// Edge-cost of a *consent party* `v` (an agent other than the mover) after
/// the mover's candidate, reconstructed without mutating the graph.
///
/// `delta_deg` is `v`'s degree change under the candidate's delta sequence
/// ([`CostEvaluator::last_delta_degree`]). Every edge the mover creates is
/// owned (paid) by the mover, so under [`EdgeCostMode::OwnerPays`] a party's
/// bill never moves; under [`EdgeCostMode::EqualSplit`] it tracks the degree.
pub fn party_edge_cost_after(
    g: &OwnedGraph,
    v: NodeId,
    mode: EdgeCostMode,
    alpha: f64,
    delta_deg: isize,
) -> f64 {
    match mode {
        EdgeCostMode::Free => 0.0,
        EdgeCostMode::OwnerPays => alpha * g.owned_degree(v) as f64,
        EdgeCostMode::EqualSplit => alpha / 2.0 * (g.degree(v) as isize + delta_deg).max(0) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::agent_cost_total;
    use crate::cost::DistanceMetric;
    use crate::moves::apply_move;
    use ncg_graph::{generators, BfsBuffer, OwnedGraph};

    /// Delta scoring must agree exactly with apply + BFS for every supported
    /// move kind and both backends.
    #[test]
    fn delta_scores_match_apply_and_bfs() {
        let g = {
            let mut g = generators::path(9);
            g.add_edge(0, 5);
            g.add_edge(2, 7);
            g
        };
        let moves = [
            Move::Swap { from: 1, to: 4 },
            Move::Buy { to: 8 },
            Move::Delete { to: 1 },
            Move::Delete { to: 5 },
            Move::SetOwned { new_owned: vec![] },
            Move::SetOwned {
                new_owned: vec![3, 6],
            },
            Move::SetOwned {
                new_owned: vec![1, 2, 8],
            },
            Move::SetNeighbors {
                new_neighbors: vec![4],
            },
            Move::SetNeighbors {
                new_neighbors: vec![1, 5, 7],
            },
        ];
        for kind in [
            OracleKind::FullBfs,
            OracleKind::Incremental,
            OracleKind::Persistent,
        ] {
            for u in 0..g.num_nodes() {
                let mut evaluator = CostEvaluator::new(kind, g.num_nodes());
                evaluator.begin_agent(&g, u);
                for mv in &moves {
                    let score = evaluator.try_score(&g, u, mv);
                    let mut h = g.clone();
                    match apply_move(&mut h, u, mv) {
                        None => {
                            assert_eq!(
                                score,
                                DeltaScore::Inapplicable,
                                "{} agent {u} move {mv:?}",
                                kind.label()
                            );
                        }
                        Some(_) => {
                            let mut buf = BfsBuffer::new(h.num_nodes());
                            let expect = buf.summary(&h, u);
                            assert_eq!(
                                score,
                                DeltaScore::Summary(expect),
                                "{} agent {u} move {mv:?}",
                                kind.label()
                            );
                            // Total cost agrees too (edge + distance).
                            let metric = DistanceMetric::Sum;
                            let mode = EdgeCostMode::OwnerPays;
                            let alpha = 1.75;
                            let measured = agent_cost_total(&h, u, metric, alpha, mode, &mut buf);
                            let DeltaScore::Summary(s) = score else {
                                unreachable!()
                            };
                            let scored =
                                edge_cost_after(&g, u, mv, mode, alpha) + metric.distance_cost(&s);
                            // Exact equality for infinite costs (disconnecting
                            // strategies), tolerance for the finite ones.
                            assert!(
                                measured == scored || (measured - scored).abs() < 1e-12,
                                "{} agent {u} move {mv:?}: {measured} vs {scored}",
                                kind.label()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn whole_strategy_moves_score_through_deltas() {
        // A SetOwned strategy naming a foreign-owned edge must neither insert
        // nor charge for it; the distance summary matches the applied state.
        let g = OwnedGraph::from_owned_edges(5, &[(0, 1), (0, 2), (3, 0), (3, 4)]);
        let mut evaluator = CostEvaluator::new(OracleKind::Incremental, 5);
        evaluator.begin_agent(&g, 0);
        let mv = Move::SetOwned {
            new_owned: vec![3, 4],
        };
        let mut h = g.clone();
        apply_move(&mut h, 0, &mv).expect("strategy applies");
        let mut buf = BfsBuffer::new(5);
        assert_eq!(
            evaluator.try_score(&g, 0, &mv),
            DeltaScore::Summary(buf.summary(&h, 0))
        );
        // {0,3} stays owned (and paid) by 3: agent 0 only pays for {0,4}.
        assert_eq!(
            edge_cost_after(&g, 0, &mv, EdgeCostMode::OwnerPays, 2.0),
            2.0
        );
        assert_eq!(h.owned_degree(0), 1);
    }

    #[test]
    fn unsorted_strategy_lists_take_the_fallback() {
        let g = generators::path(4);
        let mut evaluator = CostEvaluator::new(OracleKind::Incremental, 4);
        evaluator.begin_agent(&g, 0);
        assert_eq!(
            evaluator.try_score(
                &g,
                0,
                &Move::SetOwned {
                    new_owned: vec![3, 2]
                }
            ),
            DeltaScore::Unsupported
        );
        assert_eq!(
            evaluator.try_score(
                &g,
                0,
                &Move::SetNeighbors {
                    new_neighbors: vec![2, 2]
                }
            ),
            DeltaScore::Unsupported
        );
    }

    #[test]
    fn set_deltas_are_emitted_in_descending_vertex_order() {
        // Descending order is the contract that makes Gray-code enumeration
        // share delta-stack prefixes: the toggled (low) pool element's delta
        // sits at the end of the sequence.
        let g = OwnedGraph::from_owned_edges(6, &[(0, 1), (0, 4), (2, 0)]);
        let mut out = Vec::new();
        push_set_deltas(g.owned_neighbors(0), &[3, 4, 5], &g, 0, &mut out);
        assert_eq!(
            out,
            vec![
                EdgeDelta::Insert { u: 0, v: 5 },
                EdgeDelta::Insert { u: 0, v: 3 },
                EdgeDelta::Remove { u: 0, v: 1 },
            ]
        );
        // Foreign-owned edge {0,2} named in the strategy: no delta.
        out.clear();
        push_set_deltas(g.owned_neighbors(0), &[1, 2, 4], &g, 0, &mut out);
        assert!(out.is_empty(), "keeping everything is a structural no-op");
    }

    #[test]
    fn pinned_consent_sources_are_served_by_replay() {
        // Warming the consent oracle parks the parties' vectors at the
        // current version: counterpart queries after later graph changes are
        // then journal replays, not full BFS re-pins.
        let mut g = generators::path(10);
        let mut evaluator = CostEvaluator::new(OracleKind::Persistent, 10);
        evaluator.begin_agent(&g, 0);
        evaluator.pin_consent_sources(&g, &[5, 9]);
        let warm_bfs = evaluator
            .consent_stats()
            .expect("consent oracle")
            .full_bfs_runs;
        g.add_edge(0, 7);
        evaluator.begin_agent(&g, 0);
        let mv = Move::SetNeighbors {
            new_neighbors: vec![1, 5, 9],
        };
        assert!(matches!(
            evaluator.try_score(&g, 0, &mv),
            DeltaScore::Summary(_)
        ));
        let mut h = g.clone();
        apply_move(&mut h, 0, &mv).expect("applies");
        let mut buf = BfsBuffer::new(10);
        for party in [5usize, 9] {
            let (base, modified) = evaluator.score_counterpart(&g, party);
            assert_eq!(base, buf.summary(&g, party), "party {party} base");
            assert_eq!(modified, buf.summary(&h, party), "party {party} post-move");
        }
        assert_eq!(
            evaluator
                .consent_stats()
                .expect("consent oracle")
                .full_bfs_runs,
            warm_bfs,
            "pinned counterpart queries must replay, not re-run BFS"
        );
    }

    #[test]
    fn edge_cost_arithmetic() {
        let g = generators::path(4); // 0 owns {0,1}; 1 owns {1,2}; 2 owns {2,3}
        let alpha = 2.0;
        // Buy adds an owned edge.
        assert_eq!(
            edge_cost_after(&g, 0, &Move::Buy { to: 2 }, EdgeCostMode::OwnerPays, alpha),
            4.0
        );
        // Delete removes one.
        assert_eq!(
            edge_cost_after(
                &g,
                0,
                &Move::Delete { to: 1 },
                EdgeCostMode::OwnerPays,
                alpha
            ),
            0.0
        );
        // Owned swap keeps the owned degree; foreign swap adopts the edge.
        assert_eq!(
            edge_cost_after(
                &g,
                0,
                &Move::Swap { from: 1, to: 3 },
                EdgeCostMode::OwnerPays,
                alpha
            ),
            2.0
        );
        assert_eq!(
            edge_cost_after(
                &g,
                1,
                &Move::Swap { from: 0, to: 3 },
                EdgeCostMode::OwnerPays,
                alpha
            ),
            4.0,
            "vertex 1 does not own {{0,1}} and adopts the replacement edge"
        );
        // Equal-split counts incident edges.
        assert_eq!(
            edge_cost_after(&g, 1, &Move::Buy { to: 3 }, EdgeCostMode::EqualSplit, alpha),
            3.0
        );
        assert_eq!(
            edge_cost_after(&g, 0, &Move::Buy { to: 2 }, EdgeCostMode::Free, alpha),
            0.0
        );
    }
}
