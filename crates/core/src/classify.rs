//! Bounded exploration of the improving-response state graph.
//!
//! For small instances we can enumerate every state reachable from an initial
//! network by improving (or best-response) moves. The resulting directed graph
//! certifies dynamic properties of the game on that instance:
//!
//! * a reachable **stable state** exists / does not exist,
//! * a directed **cycle** among improving responses exists (⇒ not a FIPG),
//! * every reachable state can still reach a stable state (the weak-acyclicity
//!   property, restricted to the reachable region),
//! * if the exploration is complete and **no** stable state is reachable, the game
//!   is *not weakly acyclic* from this initial network (Cor. 3.6, 4.2, Thm 5.1).

use crate::dynamics::ResponseMode;
use crate::game::{Game, Workspace};
use crate::moves::apply_move;
use ncg_graph::{canonical_state_key, canonical_unlabeled_key, OwnedGraph, StateKey};
use std::collections::HashMap;

/// Limits and options for [`explore`].
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Maximum number of distinct states to expand before giving up.
    pub max_states: usize,
    /// Explore all improving moves or only best responses.
    pub response_mode: ResponseMode,
    /// Whether ownership is part of the state identity (should match the game).
    pub ownership_in_state: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_states: 50_000,
            response_mode: ResponseMode::BestResponse,
            ownership_in_state: true,
        }
    }
}

impl ExploreConfig {
    /// Explore every improving move instead of only best responses.
    pub fn better_responses(mut self) -> Self {
        self.response_mode = ResponseMode::FirstImproving;
        self
    }

    /// Limit the number of expanded states.
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }
}

/// Result of a state-space exploration.
#[derive(Debug, Clone)]
pub struct ExploreResult {
    /// True if the reachable state space was exhausted within the limit.
    pub complete: bool,
    /// Number of distinct states discovered.
    pub num_states: usize,
    /// Indices (into `states`) of stable states.
    pub stable_states: Vec<usize>,
    /// All discovered states.
    pub states: Vec<OwnedGraph>,
    /// Transition lists: `transitions[i]` = states reachable from `states[i]` in one move.
    pub transitions: Vec<Vec<usize>>,
}

impl ExploreResult {
    /// True if some reachable state is stable.
    pub fn stable_state_reachable(&self) -> bool {
        !self.stable_states.is_empty()
    }

    /// True if the explored transition graph contains a directed cycle
    /// (i.e. a better/best-response cycle is reachable). Only meaningful when the
    /// exploration is complete; on truncated explorations the answer is a lower bound.
    pub fn has_cycle(&self) -> bool {
        // Iterative DFS with colors.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let n = self.states.len();
        let mut color = vec![Color::White; n];
        for start in 0..n {
            if color[start] != Color::White {
                continue;
            }
            // stack of (node, next-child-index)
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            color[start] = Color::Gray;
            while let Some(&mut (u, ref mut idx)) = stack.last_mut() {
                if *idx < self.transitions[u].len() {
                    let v = self.transitions[u][*idx];
                    *idx += 1;
                    match color[v] {
                        Color::Gray => return true,
                        Color::White => {
                            color[v] = Color::Gray;
                            stack.push((v, 0));
                        }
                        Color::Black => {}
                    }
                } else {
                    color[u] = Color::Black;
                    stack.pop();
                }
            }
        }
        false
    }

    /// True if *every* explored state can reach a stable state. Together with
    /// `complete == true` this certifies weak acyclicity from the initial state
    /// (under the explored response mode).
    pub fn every_state_reaches_stable(&self) -> bool {
        if self.stable_states.is_empty() {
            return self.states.is_empty();
        }
        // Reverse reachability from the stable states.
        let n = self.states.len();
        let mut reverse: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (u, outs) in self.transitions.iter().enumerate() {
            for &v in outs {
                reverse[v].push(u);
            }
        }
        let mut can_reach = vec![false; n];
        let mut queue: Vec<usize> = self.stable_states.clone();
        for &s in &queue {
            can_reach[s] = true;
        }
        while let Some(u) = queue.pop() {
            for &p in &reverse[u] {
                if !can_reach[p] {
                    can_reach[p] = true;
                    queue.push(p);
                }
            }
        }
        can_reach.into_iter().all(|b| b)
    }

    /// Certifies "not weakly acyclic from the initial state": the exploration is
    /// complete and no stable state is reachable by any sequence of (best/improving)
    /// responses.
    pub fn certifies_not_weakly_acyclic(&self) -> bool {
        self.complete && !self.stable_state_reachable()
    }
}

/// Explores the state graph reachable from `initial` under `game`.
pub fn explore<G: Game + ?Sized>(
    game: &G,
    initial: &OwnedGraph,
    config: &ExploreConfig,
) -> ExploreResult {
    let key_of = |g: &OwnedGraph| -> StateKey {
        if config.ownership_in_state {
            canonical_state_key(g)
        } else {
            canonical_unlabeled_key(g)
        }
    };

    let mut ws = Workspace::new(initial.num_nodes());
    let mut index: HashMap<StateKey, usize> = HashMap::new();
    let mut states: Vec<OwnedGraph> = Vec::new();
    let mut transitions: Vec<Vec<usize>> = Vec::new();
    let mut stable_states: Vec<usize> = Vec::new();

    index.insert(key_of(initial), 0);
    states.push(initial.clone());
    transitions.push(Vec::new());

    let mut frontier = 0usize;
    let mut complete = true;
    while frontier < states.len() {
        if states.len() > config.max_states {
            complete = false;
            break;
        }
        let g = states[frontier].clone();
        let mut outs: Vec<usize> = Vec::new();
        let mut any_move = false;
        for agent in 0..g.num_nodes() {
            let moves = match config.response_mode {
                ResponseMode::BestResponse => game.best_responses(&g, agent, &mut ws),
                ResponseMode::FirstImproving => game.improving_moves(&g, agent, &mut ws),
            };
            for scored in moves {
                any_move = true;
                let mut succ = g.clone();
                let applied = apply_move(&mut succ, agent, &scored.mv);
                debug_assert!(applied.is_some());
                let key = key_of(&succ);
                let next_index = *index.entry(key).or_insert_with(|| {
                    states.push(succ.clone());
                    transitions.push(Vec::new());
                    states.len() - 1
                });
                if !outs.contains(&next_index) {
                    outs.push(next_index);
                }
            }
        }
        if !any_move {
            stable_states.push(frontier);
        }
        transitions[frontier] = outs;
        frontier += 1;
    }
    // If we broke out early, the transition lists beyond `frontier` are incomplete.
    let num_states = states.len();
    ExploreResult {
        complete,
        num_states,
        stable_states,
        states,
        transitions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::{AsymSwapGame, SwapGame};
    use ncg_graph::generators;

    #[test]
    fn star_exploration_is_a_single_stable_state() {
        let game = SwapGame::sum();
        let g = generators::star(6);
        let res = explore(&game, &g, &ExploreConfig::default());
        assert!(res.complete);
        assert_eq!(res.num_states, 1);
        assert_eq!(res.stable_states, vec![0]);
        assert!(!res.has_cycle());
        assert!(res.every_state_reaches_stable());
        assert!(!res.certifies_not_weakly_acyclic());
    }

    #[test]
    fn small_tree_exploration_has_no_cycles() {
        // SUM-ASG on trees is a potential game: the explored best-response graph is acyclic.
        let game = AsymSwapGame::sum();
        let g = generators::path(5);
        let res = explore(&game, &g, &ExploreConfig::default());
        assert!(res.complete);
        assert!(res.num_states > 1);
        assert!(!res.has_cycle());
        assert!(res.stable_state_reachable());
        assert!(res.every_state_reaches_stable());
    }

    #[test]
    fn truncated_exploration_reports_incomplete() {
        let game = SwapGame::sum();
        let g = generators::path(7);
        let res = explore(&game, &g, &ExploreConfig::default().with_max_states(2));
        assert!(!res.complete);
        assert!(
            !res.certifies_not_weakly_acyclic(),
            "incomplete exploration certifies nothing"
        );
    }

    #[test]
    fn better_response_exploration_includes_best_responses() {
        let game = AsymSwapGame::sum();
        let g = generators::path(4);
        let best = explore(&game, &g, &ExploreConfig::default());
        let better = explore(&game, &g, &ExploreConfig::default().better_responses());
        assert!(better.num_states >= best.num_states);
    }
}
