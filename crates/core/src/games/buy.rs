//! The original Network Creation Game of Fabrikant et al. (PODC'03), here called the
//! Buy Game.
//!
//! An admissible strategy change of agent `u` replaces her owned-neighbour set by an
//! *arbitrary* subset of `V \ {u}` (any combination of buying, deleting and swapping
//! own edges). Computing a best response is NP-hard in general; this implementation
//! enumerates all strategies and is therefore only suitable for the small
//! hand-constructed instances of the paper (≲ 20 relevant vertices). The empirical
//! study uses the Greedy Buy Game instead, exactly as in the paper.

use crate::cost::{DistanceMetric, EdgeCostMode};
use crate::game::Game;
use crate::moves::Move;
use ncg_graph::{HostGraph, NodeId, OwnedGraph};

/// Maximum number of candidate strategy vertices before enumeration is refused.
const MAX_STRATEGY_POOL: usize = 20;

/// The Buy Game (BG) in SUM or MAX flavour with edge price `alpha`.
#[derive(Debug, Clone)]
pub struct BuyGame {
    metric: DistanceMetric,
    alpha: f64,
    host: HostGraph,
}

impl BuyGame {
    /// Buy game with the given metric and edge price on the complete host graph.
    pub fn new(metric: DistanceMetric, alpha: f64) -> Self {
        assert!(alpha > 0.0, "the edge price α must be positive");
        BuyGame {
            metric,
            alpha,
            host: HostGraph::Complete,
        }
    }

    /// The SUM-BG.
    pub fn sum(alpha: f64) -> Self {
        Self::new(DistanceMetric::Sum, alpha)
    }

    /// The MAX-BG.
    pub fn max(alpha: f64) -> Self {
        Self::new(DistanceMetric::Max, alpha)
    }

    /// Restricts edge creation to a host graph (Cor. 4.2).
    pub fn with_host(mut self, host: HostGraph) -> Self {
        self.host = host;
        self
    }

    /// The pool of vertices that can appear in a useful strategy of `u`:
    /// currently owned neighbours plus non-adjacent, host-allowed vertices.
    /// Vertices adjacent via a *foreign-owned* edge are excluded — paying for an
    /// edge the other endpoint already maintains is strictly dominated.
    fn strategy_pool(&self, g: &OwnedGraph, u: NodeId) -> Vec<NodeId> {
        (0..g.num_nodes())
            .filter(|&v| {
                v != u
                    && if g.has_edge(u, v) {
                        g.owns_edge(u, v)
                    } else {
                        self.host.allows(u, v)
                    }
            })
            .collect()
    }
}

impl Game for BuyGame {
    fn name(&self) -> String {
        format!("{}-BG", self.metric.label())
    }

    fn metric(&self) -> DistanceMetric {
        self.metric
    }

    fn alpha(&self) -> f64 {
        self.alpha
    }

    fn edge_cost_mode(&self) -> EdgeCostMode {
        EdgeCostMode::OwnerPays
    }

    fn host(&self) -> &HostGraph {
        &self.host
    }

    fn candidate_moves(&self, g: &OwnedGraph, u: NodeId, out: &mut Vec<Move>) {
        let pool = self.strategy_pool(g, u);
        assert!(
            pool.len() <= MAX_STRATEGY_POOL,
            "BuyGame::candidate_moves enumerates 2^|pool| strategies; |pool| = {} exceeds {}. \
             Use GreedyBuyGame for large instances (as the paper does).",
            pool.len(),
            MAX_STRATEGY_POOL
        );
        let current: Vec<NodeId> = g.owned_neighbors(u).to_vec();
        let k = pool.len();
        // Reflected-Gray-code order: consecutive masks toggle exactly one
        // (usually low) pool element. Combined with the evaluator's
        // descending-vertex delta sequences this lets the incremental oracle
        // reuse the shared high-element delta prefix between consecutive
        // candidates, so the exponential enumeration pays each prefix repair
        // once instead of once per subset.
        for i in 0u64..(1u64 << k) {
            let mask = i ^ (i >> 1);
            let new_owned: Vec<NodeId> = (0..k)
                .filter(|&b| mask & (1 << b) != 0)
                .map(|b| pool[b])
                .collect();
            if new_owned == current {
                continue; // the unchanged strategy is never an improving move
            }
            out.push(Move::SetOwned { new_owned });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::Workspace;
    use ncg_graph::generators;

    #[test]
    fn names() {
        assert_eq!(BuyGame::sum(1.0).name(), "SUM-BG");
        assert_eq!(BuyGame::max(1.0).name(), "MAX-BG");
    }

    #[test]
    fn strategy_pool_excludes_foreign_owned_neighbors() {
        // 1 owns {1,0}: vertex 0's pool must not contain 1.
        let g = OwnedGraph::from_owned_edges(4, &[(1, 0), (0, 2)]);
        let game = BuyGame::sum(1.0);
        assert_eq!(game.strategy_pool(&g, 0), vec![2, 3]);
    }

    #[test]
    fn candidate_count_is_exponential_in_pool() {
        let g = generators::path(4);
        let game = BuyGame::sum(1.0);
        let mut out = Vec::new();
        game.candidate_moves(&g, 0, &mut out);
        // Pool of vertex 0 = {1, 2, 3} (owns {0,1}); 2^3 subsets minus the current one.
        assert_eq!(out.len(), 7);
    }

    #[test]
    fn best_response_on_path_matches_exhaustive_expectation() {
        // P4 = 0->1->2->3 with α slightly below 1: buying shortcuts pays off for 0.
        let g = generators::path(4);
        let game = BuyGame::sum(0.9);
        let mut ws = Workspace::new(4);
        let br = game.best_response(&g, 0, &mut ws).unwrap();
        // Cheapest α: connect to everybody, distance-cost 3, edge cost 2.7 => 5.7
        // versus keeping {1} (cost 0.9 + 6 = 6.9) or {2} (0.9 + 1+2+1? ...).
        assert_eq!(
            br.mv,
            Move::SetOwned {
                new_owned: vec![1, 2, 3]
            }
        );
        assert!((br.new_cost - (3.0 * 0.9 + 3.0)).abs() < 1e-9);
    }

    #[test]
    fn greedy_moves_are_a_subset_of_buy_moves() {
        use crate::games::GreedyBuyGame;
        // Every improving greedy move must be matched or beaten by the BG best response.
        let g = generators::path(5);
        let alpha = 1.2;
        let bg = BuyGame::sum(alpha);
        let gbg = GreedyBuyGame::sum(alpha);
        let mut ws = Workspace::new(5);
        for u in 0..5 {
            let greedy_best = gbg.best_response(&g, u, &mut ws).map(|s| s.new_cost);
            let full_best = bg.best_response(&g, u, &mut ws).map(|s| s.new_cost);
            match (greedy_best, full_best) {
                (Some(gc), Some(fc)) => assert!(fc <= gc + 1e-12, "agent {u}: {fc} vs {gc}"),
                (Some(_), None) => panic!("agent {u}: greedy improves but BG does not"),
                _ => {}
            }
        }
    }

    #[test]
    fn deleting_everything_is_a_candidate_but_never_improving_when_bridge() {
        let g = generators::path(3);
        let game = BuyGame::sum(5.0);
        let mut ws = Workspace::new(3);
        let improving = game.improving_moves(&g, 1, &mut ws);
        assert!(improving
            .iter()
            .all(|s| !matches!(&s.mv, Move::SetOwned { new_owned } if new_owned.is_empty())));
    }
}
