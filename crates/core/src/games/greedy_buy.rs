//! The Greedy Buy Game of Lenzner (WINE'12).
//!
//! In each step an agent may buy one new edge, delete one owned edge, or swap one
//! owned edge. The edge price α is paid per owned edge. Best responses are
//! computable in polynomial time (in contrast to the full Buy Game), which is why
//! the paper's empirical study (§4.2) simulates this variant.

use crate::cost::{DistanceMetric, EdgeCostMode};
use crate::game::{push_swap_targets, Game};
use crate::moves::Move;
use ncg_graph::{HostGraph, NodeId, OwnedGraph};

/// The Greedy Buy Game (GBG) in SUM or MAX flavour with edge price `alpha`.
#[derive(Debug, Clone)]
pub struct GreedyBuyGame {
    metric: DistanceMetric,
    alpha: f64,
    host: HostGraph,
}

impl GreedyBuyGame {
    /// Greedy buy game with the given metric and edge price on the complete host.
    pub fn new(metric: DistanceMetric, alpha: f64) -> Self {
        assert!(alpha > 0.0, "the edge price α must be positive");
        GreedyBuyGame {
            metric,
            alpha,
            host: HostGraph::Complete,
        }
    }

    /// The SUM-GBG.
    pub fn sum(alpha: f64) -> Self {
        Self::new(DistanceMetric::Sum, alpha)
    }

    /// The MAX-GBG.
    pub fn max(alpha: f64) -> Self {
        Self::new(DistanceMetric::Max, alpha)
    }

    /// Restricts edge creation to a host graph (Cor. 4.2).
    pub fn with_host(mut self, host: HostGraph) -> Self {
        self.host = host;
        self
    }
}

impl Game for GreedyBuyGame {
    fn name(&self) -> String {
        format!("{}-GBG", self.metric.label())
    }

    fn metric(&self) -> DistanceMetric {
        self.metric
    }

    fn alpha(&self) -> f64 {
        self.alpha
    }

    fn edge_cost_mode(&self) -> EdgeCostMode {
        EdgeCostMode::OwnerPays
    }

    fn host(&self) -> &HostGraph {
        &self.host
    }

    fn candidate_moves(&self, g: &OwnedGraph, u: NodeId, out: &mut Vec<Move>) {
        // Deletions of owned edges.
        for &to in g.owned_neighbors(u) {
            out.push(Move::Delete { to });
        }
        // Swaps of owned edges.
        for &from in g.owned_neighbors(u) {
            push_swap_targets(g, &self.host, u, from, out);
        }
        // Purchases of new edges.
        for to in 0..g.num_nodes() {
            if to != u && !g.has_edge(u, to) && self.host.allows(u, to) {
                out.push(Move::Buy { to });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::Workspace;
    use ncg_graph::generators;

    #[test]
    fn names_and_alpha() {
        assert_eq!(GreedyBuyGame::sum(1.0).name(), "SUM-GBG");
        assert_eq!(GreedyBuyGame::max(2.0).name(), "MAX-GBG");
        assert_eq!(GreedyBuyGame::sum(3.5).alpha(), 3.5);
    }

    #[test]
    #[should_panic]
    fn zero_alpha_is_rejected() {
        let _ = GreedyBuyGame::sum(0.0);
    }

    #[test]
    fn candidate_move_kinds() {
        let g = generators::path(4);
        let game = GreedyBuyGame::sum(1.0);
        let mut out = Vec::new();
        game.candidate_moves(&g, 0, &mut out);
        // Vertex 0 owns {0,1}: it may delete it, swap it to 2 or 3, or buy {0,2}, {0,3}.
        assert!(out.contains(&Move::Delete { to: 1 }));
        assert!(out.contains(&Move::Swap { from: 1, to: 2 }));
        assert!(out.contains(&Move::Swap { from: 1, to: 3 }));
        assert!(out.contains(&Move::Buy { to: 2 }));
        assert!(out.contains(&Move::Buy { to: 3 }));
        assert_eq!(out.len(), 5);
        // Vertex 3 owns nothing: it may only buy.
        out.clear();
        game.candidate_moves(&g, 3, &mut out);
        assert_eq!(out, vec![Move::Buy { to: 0 }, Move::Buy { to: 1 }]);
    }

    #[test]
    fn cheap_edges_get_bought_expensive_edges_get_dropped() {
        let g = generators::path(5);
        let mut ws = Workspace::new(5);
        // With a very cheap edge price, the far endpoint buys a shortcut.
        let cheap = GreedyBuyGame::sum(0.5);
        let br = cheap.best_response(&g, 4, &mut ws).unwrap();
        assert!(
            matches!(br.mv, Move::Buy { .. }),
            "expected a purchase, got {:?}",
            br.mv
        );
        // With a very expensive edge price, an agent owning a non-bridge edge deletes it.
        let mut h = generators::path(4);
        h.add_edge(0, 3); // cycle; every edge is now deletable
        let pricey = GreedyBuyGame::sum(100.0);
        let br = pricey.best_response(&h, 0, &mut ws).unwrap();
        assert!(
            matches!(br.mv, Move::Delete { .. }),
            "expected a deletion, got {:?}",
            br.mv
        );
    }

    #[test]
    fn deleting_a_bridge_is_never_improving() {
        let g = generators::path(4);
        let game = GreedyBuyGame::sum(1000.0);
        let mut ws = Workspace::new(4);
        let improving = game.improving_moves(&g, 0, &mut ws);
        assert!(
            improving
                .iter()
                .all(|s| !matches!(s.mv, Move::Delete { .. })),
            "deleting the only incident edge disconnects the agent (cost ∞)"
        );
    }

    #[test]
    fn max_version_star_is_stable_for_large_alpha() {
        // In the MAX-GBG with α > 1 a star is stable: the center cannot delete
        // (disconnection) and nobody can reduce their eccentricity below 1/2 by α-priced edges.
        let g = generators::star(6);
        let game = GreedyBuyGame::max(1.5);
        let mut ws = Workspace::new(6);
        for u in 0..6 {
            assert!(
                !game.has_improving_move(&g, u, &mut ws),
                "agent {u} should be happy"
            );
        }
    }
}
