//! The Asymmetric Swap Game of Mihalák & Schlegel.
//!
//! Identical to the Swap Game except that every edge has an owner and only the
//! owner may swap it. The strategy of agent `u` is her set of *owned* neighbours.

use crate::cost::{DistanceMetric, EdgeCostMode};
use crate::game::{push_swap_targets, Game};
use crate::moves::Move;
use ncg_graph::{HostGraph, NodeId, OwnedGraph};

/// The Asymmetric Swap Game (ASG) in SUM or MAX flavour.
#[derive(Debug, Clone)]
pub struct AsymSwapGame {
    metric: DistanceMetric,
    host: HostGraph,
}

impl AsymSwapGame {
    /// Asymmetric swap game with the given metric on the complete host graph.
    pub fn new(metric: DistanceMetric) -> Self {
        AsymSwapGame {
            metric,
            host: HostGraph::Complete,
        }
    }

    /// The SUM-ASG.
    pub fn sum() -> Self {
        Self::new(DistanceMetric::Sum)
    }

    /// The MAX-ASG.
    pub fn max() -> Self {
        Self::new(DistanceMetric::Max)
    }

    /// Restricts edge creation to a host graph (Cor. 3.6).
    pub fn with_host(mut self, host: HostGraph) -> Self {
        self.host = host;
        self
    }
}

impl Game for AsymSwapGame {
    fn name(&self) -> String {
        format!("{}-ASG", self.metric.label())
    }

    fn metric(&self) -> DistanceMetric {
        self.metric
    }

    fn edge_cost_mode(&self) -> EdgeCostMode {
        EdgeCostMode::Free
    }

    fn host(&self) -> &HostGraph {
        &self.host
    }

    fn candidate_moves(&self, g: &OwnedGraph, u: NodeId, out: &mut Vec<Move>) {
        // Only edges owned by `u` may be swapped.
        for &from in g.owned_neighbors(u) {
            push_swap_targets(g, &self.host, u, from, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::Workspace;
    use ncg_graph::generators;

    #[test]
    fn names() {
        assert_eq!(AsymSwapGame::sum().name(), "SUM-ASG");
        assert_eq!(AsymSwapGame::max().name(), "MAX-ASG");
    }

    #[test]
    fn only_owned_edges_are_swappable() {
        // Path 0->1->2->3: vertex 3 owns nothing and therefore has no moves at all,
        // even though it has the worst cost.
        let g = generators::path(4);
        let game = AsymSwapGame::sum();
        let mut out = Vec::new();
        game.candidate_moves(&g, 3, &mut out);
        assert!(out.is_empty());
        let mut ws = Workspace::new(4);
        assert!(!game.has_improving_move(&g, 3, &mut ws));
        // Vertex 0 owns {0,1} and can improve by swapping towards the middle.
        let br = game.best_response(&g, 0, &mut ws).unwrap();
        assert_eq!(br.mv, Move::Swap { from: 1, to: 2 });
    }

    #[test]
    fn swapping_a_bridge_away_never_improves() {
        // Vertex 1 owns the bridge {1,2} in the path 0->1->2->3. Any swap it could
        // perform keeps the graph connected or disconnects it; disconnection costs ∞.
        let g = generators::path(4);
        let game = AsymSwapGame::sum();
        let mut ws = Workspace::new(4);
        let improving = game.improving_moves(&g, 1, &mut ws);
        for s in &improving {
            assert!(s.new_cost.is_finite());
        }
    }

    #[test]
    fn asymmetric_has_fewer_moves_than_symmetric() {
        use crate::games::SwapGame;
        let g = generators::path(6);
        let sym = SwapGame::sum();
        let asym = AsymSwapGame::sum();
        for u in 0..6 {
            let mut sym_moves = Vec::new();
            let mut asym_moves = Vec::new();
            sym.candidate_moves(&g, u, &mut sym_moves);
            asym.candidate_moves(&g, u, &mut asym_moves);
            assert!(asym_moves.len() <= sym_moves.len());
        }
    }
}
