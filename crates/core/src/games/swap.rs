//! The (symmetric) Swap Game of Alon et al. (SPAA'10), "Basic Network Creation Game".
//!
//! The strategy of agent `u` is her neighbour set. An admissible change replaces
//! exactly one neighbour by a non-neighbour; *both* endpoints of an edge are allowed
//! to swap it, so edge-ownership has no influence on strategies or costs. There is
//! no edge-cost term.

use crate::cost::{DistanceMetric, EdgeCostMode};
use crate::game::{push_swap_targets, Game};
use crate::moves::Move;
use ncg_graph::{HostGraph, NodeId, OwnedGraph};

/// The Swap Game (SG) in SUM or MAX flavour.
#[derive(Debug, Clone)]
pub struct SwapGame {
    metric: DistanceMetric,
    host: HostGraph,
}

impl SwapGame {
    /// Swap game with the given distance metric on the complete host graph.
    pub fn new(metric: DistanceMetric) -> Self {
        SwapGame {
            metric,
            host: HostGraph::Complete,
        }
    }

    /// The SUM-SG.
    pub fn sum() -> Self {
        Self::new(DistanceMetric::Sum)
    }

    /// The MAX-SG.
    pub fn max() -> Self {
        Self::new(DistanceMetric::Max)
    }

    /// Restricts edge creation to a host graph.
    pub fn with_host(mut self, host: HostGraph) -> Self {
        self.host = host;
        self
    }
}

impl Game for SwapGame {
    fn name(&self) -> String {
        format!("{}-SG", self.metric.label())
    }

    fn metric(&self) -> DistanceMetric {
        self.metric
    }

    fn edge_cost_mode(&self) -> EdgeCostMode {
        EdgeCostMode::Free
    }

    fn host(&self) -> &HostGraph {
        &self.host
    }

    fn candidate_moves(&self, g: &OwnedGraph, u: NodeId, out: &mut Vec<Move>) {
        // Either endpoint may swap the edge, so every incident edge is a candidate.
        for &from in g.neighbors(u) {
            push_swap_targets(g, &self.host, u, from, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::Workspace;
    use ncg_graph::generators;

    #[test]
    fn names() {
        assert_eq!(SwapGame::sum().name(), "SUM-SG");
        assert_eq!(SwapGame::max().name(), "MAX-SG");
    }

    #[test]
    fn candidates_ignore_ownership() {
        // Path 0->1->2: agent 2 owns nothing, yet may swap the edge {1,2}.
        let g = generators::path(3);
        let game = SwapGame::sum();
        let mut out = Vec::new();
        game.candidate_moves(&g, 2, &mut out);
        assert_eq!(out, vec![Move::Swap { from: 1, to: 0 }]);
    }

    #[test]
    fn path_endpoint_improves_by_swapping_to_center() {
        let g = generators::path(5);
        let game = SwapGame::sum();
        let mut ws = Workspace::new(5);
        let br = game
            .best_response(&g, 0, &mut ws)
            .expect("endpoint is unhappy");
        // Best swap for the endpoint connects to a median of the remaining path
        // (vertex 2 or 3); the deterministic tie-break picks the smaller index.
        assert_eq!(br.mv, Move::Swap { from: 1, to: 2 });
        assert_eq!(br.old_cost, 10.0);
        assert_eq!(br.new_cost, 8.0);
    }

    #[test]
    fn star_center_is_happy() {
        let g = generators::star(6);
        let game = SwapGame::sum();
        let mut ws = Workspace::new(6);
        assert!(!game.has_improving_move(&g, 0, &mut ws));
        // Leaves cannot improve either: a star is stable in the SUM-SG.
        for leaf in 1..6 {
            assert!(!game.has_improving_move(&g, leaf, &mut ws));
        }
    }

    #[test]
    fn max_metric_counts_eccentricity() {
        let g = generators::path(5);
        let game = SwapGame::max();
        let mut ws = Workspace::new(5);
        let br = game.best_response(&g, 0, &mut ws).expect("unhappy");
        assert_eq!(br.old_cost, 4.0);
        // Swapping to the center vertex drops the eccentricity to 1 + 2 = ... BFS: center has ecc 2, so 0 gets ecc 3? Actually connecting to vertex 2 gives distances [0,2,1,2,3] -> wait path 0-1-2-3-4, after swap {0,1}->{0,2}: 0-2, 1-2, 2-3, 3-4; dist from 0: to 2 =1, 1=2, 3=2, 4=3 => ecc 3.
        assert!(br.new_cost < br.old_cost);
    }

    #[test]
    fn host_graph_restricts_targets() {
        let g = generators::path(4);
        // Only the edge {0,2} may ever be created.
        let host = HostGraph::restricted(4, &[(0, 2), (0, 1), (1, 2), (2, 3)]);
        let game = SwapGame::sum().with_host(host);
        let mut out = Vec::new();
        game.candidate_moves(&g, 0, &mut out);
        assert_eq!(out, vec![Move::Swap { from: 1, to: 2 }]);
        // Vertex 3 may not connect to 0 or 1 under this host.
        out.clear();
        game.candidate_moves(&g, 3, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn disconnecting_swaps_are_never_improving() {
        // Swapping the bridge of a path to the other endpoint of the bridge is not
        // admissible (edge exists); swapping a pendant edge away can only reconnect.
        let g = generators::path(3);
        let game = SwapGame::sum();
        let mut ws = Workspace::new(3);
        // Middle vertex of P3 has cost 2, the minimum possible: happy.
        assert!(!game.has_improving_move(&g, 1, &mut ws));
    }
}
