//! The five game families studied in the paper.
//!
//! | Type | Struct | Strategy of agent `u` | Admissible changes |
//! |------|--------|----------------------|---------------------|
//! | SG   | [`SwapGame`] | neighbour set | replace one neighbour (either endpoint may swap) |
//! | ASG  | [`AsymSwapGame`] | owned-neighbour set | replace one *owned* neighbour |
//! | GBG  | [`GreedyBuyGame`] | owned-neighbour set | buy, delete or swap one owned edge |
//! | BG   | [`BuyGame`] | owned-neighbour set | any subset of `V \ {u}` |
//! | BEB  | [`BilateralBuyGame`] | neighbour set | any subset, new edges need the other endpoint's consent, cost `α/2` each |

mod asym_swap;
mod bilateral;
mod buy;
mod greedy_buy;
mod swap;

pub use asym_swap::AsymSwapGame;
pub use bilateral::BilateralBuyGame;
pub use buy::BuyGame;
pub use greedy_buy::GreedyBuyGame;
pub use swap::SwapGame;
