//! The bilateral equal-split Buy Game ("bilateral network formation",
//! Corbo & Parkes PODC'05), studied in §5 of the paper.
//!
//! Strategies are *neighbour sets*: an agent proposes the set of agents she wants to
//! be adjacent to. Deleting an incident edge is a unilateral move, but creating a new
//! edge requires the other endpoint's consent — agent `x` blocks the move if her cost
//! would strictly increase. Every incident edge costs each endpoint `α / 2`.
//! Stable states of this game are pairwise Nash equilibria.

use crate::cost::{agent_cost_total, DistanceMetric, EdgeCostMode};
use crate::game::Game;
use crate::moves::Move;
use ncg_graph::{BfsBuffer, HostGraph, NodeId, OwnedGraph};

/// Maximum number of candidate strategy vertices before enumeration is refused.
const MAX_STRATEGY_POOL: usize = 20;

/// The bilateral equal-split Buy Game (SUM or MAX) with edge price `alpha`.
#[derive(Debug, Clone)]
pub struct BilateralBuyGame {
    metric: DistanceMetric,
    alpha: f64,
    host: HostGraph,
}

impl BilateralBuyGame {
    /// Bilateral game with the given metric and edge price on the complete host.
    pub fn new(metric: DistanceMetric, alpha: f64) -> Self {
        assert!(alpha > 0.0, "the edge price α must be positive");
        BilateralBuyGame {
            metric,
            alpha,
            host: HostGraph::Complete,
        }
    }

    /// The SUM bilateral equal-split BG.
    pub fn sum(alpha: f64) -> Self {
        Self::new(DistanceMetric::Sum, alpha)
    }

    /// The MAX bilateral equal-split BG.
    pub fn max(alpha: f64) -> Self {
        Self::new(DistanceMetric::Max, alpha)
    }

    /// Restricts edge creation to a host graph.
    pub fn with_host(mut self, host: HostGraph) -> Self {
        self.host = host;
        self
    }

    /// Vertices that can appear in a strategy of `u`: current neighbours (keeping an
    /// edge never needs consent) plus host-allowed non-neighbours.
    fn strategy_pool(&self, g: &OwnedGraph, u: NodeId) -> Vec<NodeId> {
        (0..g.num_nodes())
            .filter(|&v| v != u && (g.has_edge(u, v) || self.host.allows(u, v)))
            .collect()
    }
}

impl Game for BilateralBuyGame {
    fn name(&self) -> String {
        format!("{} bilateral equal-split BG", self.metric.label())
    }

    fn metric(&self) -> DistanceMetric {
        self.metric
    }

    fn alpha(&self) -> f64 {
        self.alpha
    }

    fn edge_cost_mode(&self) -> EdgeCostMode {
        EdgeCostMode::EqualSplit
    }

    fn host(&self) -> &HostGraph {
        &self.host
    }

    fn needs_consent(&self) -> bool {
        true
    }

    fn delta_consent(&self) -> bool {
        // Blocking is exactly "a newly connected agent's equal-split cost
        // strictly increases", and `cost` keeps the standard decomposition —
        // so the scan may answer consent from counterpart what-if queries.
        true
    }

    fn consent_parties(&self, g: &OwnedGraph, agent: NodeId, mv: &Move, out: &mut Vec<NodeId>) {
        let Move::SetNeighbors { new_neighbors } = mv else {
            return;
        };
        for &v in new_neighbors {
            if !g.has_edge(agent, v) {
                out.push(v);
            }
        }
    }

    fn candidate_moves(&self, g: &OwnedGraph, u: NodeId, out: &mut Vec<Move>) {
        let pool = self.strategy_pool(g, u);
        assert!(
            pool.len() <= MAX_STRATEGY_POOL,
            "BilateralBuyGame::candidate_moves enumerates 2^|pool| strategies; |pool| = {} exceeds {}.",
            pool.len(),
            MAX_STRATEGY_POOL
        );
        let current: Vec<NodeId> = g.neighbors(u).to_vec();
        let k = pool.len();
        // Gray-code order, mirroring BuyGame::candidate_moves (the bilateral
        // game scores through the consent fallback, but the shared order keeps
        // candidate enumeration conventions — and future delta paths — aligned).
        for i in 0u64..(1u64 << k) {
            let mask = i ^ (i >> 1);
            let new_neighbors: Vec<NodeId> = (0..k)
                .filter(|&b| mask & (1 << b) != 0)
                .map(|b| pool[b])
                .collect();
            if new_neighbors == current {
                continue;
            }
            out.push(Move::SetNeighbors { new_neighbors });
        }
    }

    fn move_is_blocked(
        &self,
        g_before: &OwnedGraph,
        agent: NodeId,
        mv: &Move,
        g_after: &OwnedGraph,
        buf: &mut BfsBuffer,
    ) -> bool {
        let Move::SetNeighbors { new_neighbors } = mv else {
            return false;
        };
        // A move is blocked if some *newly connected* agent's cost strictly increases.
        for &v in new_neighbors {
            if g_before.has_edge(agent, v) {
                continue; // existing edge: no consent needed to keep it
            }
            let before = agent_cost_total(
                g_before,
                v,
                self.metric,
                self.alpha,
                EdgeCostMode::EqualSplit,
                buf,
            );
            let after = agent_cost_total(
                g_after,
                v,
                self.metric,
                self.alpha,
                EdgeCostMode::EqualSplit,
                buf,
            );
            if after > before {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::Workspace;
    use ncg_graph::generators;
    use ncg_graph::oracle::OracleKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn delta_consent_scan_matches_apply_undo_scan() {
        // The persistent workspace scores candidates (and consent) through
        // oracle what-ifs; the incremental one takes the historical
        // apply → BFS → undo path. Same states, identical scored-move lists.
        let mut rng = StdRng::seed_from_u64(5);
        for trial in 0..8u64 {
            let n = 8;
            let g = generators::random_with_m_edges(n, 10 + (trial % 4) as usize, &mut rng);
            for &alpha in &[0.6, 2.0, 6.0] {
                for game in [BilateralBuyGame::sum(alpha), BilateralBuyGame::max(alpha)] {
                    let mut fast = Workspace::with_oracle(n, OracleKind::Persistent);
                    let mut slow = Workspace::with_oracle(n, OracleKind::Incremental);
                    for u in 0..n {
                        let a = game.improving_moves(&g, u, &mut fast);
                        let b = game.improving_moves(&g, u, &mut slow);
                        assert_eq!(a, b, "trial {trial} α={alpha} {} agent {u}", game.name());
                        // The deferred-consent best-response scan must return
                        // the same set (and order) as the eager fallback.
                        let a = game.best_responses(&g, u, &mut fast);
                        let b = game.best_responses(&g, u, &mut slow);
                        assert_eq!(
                            a,
                            b,
                            "best responses: trial {trial} α={alpha} {} agent {u}",
                            game.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn name_mentions_bilateral() {
        assert!(BilateralBuyGame::sum(1.0).name().contains("bilateral"));
    }

    #[test]
    fn consent_blocks_harmful_edges() {
        // Star with center 0 and α = 4: a leaf would love an edge to another leaf
        // only if it helped; with SUM cost the distance gain is 1 but the price α/2 = 2,
        // so no leaf proposes it. Let α = 1 instead: the distance gain (1) vs price 0.5
        // is positive for both endpoints, so the move is feasible and improving.
        let g = generators::star(4);
        let mut ws = Workspace::new(4);
        let cheap = BilateralBuyGame::sum(1.0);
        let br = cheap.best_response(&g, 1, &mut ws);
        assert!(
            br.is_some(),
            "with a cheap α a leaf-leaf edge is mutually beneficial"
        );
        let pricey = BilateralBuyGame::sum(4.0);
        let br = pricey.best_response(&g, 1, &mut ws);
        assert!(
            br.is_none(),
            "with an expensive α every proposal is blocked or not improving"
        );
    }

    #[test]
    fn unilateral_deletion_is_never_blocked() {
        // Triangle with α large: dropping an edge saves α/2 and costs 1 extra distance.
        let mut g = generators::path(3);
        g.add_edge(2, 0);
        let game = BilateralBuyGame::sum(4.0);
        let mut ws = Workspace::new(3);
        let br = game
            .best_response(&g, 0, &mut ws)
            .expect("deletion is improving");
        match &br.mv {
            Move::SetNeighbors { new_neighbors } => assert_eq!(new_neighbors.len(), 1),
            other => panic!("unexpected move {other:?}"),
        }
    }

    #[test]
    fn equal_split_edge_cost_in_scores() {
        let g = generators::path(3);
        let game = BilateralBuyGame::sum(2.0);
        let mut ws = Workspace::new(3);
        let cost_mid = game.cost(&g, 1, &mut ws.bfs);
        // degree 2 → edge cost 2·(α/2) = 2, distance 2.
        assert_eq!(cost_mid, 4.0);
    }

    #[test]
    fn blocked_check_only_applies_to_new_neighbors() {
        let g = generators::path(4);
        let game = BilateralBuyGame::sum(10.0);
        let mut buf = BfsBuffer::new(4);
        // Keeping the existing neighbour set minus one is never blocked.
        let mv = Move::SetNeighbors {
            new_neighbors: vec![1],
        };
        let mut after = g.clone();
        crate::moves::apply_move(&mut after, 2, &mv).unwrap();
        assert!(!game.move_is_blocked(&g, 2, &mv, &after, &mut buf));
    }
}
