//! Agent cost model.
//!
//! The cost of agent `u` in network `G` is `c(u) = e(u) + δ(u)` where `e(u)` is the
//! edge-cost and `δ(u)` the distance-cost (paper §1.1):
//!
//! * **SUM** distance-cost: sum of shortest-path distances to all other agents,
//! * **MAX** distance-cost: maximum distance (eccentricity),
//! * both are `∞` when the network is disconnected from `u`'s point of view.
//!
//! The edge-cost depends on the game family: swap games have none, the unilateral
//! buy games charge `α` per *owned* edge, and the bilateral equal-split game charges
//! `α/2` per *incident* edge.

use ncg_graph::{BfsBuffer, DistanceSummary, NodeId, OwnedGraph};

/// Which aggregate of the distance vector enters the agent cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistanceMetric {
    /// Sum of distances to all other agents (average connection quality).
    Sum,
    /// Maximum distance / eccentricity (worst-case connection quality).
    Max,
}

impl DistanceMetric {
    /// Short label used in reports (`"SUM"` / `"MAX"`), matching the paper.
    pub fn label(&self) -> &'static str {
        match self {
            DistanceMetric::Sum => "SUM",
            DistanceMetric::Max => "MAX",
        }
    }

    /// Extracts the distance-cost from a per-source [`DistanceSummary`];
    /// `f64::INFINITY` when disconnected.
    pub fn distance_cost(&self, summary: &DistanceSummary) -> f64 {
        match self {
            DistanceMetric::Sum => summary.sum.map_or(f64::INFINITY, |s| s as f64),
            DistanceMetric::Max => summary.max.map_or(f64::INFINITY, f64::from),
        }
    }
}

/// How edge-costs are charged to an agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeCostMode {
    /// No edge-cost at all (Swap Game, Asymmetric Swap Game).
    Free,
    /// The owner pays `α` per owned edge (Buy Game, Greedy Buy Game).
    OwnerPays,
    /// Both endpoints pay `α / 2` per incident edge (bilateral equal-split game).
    EqualSplit,
}

impl EdgeCostMode {
    /// Edge-cost of agent `u` in `g` given edge price `alpha`.
    pub fn edge_cost(&self, g: &OwnedGraph, u: NodeId, alpha: f64) -> f64 {
        match self {
            EdgeCostMode::Free => 0.0,
            EdgeCostMode::OwnerPays => alpha * g.owned_degree(u) as f64,
            EdgeCostMode::EqualSplit => alpha / 2.0 * g.degree(u) as f64,
        }
    }
}

/// Structured cost of an agent: edge part, distance part and the total.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentCost {
    /// Edge-cost component (`α`-weighted).
    pub edge: f64,
    /// Distance-cost component (`∞` when disconnected).
    pub distance: f64,
}

impl AgentCost {
    /// Total cost `edge + distance`.
    #[inline]
    pub fn total(&self) -> f64 {
        self.edge + self.distance
    }

    /// True if the agent can reach every other agent.
    #[inline]
    pub fn is_connected(&self) -> bool {
        self.distance.is_finite()
    }
}

/// Computes the structured cost of agent `u`.
pub fn agent_cost(
    g: &OwnedGraph,
    u: NodeId,
    metric: DistanceMetric,
    alpha: f64,
    mode: EdgeCostMode,
    buf: &mut BfsBuffer,
) -> AgentCost {
    let summary = buf.summary(g, u);
    AgentCost {
        edge: mode.edge_cost(g, u, alpha),
        distance: metric.distance_cost(&summary),
    }
}

/// Total cost of agent `u` (convenience wrapper around [`agent_cost`]).
pub fn agent_cost_total(
    g: &OwnedGraph,
    u: NodeId,
    metric: DistanceMetric,
    alpha: f64,
    mode: EdgeCostMode,
    buf: &mut BfsBuffer,
) -> f64 {
    agent_cost(g, u, metric, alpha, mode, buf).total()
}

/// Returns `true` iff `new_cost` is a *strict* improvement over `old_cost`.
///
/// The paper only considers improving moves, i.e. strategy changes that strictly
/// decrease the moving agent's cost. Two infinite costs never improve on each other.
#[inline]
pub fn is_improvement(old_cost: f64, new_cost: f64) -> bool {
    new_cost < old_cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncg_graph::generators;

    #[test]
    fn metric_labels() {
        assert_eq!(DistanceMetric::Sum.label(), "SUM");
        assert_eq!(DistanceMetric::Max.label(), "MAX");
    }

    #[test]
    fn swap_game_cost_is_distance_only() {
        let g = generators::path(4);
        let mut buf = BfsBuffer::new(4);
        let c = agent_cost(
            &g,
            0,
            DistanceMetric::Sum,
            10.0,
            EdgeCostMode::Free,
            &mut buf,
        );
        assert_eq!(c.edge, 0.0);
        assert_eq!(c.distance, 6.0);
        assert_eq!(c.total(), 6.0);
        let c = agent_cost(
            &g,
            0,
            DistanceMetric::Max,
            10.0,
            EdgeCostMode::Free,
            &mut buf,
        );
        assert_eq!(c.distance, 3.0);
    }

    #[test]
    fn owner_pays_counts_owned_edges_only() {
        // Path 0->1->2->3: every internal vertex owns exactly one edge.
        let g = generators::path(4);
        let mut buf = BfsBuffer::new(4);
        let c0 = agent_cost(
            &g,
            0,
            DistanceMetric::Sum,
            2.0,
            EdgeCostMode::OwnerPays,
            &mut buf,
        );
        assert_eq!(c0.edge, 2.0);
        let c3 = agent_cost(
            &g,
            3,
            DistanceMetric::Sum,
            2.0,
            EdgeCostMode::OwnerPays,
            &mut buf,
        );
        assert_eq!(c3.edge, 0.0, "vertex 3 owns no edge");
    }

    #[test]
    fn equal_split_counts_incident_edges() {
        let g = generators::star(5);
        let mut buf = BfsBuffer::new(5);
        let hub = agent_cost(
            &g,
            0,
            DistanceMetric::Sum,
            3.0,
            EdgeCostMode::EqualSplit,
            &mut buf,
        );
        assert_eq!(hub.edge, 1.5 * 4.0);
        let leaf = agent_cost(
            &g,
            1,
            DistanceMetric::Sum,
            3.0,
            EdgeCostMode::EqualSplit,
            &mut buf,
        );
        assert_eq!(leaf.edge, 1.5);
    }

    #[test]
    fn disconnected_cost_is_infinite() {
        let mut g = ncg_graph::OwnedGraph::new(3);
        g.add_edge(0, 1);
        let mut buf = BfsBuffer::new(3);
        let c = agent_cost(
            &g,
            0,
            DistanceMetric::Sum,
            1.0,
            EdgeCostMode::OwnerPays,
            &mut buf,
        );
        assert!(c.distance.is_infinite());
        assert!(!c.is_connected());
        assert!(c.total().is_infinite());
    }

    #[test]
    fn improvement_is_strict() {
        assert!(is_improvement(5.0, 4.0));
        assert!(!is_improvement(5.0, 5.0));
        assert!(!is_improvement(4.0, 5.0));
        assert!(!is_improvement(f64::INFINITY, f64::INFINITY));
        assert!(is_improvement(f64::INFINITY, 10.0));
    }
}
