//! Strategy changes ("moves") and their application to a network state.
//!
//! A move is always performed by a single agent (the *moving agent*). The move
//! variants cover every game family of the paper:
//!
//! * [`Move::Swap`] — replace one incident/owned edge by another (SG / ASG / GBG / BG),
//! * [`Move::Buy`] — create one new owned edge (GBG / BG),
//! * [`Move::Delete`] — remove one owned edge (GBG / BG),
//! * [`Move::SetOwned`] — replace the full set of owned edges (BG: arbitrary
//!   strategy changes),
//! * [`Move::SetNeighbors`] — replace the full neighbour set (bilateral equal-split
//!   game, where strategies are neighbour sets and edge creation needs consent).
//!
//! [`apply_move`] mutates a graph in place and returns an [`UndoMove`] so that
//! best-response search can evaluate candidates without cloning the graph.

use ncg_graph::{NodeId, OwnedGraph};

/// A strategy change of a single agent.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Move {
    /// Replace edge `{agent, from}` by `{agent, to}`.
    ///
    /// In the symmetric Swap Game the agent need not own the edge; in all other
    /// games she must.
    Swap {
        /// Current endpoint being dropped.
        from: NodeId,
        /// New endpoint being connected.
        to: NodeId,
    },
    /// Buy the new edge `{agent, to}` (owned and paid by the agent).
    Buy {
        /// The new neighbour.
        to: NodeId,
    },
    /// Delete the owned edge `{agent, to}`.
    Delete {
        /// The neighbour the edge points to.
        to: NodeId,
    },
    /// Replace the agent's owned-neighbour set (an arbitrary Buy Game strategy).
    SetOwned {
        /// The new set of owned neighbours (sorted, no duplicates).
        new_owned: Vec<NodeId>,
    },
    /// Replace the agent's neighbour set (bilateral game strategy).
    SetNeighbors {
        /// The new neighbour set (sorted, no duplicates).
        new_neighbors: Vec<NodeId>,
    },
}

impl Move {
    /// A coarse ordering rank used for deterministic tie-breaking:
    /// deletions before swaps before purchases before whole-strategy changes.
    /// This matches the preference order used in the paper's GBG experiments
    /// ("we prefer deletions before swaps before additions", §4.2.1).
    pub fn kind_rank(&self) -> u8 {
        match self {
            Move::Delete { .. } => 0,
            Move::Swap { .. } => 1,
            Move::Buy { .. } => 2,
            Move::SetOwned { .. } => 3,
            Move::SetNeighbors { .. } => 4,
        }
    }

    /// Deterministic total order on moves (used to make tie-breaking reproducible).
    pub fn sort_key(&self) -> (u8, Vec<NodeId>) {
        match self {
            Move::Delete { to } => (0, vec![*to]),
            Move::Swap { from, to } => (1, vec![*from, *to]),
            Move::Buy { to } => (2, vec![*to]),
            Move::SetOwned { new_owned } => (3, new_owned.clone()),
            Move::SetNeighbors { new_neighbors } => (4, new_neighbors.clone()),
        }
    }
}

/// Information required to revert an applied move.
#[derive(Debug, Clone)]
pub enum UndoMove {
    /// Revert a swap: restore edge to `from` (owned by `original_owner`), remove edge to `to`.
    Swap {
        /// Old endpoint.
        from: NodeId,
        /// New endpoint.
        to: NodeId,
        /// Whether the *agent* owned the original edge (relevant for the symmetric SG).
        agent_owned_original: bool,
    },
    /// Revert a purchase: remove the bought edge.
    Buy {
        /// The bought neighbour.
        to: NodeId,
    },
    /// Revert a deletion: re-add the edge owned by the agent.
    Delete {
        /// The deleted neighbour.
        to: NodeId,
    },
    /// Revert a whole-strategy change by restoring the previously owned set.
    SetOwned {
        /// Previous owned neighbours of the agent.
        old_owned: Vec<NodeId>,
        /// Owned edges of the agent created by the move that must be removed.
        added: Vec<NodeId>,
    },
    /// Revert a neighbour-set change: re-add removed edges (with their original
    /// owners) and remove added edges.
    SetNeighbors {
        /// Edges removed by the move as `(owner, other)` pairs to re-add.
        removed: Vec<(NodeId, NodeId)>,
        /// Neighbours added by the move (owned by the agent) to remove again.
        added: Vec<NodeId>,
    },
}

/// Applies `mv` performed by `agent` to `g`.
///
/// Returns `None` (graph unchanged) if the move is not applicable in the current
/// state (e.g. swapping a non-existent edge, buying an existing edge). Legality
/// with respect to a specific *game* (ownership requirements, host graphs,
/// bilateral consent) is checked by the game implementations, not here.
pub fn apply_move(g: &mut OwnedGraph, agent: NodeId, mv: &Move) -> Option<UndoMove> {
    match mv {
        Move::Swap { from, to } => {
            if !g.has_edge(agent, *from) || g.has_edge(agent, *to) || *to == agent {
                return None;
            }
            let agent_owned_original = g.owns_edge(agent, *from);
            let ok = g.swap_edge(agent, *from, *to);
            debug_assert!(ok);
            Some(UndoMove::Swap {
                from: *from,
                to: *to,
                agent_owned_original,
            })
        }
        Move::Buy { to } => {
            if !g.add_edge(agent, *to) {
                return None;
            }
            Some(UndoMove::Buy { to: *to })
        }
        Move::Delete { to } => {
            if !g.remove_owned_edge(agent, *to) {
                return None;
            }
            Some(UndoMove::Delete { to: *to })
        }
        Move::SetOwned { new_owned } => {
            let old_owned: Vec<NodeId> = g.owned_neighbors(agent).to_vec();
            if !g.set_owned_neighbors(agent, new_owned) {
                return None;
            }
            let added: Vec<NodeId> = g.owned_neighbors(agent).to_vec();
            Some(UndoMove::SetOwned { old_owned, added })
        }
        Move::SetNeighbors { new_neighbors } => {
            if new_neighbors
                .iter()
                .any(|&v| v == agent || v >= g.num_nodes())
            {
                return None;
            }
            let current: Vec<NodeId> = g.neighbors(agent).to_vec();
            let mut removed = Vec::new();
            let mut added = Vec::new();
            for &v in &current {
                if !new_neighbors.contains(&v) {
                    let owner = g.edge_owner(agent, v).expect("edge exists");
                    let other = if owner == agent { v } else { agent };
                    removed.push((owner, other));
                    g.remove_edge(agent, v);
                }
            }
            for &v in new_neighbors {
                if !g.has_edge(agent, v) {
                    g.add_edge(agent, v);
                    added.push(v);
                }
            }
            Some(UndoMove::SetNeighbors { removed, added })
        }
    }
}

/// Reverts a move previously applied with [`apply_move`].
pub fn undo_move(g: &mut OwnedGraph, agent: NodeId, undo: &UndoMove) {
    match undo {
        UndoMove::Swap {
            from,
            to,
            agent_owned_original,
        } => {
            g.remove_edge(agent, *to);
            if *agent_owned_original {
                g.add_edge(agent, *from);
            } else {
                g.add_edge(*from, agent);
            }
        }
        UndoMove::Buy { to } => {
            g.remove_edge(agent, *to);
        }
        UndoMove::Delete { to } => {
            g.add_edge(agent, *to);
        }
        UndoMove::SetOwned { old_owned, added } => {
            for &v in added {
                g.remove_edge(agent, v);
            }
            for &v in old_owned {
                if !g.has_edge(agent, v) {
                    g.add_edge(agent, v);
                }
            }
        }
        UndoMove::SetNeighbors { removed, added } => {
            for &v in added {
                g.remove_edge(agent, v);
            }
            for &(owner, other) in removed {
                g.add_edge(owner, other);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncg_graph::generators;

    fn roundtrip(g0: &OwnedGraph, agent: NodeId, mv: &Move) {
        let mut g = g0.clone();
        let undo = apply_move(&mut g, agent, mv).expect("move applies");
        assert_ne!(&g, g0, "move must change the state");
        undo_move(&mut g, agent, &undo);
        assert_eq!(
            &g, g0,
            "undo must restore the exact state (incl. ownership)"
        );
        g.check_invariants().unwrap();
    }

    #[test]
    fn swap_roundtrip_owned_and_unowned() {
        let g = generators::path(5);
        // Vertex 1 owns edge to 2: owned swap.
        roundtrip(&g, 1, &Move::Swap { from: 2, to: 4 });
        // Vertex 1 does not own edge {0,1}: symmetric swap still round-trips.
        roundtrip(&g, 1, &Move::Swap { from: 0, to: 3 });
    }

    #[test]
    fn buy_and_delete_roundtrip() {
        let g = generators::path(4);
        roundtrip(&g, 0, &Move::Buy { to: 2 });
        roundtrip(&g, 0, &Move::Delete { to: 1 });
    }

    #[test]
    fn inapplicable_moves_return_none() {
        let mut g = generators::path(4);
        assert!(
            apply_move(&mut g, 0, &Move::Buy { to: 1 }).is_none(),
            "edge exists"
        );
        assert!(
            apply_move(&mut g, 3, &Move::Delete { to: 2 }).is_none(),
            "3 does not own it"
        );
        assert!(
            apply_move(&mut g, 0, &Move::Swap { from: 2, to: 3 }).is_none(),
            "no edge 0-2"
        );
        assert!(
            apply_move(&mut g, 0, &Move::Buy { to: 0 }).is_none(),
            "self loop"
        );
        let snapshot = g.clone();
        assert_eq!(g, snapshot, "failed applications leave the graph untouched");
    }

    #[test]
    fn set_owned_roundtrip() {
        let g = OwnedGraph::from_owned_edges(5, &[(0, 1), (0, 2), (3, 0), (3, 4)]);
        roundtrip(&g, 0, &Move::SetOwned { new_owned: vec![4] });
        roundtrip(&g, 0, &Move::SetOwned { new_owned: vec![] });
        roundtrip(
            &g,
            3,
            &Move::SetOwned {
                new_owned: vec![1, 2],
            },
        );
    }

    #[test]
    fn set_neighbors_roundtrip_preserves_foreign_ownership() {
        // Edge {3,0} is owned by 3. If agent 0 drops and we undo, ownership must return to 3.
        let g = OwnedGraph::from_owned_edges(5, &[(0, 1), (3, 0), (3, 4)]);
        roundtrip(
            &g,
            0,
            &Move::SetNeighbors {
                new_neighbors: vec![4],
            },
        );
        roundtrip(
            &g,
            0,
            &Move::SetNeighbors {
                new_neighbors: vec![1, 2, 3],
            },
        );
    }

    #[test]
    fn move_ordering_prefers_deletions() {
        let d = Move::Delete { to: 3 };
        let s = Move::Swap { from: 1, to: 2 };
        let b = Move::Buy { to: 0 };
        assert!(d.kind_rank() < s.kind_rank());
        assert!(s.kind_rank() < b.kind_rank());
        let mut moves = vec![b.clone(), s.clone(), d.clone()];
        moves.sort_by_key(|m| m.sort_key());
        assert_eq!(moves, vec![d, s, b]);
    }
}
