//! The sequential-move network creation process (paper §1.1).
//!
//! Starting from an initial network, in every step the move policy selects one
//! unhappy agent, who then performs an improving move (by default a best response).
//! The process stops when no agent is unhappy (a stable network / pure Nash
//! equilibrium has been reached), when an exact previously-visited state recurs
//! (a better-response cycle has been detected), or when the step limit is hit.

use crate::game::{Game, ScoredMove, Workspace};
use crate::moves::{apply_move, Move};
use crate::policy::{Policy, TieBreak};
use ncg_graph::oracle::{OracleKind, OracleStats};
use ncg_graph::{canonical_state_key, canonical_unlabeled_key, NodeId, OwnedGraph, StateKey};
use ncg_trace as trace;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;

/// Whether the moving agent plays a best response or any improving move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResponseMode {
    /// The moving agent performs a best possible improving move (best response).
    BestResponse,
    /// The moving agent performs the first improving move found (better response).
    FirstImproving,
}

/// Configuration of a dynamics run.
#[derive(Debug, Clone)]
pub struct DynamicsConfig {
    /// Who moves.
    pub policy: Policy,
    /// How ties are broken (both among max-cost agents and among best responses).
    pub tie_break: TieBreak,
    /// Best responses or arbitrary improving moves.
    pub response_mode: ResponseMode,
    /// Hard limit on the number of moves.
    pub max_steps: usize,
    /// If `true`, every visited state is remembered and an exact recurrence stops
    /// the run with [`Termination::CycleDetected`].
    pub detect_cycles: bool,
    /// If `true`, every move is recorded in the trajectory.
    pub record_trajectory: bool,
    /// If `true`, edge ownership is part of the state identity used for cycle
    /// detection (correct for ASG/GBG/BG/bilateral). The symmetric Swap Game
    /// ignores ownership and should set this to `false`.
    pub ownership_in_state: bool,
    /// Which distance-oracle backend scores candidate moves.
    pub oracle: OracleKind,
    /// Cap on the persistent oracle's per-source distance cache (number of
    /// parked vectors; `None` = backend default: unlimited slots at
    /// `n ≤ 8192`, capped at 8192 beyond — the byte budget below binds
    /// first in practice).
    pub oracle_cache_budget: Option<usize>,
    /// Cap on the persistent oracle's parked-vector **bytes** (`None` =
    /// backend default: 128 MiB). Over budget, parked vectors are demoted to
    /// their ball-sparse representation and then evicted, oldest-stalest
    /// first. Purely a memory knob — scoring stays exact, so trajectories
    /// are bit-identical under any budget.
    pub oracle_byte_budget: Option<u64>,
    /// If `true`, the engine keeps a dirty-agent set: after a move only agents
    /// whose distance vectors could have changed are re-examined, instead of
    /// re-scanning all `n` agents per step. Termination stays exact — before
    /// declaring convergence the engine re-verifies every agent against the
    /// final state — but the *order* in which unhappy agents are discovered
    /// can differ from the eager scan, so trajectories may differ from the
    /// `dirty_agents: false` runs (both are valid sequential-move processes).
    pub dirty_agents: bool,
    /// If `true` (the default), a dirty-agent run on the persistent oracle
    /// hands the oracle each committed move's exact change union so every
    /// parked distance vector is advanced to the new version in one grouped
    /// pass (replay for changed vectors, a trusted stamp bump for the rest).
    /// This keeps the cache-arithmetic insertion scoring and the bounded
    /// best-response scans lit even though the dirty engine re-pins only a
    /// few sources per step. Purely a performance knob: warming never changes
    /// scores, mover selection, or trajectories — disabling it ("cold" mode)
    /// only exists for ablation measurements. Ignored without `dirty_agents`
    /// (the eager policy scan re-pins every source anyway) and by the
    /// stateless oracle backends.
    pub warm_parked: bool,
    /// If `true` (the default), the persistent oracle serves bulk (re)pins —
    /// the trial-start cold fill and parked vectors whose journal window
    /// outgrew the replay limit — with word-parallel 64-wide bitset BFS
    /// waves instead of one scalar traversal per source. Purely a
    /// performance knob: both paths compute identical exact distances, so
    /// trajectories are bit-identical either way; `false` keeps the scalar
    /// verification baseline. Ignored by the stateless oracle backends.
    pub warm_batching: bool,
}

impl DynamicsConfig {
    /// Sensible defaults for simulations: max-cost policy, random tie-break,
    /// best responses, no cycle detection, no trajectory recording.
    pub fn simulation(max_steps: usize) -> Self {
        DynamicsConfig {
            policy: Policy::MaxCost,
            tie_break: TieBreak::Random,
            response_mode: ResponseMode::BestResponse,
            max_steps,
            detect_cycles: false,
            record_trajectory: false,
            ownership_in_state: true,
            oracle: OracleKind::default(),
            oracle_cache_budget: None,
            oracle_byte_budget: None,
            dirty_agents: false,
            warm_parked: true,
            warm_batching: true,
        }
    }

    /// Defaults for analysing small instances: deterministic tie-break, cycle
    /// detection and full trajectory recording.
    pub fn analysis(max_steps: usize) -> Self {
        DynamicsConfig {
            policy: Policy::MinIndex,
            tie_break: TieBreak::Deterministic,
            response_mode: ResponseMode::BestResponse,
            max_steps,
            detect_cycles: true,
            record_trajectory: true,
            ownership_in_state: true,
            oracle: OracleKind::default(),
            oracle_cache_budget: None,
            oracle_byte_budget: None,
            dirty_agents: false,
            warm_parked: true,
            warm_batching: true,
        }
    }

    /// Sets the move policy.
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the tie-breaking rule.
    pub fn with_tie_break(mut self, tie_break: TieBreak) -> Self {
        self.tie_break = tie_break;
        self
    }

    /// Sets the response mode.
    pub fn with_response_mode(mut self, mode: ResponseMode) -> Self {
        self.response_mode = mode;
        self
    }

    /// Sets the distance-oracle backend.
    pub fn with_oracle(mut self, oracle: OracleKind) -> Self {
        self.oracle = oracle;
        self
    }

    /// Sets the persistent oracle's per-source cache budget.
    pub fn with_oracle_cache_budget(mut self, budget: Option<usize>) -> Self {
        self.oracle_cache_budget = budget;
        self
    }

    /// Sets the persistent oracle's parked-vector byte budget (see
    /// [`DynamicsConfig::oracle_byte_budget`]).
    pub fn with_oracle_byte_budget(mut self, budget: Option<u64>) -> Self {
        self.oracle_byte_budget = budget;
        self
    }

    /// Enables or disables dirty-agent tracking.
    pub fn with_dirty_agents(mut self, dirty_agents: bool) -> Self {
        self.dirty_agents = dirty_agents;
        self
    }

    /// Enables or disables post-move bulk warming of the persistent oracle's
    /// parked vectors (see [`DynamicsConfig::warm_parked`]).
    pub fn with_warm_parked(mut self, warm_parked: bool) -> Self {
        self.warm_parked = warm_parked;
        self
    }

    /// Enables or disables the persistent oracle's word-parallel bulk waves
    /// (see [`DynamicsConfig::warm_batching`]).
    pub fn with_warm_batching(mut self, warm_batching: bool) -> Self {
        self.warm_batching = warm_batching;
        self
    }
}

/// One performed move.
#[derive(Debug, Clone, PartialEq)]
pub struct MoveRecord {
    /// Index of the step (0-based).
    pub step: usize,
    /// The moving agent.
    pub agent: NodeId,
    /// The strategy change performed.
    pub mv: Move,
    /// The agent's cost before the move.
    pub old_cost: f64,
    /// The agent's cost after the move.
    pub new_cost: f64,
}

/// Why the process stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Termination {
    /// No agent has an improving move: a stable network (pure Nash equilibrium).
    Converged,
    /// The exact state of step `first_seen_step` recurred after `period` further
    /// moves — a better-response cycle.
    CycleDetected {
        /// Step at which the recurring state was first visited.
        first_seen_step: usize,
        /// Number of moves after which it recurred.
        period: usize,
    },
    /// The configured step limit was reached without convergence.
    StepLimit,
}

/// Result of a dynamics run.
#[derive(Debug, Clone)]
pub struct DynamicsOutcome {
    /// Why the run stopped.
    pub termination: Termination,
    /// Number of moves performed.
    pub steps: usize,
    /// The final network state.
    pub final_graph: OwnedGraph,
    /// The recorded trajectory (empty unless `record_trajectory` was set).
    pub trajectory: Vec<MoveRecord>,
}

impl DynamicsOutcome {
    /// Convenience: did the process converge to a stable network?
    pub fn converged(&self) -> bool {
        self.termination == Termination::Converged
    }
}

/// A stepwise-controllable network creation process.
///
/// [`run_dynamics`] drives it automatically; tests and the adversarial
/// constructions use [`Dynamics::step_with_agent`] to force particular movers.
pub struct Dynamics<'a, G: Game + ?Sized> {
    game: &'a G,
    graph: OwnedGraph,
    config: DynamicsConfig,
    ws: Workspace,
    steps: usize,
    last_mover: Option<NodeId>,
    seen: HashMap<StateKey, usize>,
    trajectory: Vec<MoveRecord>,
    /// Dirty-agent bookkeeping (only maintained when `config.dirty_agents`).
    ///
    /// `verified_happy[u]` means `u` was found to have no improving move and no
    /// later move is suspected to have changed `u`'s distance vector.
    verified_happy: Vec<bool>,
    /// Which [`Dynamics::select_mover_dirty`] call verified `u`
    /// (`verified_call[u]` vs `select_call`): scans are deterministic and no
    /// move applies between the passes of one call, so the final confirmation
    /// sweep can skip everything verified *in the current call* — re-scanning
    /// those agents against the identical state would reproduce "happy"
    /// verbatim. Only verifications surviving from earlier calls (which the
    /// invalidation heuristic preserved across moves) are re-examined.
    verified_call: Vec<u64>,
    select_call: u64,
    /// `cached_cost[u]` is `u`'s cost when `cost_fresh[u]`; used by the
    /// max-cost policy so that only invalidated agents are re-measured.
    cached_cost: Vec<f64>,
    cost_fresh: Vec<bool>,
    /// Set after every performed move: before declaring convergence, one full
    /// re-verification sweep runs so termination is exact even if the dirty
    /// heuristic under-approximated.
    confirm_pending: bool,
    /// Scratch distance vectors of the move endpoints (pre-move state; only
    /// used with non-persistent oracles, which cannot export a diff).
    pre_dists: Vec<Vec<u16>>,
    /// Scratch for the persistent oracle's exact changed-vertex export.
    changed_scratch: Vec<NodeId>,
    /// Scratch for the per-move change union handed to the oracle's bulk
    /// warming pass (endpoints + mover + every exported changed vertex).
    warm_scratch: Vec<NodeId>,
    /// Scratch for the dirty mover-selection scan order (reused across
    /// steps so the per-pass ordering allocates nothing).
    order_scratch: Vec<NodeId>,
    /// Reusable per-thread workspaces of the parallel scan (empty until the
    /// first [`Dynamics::step_parallel`] call).
    par_pool: Vec<Workspace>,
}

impl<'a, G: Game + ?Sized> Dynamics<'a, G> {
    /// Creates a process in the given initial state.
    pub fn new(game: &'a G, initial: OwnedGraph, config: DynamicsConfig) -> Self {
        let n = initial.num_nodes();
        let mut ws = Workspace::with_engine_budgets(
            n,
            config.oracle,
            config.oracle_cache_budget,
            config.oracle_byte_budget,
        );
        ws.set_warm_batching(config.warm_batching);
        if config.oracle == OracleKind::Persistent {
            // Bulk-pin every agent's vector up front: the first policy scan
            // needs all n summaries anyway, and with batching on the cold
            // fill costs ⌈n/64⌉ shared bitset waves instead of n scalar
            // traversals (with batching off this is the same n `begin`s the
            // first scan would have issued, just grouped here).
            let all: Vec<NodeId> = (0..n).collect();
            ws.evaluator.pin_sources(&initial, &all);
        }
        let mut dyn_ = Dynamics {
            game,
            graph: initial,
            config,
            ws,
            steps: 0,
            last_mover: None,
            seen: HashMap::new(),
            trajectory: Vec::new(),
            verified_happy: vec![false; n],
            verified_call: vec![0; n],
            select_call: 0,
            cached_cost: vec![f64::INFINITY; n],
            cost_fresh: vec![false; n],
            confirm_pending: false,
            pre_dists: Vec::new(),
            changed_scratch: Vec::new(),
            warm_scratch: Vec::new(),
            order_scratch: Vec::new(),
            par_pool: Vec::new(),
        };
        if dyn_.config.detect_cycles {
            let key = dyn_.state_key();
            dyn_.seen.insert(key, 0);
        }
        dyn_
    }

    fn state_key(&self) -> StateKey {
        if self.config.ownership_in_state {
            canonical_state_key(&self.graph)
        } else {
            canonical_unlabeled_key(&self.graph)
        }
    }

    /// The current network state.
    pub fn graph(&self) -> &OwnedGraph {
        &self.graph
    }

    /// Number of moves performed so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The recorded trajectory so far.
    pub fn trajectory(&self) -> &[MoveRecord] {
        &self.trajectory
    }

    /// All currently unhappy agents (agents with at least one feasible improving move).
    pub fn unhappy_agents(&mut self) -> Vec<NodeId> {
        let g = &self.graph;
        (0..g.num_nodes())
            .filter(|&u| self.game.has_improving_move(g, u, &mut self.ws))
            .collect()
    }

    /// Performs one step with the configured policy. Returns `None` if the state is
    /// stable (and the process therefore stops).
    pub fn step<R: Rng>(&mut self, rng: &mut R) -> Option<MoveRecord> {
        let mover = if self.config.dirty_agents {
            self.select_mover_dirty(rng)?
        } else {
            let _sp = trace::span(trace::Phase::Scan);
            self.config.policy.select_mover(
                self.game,
                &self.graph,
                &mut self.ws,
                self.config.tie_break,
                self.last_mover,
                rng,
            )?
        };
        self.step_with_agent(mover, rng)
    }

    /// Performs one step with a caller-chosen moving agent (the "adversarial"
    /// policy of the proofs). Returns `None` if the agent has no improving move.
    pub fn step_with_agent<R: Rng>(&mut self, agent: NodeId, rng: &mut R) -> Option<MoveRecord> {
        let (chosen, endpoints) = {
            let _sp = trace::span(trace::Phase::Apply);
            let chosen = self.choose_response(agent, rng)?;
            let endpoints = if self.config.dirty_agents {
                self.snapshot_endpoints(agent, &chosen.mv)
            } else {
                None
            };
            let undo = apply_move(&mut self.graph, agent, &chosen.mv);
            debug_assert!(undo.is_some(), "selected move must be applicable");
            (chosen, endpoints)
        };
        if self.config.dirty_agents {
            let _sp = trace::span(trace::Phase::Warm);
            self.invalidate_after_move(agent, endpoints);
        }
        let record = MoveRecord {
            step: self.steps,
            agent,
            mv: chosen.mv,
            old_cost: chosen.old_cost,
            new_cost: chosen.new_cost,
        };
        self.steps += 1;
        self.last_mover = Some(agent);
        if self.config.record_trajectory {
            self.trajectory.push(record.clone());
        }
        Some(record)
    }

    /// Work counters of the workspace's distance oracle.
    pub fn oracle_stats(&self) -> OracleStats {
        self.ws.oracle_stats()
    }

    /// True iff the workspace's oracle carries distance vectors across steps
    /// and can export exact change sets.
    fn persistent_oracle(&self) -> bool {
        self.ws.oracle_kind() == OracleKind::Persistent
    }

    /// The vertices whose distance vectors a single-edge move by `agent` can
    /// touch. `None` means the move is a whole-strategy change and everything
    /// must be invalidated.
    ///
    /// With a non-persistent oracle the endpoints' pre-move distance vectors
    /// are snapshotted (one BFS each) so the post-move diff can be computed.
    /// With the persistent oracle the endpoints are instead pinned into the
    /// oracle's per-source cache at the pre-move version: the post-move re-pin
    /// then replays exactly this move's deltas and exports the exact
    /// changed-vertex set for free — no endpoint BFS at all.
    fn snapshot_endpoints(&mut self, agent: NodeId, mv: &Move) -> Option<Vec<NodeId>> {
        let endpoints: Vec<NodeId> = match *mv {
            Move::Swap { from, to } => vec![agent, from, to],
            Move::Buy { to } | Move::Delete { to } => vec![agent, to],
            Move::SetOwned { .. } | Move::SetNeighbors { .. } => return None,
        };
        if self.persistent_oracle() {
            // Lazy pin: under post-move warming every endpoint vector is
            // already parked at the current version, so this is free; only
            // cold or stale endpoints pay a repair or a BFS.
            self.ws.evaluator.pin_sources(&self.graph, &endpoints);
        } else {
            self.pre_dists.resize(endpoints.len(), Vec::new());
            for (i, &e) in endpoints.iter().enumerate() {
                let dist = self.ws.bfs.run(&self.graph, e);
                self.pre_dists[i].clear();
                self.pre_dists[i].extend_from_slice(dist);
            }
        }
        Some(endpoints)
    }

    /// Invalidates the happiness / cost caches of every agent whose distance
    /// vector may have changed: for single-edge moves, exactly the agents whose
    /// distance to one of the move's endpoints differs between the pre- and
    /// post-move states (plus the endpoints themselves).
    fn invalidate_after_move(&mut self, agent: NodeId, endpoints: Option<Vec<NodeId>>) {
        let n = self.graph.num_nodes();
        match endpoints {
            None => self.invalidate_all(),
            Some(endpoints) if self.persistent_oracle() && self.config.warm_parked => {
                // Fused path: one oracle pass replays the endpoint vectors
                // (exporting the exact invalidation union) and warms every
                // other parked vector — no per-endpoint re-pins at all.
                let mut union = std::mem::take(&mut self.warm_scratch);
                if self
                    .ws
                    .evaluator
                    .warm_after_move(&self.graph, &endpoints, &mut union)
                {
                    for &x in &union {
                        self.verified_happy[x] = false;
                        self.cost_fresh[x] = false;
                    }
                    self.verified_happy[agent] = false;
                    self.cost_fresh[agent] = false;
                    self.warm_scratch = union;
                    self.confirm_pending = true;
                    return;
                }
                // An endpoint window was unreplayable (cold or stale
                // vector): no diff available — be conservative; the
                // post-match block warms everything from its own stamp.
                self.warm_scratch = union;
                self.invalidate_all();
            }
            Some(endpoints) if self.persistent_oracle() => {
                // Cold mode (`warm_parked == false`): per-endpoint diff
                // re-pins, the pre-warming invalidation path.
                let mut changed = std::mem::take(&mut self.changed_scratch);
                for &e in &endpoints {
                    let (_, exact) =
                        self.ws
                            .evaluator
                            .begin_agent_diff(&self.graph, e, &mut changed);
                    if !exact {
                        // The oracle had to re-pin from scratch (cold cache or
                        // staleness); no diff available — be conservative.
                        self.invalidate_all();
                        break;
                    }
                    for &x in &changed {
                        self.verified_happy[x] = false;
                        self.cost_fresh[x] = false;
                    }
                    self.verified_happy[e] = false;
                    self.cost_fresh[e] = false;
                }
                self.verified_happy[agent] = false;
                self.cost_fresh[agent] = false;
                self.changed_scratch = changed;
            }
            Some(endpoints) => {
                for (i, &e) in endpoints.iter().enumerate() {
                    let post = self.ws.bfs.run(&self.graph, e);
                    let pre = &self.pre_dists[i];
                    debug_assert_eq!(post.len(), pre.len());
                    for x in 0..n {
                        if pre[x] != post[x] {
                            self.verified_happy[x] = false;
                            self.cost_fresh[x] = false;
                        }
                    }
                    self.verified_happy[e] = false;
                    self.cost_fresh[e] = false;
                }
                self.verified_happy[agent] = false;
                self.cost_fresh[agent] = false;
            }
        }
        self.confirm_pending = true;
        if self.config.warm_parked && self.persistent_oracle() {
            // Unknown change set (whole-strategy move or an unreplayable
            // endpoint): every parked vector is suspect, so the oracle must
            // repair each from its own stamp rather than trust a bump.
            let mut all = std::mem::take(&mut self.warm_scratch);
            all.clear();
            all.extend(0..n);
            self.ws.evaluator.warm_sources(&self.graph, &all);
            self.warm_scratch = all;
        }
    }

    fn invalidate_all(&mut self) {
        self.verified_happy.iter_mut().for_each(|f| *f = false);
        self.cost_fresh.iter_mut().for_each(|f| *f = false);
    }

    /// Lazy mover selection: agents verified happy since their last
    /// invalidation are skipped; before concluding that the state is stable,
    /// one full re-verification sweep runs against the final graph.
    fn select_mover_dirty<R: Rng>(&mut self, rng: &mut R) -> Option<NodeId> {
        let n = self.graph.num_nodes();
        self.select_call += 1;
        // Iterations entered after the `confirm_pending` reset below *are*
        // the final confirmation sweep; the phase split makes its cost (and
        // the wasted-scan ratio) directly measurable.
        let mut confirming = false;
        loop {
            let _sp = trace::span(if confirming {
                trace::Phase::ConfirmSweep
            } else {
                trace::Phase::Scan
            });
            let mut order = std::mem::take(&mut self.order_scratch);
            order.clear();
            order.extend(0..n);
            match self.config.policy {
                Policy::MaxCost => {
                    // `workspace_cost` refreshes an invalidated cost through
                    // the persistent oracle's cross-step cache when available
                    // (a cheap journal replay instead of a BFS).
                    let _sp = trace::span(trace::Phase::CostRefresh);
                    for u in 0..n {
                        if !self.cost_fresh[u] && !self.verified_happy[u] {
                            self.cached_cost[u] = crate::game::workspace_cost(
                                self.game,
                                &self.graph,
                                u,
                                &mut self.ws,
                            );
                            self.cost_fresh[u] = true;
                        }
                    }
                    if self.config.tie_break == TieBreak::Random {
                        order.shuffle(rng);
                    }
                    let costs = &self.cached_cost;
                    order.sort_by(|&a, &b| {
                        costs[b]
                            .partial_cmp(&costs[a])
                            .expect("costs are never NaN")
                    });
                }
                Policy::Random => order.shuffle(rng),
                Policy::MinIndex => {}
                Policy::RoundRobin => {
                    let start = self.last_mover.map_or(0, |m| (m + 1) % n.max(1));
                    order.clear();
                    order.extend((0..n).map(|i| (start + i) % n));
                }
            }
            let mut found = None;
            let mut scanned = 0u64;
            for &u in &order {
                if self.verified_happy[u] {
                    continue;
                }
                scanned += 1;
                if self.game.has_improving_move(&self.graph, u, &mut self.ws) {
                    found = Some(u);
                    break;
                }
                self.verified_happy[u] = true;
                self.verified_call[u] = self.select_call;
            }
            trace::add(trace::Counter::AgentsScanned, scanned);
            trace::record(trace::HistId::ScanWidth, scanned);
            if confirming {
                trace::add(trace::Counter::ConfirmScans, scanned);
            }
            self.order_scratch = order;
            if found.is_some() {
                trace::add(trace::Counter::ImprovingMoves, 1);
                return found;
            }
            if self.confirm_pending {
                // The dirty heuristic found nobody; before declaring
                // convergence, re-verify every agent whose "happy" status
                // survived from an *earlier* call — a move has happened since,
                // and an unchanged own distance vector does not pin down the
                // values of a candidate scan. Agents verified in the current
                // call were scanned against this exact state already; the
                // deterministic scan would repeat itself, so they are exempt.
                self.confirm_pending = false;
                for u in 0..n {
                    if self.verified_call[u] != self.select_call {
                        self.verified_happy[u] = false;
                    }
                }
                confirming = true;
                continue;
            }
            return None;
        }
    }

    fn choose_response<R: Rng>(&mut self, agent: NodeId, rng: &mut R) -> Option<ScoredMove> {
        let candidates = match self.config.response_mode {
            ResponseMode::BestResponse => {
                self.game.best_responses(&self.graph, agent, &mut self.ws)
            }
            ResponseMode::FirstImproving => {
                self.game.improving_moves(&self.graph, agent, &mut self.ws)
            }
        };
        if candidates.is_empty() {
            return None;
        }
        match self.config.tie_break {
            TieBreak::Deterministic => {
                let mut c = candidates;
                c.sort_by_key(|s| s.mv.sort_key());
                Some(c.remove(0))
            }
            TieBreak::Random => candidates.choose(rng).cloned(),
        }
    }

    /// Checks the current termination/cycle bookkeeping after a successful
    /// step; shared by the sequential and parallel run loops.
    fn post_step_cycle_check(&mut self) -> Option<Termination> {
        if self.config.detect_cycles {
            let key = self.state_key();
            if let Some(&first) = self.seen.get(&key) {
                return Some(Termination::CycleDetected {
                    first_seen_step: first,
                    period: self.steps - first,
                });
            }
            self.seen.insert(key, self.steps);
        }
        None
    }

    /// Runs the process until termination and returns the outcome.
    pub fn run<R: Rng>(mut self, rng: &mut R) -> DynamicsOutcome {
        loop {
            if self.steps >= self.config.max_steps {
                return self.finish(Termination::StepLimit);
            }
            let before_steps = self.steps;
            match self.step(rng) {
                None => return self.finish(Termination::Converged),
                Some(_) => {
                    debug_assert_eq!(self.steps, before_steps + 1);
                    if let Some(termination) = self.post_step_cycle_check() {
                        return self.finish(termination);
                    }
                }
            }
        }
    }

    fn finish(self, termination: Termination) -> DynamicsOutcome {
        DynamicsOutcome {
            termination,
            steps: self.steps,
            final_graph: self.graph,
            trajectory: self.trajectory,
        }
    }
}

impl<'a, G: Game + Sync + ?Sized> Dynamics<'a, G> {
    /// Like [`Dynamics::step`], but the per-agent unhappiness scan (and, for
    /// the max-cost policy, the cost measurements) run across `threads`
    /// scoped worker threads, each with its own workspace.
    ///
    /// This is a *full* scan — it neither consults nor needs the dirty-agent
    /// set — so it suits the large-`n` regime where one step's scan dominates
    /// and a rescan per step is acceptable when spread over cores. The
    /// selected mover follows the configured policy and tie-break exactly as
    /// in the sequential scan (the RNG stream differs, so trajectories are
    /// reproducible per `(seed, threads)` but not across scan modes).
    pub fn step_parallel<R: Rng>(&mut self, rng: &mut R, threads: usize) -> Option<MoveRecord> {
        let mover = self.select_mover_parallel(rng, threads)?;
        self.step_with_agent(mover, rng)
    }

    fn select_mover_parallel<R: Rng>(&mut self, rng: &mut R, threads: usize) -> Option<NodeId> {
        let n = self.graph.num_nodes();
        if n == 0 {
            return None;
        }
        let need_cost = self.config.policy == Policy::MaxCost;
        let kind = self.ws.oracle_kind();
        let results: Vec<(bool, f64)> = crate::equilibrium::scan_agents_parallel(
            self.game,
            &self.graph,
            kind,
            self.config.oracle_cache_budget,
            self.config.oracle_byte_budget,
            threads,
            &mut self.par_pool,
            |game, g, u, ws| {
                let unhappy = game.has_improving_move(g, u, ws);
                let cost = if need_cost {
                    crate::game::workspace_cost(game, g, u, ws)
                } else {
                    0.0
                };
                (unhappy, cost)
            },
        );
        let mut order: Vec<NodeId> = (0..n).collect();
        match self.config.policy {
            Policy::MaxCost => {
                if self.config.tie_break == TieBreak::Random {
                    order.shuffle(rng);
                }
                order.sort_by(|&a, &b| {
                    results[b]
                        .1
                        .partial_cmp(&results[a].1)
                        .expect("costs are never NaN")
                });
            }
            Policy::Random => order.shuffle(rng),
            Policy::MinIndex => {}
            Policy::RoundRobin => {
                let start = self.last_mover.map_or(0, |m| (m + 1) % n);
                order = (0..n).map(|i| (start + i) % n).collect();
            }
        }
        order.into_iter().find(|&u| results[u].0)
    }
}

/// Runs the sequential-move process defined by `game` and `config` from the initial
/// network `initial`.
pub fn run_dynamics<G: Game + ?Sized, R: Rng>(
    game: &G,
    initial: &OwnedGraph,
    config: &DynamicsConfig,
    rng: &mut R,
) -> DynamicsOutcome {
    Dynamics::new(game, initial.clone(), config.clone()).run(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::{AsymSwapGame, GreedyBuyGame, SwapGame};
    use ncg_graph::{generators, is_tree, properties};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_converges_under_sum_swap_game() {
        let game = SwapGame::sum();
        let g = generators::path(8);
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = DynamicsConfig::simulation(10_000);
        let out = run_dynamics(&game, &g, &cfg, &mut rng);
        assert!(out.converged());
        assert!(is_tree(&out.final_graph));
        // Stable trees of the SUM-SG are stars.
        assert!(properties::is_star(&out.final_graph));
    }

    #[test]
    fn max_swap_game_on_tree_converges_to_diameter_le_3() {
        let game = SwapGame::max();
        let g = generators::path(9);
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = DynamicsConfig::simulation(10_000).with_policy(Policy::MaxCost);
        let out = run_dynamics(&game, &g, &cfg, &mut rng);
        assert!(out.converged());
        assert!(properties::is_star_or_double_star(&out.final_graph));
    }

    #[test]
    fn every_recorded_move_strictly_improves_the_mover() {
        let game = AsymSwapGame::sum();
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::budgeted_random(20, 2, &mut rng);
        let mut cfg = DynamicsConfig::simulation(10_000);
        cfg.record_trajectory = true;
        let out = run_dynamics(&game, &g, &cfg, &mut rng);
        assert!(out.converged());
        for rec in &out.trajectory {
            assert!(
                rec.new_cost < rec.old_cost,
                "step {}: not improving",
                rec.step
            );
        }
    }

    #[test]
    fn step_limit_is_respected() {
        let game = GreedyBuyGame::sum(2.0);
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::random_with_m_edges(15, 30, &mut rng);
        let mut cfg = DynamicsConfig::simulation(3);
        cfg.record_trajectory = true;
        let out = run_dynamics(&game, &g, &cfg, &mut rng);
        assert!(out.steps <= 3);
        if !out.converged() {
            assert_eq!(out.termination, Termination::StepLimit);
        }
    }

    #[test]
    fn stable_initial_state_converges_in_zero_steps() {
        let game = SwapGame::sum();
        let g = generators::star(7);
        let mut rng = StdRng::seed_from_u64(5);
        let out = run_dynamics(&game, &g, &DynamicsConfig::simulation(100), &mut rng);
        assert!(out.converged());
        assert_eq!(out.steps, 0);
        assert_eq!(out.final_graph, g);
    }

    #[test]
    fn manual_stepping_controls_the_mover() {
        let game = SwapGame::sum();
        let g = generators::path(6);
        let mut rng = StdRng::seed_from_u64(6);
        let mut dynamics = Dynamics::new(&game, g, DynamicsConfig::analysis(100));
        let unhappy = dynamics.unhappy_agents();
        assert!(unhappy.contains(&0) && unhappy.contains(&5));
        // Vertex 2 (near the centre) is happy on P6? Its sum-distance is 1+2+1+2+3=9;
        // swapping cannot beat attaching to the centre it already has. Either way,
        // forcing a happy agent must return None without changing the state.
        let before = dynamics.graph().clone();
        let happy: Vec<_> = (0..6).filter(|u| !unhappy.contains(u)).collect();
        if let Some(&h) = happy.first() {
            assert!(dynamics.step_with_agent(h, &mut rng).is_none());
            assert_eq!(dynamics.graph(), &before);
        }
        let rec = dynamics.step_with_agent(0, &mut rng).expect("0 is unhappy");
        assert_eq!(rec.agent, 0);
        assert_eq!(dynamics.steps(), 1);
        assert_eq!(dynamics.trajectory().len(), 1);
    }

    #[test]
    fn dirty_agent_tracking_reaches_stable_states() {
        // The dirty-agent engine may pick different movers than the eager
        // scan, but every run must still end in a genuinely stable network
        // (the final confirmation sweep makes termination exact).
        use crate::equilibrium::is_stable;
        for kind in [
            OracleKind::FullBfs,
            OracleKind::Incremental,
            OracleKind::Persistent,
        ] {
            let mut rng = StdRng::seed_from_u64(17);
            let n = 18;
            let g = generators::random_with_m_edges(n, 2 * n, &mut rng);
            let game = GreedyBuyGame::sum(n as f64 / 4.0);
            let mut cfg = DynamicsConfig::simulation(400 * n)
                .with_oracle(kind)
                .with_dirty_agents(true);
            cfg.record_trajectory = true;
            let out = run_dynamics(&game, &g, &cfg, &mut rng);
            assert!(out.converged(), "{}", kind.label());
            let mut ws = Workspace::new(n);
            assert!(
                is_stable(&game, &out.final_graph, &mut ws),
                "{}: final state must be a pure Nash equilibrium",
                kind.label()
            );
            for rec in &out.trajectory {
                assert!(rec.new_cost < rec.old_cost, "{}", kind.label());
            }
        }
    }

    #[test]
    fn dirty_agent_swap_dynamics_match_convergence_regime() {
        // SUM-ASG on trees under the max-cost policy: the Corollary 3.2 regime
        // (≈ 1.5 n moves) must hold with dirty tracking too.
        let mut rng = StdRng::seed_from_u64(31);
        for &n in &[16usize, 25] {
            let tree = generators::random_spanning_tree(n, Some(1), &mut rng);
            let cfg = DynamicsConfig::simulation(10 * n).with_dirty_agents(true);
            let out = run_dynamics(&AsymSwapGame::sum(), &tree, &cfg, &mut rng);
            assert!(out.converged(), "n={n}");
            assert!(is_tree(&out.final_graph));
            assert!(out.steps <= 2 * n, "n={n}: {} steps", out.steps);
        }
    }

    #[test]
    fn persistent_engine_matches_incremental_trajectories() {
        // Same seed, same config, different oracle backend: the scoring is
        // exact in both, so the recorded move sequences must be identical.
        let mut seed_rng = StdRng::seed_from_u64(40);
        let n = 14;
        let g = generators::random_with_m_edges(n, 2 * n, &mut seed_rng);
        let game = GreedyBuyGame::sum(n as f64 / 4.0);
        let run = |kind: OracleKind| {
            let mut rng = StdRng::seed_from_u64(99);
            let mut cfg = DynamicsConfig::simulation(400 * n).with_oracle(kind);
            cfg.record_trajectory = true;
            run_dynamics(&game, &g, &cfg, &mut rng)
        };
        let reference = run(OracleKind::FullBfs);
        for kind in [OracleKind::Incremental, OracleKind::Persistent] {
            let out = run(kind);
            assert_eq!(out.termination, reference.termination, "{}", kind.label());
            assert_eq!(out.trajectory, reference.trajectory, "{}", kind.label());
            assert_eq!(out.final_graph, reference.final_graph, "{}", kind.label());
        }
    }

    #[test]
    fn persistent_dirty_engine_certifies_exact_equilibria() {
        // The oracle-exported changed-vertex invalidation plus the final
        // confirmation sweep must still end in a genuine pure Nash
        // equilibrium, with every recorded move strictly improving.
        use crate::equilibrium::is_stable;
        let mut rng = StdRng::seed_from_u64(53);
        let n = 20;
        let g = generators::random_with_m_edges(n, 2 * n, &mut rng);
        let game = GreedyBuyGame::sum(n as f64 / 4.0);
        let mut cfg = DynamicsConfig::simulation(400 * n)
            .with_oracle(OracleKind::Persistent)
            .with_dirty_agents(true);
        cfg.record_trajectory = true;
        let out = run_dynamics(&game, &g, &cfg, &mut rng);
        assert!(out.converged());
        let mut ws = Workspace::new(n);
        assert!(is_stable(&game, &out.final_graph, &mut ws));
        for rec in &out.trajectory {
            assert!(rec.new_cost < rec.old_cost, "step {}", rec.step);
        }
    }

    #[test]
    fn bilateral_delta_consent_matches_fallback_trajectories() {
        // The bilateral game on a persistent engine scores every candidate
        // (and every consent check) through oracle what-ifs; the scoring is
        // exact, so its trajectories must be identical to the
        // apply → BFS → undo engines.
        use crate::games::BilateralBuyGame;
        let mut seed_rng = StdRng::seed_from_u64(71);
        let n = 9;
        let g = generators::random_with_m_edges(n, 14, &mut seed_rng);
        for &alpha in &[1.0, 4.0] {
            let game = BilateralBuyGame::sum(alpha);
            let run = |kind: OracleKind| {
                let mut rng = StdRng::seed_from_u64(13);
                let mut cfg = DynamicsConfig::simulation(200 * n).with_oracle(kind);
                cfg.record_trajectory = true;
                run_dynamics(&game, &g, &cfg, &mut rng)
            };
            let reference = run(OracleKind::FullBfs);
            assert!(reference.converged(), "α={alpha}");
            for kind in [OracleKind::Incremental, OracleKind::Persistent] {
                let out = run(kind);
                assert_eq!(
                    out.termination,
                    reference.termination,
                    "α={alpha} {}",
                    kind.label()
                );
                assert_eq!(
                    out.trajectory,
                    reference.trajectory,
                    "α={alpha} {}",
                    kind.label()
                );
                assert_eq!(
                    out.final_graph,
                    reference.final_graph,
                    "α={alpha} {}",
                    kind.label()
                );
            }
        }
    }

    #[test]
    fn oracle_cache_budget_never_changes_trajectories() {
        // LRU eviction only trades speed for memory: a harshly budgeted
        // persistent engine must walk exactly the same move sequence as the
        // unlimited one.
        let mut seed_rng = StdRng::seed_from_u64(61);
        let n = 16;
        let g = generators::random_with_m_edges(n, 2 * n, &mut seed_rng);
        let game = GreedyBuyGame::sum(n as f64 / 4.0);
        let run = |budget: Option<usize>| {
            let mut rng = StdRng::seed_from_u64(7);
            let mut cfg = DynamicsConfig::simulation(400 * n)
                .with_oracle(OracleKind::Persistent)
                .with_oracle_cache_budget(budget);
            cfg.record_trajectory = true;
            run_dynamics(&game, &g, &cfg, &mut rng)
        };
        let unlimited = run(None);
        assert!(unlimited.converged());
        for budget in [Some(0), Some(1), Some(4)] {
            let capped = run(budget);
            assert_eq!(capped.trajectory, unlimited.trajectory, "{budget:?}");
            assert_eq!(capped.final_graph, unlimited.final_graph, "{budget:?}");
        }
    }

    #[test]
    fn oracle_byte_budget_never_changes_trajectories() {
        // Byte budgets demote parked vectors to their sparse balls and then
        // evict them; both are invisible to scoring, so harshly capped runs
        // must walk exactly the unlimited move sequence.
        let mut seed_rng = StdRng::seed_from_u64(67);
        let n = 16;
        let g = generators::random_with_m_edges(n, 2 * n, &mut seed_rng);
        let game = GreedyBuyGame::sum(n as f64 / 4.0);
        let run = |budget: Option<u64>| {
            let mut rng = StdRng::seed_from_u64(7);
            let mut cfg = DynamicsConfig::simulation(400 * n)
                .with_oracle(OracleKind::Persistent)
                .with_oracle_byte_budget(budget);
            cfg.record_trajectory = true;
            run_dynamics(&game, &g, &cfg, &mut rng)
        };
        let unlimited = run(Some(u64::MAX));
        assert!(unlimited.converged());
        // One dense slot at n = 16 is 68 bytes: 40 forces every park through
        // demotion and eviction, 200 keeps a couple of balls alive.
        for budget in [None, Some(40), Some(200)] {
            let capped = run(budget);
            assert_eq!(capped.trajectory, unlimited.trajectory, "{budget:?}");
            assert_eq!(capped.final_graph, unlimited.final_graph, "{budget:?}");
        }
    }

    #[test]
    fn parallel_scan_selects_valid_movers_and_converges() {
        let mut rng = StdRng::seed_from_u64(23);
        let n = 16;
        let g = generators::random_with_m_edges(n, 2 * n, &mut rng);
        let game = GreedyBuyGame::sum(n as f64 / 4.0);
        let cfg = DynamicsConfig::simulation(400 * n);
        let mut dynamics = Dynamics::new(&game, g, cfg);
        let mut steps = 0usize;
        while let Some(record) = dynamics.step_parallel(&mut rng, 3) {
            assert!(record.new_cost < record.old_cost);
            steps += 1;
            assert!(steps <= 400 * n, "did not converge");
        }
        let mut ws = Workspace::new(n);
        assert!(crate::equilibrium::is_stable(
            &game,
            dynamics.graph(),
            &mut ws
        ));
    }

    #[test]
    fn greedy_buy_game_random_network_converges() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 20;
        let g = generators::random_with_m_edges(n, 2 * n, &mut rng);
        let game = GreedyBuyGame::sum(n as f64 / 4.0);
        let cfg = DynamicsConfig::simulation(10_000).with_policy(Policy::Random);
        let out = run_dynamics(&game, &g, &cfg, &mut rng);
        assert!(out.converged(), "GBG should converge on random instances");
        assert!(properties::is_connected(&out.final_graph));
    }
}
