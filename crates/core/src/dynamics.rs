//! The sequential-move network creation process (paper §1.1).
//!
//! Starting from an initial network, in every step the move policy selects one
//! unhappy agent, who then performs an improving move (by default a best response).
//! The process stops when no agent is unhappy (a stable network / pure Nash
//! equilibrium has been reached), when an exact previously-visited state recurs
//! (a better-response cycle has been detected), or when the step limit is hit.

use crate::game::{Game, ScoredMove, Workspace};
use crate::moves::{apply_move, Move};
use crate::policy::{Policy, TieBreak};
use ncg_graph::{canonical_state_key, canonical_unlabeled_key, NodeId, OwnedGraph, StateKey};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;

/// Whether the moving agent plays a best response or any improving move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResponseMode {
    /// The moving agent performs a best possible improving move (best response).
    BestResponse,
    /// The moving agent performs the first improving move found (better response).
    FirstImproving,
}

/// Configuration of a dynamics run.
#[derive(Debug, Clone)]
pub struct DynamicsConfig {
    /// Who moves.
    pub policy: Policy,
    /// How ties are broken (both among max-cost agents and among best responses).
    pub tie_break: TieBreak,
    /// Best responses or arbitrary improving moves.
    pub response_mode: ResponseMode,
    /// Hard limit on the number of moves.
    pub max_steps: usize,
    /// If `true`, every visited state is remembered and an exact recurrence stops
    /// the run with [`Termination::CycleDetected`].
    pub detect_cycles: bool,
    /// If `true`, every move is recorded in the trajectory.
    pub record_trajectory: bool,
    /// If `true`, edge ownership is part of the state identity used for cycle
    /// detection (correct for ASG/GBG/BG/bilateral). The symmetric Swap Game
    /// ignores ownership and should set this to `false`.
    pub ownership_in_state: bool,
}

impl DynamicsConfig {
    /// Sensible defaults for simulations: max-cost policy, random tie-break,
    /// best responses, no cycle detection, no trajectory recording.
    pub fn simulation(max_steps: usize) -> Self {
        DynamicsConfig {
            policy: Policy::MaxCost,
            tie_break: TieBreak::Random,
            response_mode: ResponseMode::BestResponse,
            max_steps,
            detect_cycles: false,
            record_trajectory: false,
            ownership_in_state: true,
        }
    }

    /// Defaults for analysing small instances: deterministic tie-break, cycle
    /// detection and full trajectory recording.
    pub fn analysis(max_steps: usize) -> Self {
        DynamicsConfig {
            policy: Policy::MinIndex,
            tie_break: TieBreak::Deterministic,
            response_mode: ResponseMode::BestResponse,
            max_steps,
            detect_cycles: true,
            record_trajectory: true,
            ownership_in_state: true,
        }
    }

    /// Sets the move policy.
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the tie-breaking rule.
    pub fn with_tie_break(mut self, tie_break: TieBreak) -> Self {
        self.tie_break = tie_break;
        self
    }

    /// Sets the response mode.
    pub fn with_response_mode(mut self, mode: ResponseMode) -> Self {
        self.response_mode = mode;
        self
    }
}

/// One performed move.
#[derive(Debug, Clone, PartialEq)]
pub struct MoveRecord {
    /// Index of the step (0-based).
    pub step: usize,
    /// The moving agent.
    pub agent: NodeId,
    /// The strategy change performed.
    pub mv: Move,
    /// The agent's cost before the move.
    pub old_cost: f64,
    /// The agent's cost after the move.
    pub new_cost: f64,
}

/// Why the process stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Termination {
    /// No agent has an improving move: a stable network (pure Nash equilibrium).
    Converged,
    /// The exact state of step `first_seen_step` recurred after `period` further
    /// moves — a better-response cycle.
    CycleDetected {
        /// Step at which the recurring state was first visited.
        first_seen_step: usize,
        /// Number of moves after which it recurred.
        period: usize,
    },
    /// The configured step limit was reached without convergence.
    StepLimit,
}

/// Result of a dynamics run.
#[derive(Debug, Clone)]
pub struct DynamicsOutcome {
    /// Why the run stopped.
    pub termination: Termination,
    /// Number of moves performed.
    pub steps: usize,
    /// The final network state.
    pub final_graph: OwnedGraph,
    /// The recorded trajectory (empty unless `record_trajectory` was set).
    pub trajectory: Vec<MoveRecord>,
}

impl DynamicsOutcome {
    /// Convenience: did the process converge to a stable network?
    pub fn converged(&self) -> bool {
        self.termination == Termination::Converged
    }
}

/// A stepwise-controllable network creation process.
///
/// [`run_dynamics`] drives it automatically; tests and the adversarial
/// constructions use [`Dynamics::step_with_agent`] to force particular movers.
pub struct Dynamics<'a, G: Game + ?Sized> {
    game: &'a G,
    graph: OwnedGraph,
    config: DynamicsConfig,
    ws: Workspace,
    steps: usize,
    last_mover: Option<NodeId>,
    seen: HashMap<StateKey, usize>,
    trajectory: Vec<MoveRecord>,
}

impl<'a, G: Game + ?Sized> Dynamics<'a, G> {
    /// Creates a process in the given initial state.
    pub fn new(game: &'a G, initial: OwnedGraph, config: DynamicsConfig) -> Self {
        let n = initial.num_nodes();
        let mut dyn_ = Dynamics {
            game,
            graph: initial,
            config,
            ws: Workspace::new(n),
            steps: 0,
            last_mover: None,
            seen: HashMap::new(),
            trajectory: Vec::new(),
        };
        if dyn_.config.detect_cycles {
            let key = dyn_.state_key();
            dyn_.seen.insert(key, 0);
        }
        dyn_
    }

    fn state_key(&self) -> StateKey {
        if self.config.ownership_in_state {
            canonical_state_key(&self.graph)
        } else {
            canonical_unlabeled_key(&self.graph)
        }
    }

    /// The current network state.
    pub fn graph(&self) -> &OwnedGraph {
        &self.graph
    }

    /// Number of moves performed so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The recorded trajectory so far.
    pub fn trajectory(&self) -> &[MoveRecord] {
        &self.trajectory
    }

    /// All currently unhappy agents (agents with at least one feasible improving move).
    pub fn unhappy_agents(&mut self) -> Vec<NodeId> {
        let g = &self.graph;
        (0..g.num_nodes())
            .filter(|&u| self.game.has_improving_move(g, u, &mut self.ws))
            .collect()
    }

    /// Performs one step with the configured policy. Returns `None` if the state is
    /// stable (and the process therefore stops).
    pub fn step<R: Rng>(&mut self, rng: &mut R) -> Option<MoveRecord> {
        let mover = self.config.policy.select_mover(
            self.game,
            &self.graph,
            &mut self.ws,
            self.config.tie_break,
            self.last_mover,
            rng,
        )?;
        self.step_with_agent(mover, rng)
    }

    /// Performs one step with a caller-chosen moving agent (the "adversarial"
    /// policy of the proofs). Returns `None` if the agent has no improving move.
    pub fn step_with_agent<R: Rng>(&mut self, agent: NodeId, rng: &mut R) -> Option<MoveRecord> {
        let chosen = self.choose_response(agent, rng)?;
        let undo = apply_move(&mut self.graph, agent, &chosen.mv);
        debug_assert!(undo.is_some(), "selected move must be applicable");
        let record = MoveRecord {
            step: self.steps,
            agent,
            mv: chosen.mv,
            old_cost: chosen.old_cost,
            new_cost: chosen.new_cost,
        };
        self.steps += 1;
        self.last_mover = Some(agent);
        if self.config.record_trajectory {
            self.trajectory.push(record.clone());
        }
        Some(record)
    }

    fn choose_response<R: Rng>(&mut self, agent: NodeId, rng: &mut R) -> Option<ScoredMove> {
        let candidates = match self.config.response_mode {
            ResponseMode::BestResponse => {
                self.game.best_responses(&self.graph, agent, &mut self.ws)
            }
            ResponseMode::FirstImproving => {
                self.game.improving_moves(&self.graph, agent, &mut self.ws)
            }
        };
        if candidates.is_empty() {
            return None;
        }
        match self.config.tie_break {
            TieBreak::Deterministic => {
                let mut c = candidates;
                c.sort_by_key(|s| s.mv.sort_key());
                Some(c.remove(0))
            }
            TieBreak::Random => candidates.choose(rng).cloned(),
        }
    }

    /// Runs the process until termination and returns the outcome.
    pub fn run<R: Rng>(mut self, rng: &mut R) -> DynamicsOutcome {
        loop {
            if self.steps >= self.config.max_steps {
                return self.finish(Termination::StepLimit);
            }
            let before_steps = self.steps;
            match self.step(rng) {
                None => return self.finish(Termination::Converged),
                Some(_) => {
                    debug_assert_eq!(self.steps, before_steps + 1);
                    if self.config.detect_cycles {
                        let key = self.state_key();
                        if let Some(&first) = self.seen.get(&key) {
                            let termination = Termination::CycleDetected {
                                first_seen_step: first,
                                period: self.steps - first,
                            };
                            return self.finish(termination);
                        }
                        self.seen.insert(key, self.steps);
                    }
                }
            }
        }
    }

    fn finish(self, termination: Termination) -> DynamicsOutcome {
        DynamicsOutcome {
            termination,
            steps: self.steps,
            final_graph: self.graph,
            trajectory: self.trajectory,
        }
    }
}

/// Runs the sequential-move process defined by `game` and `config` from the initial
/// network `initial`.
pub fn run_dynamics<G: Game + ?Sized, R: Rng>(
    game: &G,
    initial: &OwnedGraph,
    config: &DynamicsConfig,
    rng: &mut R,
) -> DynamicsOutcome {
    Dynamics::new(game, initial.clone(), config.clone()).run(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::{AsymSwapGame, GreedyBuyGame, SwapGame};
    use ncg_graph::{generators, is_tree, properties};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_converges_under_sum_swap_game() {
        let game = SwapGame::sum();
        let g = generators::path(8);
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = DynamicsConfig::simulation(10_000);
        let out = run_dynamics(&game, &g, &cfg, &mut rng);
        assert!(out.converged());
        assert!(is_tree(&out.final_graph));
        // Stable trees of the SUM-SG are stars.
        assert!(properties::is_star(&out.final_graph));
    }

    #[test]
    fn max_swap_game_on_tree_converges_to_diameter_le_3() {
        let game = SwapGame::max();
        let g = generators::path(9);
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = DynamicsConfig::simulation(10_000).with_policy(Policy::MaxCost);
        let out = run_dynamics(&game, &g, &cfg, &mut rng);
        assert!(out.converged());
        assert!(properties::is_star_or_double_star(&out.final_graph));
    }

    #[test]
    fn every_recorded_move_strictly_improves_the_mover() {
        let game = AsymSwapGame::sum();
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::budgeted_random(20, 2, &mut rng);
        let mut cfg = DynamicsConfig::simulation(10_000);
        cfg.record_trajectory = true;
        let out = run_dynamics(&game, &g, &cfg, &mut rng);
        assert!(out.converged());
        for rec in &out.trajectory {
            assert!(rec.new_cost < rec.old_cost, "step {}: not improving", rec.step);
        }
    }

    #[test]
    fn step_limit_is_respected() {
        let game = GreedyBuyGame::sum(2.0);
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::random_with_m_edges(15, 30, &mut rng);
        let mut cfg = DynamicsConfig::simulation(3);
        cfg.record_trajectory = true;
        let out = run_dynamics(&game, &g, &cfg, &mut rng);
        assert!(out.steps <= 3);
        if !out.converged() {
            assert_eq!(out.termination, Termination::StepLimit);
        }
    }

    #[test]
    fn stable_initial_state_converges_in_zero_steps() {
        let game = SwapGame::sum();
        let g = generators::star(7);
        let mut rng = StdRng::seed_from_u64(5);
        let out = run_dynamics(&game, &g, &DynamicsConfig::simulation(100), &mut rng);
        assert!(out.converged());
        assert_eq!(out.steps, 0);
        assert_eq!(out.final_graph, g);
    }

    #[test]
    fn manual_stepping_controls_the_mover() {
        let game = SwapGame::sum();
        let g = generators::path(6);
        let mut rng = StdRng::seed_from_u64(6);
        let mut dynamics = Dynamics::new(&game, g, DynamicsConfig::analysis(100));
        let unhappy = dynamics.unhappy_agents();
        assert!(unhappy.contains(&0) && unhappy.contains(&5));
        // Vertex 2 (near the centre) is happy on P6? Its sum-distance is 1+2+1+2+3=9;
        // swapping cannot beat attaching to the centre it already has. Either way,
        // forcing a happy agent must return None without changing the state.
        let before = dynamics.graph().clone();
        let happy: Vec<_> = (0..6).filter(|u| !unhappy.contains(u)).collect();
        if let Some(&h) = happy.first() {
            assert!(dynamics.step_with_agent(h, &mut rng).is_none());
            assert_eq!(dynamics.graph(), &before);
        }
        let rec = dynamics.step_with_agent(0, &mut rng).expect("0 is unhappy");
        assert_eq!(rec.agent, 0);
        assert_eq!(dynamics.steps(), 1);
        assert_eq!(dynamics.trajectory().len(), 1);
    }

    #[test]
    fn greedy_buy_game_random_network_converges() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 20;
        let g = generators::random_with_m_edges(n, 2 * n, &mut rng);
        let game = GreedyBuyGame::sum(n as f64 / 4.0);
        let cfg = DynamicsConfig::simulation(10_000).with_policy(Policy::Random);
        let out = run_dynamics(&game, &g, &cfg, &mut rng);
        assert!(out.converged(), "GBG should converge on random instances");
        assert!(properties::is_connected(&out.final_graph));
    }
}
