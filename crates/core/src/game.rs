//! The [`Game`] trait: everything the dynamics engine needs to know about a
//! network creation game variant.
//!
//! A game defines (1) the cost of an agent in a state, (2) the admissible strategy
//! changes (candidate moves) of an agent, and (3) which of those are *feasible*
//! (host-graph restrictions are handled during enumeration; the bilateral game adds
//! a consent check). On top of those primitives the trait provides derived queries
//! used everywhere: improving moves, best responses and unhappiness tests.

use crate::cost::{agent_cost_total, is_improvement, DistanceMetric, EdgeCostMode};
use crate::evaluator::{edge_cost_after, party_edge_cost_after, CostEvaluator, DeltaScore};
use crate::moves::{apply_move, undo_move, Move};
use ncg_graph::oracle::{OracleKind, OracleStats};
use ncg_graph::{BfsBuffer, HostGraph, NodeId, OwnedGraph};

/// Reusable scratch space for best-response computations.
///
/// Keeping the BFS buffer, the distance-oracle evaluator, the scratch graph and
/// the candidate vector alive across calls removes all allocation from the
/// inner loop of the dynamics engine.
#[derive(Debug)]
pub struct Workspace {
    /// Single-source BFS workspace (used by the fallback scoring path and by
    /// the cost queries of policies and equilibrium checks).
    pub bfs: BfsBuffer,
    /// Distance-oracle-backed candidate scorer.
    pub evaluator: CostEvaluator,
    scratch: OwnedGraph,
    candidates: Vec<Move>,
    parties: Vec<NodeId>,
}

impl Workspace {
    /// Creates a workspace for graphs on `n` vertices with the default
    /// (incremental) distance-oracle backend.
    pub fn new(n: usize) -> Self {
        Workspace::with_oracle(n, OracleKind::default())
    }

    /// Creates a workspace with an explicit distance-oracle backend.
    pub fn with_oracle(n: usize, kind: OracleKind) -> Self {
        Workspace::with_engine(n, kind, None)
    }

    /// Creates a workspace with an explicit backend and persistent-cache
    /// budget (`None` = the backend default: a byte budget unlimited at
    /// `n ≤ 4096`).
    pub fn with_engine(n: usize, kind: OracleKind, cache_budget: Option<usize>) -> Self {
        Workspace::with_engine_budgets(n, kind, cache_budget, None)
    }

    /// Creates a workspace with explicit backend, slot-count and parked-byte
    /// budgets for the persistent oracle (see
    /// [`CostEvaluator::with_budgets`]); `None` = backend defaults. Pure
    /// memory knobs — trajectories are identical under any budget.
    pub fn with_engine_budgets(
        n: usize,
        kind: OracleKind,
        cache_budget: Option<usize>,
        byte_budget: Option<u64>,
    ) -> Self {
        Workspace {
            bfs: BfsBuffer::new(n),
            evaluator: CostEvaluator::with_budgets(kind, n, cache_budget, byte_budget),
            scratch: OwnedGraph::new(n),
            candidates: Vec::new(),
            parties: Vec::new(),
        }
    }

    /// Enables or disables the persistent oracle's word-parallel bulk
    /// (re)pin waves (see [`CostEvaluator::set_warm_batching`]); preserved
    /// across clones.
    pub fn set_warm_batching(&mut self, on: bool) {
        self.evaluator.set_warm_batching(on);
    }

    /// The configured distance-oracle backend.
    pub fn oracle_kind(&self) -> OracleKind {
        self.evaluator.kind()
    }

    /// Work counters of the distance oracle (for ablation measurements).
    pub fn oracle_stats(&self) -> OracleStats {
        self.evaluator.stats()
    }
}

impl Clone for Workspace {
    /// Clones the workspace configuration; the oracle state is scratch and is
    /// recreated fresh.
    fn clone(&self) -> Self {
        let mut ws = Workspace::with_engine_budgets(
            self.scratch.num_nodes(),
            self.evaluator.kind(),
            self.evaluator.cache_budget(),
            self.evaluator.byte_budget(),
        );
        ws.set_warm_batching(self.evaluator.warm_batching());
        ws
    }
}

/// A candidate move together with the moving agent's cost before and after.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredMove {
    /// The strategy change.
    pub mv: Move,
    /// The agent's cost in the current state.
    pub old_cost: f64,
    /// The agent's cost after performing the move.
    pub new_cost: f64,
}

impl ScoredMove {
    /// Strict cost decrease achieved by the move (positive for improving moves).
    pub fn improvement(&self) -> f64 {
        self.old_cost - self.new_cost
    }
}

/// A network creation game variant (SG, ASG, GBG, BG or bilateral BG in SUM or MAX
/// flavour, possibly on a restricted host graph).
pub trait Game {
    /// Human-readable name, e.g. `"SUM-ASG"`.
    fn name(&self) -> String;

    /// The distance-cost aggregate (SUM or MAX).
    fn metric(&self) -> DistanceMetric;

    /// The edge price α (irrelevant for swap games, where it is `0`).
    fn alpha(&self) -> f64 {
        0.0
    }

    /// How edge-costs are charged.
    fn edge_cost_mode(&self) -> EdgeCostMode;

    /// The host graph restricting which edges may be created.
    fn host(&self) -> &HostGraph;

    /// Cost of agent `u` in state `g`.
    ///
    /// **Override contract:** the delta-based fast path of the candidate scan
    /// recomputes costs as `edge_cost + distance_cost` from the game's
    /// `metric` / `alpha` / `edge_cost_mode` and never calls this method. A
    /// game whose cost deviates from that decomposition must also override
    /// [`Game::needs_consent`] to return `true`, which forces every candidate
    /// through the apply → BFS → undo path where this method is honoured.
    fn cost(&self, g: &OwnedGraph, u: NodeId, buf: &mut BfsBuffer) -> f64 {
        agent_cost_total(
            g,
            u,
            self.metric(),
            self.alpha(),
            self.edge_cost_mode(),
            buf,
        )
    }

    /// Enumerates the admissible strategy changes of agent `u` in state `g`
    /// (host-graph restrictions already applied), appending them to `out`.
    fn candidate_moves(&self, g: &OwnedGraph, u: NodeId, out: &mut Vec<Move>);

    /// Returns `true` if the move is *blocked* by other agents.
    ///
    /// Only the bilateral equal-split game uses this: a strategy change is blocked
    /// if some newly connected agent would see her cost strictly increase
    /// (paper §5). `g_before` is the current state, `g_after` the state after the
    /// move has been applied.
    ///
    /// **Override contract:** the delta-based fast path never materialises
    /// `g_after` and therefore never calls this method. Any game overriding it
    /// must also override [`Game::needs_consent`] to return `true`, otherwise
    /// blocked single-edge moves would silently be accepted.
    fn move_is_blocked(
        &self,
        _g_before: &OwnedGraph,
        _agent: NodeId,
        _mv: &Move,
        _g_after: &OwnedGraph,
        _buf: &mut BfsBuffer,
    ) -> bool {
        false
    }

    /// Returns `true` if the game's moves require inspecting the post-move
    /// state of *other* agents (a consent check). Such games cannot use the
    /// plain delta-based scoring fast path, which never materialises the
    /// post-move graph — unless they additionally opt into the delta-scored
    /// consent contract via [`Game::delta_consent`].
    fn needs_consent(&self) -> bool {
        false
    }

    /// Opt-in for consent games whose blocking rule is *exactly* "some consent
    /// party's standard `edge + distance` cost strictly increases": the scan
    /// may then answer both the mover's score **and** every party's consent
    /// from distance-oracle what-if queries, with no apply → BFS → undo.
    ///
    /// **Override contract:** a game returning `true` must (1) keep the
    /// default `edge + distance` decomposition of [`Game::cost`], (2) name its
    /// consent parties via [`Game::consent_parties`], and (3) have
    /// [`Game::move_is_blocked`] equivalent to the party-cost-increase rule —
    /// the fallback path still uses `move_is_blocked`, and the randomized
    /// equivalence tests compare the two paths move by move.
    fn delta_consent(&self) -> bool {
        false
    }

    /// Appends the agents (other than the mover) whose consent `mv` requires
    /// — for the bilateral game, exactly the newly connected endpoints. Only
    /// consulted on the delta consent path ([`Game::delta_consent`]).
    fn consent_parties(&self, _g: &OwnedGraph, _agent: NodeId, _mv: &Move, _out: &mut Vec<NodeId>) {
    }

    /// All feasible improving moves of agent `u`, in deterministic order.
    fn improving_moves(&self, g: &OwnedGraph, u: NodeId, ws: &mut Workspace) -> Vec<ScoredMove> {
        scan_moves(self, g, u, ws, ScanMode::AllImproving)
    }

    /// All feasible *best-response* moves of agent `u`: the improving moves of
    /// maximal cost decrease. Empty iff the agent is happy.
    ///
    /// Uses the best-only scan mode: on the delta consent path the expensive
    /// counterpart checks are deferred and run in ascending-cost order, so a
    /// scan pays for the blocked candidates *below* the best feasible cost
    /// and the ties at it — not for every improving candidate.
    fn best_responses(&self, g: &OwnedGraph, u: NodeId, ws: &mut Workspace) -> Vec<ScoredMove> {
        let mut improving = scan_moves(self, g, u, ws, ScanMode::BestOnly);
        if improving.is_empty() {
            return improving;
        }
        let best = improving
            .iter()
            .map(|s| s.new_cost)
            .fold(f64::INFINITY, f64::min);
        improving.retain(|s| s.new_cost <= best);
        improving
    }

    /// The deterministic first best response (ties broken by the move order:
    /// deletions before swaps before purchases, then lexicographically).
    fn best_response(&self, g: &OwnedGraph, u: NodeId, ws: &mut Workspace) -> Option<ScoredMove> {
        let mut best = self.best_responses(g, u, ws);
        if best.is_empty() {
            None
        } else {
            best.sort_by_key(|s| s.mv.sort_key());
            Some(best.remove(0))
        }
    }

    /// Returns `true` iff agent `u` is unhappy, i.e. has at least one feasible
    /// improving move. Stops at the first improving candidate found.
    fn has_improving_move(&self, g: &OwnedGraph, u: NodeId, ws: &mut Workspace) -> bool {
        !scan_moves(self, g, u, ws, ScanMode::FirstImproving).is_empty()
    }
}

/// Cost of agent `u` measured through the workspace.
///
/// With a persistent oracle and a game following the standard
/// `edge + distance` decomposition (every non-consent game, per the
/// [`Game::cost`] override contract), the oracle's cross-step journal replay
/// answers in time proportional to the region the last moves actually changed
/// instead of one BFS per agent — this is what makes the per-step max-cost
/// policy scan cheap. The value is *identical* to [`Game::cost`]: both
/// compute `edge_cost(g, u) + metric(distance summary of u)` on the exact
/// distance vector. Consent games (which may override `Game::cost`) always
/// take the honest measurement.
pub fn workspace_cost<G: Game + ?Sized>(
    game: &G,
    g: &OwnedGraph,
    u: NodeId,
    ws: &mut Workspace,
) -> f64 {
    if ws.oracle_kind() == OracleKind::Persistent && (!game.needs_consent() || game.delta_consent())
    {
        // A vector already at the current version (the warmed dirty engine's
        // steady state, and any within-step second touch) answers without
        // re-pinning at all; otherwise one `begin` replays it current.
        let summary = match ws.evaluator.cached_summary(g, u) {
            Some(summary) => summary,
            None => ws.evaluator.begin_agent(g, u),
        };
        game.edge_cost_mode().edge_cost(g, u, game.alpha()) + game.metric().distance_cost(&summary)
    } else {
        game.cost(g, u, &mut ws.bfs)
    }
}

/// How [`scan_moves`] terminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScanMode {
    AllImproving,
    FirstImproving,
    /// Only the minimal-cost feasible improving moves are needed (the caller
    /// filters to the best anyway): consent checks on the delta path are
    /// deferred to one ascending-cost pass instead of running per candidate.
    /// For every other configuration this behaves exactly like
    /// [`ScanMode::AllImproving`].
    BestOnly,
}

/// Shared candidate-evaluation loop: enumerate candidates, score each from the
/// moving agent's point of view, filter to feasible strict improvements.
///
/// Single-edge candidates (swap / buy / delete) are scored through the
/// workspace's [`CostEvaluator`] as edge deltas against the agent's pinned
/// base distance vector — no graph mutation, no full BFS per candidate (with
/// the incremental backend). Whole-strategy candidates and consent-checked
/// games fall back to the classic apply → BFS → undo cycle on a scratch copy.
fn scan_moves<G: Game + ?Sized>(
    game: &G,
    g: &OwnedGraph,
    u: NodeId,
    ws: &mut Workspace,
    mode: ScanMode,
) -> Vec<ScoredMove> {
    let _sp = ncg_trace::span(ncg_trace::Phase::Enumerate);
    ws.bfs.resize(g.num_nodes());
    let metric = game.metric();
    let alpha = game.alpha();
    let edge_mode = game.edge_cost_mode();
    // Consent games delta-score too when they opt into the delta consent
    // contract and the backend can answer multi-source what-ifs cheaply (the
    // persistent oracle's per-source caches); otherwise they keep the honest
    // apply → BFS → undo cycle.
    let consent_delta =
        game.needs_consent() && game.delta_consent() && ws.oracle_kind() == OracleKind::Persistent;
    let delta_path = !game.needs_consent() || consent_delta;
    // On the delta path the base cost must use exactly the same decomposition
    // as the candidate scores. That is sound for non-consent games and for
    // `delta_consent` games by their override contract (the default
    // `edge + distance` cost); consent games without that contract go through
    // the (potentially overridden) `Game::cost` and skip pinning an oracle
    // base they would never query.
    let old_cost = if delta_path {
        let base_summary = ws.evaluator.begin_agent(g, u);
        edge_mode.edge_cost(g, u, alpha) + metric.distance_cost(&base_summary)
    } else {
        game.cost(g, u, &mut ws.bfs)
    };
    let mut candidates = std::mem::take(&mut ws.candidates);
    candidates.clear();
    game.candidate_moves(g, u, &mut candidates);

    // In best-only mode the consent checks of delta-scored candidates are
    // deferred to one ascending-cost pass after the scoring loop; the entries
    // of `unchecked` mark which collected moves still owe one.
    let defer_consent = consent_delta && mode == ScanMode::BestOnly;
    // In best-only mode without consent, lower-bounded candidates are not
    // re-scored inline either: they queue up in `pending` and are evaluated
    // in ascending-bound order, stopping once no bound can beat the best
    // exact cost found (an A*-style cutoff). All-improving scans disable the
    // bound path entirely — every improving candidate needs an exact score,
    // so the bound would be a pure detour.
    let order_by_bound = delta_path && !consent_delta && mode == ScanMode::BestOnly;
    let allow_bound = delta_path && mode != ScanMode::AllImproving;
    let mut scratch_synced = false;
    let mut out = Vec::new();
    // Original candidate index of each `out` entry (enumeration order must be
    // restored after the bound-ordered pass — tie-breaking RNG sees it).
    let mut out_idx: Vec<usize> = Vec::new();
    let mut unchecked: Vec<bool> = Vec::new();
    let mut pending: Vec<(usize, f64)> = Vec::new();
    for (ci, mv) in candidates.iter().enumerate() {
        let mut deferred = false;
        let new_cost = if delta_path {
            let score = ws.evaluator.try_score_bounded(g, u, mv, allow_bound);
            let summary = match score {
                DeltaScore::Summary(summary) => Some(summary),
                DeltaScore::LowerBound(lb) => {
                    let lb_cost =
                        edge_cost_after(g, u, mv, edge_mode, alpha) + metric.distance_cost(&lb);
                    if !is_improvement(old_cost, lb_cost) {
                        // The true cost is at least the bound: provably not
                        // an improvement, no exact evaluation needed.
                        continue;
                    }
                    if order_by_bound {
                        pending.push((ci, lb_cost));
                        continue;
                    }
                    Some(ws.evaluator.score_exact_last())
                }
                DeltaScore::Inapplicable => continue,
                DeltaScore::Unsupported => None,
            };
            match summary {
                Some(summary) => {
                    let new_cost = edge_cost_after(g, u, mv, edge_mode, alpha)
                        + metric.distance_cost(&summary);
                    // Consent is only consulted for improving candidates,
                    // exactly like the fallback path.
                    if consent_delta && is_improvement(old_cost, new_cost) {
                        if defer_consent {
                            deferred = true;
                        } else if consent_blocked_delta(game, g, u, mv, ws) {
                            continue;
                        }
                    }
                    new_cost
                }
                None => match score_on_scratch(game, g, u, mv, ws, &mut scratch_synced, old_cost) {
                    Some(cost) => cost,
                    None => continue,
                },
            }
        } else {
            match score_on_scratch(game, g, u, mv, ws, &mut scratch_synced, old_cost) {
                Some(cost) => cost,
                None => continue,
            }
        };
        if is_improvement(old_cost, new_cost) {
            out.push(ScoredMove {
                mv: mv.clone(),
                old_cost,
                new_cost,
            });
            out_idx.push(ci);
            if defer_consent {
                unchecked.push(deferred);
            }
            if mode == ScanMode::FirstImproving {
                break;
            }
        }
    }
    if order_by_bound && !pending.is_empty() {
        // Ascending-bound exact evaluation with cutoff: once the next bound
        // exceeds the best exact cost seen, no remaining candidate can beat
        // (or tie) it — candidates tying the best have bounds ≤ it and were
        // already evaluated.
        pending.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("costs are never NaN"));
        let mut best = out.iter().map(|s| s.new_cost).fold(f64::INFINITY, f64::min);
        for &(ci, lb_cost) in &pending {
            if lb_cost > best {
                break;
            }
            let mv = &candidates[ci];
            let DeltaScore::Summary(summary) = ws.evaluator.try_score_bounded(g, u, mv, false)
            else {
                debug_assert!(false, "re-scoring a bounded candidate must be exact");
                continue;
            };
            let new_cost =
                edge_cost_after(g, u, mv, edge_mode, alpha) + metric.distance_cost(&summary);
            if is_improvement(old_cost, new_cost) {
                out.push(ScoredMove {
                    mv: mv.clone(),
                    old_cost,
                    new_cost,
                });
                out_idx.push(ci);
                best = best.min(new_cost);
            }
        }
        // Restore candidate-enumeration order for the tie-breaking RNG.
        let mut paired: Vec<(usize, ScoredMove)> = out_idx.drain(..).zip(out).collect();
        paired.sort_by_key(|&(ci, _)| ci);
        out = paired.into_iter().map(|(_, s)| s).collect();
    }
    ws.candidates = candidates;
    if defer_consent && !out.is_empty() {
        out = resolve_deferred_consent(game, g, u, ws, out, &unchecked);
    }
    out
}

/// The ascending-cost consent pass of the best-only scan: finds the minimal
/// new cost among the *feasible* (unblocked) candidates and returns exactly
/// the feasible candidates at that cost, in their original enumeration order
/// (the order the tie-breaking RNG sees must not depend on the scan mode).
///
/// Candidates that already passed an inline consent check (`unchecked[i] ==
/// false`, e.g. scratch-scored ones) are feasible as-is; the rest are
/// re-scored — one oracle evaluation re-buffers the candidate's deltas — and
/// consent-checked lazily. The pass stops as soon as a cost level with a
/// feasible candidate is fully examined, so it pays for the blocked
/// candidates below the answer and the ties at it, not for every improving
/// candidate of the enumeration.
fn resolve_deferred_consent<G: Game + ?Sized>(
    game: &G,
    g: &OwnedGraph,
    u: NodeId,
    ws: &mut Workspace,
    out: Vec<ScoredMove>,
    unchecked: &[bool],
) -> Vec<ScoredMove> {
    debug_assert_eq!(out.len(), unchecked.len());
    let mut order: Vec<usize> = (0..out.len()).collect();
    order.sort_by(|&a, &b| {
        out[a]
            .new_cost
            .partial_cmp(&out[b].new_cost)
            .expect("costs are never NaN")
    });
    let mut best_cost: Option<f64> = None;
    let mut keep = vec![false; out.len()];
    for &i in &order {
        if let Some(c) = best_cost {
            if out[i].new_cost > c {
                break;
            }
        }
        let blocked = unchecked[i] && {
            // Re-buffer this candidate's delta sequence for the counterpart
            // queries; the state is unchanged, so the score must reproduce
            // (a lower bound re-buffers the same sequence and is fine too).
            let rescored = ws.evaluator.try_score(g, u, &out[i].mv);
            debug_assert!(matches!(
                rescored,
                DeltaScore::Summary(_) | DeltaScore::LowerBound(_)
            ));
            consent_blocked_delta(game, g, u, &out[i].mv, ws)
        };
        if !blocked {
            best_cost = Some(out[i].new_cost);
            keep[i] = true;
        }
    }
    out.into_iter()
        .zip(keep)
        .filter_map(|(mv, k)| k.then_some(mv))
        .collect()
}

/// Delta-scored consent: `true` iff some consent party of `mv` sees her
/// standard `edge + distance` cost strictly increase, with both sides of the
/// comparison answered by the evaluator's counterpart oracle (journal-replay
/// re-pin + candidate-delta what-if) — the post-move graph never exists.
///
/// Must run directly after the [`CostEvaluator::try_score`] of the same
/// candidate, whose delta sequence is still buffered in the evaluator.
fn consent_blocked_delta<G: Game + ?Sized>(
    game: &G,
    g: &OwnedGraph,
    u: NodeId,
    mv: &Move,
    ws: &mut Workspace,
) -> bool {
    let mut parties = std::mem::take(&mut ws.parties);
    parties.clear();
    game.consent_parties(g, u, mv, &mut parties);
    let (metric, mode, alpha) = (game.metric(), game.edge_cost_mode(), game.alpha());
    let mut blocked = false;
    for &v in &parties {
        let delta_deg = ws.evaluator.last_delta_degree(v);
        let (base, modified) = ws.evaluator.score_counterpart(g, v);
        let before = mode.edge_cost(g, v, alpha) + metric.distance_cost(&base);
        let after =
            party_edge_cost_after(g, v, mode, alpha, delta_deg) + metric.distance_cost(&modified);
        if after > before {
            blocked = true;
            break;
        }
    }
    ws.parties = parties;
    blocked
}

/// Fallback scoring: apply `mv` to a scratch copy, measure the real post-move
/// cost (and, for improving moves of consent-checked games, the blocked test),
/// undo.
///
/// Returns `None` if the move does not apply or is blocked.
fn score_on_scratch<G: Game + ?Sized>(
    game: &G,
    g: &OwnedGraph,
    u: NodeId,
    mv: &Move,
    ws: &mut Workspace,
    scratch_synced: &mut bool,
    old_cost: f64,
) -> Option<f64> {
    if !*scratch_synced {
        ws.scratch.clone_from(g);
        *scratch_synced = true;
    }
    let undo = apply_move(&mut ws.scratch, u, mv)?;
    let new_cost = game.cost(&ws.scratch, u, &mut ws.bfs);
    // The consent check is only consulted for improving moves (everything else
    // is discarded anyway), exactly like the historical scan loop.
    let blocked = is_improvement(old_cost, new_cost)
        && game.move_is_blocked(g, u, mv, &ws.scratch, &mut ws.bfs);
    undo_move(&mut ws.scratch, u, &undo);
    debug_assert_eq!(
        &ws.scratch, g,
        "scratch graph must be restored after scoring"
    );
    if blocked {
        None
    } else {
        Some(new_cost)
    }
}

/// Pushes a `Swap` candidate for every non-neighbour target allowed by the host.
pub(crate) fn push_swap_targets(
    g: &OwnedGraph,
    host: &HostGraph,
    u: NodeId,
    from: NodeId,
    out: &mut Vec<Move>,
) {
    for to in 0..g.num_nodes() {
        if to == u || to == from || g.has_edge(u, to) || !host.allows(u, to) {
            continue;
        }
        out.push(Move::Swap { from, to });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::SwapGame;
    use ncg_graph::generators;

    #[test]
    fn scored_move_improvement() {
        let s = ScoredMove {
            mv: Move::Buy { to: 1 },
            old_cost: 10.0,
            new_cost: 7.5,
        };
        assert_eq!(s.improvement(), 2.5);
    }

    #[test]
    fn best_response_is_subset_of_improving() {
        let game = SwapGame::sum();
        let g = generators::path(6);
        let mut ws = Workspace::new(6);
        let improving = game.improving_moves(&g, 0, &mut ws);
        let best = game.best_responses(&g, 0, &mut ws);
        assert!(!improving.is_empty());
        assert!(!best.is_empty());
        let best_cost = best[0].new_cost;
        assert!(best.iter().all(|s| s.new_cost == best_cost));
        assert!(improving.iter().all(|s| s.new_cost >= best_cost));
        assert!(best.len() <= improving.len());
    }

    #[test]
    fn workspace_is_reusable_across_graphs() {
        let game = SwapGame::sum();
        let mut ws = Workspace::new(4);
        let small = generators::path(4);
        let big = generators::path(8);
        assert!(game.best_response(&small, 0, &mut ws).is_some());
        assert!(game.best_response(&big, 0, &mut ws).is_some());
    }
}
