//! Word-parallel multi-source BFS: up to 64 sources per wave.
//!
//! The persistent oracle repeatedly needs *many* exact single-source distance
//! vectors of the same graph at once — bulk-pinning every agent at trial
//! start, and re-deriving vectors whose journal window has grown past the
//! replay limit. Running those as independent scalar BFS traversals walks the
//! adjacency structure once per source. [`MultiSourceBfs`] instead assigns
//! each source one bit of a `u64` and advances all of them through a single
//! level-synchronous wave over shared bitset frontiers: one pass over the CSR
//! per level regardless of how many of the 64 sources are still active, with
//! the per-source SUM / MAX / reached aggregates and the per-level counters
//! fused into the same wave (distances are only written when a bit first
//! reaches a vertex, so the extra bookkeeping costs exactly one visit per
//! `(source, vertex)` pair — work any method must do to fill the vectors).
//!
//! Distances are `u16` ([`crate::distances::UNREACHABLE`]), matching the
//! oracle's parked-vector layout, so a finished wave is parked by a plain
//! buffer swap.

use crate::csr::CsrAdjacency;
use crate::distances::{MAX_NODES, UNREACHABLE};
use crate::graph::NodeId;

/// Width of one wave: one bit per source in a `u64` frontier word.
pub const BATCH_WIDTH: usize = 64;

/// Per-source aggregates of a finished wave, in the parked-vector layout of
/// the persistent oracle (`max_hint` is exact here, not just a bound).
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchSummary {
    /// Sum of all finite distances from the source.
    pub sum: u64,
    /// Number of vertices the source reaches (including itself).
    pub reached: usize,
    /// Maximum finite distance from the source.
    pub max_hint: u16,
}

/// Reusable workspace of the 64-wide bitset BFS.
#[derive(Debug, Clone, Default)]
pub struct MultiSourceBfs {
    /// `reached[v]` bit `s` set ⇔ source `s` has settled vertex `v`.
    reached: Vec<u64>,
    /// Bits that settled `v` in the *current* level (the expanding frontier).
    frontier: Vec<u64>,
    /// Bits arriving at `v` for the *next* level; doubles as the "already
    /// queued" marker (`next[v] != 0` ⇔ `v` is in `next_active`).
    next: Vec<u64>,
    /// Vertices with a non-empty current frontier word.
    active: Vec<u32>,
    next_active: Vec<u32>,
}

impl MultiSourceBfs {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        MultiSourceBfs::default()
    }

    /// Runs one wave from `sources` (distinct vertices, at most
    /// [`BATCH_WIDTH`] of them) over `csr`.
    ///
    /// For each source `s`, `rows[s]` is filled with the full distance vector
    /// (`UNREACHABLE` for unreachable vertices) and `counts[s][d]` with the
    /// number of vertices at distance `d` (`counts[s]` must have at least
    /// `n + 1` entries; both are expected zero-/UNREACHABLE-initialised by
    /// the caller via [`MultiSourceBfs::prepare_row`]). Returns the number of
    /// vertex expansions performed (the shared-wave work measure).
    pub fn run(
        &mut self,
        csr: &CsrAdjacency,
        sources: &[NodeId],
        rows: &mut [&mut [u16]],
        counts: &mut [&mut [u16]],
        summaries: &mut [BatchSummary],
    ) -> u64 {
        ncg_trace::record(ncg_trace::HistId::WaveWidth, sources.len() as u64);
        let n = csr.num_nodes();
        assert!(
            n <= MAX_NODES,
            "u16 distances support at most {MAX_NODES} vertices (got {n})"
        );
        let k = sources.len();
        assert!(k <= BATCH_WIDTH, "at most {BATCH_WIDTH} sources per wave");
        debug_assert_eq!(rows.len(), k);
        debug_assert_eq!(counts.len(), k);
        debug_assert_eq!(summaries.len(), k);
        self.reached.clear();
        self.reached.resize(n, 0);
        self.frontier.clear();
        self.frontier.resize(n, 0);
        self.next.clear();
        self.next.resize(n, 0);
        self.active.clear();
        for (s, &src) in sources.iter().enumerate() {
            debug_assert!(src < n);
            debug_assert!(rows[s].iter().all(|&d| d == UNREACHABLE));
            let bit = 1u64 << s;
            if self.frontier[src] == 0 {
                self.active.push(src as u32);
            }
            self.reached[src] |= bit;
            self.frontier[src] |= bit;
            rows[s][src] = 0;
            counts[s][0] += 1;
            summaries[s] = BatchSummary {
                sum: 0,
                reached: 1,
                max_hint: 0,
            };
        }
        let mut expanded = 0u64;
        let mut d: u16 = 0;
        while !self.active.is_empty() {
            self.next_active.clear();
            for &v in &self.active {
                expanded += 1;
                let bits = self.frontier[v as usize];
                self.frontier[v as usize] = 0;
                for &w in csr.neighbors(v as usize) {
                    let fresh = bits & !self.reached[w as usize];
                    if fresh != 0 {
                        if self.next[w as usize] == 0 {
                            self.next_active.push(w);
                        }
                        self.next[w as usize] |= fresh;
                    }
                }
            }
            d += 1;
            for &w in &self.next_active {
                let fresh = self.next[w as usize];
                self.next[w as usize] = 0;
                self.reached[w as usize] |= fresh;
                self.frontier[w as usize] = fresh;
                let mut bits = fresh;
                while bits != 0 {
                    let s = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    rows[s][w as usize] = d;
                    counts[s][d as usize] += 1;
                    summaries[s].sum += u64::from(d);
                    summaries[s].reached += 1;
                    summaries[s].max_hint = d;
                }
            }
            std::mem::swap(&mut self.active, &mut self.next_active);
        }
        expanded
    }

    /// Resets a distance row and its level counters for [`MultiSourceBfs::run`]:
    /// `row` becomes `n` entries of `UNREACHABLE`, `counts` becomes `n + 2`
    /// zeros (the parked-vector layout of the oracle's level counters).
    pub fn prepare_row(row: &mut Vec<u16>, counts: &mut Vec<u16>, n: usize) {
        row.clear();
        row.resize(n, UNREACHABLE);
        counts.clear();
        counts.resize(n + 2, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distances::BfsBuffer;
    use crate::generators;
    use crate::graph::OwnedGraph;

    fn check_against_scalar(g: &OwnedGraph, sources: &[NodeId]) {
        let n = g.num_nodes();
        let mut csr = CsrAdjacency::new();
        csr.rebuild_from(g);
        let mut rows: Vec<Vec<u16>> = vec![Vec::new(); sources.len()];
        let mut counts: Vec<Vec<u16>> = vec![Vec::new(); sources.len()];
        for (row, lc) in rows.iter_mut().zip(counts.iter_mut()) {
            MultiSourceBfs::prepare_row(row, lc, n);
        }
        let mut summaries = vec![BatchSummary::default(); sources.len()];
        let mut row_refs: Vec<&mut [u16]> = rows.iter_mut().map(|r| r.as_mut_slice()).collect();
        let mut count_refs: Vec<&mut [u16]> = counts.iter_mut().map(|c| c.as_mut_slice()).collect();
        let mut wave = MultiSourceBfs::new();
        wave.run(
            &csr,
            sources,
            &mut row_refs,
            &mut count_refs,
            &mut summaries,
        );
        let mut buf = BfsBuffer::new(n);
        for (s, &src) in sources.iter().enumerate() {
            let expect = buf.run(g, src);
            assert_eq!(&rows[s][..], expect, "source {src}");
            let mut sum = 0u64;
            let mut max = 0u16;
            let mut reached = 0usize;
            let mut lc = vec![0u16; n + 2];
            for &dist in expect {
                if dist != UNREACHABLE {
                    sum += u64::from(dist);
                    max = max.max(dist);
                    reached += 1;
                    lc[dist as usize] += 1;
                }
            }
            assert_eq!(summaries[s].sum, sum, "source {src}");
            assert_eq!(summaries[s].reached, reached, "source {src}");
            assert_eq!(summaries[s].max_hint, max, "source {src}");
            assert_eq!(counts[s], lc, "source {src}");
        }
    }

    #[test]
    fn wave_matches_scalar_bfs_on_path_cycle_star() {
        check_against_scalar(&generators::path(9), &[0, 4, 8]);
        check_against_scalar(&generators::cycle(12), &(0..12).collect::<Vec<_>>());
        check_against_scalar(&generators::star(7), &[0, 1, 6]);
    }

    #[test]
    fn wave_handles_disconnected_components() {
        let mut g = OwnedGraph::new(10);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(5, 6);
        check_against_scalar(&g, &[0, 2, 5, 9]);
    }

    #[test]
    fn full_width_wave_on_random_graph() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        let g = generators::random_with_m_edges(64, 120, &mut rng);
        let sources: Vec<NodeId> = (0..64).collect();
        check_against_scalar(&g, &sources);
    }
}
