//! Shortest-path distances.
//!
//! Costs in network creation games only depend on the moving agent's own distance
//! vector, so the hot operation is a single-source BFS that is executed thousands of
//! times per dynamics step. [`BfsBuffer`] keeps the queue and distance array alive
//! across calls so the inner loop performs no allocation.

use crate::graph::{NodeId, OwnedGraph};

/// Marker distance for unreachable vertices.
///
/// Distances are stored as `u16` end-to-end (BFS buffers, the all-pairs
/// matrix, and the oracle's parked per-source vectors): a hop count is at
/// most `n - 1`, so graphs up to [`MAX_NODES`] vertices fit with room for
/// the marker, and the halved storage doubles how many per-source vectors
/// fit in cache for the same memory.
pub const UNREACHABLE: u16 = u16::MAX;

/// Largest supported vertex count of the `u16` distance representation
/// (every finite distance is `≤ MAX_NODES - 1 = 65534 < UNREACHABLE`).
pub const MAX_NODES: usize = u16::MAX as usize;

/// Aggregate of a single-source distance vector: the SUM and MAX distance cost.
///
/// `None` encodes the paper's convention that a disconnected agent has infinite
/// distance cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistanceSummary {
    /// Sum of distances to all other agents (`None` if some agent is unreachable).
    pub sum: Option<u64>,
    /// Maximum distance / eccentricity (`None` if some agent is unreachable).
    pub max: Option<u32>,
}

impl DistanceSummary {
    /// Summary for a completely disconnected source.
    pub const DISCONNECTED: DistanceSummary = DistanceSummary {
        sum: None,
        max: None,
    };

    /// True if every other agent is reachable.
    #[inline]
    pub fn is_connected(&self) -> bool {
        self.sum.is_some()
    }
}

/// Reusable single-source BFS workspace.
///
/// The buffer is sized for a fixed number of vertices; [`BfsBuffer::resize`] adapts
/// it when the graph size changes.
#[derive(Debug, Clone)]
pub struct BfsBuffer {
    dist: Vec<u16>,
    queue: Vec<NodeId>,
}

impl BfsBuffer {
    /// Creates a workspace for graphs on `n` vertices.
    ///
    /// Panics when `n > MAX_NODES` — a hard assert, not a debug one: past
    /// the u16 range distances would silently truncate, and wrong-but-
    /// plausible distances are far worse than a loud failure.
    pub fn new(n: usize) -> Self {
        assert!(
            n <= MAX_NODES,
            "u16 distances support at most {MAX_NODES} vertices (got {n})"
        );
        BfsBuffer {
            dist: vec![UNREACHABLE; n],
            queue: Vec::with_capacity(n),
        }
    }

    /// Adapts the workspace to a graph on `n` vertices.
    ///
    /// Panics when `n > MAX_NODES`, like [`BfsBuffer::new`].
    pub fn resize(&mut self, n: usize) {
        assert!(
            n <= MAX_NODES,
            "u16 distances support at most {MAX_NODES} vertices (got {n})"
        );
        self.dist.resize(n, UNREACHABLE);
        if self.queue.capacity() < n {
            // `reserve` takes the *additional* head-room relative to `len`;
            // reserving relative to the capacity would leave the queue free to
            // reallocate mid-BFS once it fills up.
            let len = self.queue.len();
            self.queue.reserve(n - len);
        }
    }

    /// Runs a BFS from `src` and returns the distance vector
    /// (`UNREACHABLE` for vertices in other components).
    pub fn run<'a>(&'a mut self, g: &OwnedGraph, src: NodeId) -> &'a [u16] {
        let n = g.num_nodes();
        self.resize(n);
        for d in self.dist.iter_mut().take(n) {
            *d = UNREACHABLE;
        }
        self.queue.clear();
        self.dist[src] = 0;
        self.queue.push(src);
        let mut head = 0usize;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            let du = self.dist[u];
            for &v in g.neighbors(u) {
                if self.dist[v] == UNREACHABLE {
                    self.dist[v] = du + 1;
                    self.queue.push(v);
                }
            }
        }
        &self.dist[..n]
    }

    /// Runs a BFS from `src` and aggregates the result into a [`DistanceSummary`].
    pub fn summary(&mut self, g: &OwnedGraph, src: NodeId) -> DistanceSummary {
        let n = g.num_nodes();
        let dist = self.run(g, src);
        let mut sum: u64 = 0;
        let mut max: u16 = 0;
        let mut reached = 0usize;
        for &d in dist {
            if d != UNREACHABLE {
                sum += u64::from(d);
                max = max.max(d);
                reached += 1;
            }
        }
        if reached < n {
            DistanceSummary::DISCONNECTED
        } else {
            DistanceSummary {
                sum: Some(sum),
                max: Some(u32::from(max)),
            }
        }
    }

    /// The distance vector computed by the most recent [`run`](Self::run).
    pub fn last_distances(&self) -> &[u16] {
        &self.dist
    }
}

/// Dense all-pairs shortest path matrix, computed with `n` BFS traversals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceMatrix {
    n: usize,
    d: Vec<u16>,
}

impl DistanceMatrix {
    /// Computes all-pairs shortest paths of `g`.
    pub fn compute(g: &OwnedGraph) -> Self {
        let n = g.num_nodes();
        let mut d = vec![UNREACHABLE; n * n];
        let mut buf = BfsBuffer::new(n);
        for s in 0..n {
            let row = buf.run(g, s);
            d[s * n..(s + 1) * n].copy_from_slice(row);
        }
        DistanceMatrix { n, d }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Distance from `u` to `v` (`UNREACHABLE` if disconnected).
    #[inline]
    pub fn dist(&self, u: NodeId, v: NodeId) -> u16 {
        self.d[u * self.n + v]
    }

    /// The full distance row of vertex `u`.
    #[inline]
    pub fn row(&self, u: NodeId) -> &[u16] {
        &self.d[u * self.n..(u + 1) * self.n]
    }

    /// Sum-distance (SUM cost) of vertex `u`, `None` if `u` cannot reach everyone.
    pub fn sum_distance(&self, u: NodeId) -> Option<u64> {
        let mut sum = 0u64;
        for &d in self.row(u) {
            if d == UNREACHABLE {
                return None;
            }
            sum += u64::from(d);
        }
        Some(sum)
    }

    /// Eccentricity (MAX cost) of vertex `u`, `None` if `u` cannot reach everyone.
    pub fn eccentricity(&self, u: NodeId) -> Option<u32> {
        let mut max = 0u16;
        for &d in self.row(u) {
            if d == UNREACHABLE {
                return None;
            }
            max = max.max(d);
        }
        Some(u32::from(max))
    }
}

/// Convenience: distance summary of a single vertex with a temporary buffer.
///
/// Prefer [`BfsBuffer::summary`] in hot loops.
pub fn distance_summary(g: &OwnedGraph, src: NodeId) -> DistanceSummary {
    BfsBuffer::new(g.num_nodes()).summary(g, src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_on_path() {
        let g = generators::path(5);
        let mut buf = BfsBuffer::new(5);
        let d = buf.run(&g, 0);
        assert_eq!(d, &[0, 1, 2, 3, 4]);
        let d = buf.run(&g, 2);
        assert_eq!(d, &[2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_disconnected() {
        let mut g = OwnedGraph::new(4);
        g.add_edge(0, 1);
        let mut buf = BfsBuffer::new(4);
        let d = buf.run(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        let s = buf.summary(&g, 0);
        assert_eq!(s, DistanceSummary::DISCONNECTED);
        assert!(!s.is_connected());
    }

    #[test]
    fn summary_on_star() {
        let g = generators::star(6);
        let mut buf = BfsBuffer::new(6);
        let hub = buf.summary(&g, 0);
        assert_eq!(hub.sum, Some(5));
        assert_eq!(hub.max, Some(1));
        let leaf = buf.summary(&g, 3);
        assert_eq!(leaf.sum, Some(1 + 2 * 4));
        assert_eq!(leaf.max, Some(2));
    }

    #[test]
    fn matrix_matches_bfs() {
        let g = generators::cycle(7);
        let m = DistanceMatrix::compute(&g);
        let mut buf = BfsBuffer::new(7);
        for s in 0..7 {
            assert_eq!(m.row(s), buf.run(&g, s));
        }
        assert_eq!(m.dist(0, 3), 3);
        assert_eq!(m.dist(0, 4), 3);
        assert_eq!(m.eccentricity(0), Some(3));
        assert_eq!(m.sum_distance(0), Some(1 + 1 + 2 + 2 + 3 + 3));
    }

    #[test]
    fn singleton_graph() {
        let g = OwnedGraph::new(1);
        let s = distance_summary(&g, 0);
        assert_eq!(s.sum, Some(0));
        assert_eq!(s.max, Some(0));
    }

    #[test]
    fn buffer_resizes_between_graphs() {
        let mut buf = BfsBuffer::new(2);
        let small = generators::path(2);
        assert_eq!(buf.run(&small, 0), &[0, 1]);
        let big = generators::path(6);
        assert_eq!(buf.run(&big, 0).len(), 6);
        assert_eq!(buf.run(&big, 0)[5], 5);
    }
}
