//! The owned undirected graph at the heart of every network creation game.
//!
//! Every vertex is an agent. Every edge `{u, v}` is *owned* by exactly one of its
//! endpoints; the owner paid for the edge and (in the asymmetric games) is the only
//! agent allowed to modify it. In figures of the paper ownership is drawn by
//! directing the edge away from its owner; here we store, for every vertex, the
//! set of neighbours it owns an edge to.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Index of an agent / vertex. Agents are densely numbered `0..n`.
pub type NodeId = usize;

/// Source of unique lineage ids; every graph (and every clone of one) gets its
/// own lineage so a [`GraphVersion`] can never be replayed against a history it
/// was not taken from.
static NEXT_LINEAGE: AtomicU64 = AtomicU64::new(1);

/// Journal entries older than this are discarded; readers holding a version
/// from before the retained window fall back to a full recomputation.
const JOURNAL_RETAIN: usize = 2048;

/// One structural change recorded in a graph's change journal.
///
/// Only the undirected edge set is journaled — ownership transfers without a
/// structural change do not affect distances and are invisible to the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeChange {
    /// The undirected edge `{u, v}` was added.
    Added {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// The undirected edge `{u, v}` was removed.
    Removed {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
}

/// An opaque stamp of a graph's mutation history: the lineage the graph
/// belongs to plus the number of structural changes applied so far.
///
/// Obtained from [`OwnedGraph::version`]; pass it back to
/// [`OwnedGraph::changes_since`] to receive the exact edge deltas applied in
/// between (or `None` when the histories are unrelated or the window has been
/// discarded). Persistent distance oracles use this to carry distance vectors
/// across dynamics steps and repair them by replaying the deltas instead of
/// re-running a full BFS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GraphVersion {
    lineage: u64,
    pos: u64,
}

impl GraphVersion {
    /// Number of structural changes separating this (the later) stamp from
    /// `earlier`, when both lie on the same lineage and this stamp is not the
    /// older one; `None` otherwise. This is pure stamp arithmetic — it does
    /// **not** imply the separating window is still retained in the journal
    /// (ask [`OwnedGraph::changes_since`] for that). Persistent distance
    /// oracles use it as the *staleness* measure of a parked vector: foreign
    /// lineages are infinitely stale.
    pub fn changes_since(&self, earlier: GraphVersion) -> Option<u64> {
        (self.lineage == earlier.lineage && self.pos >= earlier.pos).then(|| self.pos - earlier.pos)
    }
}

/// A reference to an edge together with its owner.
///
/// `owner` is the endpoint that pays for (and may modify) the edge; `other` is the
/// passive endpoint. The undirected edge is `{owner, other}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeRef {
    /// The endpoint that owns the edge.
    pub owner: NodeId,
    /// The non-owning endpoint.
    pub other: NodeId,
}

/// An undirected graph on `n` agents with per-edge ownership.
///
/// Invariants maintained by all mutating methods:
///
/// * the graph is simple (no self loops, no multi-edges),
/// * for every edge `{u, v}` exactly one of `u`, `v` records the edge in its
///   owned-neighbour list,
/// * adjacency lists and owned lists are kept sorted so that iteration order is
///   deterministic and state encodings are canonical.
pub struct OwnedGraph {
    n: usize,
    /// `adj[u]` = sorted neighbours of `u` (both owned and non-owned edges).
    adj: Vec<Vec<NodeId>>,
    /// `owned[u]` = sorted neighbours `v` such that `u` owns the edge `{u, v}`.
    owned: Vec<Vec<NodeId>>,
    /// Unique id of this graph's mutation history (fresh per clone).
    lineage: u64,
    /// Absolute journal position of `journal[0]` (entries before it were
    /// discarded to bound memory).
    journal_base: u64,
    /// Structural changes applied since `journal_base`, newest last.
    journal: Vec<EdgeChange>,
}

impl Clone for OwnedGraph {
    /// Clones the structure; the clone starts a **fresh lineage** with an
    /// empty journal, so versions taken on the original never replay against
    /// the clone's (potentially diverging) history.
    fn clone(&self) -> Self {
        OwnedGraph {
            n: self.n,
            adj: self.adj.clone(),
            owned: self.owned.clone(),
            lineage: NEXT_LINEAGE.fetch_add(1, Ordering::Relaxed),
            journal_base: 0,
            journal: Vec::new(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.n = source.n;
        self.adj.clone_from(&source.adj);
        self.owned.clone_from(&source.owned);
        self.lineage = NEXT_LINEAGE.fetch_add(1, Ordering::Relaxed);
        self.journal_base = 0;
        self.journal.clear();
    }
}

/// Equality is structural (vertex count, edges, ownership); the mutation
/// history is book-keeping and does not participate.
impl PartialEq for OwnedGraph {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.adj == other.adj && self.owned == other.owned
    }
}

impl Eq for OwnedGraph {}

impl Hash for OwnedGraph {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.n.hash(state);
        self.adj.hash(state);
        self.owned.hash(state);
    }
}

impl OwnedGraph {
    /// Creates an empty graph (no edges) on `n` agents.
    ///
    /// Panics when `n` exceeds [`crate::distances::MAX_NODES`]: every
    /// distance pipeline downstream (BFS buffers, the multi-source waves,
    /// the oracle's parked vectors) stores distances as `u16`, and an
    /// oversized graph would silently truncate them.
    pub fn new(n: usize) -> Self {
        assert!(
            n <= crate::distances::MAX_NODES,
            "u16 distances support at most {} vertices (got {n})",
            crate::distances::MAX_NODES
        );
        OwnedGraph {
            n,
            adj: vec![Vec::new(); n],
            owned: vec![Vec::new(); n],
            lineage: NEXT_LINEAGE.fetch_add(1, Ordering::Relaxed),
            journal_base: 0,
            journal: Vec::new(),
        }
    }

    /// The current version stamp: lineage id plus number of structural
    /// changes ever applied to this graph instance.
    #[inline]
    pub fn version(&self) -> GraphVersion {
        GraphVersion {
            lineage: self.lineage,
            pos: self.journal_base + self.journal.len() as u64,
        }
    }

    /// The exact structural changes applied since `since` was taken, oldest
    /// first.
    ///
    /// Returns `None` if `since` belongs to a different lineage (another graph
    /// instance or a clone), lies in the discarded part of the journal, or is
    /// ahead of the current version — in all of which cases the caller must
    /// recompute from scratch.
    pub fn changes_since(&self, since: GraphVersion) -> Option<&[EdgeChange]> {
        if since.lineage != self.lineage
            || since.pos < self.journal_base
            || since.pos > self.journal_base + self.journal.len() as u64
        {
            return None;
        }
        let start = (since.pos - self.journal_base) as usize;
        Some(&self.journal[start..])
    }

    /// Appends one change to the journal, discarding the oldest half once the
    /// retained window overflows (readers holding versions from before the
    /// window simply fall back to a full recomputation).
    fn record(&mut self, change: EdgeChange) {
        if self.journal.len() >= JOURNAL_RETAIN {
            let drop = JOURNAL_RETAIN / 2;
            self.journal.drain(..drop);
            self.journal_base += drop as u64;
        }
        self.journal.push(change);
    }

    /// Builds a graph from a list of owned edges `(owner, other)`.
    ///
    /// # Panics
    /// Panics if an edge is a self loop, references a vertex `>= n`, or is listed
    /// twice (in either orientation).
    pub fn from_owned_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut g = OwnedGraph::new(n);
        for &(owner, other) in edges {
            assert!(
                g.add_edge(owner, other),
                "duplicate or invalid edge ({owner}, {other})"
            );
        }
        g
    }

    /// Number of agents.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of (undirected) edges.
    pub fn num_edges(&self) -> usize {
        self.owned.iter().map(Vec::len).sum()
    }

    /// Returns `true` if the undirected edge `{u, v}` is present.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u != v && self.adj[u].binary_search(&v).is_ok()
    }

    /// Returns `true` if agent `u` owns the edge `{u, v}`.
    #[inline]
    pub fn owns_edge(&self, u: NodeId, v: NodeId) -> bool {
        u != v && self.owned[u].binary_search(&v).is_ok()
    }

    /// Returns the owner of edge `{u, v}` if the edge exists.
    pub fn edge_owner(&self, u: NodeId, v: NodeId) -> Option<NodeId> {
        if self.owns_edge(u, v) {
            Some(u)
        } else if self.owns_edge(v, u) {
            Some(v)
        } else {
            None
        }
    }

    /// Degree of vertex `u` (owned and non-owned edges).
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u].len()
    }

    /// Number of edges owned (paid for) by agent `u`.
    #[inline]
    pub fn owned_degree(&self, u: NodeId) -> usize {
        self.owned[u].len()
    }

    /// Sorted neighbours of `u`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.adj[u]
    }

    /// Sorted neighbours `v` such that `u` owns `{u, v}` — agent `u`'s strategy in
    /// the asymmetric games.
    #[inline]
    pub fn owned_neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.owned[u]
    }

    /// Iterator over all edges as [`EdgeRef`]s, grouped by owner, ascending.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        self.owned
            .iter()
            .enumerate()
            .flat_map(|(owner, list)| list.iter().map(move |&other| EdgeRef { owner, other }))
    }

    /// Iterator over all vertices.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.n
    }

    /// Adds the edge `{owner, other}` owned by `owner`.
    ///
    /// Returns `false` (and leaves the graph unchanged) if the edge already exists,
    /// is a self loop, or references an out-of-range vertex.
    pub fn add_edge(&mut self, owner: NodeId, other: NodeId) -> bool {
        if owner == other || owner >= self.n || other >= self.n || self.has_edge(owner, other) {
            return false;
        }
        insert_sorted(&mut self.adj[owner], other);
        insert_sorted(&mut self.adj[other], owner);
        insert_sorted(&mut self.owned[owner], other);
        self.record(EdgeChange::Added { u: owner, v: other });
        true
    }

    /// Removes the undirected edge `{u, v}` regardless of who owns it.
    ///
    /// Returns `false` if the edge does not exist.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if !self.has_edge(u, v) {
            return false;
        }
        remove_sorted(&mut self.adj[u], v);
        remove_sorted(&mut self.adj[v], u);
        if !remove_sorted(&mut self.owned[u], v) {
            remove_sorted(&mut self.owned[v], u);
        }
        self.record(EdgeChange::Removed { u, v });
        true
    }

    /// Removes the edge `{owner, other}` only if it exists and is owned by `owner`.
    pub fn remove_owned_edge(&mut self, owner: NodeId, other: NodeId) -> bool {
        if !self.owns_edge(owner, other) {
            return false;
        }
        self.remove_edge(owner, other)
    }

    /// Swaps agent `owner`'s edge from `from` to `to`: removes `{owner, from}` and
    /// adds `{owner, to}` owned by `owner`.
    ///
    /// Returns `false` (graph unchanged) if `{owner, from}` is not owned by `owner`,
    /// if `{owner, to}` already exists, or if `to == owner`.
    pub fn swap_owned_edge(&mut self, owner: NodeId, from: NodeId, to: NodeId) -> bool {
        if !self.owns_edge(owner, from) || to == owner || to >= self.n || self.has_edge(owner, to) {
            return false;
        }
        self.remove_edge(owner, from);
        let added = self.add_edge(owner, to);
        debug_assert!(added);
        true
    }

    /// Swaps the edge `{u, from}` to `{u, to}` irrespective of ownership, keeping
    /// the original owner orientation relative to `u`.
    ///
    /// In the (symmetric) Swap Game both endpoints may swap an edge, and ownership
    /// has no game-theoretic meaning; we keep the book-keeping consistent by making
    /// `u` the owner of the replacement edge.
    pub fn swap_edge(&mut self, u: NodeId, from: NodeId, to: NodeId) -> bool {
        if !self.has_edge(u, from) || to == u || to >= self.n || self.has_edge(u, to) {
            return false;
        }
        self.remove_edge(u, from);
        let added = self.add_edge(u, to);
        debug_assert!(added);
        true
    }

    /// Replaces agent `u`'s *owned* neighbour set by `new_owned` (the Buy Game
    /// strategy change). Existing edges owned by other agents are untouched.
    ///
    /// Edges in `new_owned` that already exist in the graph but are owned by the
    /// other endpoint are left as they are (the strategy is then effectively the
    /// union; this mirrors the convention that buying an already existing edge is
    /// wasted money and the caller's best-response search will never do it, but the
    /// operation stays well defined).
    ///
    /// Returns `false` if `new_owned` contains `u` itself or an out-of-range vertex.
    pub fn set_owned_neighbors(&mut self, u: NodeId, new_owned: &[NodeId]) -> bool {
        if new_owned.iter().any(|&v| v == u || v >= self.n) {
            return false;
        }
        let old: Vec<NodeId> = self.owned[u].clone();
        for v in old {
            self.remove_edge(u, v);
        }
        for &v in new_owned {
            // Ignore edges that already exist (owned by the other side).
            self.add_edge(u, v);
        }
        true
    }

    /// Total number of edge endpoints (2·m); useful for sizing buffers.
    pub fn endpoint_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Checks the internal invariants; used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        for u in 0..self.n {
            let mut prev: Option<NodeId> = None;
            for &v in &self.adj[u] {
                if v == u {
                    return Err(format!("self loop at {u}"));
                }
                if v >= self.n {
                    return Err(format!("out of range neighbour {v} of {u}"));
                }
                if let Some(p) = prev {
                    if p >= v {
                        return Err(format!("adjacency of {u} not strictly sorted"));
                    }
                }
                prev = Some(v);
                if self.adj[v].binary_search(&u).is_err() {
                    return Err(format!("edge {{{u},{v}}} not symmetric"));
                }
                let u_owns = self.owned[u].binary_search(&v).is_ok();
                let v_owns = self.owned[v].binary_search(&u).is_ok();
                if u_owns == v_owns {
                    return Err(format!(
                        "edge {{{u},{v}}} must have exactly one owner (u_owns={u_owns}, v_owns={v_owns})"
                    ));
                }
            }
            for &v in &self.owned[u] {
                if self.adj[u].binary_search(&v).is_err() {
                    return Err(format!("owned edge {{{u},{v}}} missing from adjacency"));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Debug for OwnedGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OwnedGraph(n={}, edges=[", self.n)?;
        let mut first = true;
        for e in self.edges() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{}->{}", e.owner, e.other)?;
        }
        write!(f, "])")
    }
}

#[inline]
fn insert_sorted(v: &mut Vec<NodeId>, x: NodeId) {
    if let Err(pos) = v.binary_search(&x) {
        v.insert(pos, x);
    }
}

#[inline]
fn remove_sorted(v: &mut Vec<NodeId>, x: NodeId) -> bool {
    if let Ok(pos) = v.binary_search(&x) {
        v.remove(pos);
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = OwnedGraph::new(4);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 0);
        assert!(!g.has_edge(0, 1));
        g.check_invariants().unwrap();
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = OwnedGraph::new(4);
        assert!(g.add_edge(0, 1));
        assert!(g.add_edge(2, 1));
        assert!(!g.add_edge(1, 0), "duplicate edge in other orientation");
        assert!(!g.add_edge(0, 0), "self loop rejected");
        assert!(!g.add_edge(0, 9), "out of range rejected");
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(g.owns_edge(0, 1));
        assert!(!g.owns_edge(1, 0));
        assert_eq!(g.edge_owner(1, 2), Some(2));
        assert_eq!(g.edge_owner(0, 3), None);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.owned_degree(1), 0);
        g.check_invariants().unwrap();
    }

    #[test]
    fn remove_edges_either_orientation() {
        let mut g = OwnedGraph::from_owned_edges(3, &[(0, 1), (1, 2)]);
        assert!(g.remove_edge(1, 0));
        assert!(!g.has_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert!(g.remove_owned_edge(1, 2));
        assert_eq!(g.num_edges(), 0);
        g.check_invariants().unwrap();
    }

    #[test]
    fn remove_owned_edge_requires_ownership() {
        let mut g = OwnedGraph::from_owned_edges(3, &[(0, 1)]);
        assert!(!g.remove_owned_edge(1, 0), "1 does not own the edge");
        assert!(g.has_edge(0, 1));
        assert!(g.remove_owned_edge(0, 1));
    }

    #[test]
    fn swap_owned_edge_moves_ownership_target() {
        let mut g = OwnedGraph::from_owned_edges(4, &[(0, 1), (1, 2)]);
        assert!(g.swap_owned_edge(0, 1, 3));
        assert!(g.has_edge(0, 3) && g.owns_edge(0, 3));
        assert!(!g.has_edge(0, 1));
        // 1 owns the edge to 2; 2 may not swap it in the asymmetric game.
        assert!(!g.swap_owned_edge(2, 1, 0));
        g.check_invariants().unwrap();
    }

    #[test]
    fn swap_edge_ignores_ownership() {
        let mut g = OwnedGraph::from_owned_edges(4, &[(0, 1)]);
        // Vertex 1 does not own {0,1} but may still swap it in the symmetric game.
        assert!(g.swap_edge(1, 0, 2));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 1));
        g.check_invariants().unwrap();
    }

    #[test]
    fn swap_rejects_existing_target() {
        let mut g = OwnedGraph::from_owned_edges(4, &[(0, 1), (0, 2)]);
        assert!(!g.swap_owned_edge(0, 1, 2), "target edge already exists");
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn set_owned_neighbors_replaces_strategy() {
        let mut g = OwnedGraph::from_owned_edges(5, &[(0, 1), (0, 2), (3, 0)]);
        assert!(g.set_owned_neighbors(0, &[3, 4]));
        // Edge {0,3} already exists and stays owned by 3; {0,4} is new.
        assert!(g.has_edge(0, 4) && g.owns_edge(0, 4));
        assert!(g.has_edge(0, 3) && g.owns_edge(3, 0));
        assert!(!g.has_edge(0, 1) && !g.has_edge(0, 2));
        assert_eq!(g.owned_degree(0), 1);
        g.check_invariants().unwrap();
    }

    #[test]
    fn edge_iteration_is_deterministic() {
        let g = OwnedGraph::from_owned_edges(4, &[(2, 0), (0, 1), (3, 1)]);
        let edges: Vec<(NodeId, NodeId)> = g.edges().map(|e| (e.owner, e.other)).collect();
        assert_eq!(edges, vec![(0, 1), (2, 0), (3, 1)]);
    }

    #[test]
    fn debug_format_lists_edges() {
        let g = OwnedGraph::from_owned_edges(3, &[(0, 1)]);
        assert_eq!(format!("{g:?}"), "OwnedGraph(n=3, edges=[0->1])");
    }

    #[test]
    fn journal_records_structural_changes_in_order() {
        let mut g = OwnedGraph::new(5);
        let v0 = g.version();
        assert_eq!(g.changes_since(v0), Some(&[][..]));
        assert!(g.add_edge(0, 1));
        assert!(g.add_edge(1, 2));
        assert!(g.remove_edge(0, 1));
        assert_eq!(
            g.changes_since(v0),
            Some(
                &[
                    EdgeChange::Added { u: 0, v: 1 },
                    EdgeChange::Added { u: 1, v: 2 },
                    EdgeChange::Removed { u: 0, v: 1 },
                ][..]
            )
        );
        let mid = g.version();
        assert!(g.swap_owned_edge(1, 2, 4));
        assert_eq!(
            g.changes_since(mid),
            Some(
                &[
                    EdgeChange::Removed { u: 1, v: 2 },
                    EdgeChange::Added { u: 1, v: 4 },
                ][..]
            )
        );
        // Failed mutations leave the version untouched.
        let v = g.version();
        assert!(!g.add_edge(1, 4));
        assert!(!g.remove_edge(0, 3));
        assert_eq!(g.version(), v);
    }

    #[test]
    fn ownership_only_changes_are_not_journaled() {
        // set_owned_neighbors towards an existing foreign-owned edge leaves
        // the structure (and hence the journal) unchanged.
        let mut g = OwnedGraph::from_owned_edges(3, &[(1, 0)]);
        let v = g.version();
        assert!(g.set_owned_neighbors(0, &[]));
        assert_eq!(g.version(), v);
    }

    #[test]
    fn clones_start_a_fresh_lineage() {
        let mut g = OwnedGraph::new(4);
        g.add_edge(0, 1);
        let v = g.version();
        let mut c = g.clone();
        assert_eq!(g, c, "clone is structurally identical");
        assert!(
            c.changes_since(v).is_none(),
            "versions never cross lineages"
        );
        // Diverge the clone; the original's journal is unaffected.
        c.add_edge(2, 3);
        assert_eq!(g.changes_since(v), Some(&[][..]));
        let mut d = OwnedGraph::new(4);
        d.clone_from(&g);
        assert!(d.changes_since(g.version()).is_none());
        assert_eq!(d, g);
    }

    #[test]
    fn journal_window_is_bounded() {
        let mut g = OwnedGraph::new(3);
        let ancient = g.version();
        for _ in 0..3000 {
            assert!(g.add_edge(0, 1));
            assert!(g.remove_edge(0, 1));
        }
        assert!(
            g.changes_since(ancient).is_none(),
            "positions before the retained window are rejected"
        );
        let recent = g.version();
        g.add_edge(1, 2);
        assert_eq!(
            g.changes_since(recent),
            Some(&[EdgeChange::Added { u: 1, v: 2 }][..])
        );
    }

    #[test]
    fn equality_and_hash_ignore_history() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut a = OwnedGraph::new(3);
        a.add_edge(0, 1);
        a.add_edge(1, 2);
        a.remove_edge(1, 2);
        let b = OwnedGraph::from_owned_edges(3, &[(0, 1)]);
        assert_eq!(a, b, "same structure, different histories");
        let digest = |g: &OwnedGraph| {
            let mut h = DefaultHasher::new();
            g.hash(&mut h);
            h.finish()
        };
        assert_eq!(digest(&a), digest(&b));
    }
}
