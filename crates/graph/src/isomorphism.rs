//! Small-graph isomorphism testing.
//!
//! The best-response cycles constructed in the paper pass through states that are
//! isomorphic to earlier states (Fig. 2: "G2 is isomorphic to G1 …"). The tests in
//! `ncg-instances` verify these claims with an exact isomorphism check. The
//! instances have at most ~25 vertices, so a degree-refined backtracking search is
//! entirely sufficient; this is not intended for large graphs.

use crate::graph::{NodeId, OwnedGraph};

/// Returns `true` if the two graphs are isomorphic as *undirected, unlabelled*
/// graphs (ownership ignored).
pub fn are_isomorphic(a: &OwnedGraph, b: &OwnedGraph) -> bool {
    isomorphic_impl(a, b, false)
}

/// Returns `true` if the two graphs are isomorphic as *ownership-labelled* graphs:
/// the vertex bijection must map owned edges to owned edges with matching
/// orientation (owner ↦ owner).
pub fn are_isomorphic_owned(a: &OwnedGraph, b: &OwnedGraph) -> bool {
    isomorphic_impl(a, b, true)
}

fn isomorphic_impl(a: &OwnedGraph, b: &OwnedGraph, respect_ownership: bool) -> bool {
    let n = a.num_nodes();
    if n != b.num_nodes() || a.num_edges() != b.num_edges() {
        return false;
    }
    if n == 0 {
        return true;
    }
    // Invariant signature per vertex: (degree, owned-degree if relevant,
    // sorted multiset of neighbour degrees).
    let sig = |g: &OwnedGraph, v: NodeId| -> (usize, usize, Vec<usize>) {
        let mut nd: Vec<usize> = g.neighbors(v).iter().map(|&w| g.degree(w)).collect();
        nd.sort_unstable();
        let od = if respect_ownership {
            g.owned_degree(v)
        } else {
            0
        };
        (g.degree(v), od, nd)
    };
    let sig_a: Vec<_> = (0..n).map(|v| sig(a, v)).collect();
    let sig_b: Vec<_> = (0..n).map(|v| sig(b, v)).collect();
    {
        let mut sa = sig_a.clone();
        let mut sb = sig_b.clone();
        sa.sort();
        sb.sort();
        if sa != sb {
            return false;
        }
    }

    // Order the vertices of `a` by rarity of their signature so the backtracking
    // fails fast.
    let mut order: Vec<NodeId> = (0..n).collect();
    order.sort_by_key(|&v| sig_a.iter().filter(|s| **s == sig_a[v]).count());

    let mut mapping: Vec<Option<NodeId>> = vec![None; n];
    let mut used: Vec<bool> = vec![false; n];
    backtrack(
        a,
        b,
        &order,
        0,
        &mut mapping,
        &mut used,
        &sig_a,
        &sig_b,
        respect_ownership,
    )
}

#[allow(clippy::too_many_arguments)]
fn backtrack(
    a: &OwnedGraph,
    b: &OwnedGraph,
    order: &[NodeId],
    idx: usize,
    mapping: &mut Vec<Option<NodeId>>,
    used: &mut Vec<bool>,
    sig_a: &[(usize, usize, Vec<usize>)],
    sig_b: &[(usize, usize, Vec<usize>)],
    respect_ownership: bool,
) -> bool {
    if idx == order.len() {
        return true;
    }
    let u = order[idx];
    for cand in 0..b.num_nodes() {
        if used[cand] || sig_a[u] != sig_b[cand] {
            continue;
        }
        if !consistent(a, b, u, cand, mapping, respect_ownership) {
            continue;
        }
        mapping[u] = Some(cand);
        used[cand] = true;
        if backtrack(
            a,
            b,
            order,
            idx + 1,
            mapping,
            used,
            sig_a,
            sig_b,
            respect_ownership,
        ) {
            return true;
        }
        mapping[u] = None;
        used[cand] = false;
    }
    false
}

fn consistent(
    a: &OwnedGraph,
    b: &OwnedGraph,
    u: NodeId,
    cand: NodeId,
    mapping: &[Option<NodeId>],
    respect_ownership: bool,
) -> bool {
    for (v, &mv) in mapping.iter().enumerate() {
        let Some(mv) = mv else { continue };
        let edge_a = a.has_edge(u, v);
        let edge_b = b.has_edge(cand, mv);
        if edge_a != edge_b {
            return false;
        }
        if edge_a && respect_ownership {
            let owner_a_is_u = a.owns_edge(u, v);
            let owner_b_is_cand = b.owns_edge(cand, mv);
            if owner_a_is_u != owner_b_is_cand {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn identical_graphs_are_isomorphic() {
        let g = generators::cycle(6);
        assert!(are_isomorphic(&g, &g));
        assert!(are_isomorphic_owned(&g, &g));
    }

    #[test]
    fn relabelled_path_is_isomorphic() {
        let a = OwnedGraph::from_owned_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let b = OwnedGraph::from_owned_edges(4, &[(2, 0), (0, 3), (3, 1)]);
        assert!(are_isomorphic(&a, &b));
    }

    #[test]
    fn path_vs_star_not_isomorphic() {
        let p = generators::path(5);
        let s = generators::star(5);
        assert!(!are_isomorphic(&p, &s));
    }

    #[test]
    fn same_shape_different_ownership() {
        let a = OwnedGraph::from_owned_edges(3, &[(0, 1), (1, 2)]);
        // Same path, but the middle vertex owns both edges.
        let b = OwnedGraph::from_owned_edges(3, &[(1, 0), (1, 2)]);
        assert!(are_isomorphic(&a, &b));
        assert!(!are_isomorphic_owned(&a, &b));
        // An ownership-respecting relabelling of `a` (reverse the path).
        let c = OwnedGraph::from_owned_edges(3, &[(2, 1), (1, 0)]);
        assert!(are_isomorphic_owned(&a, &c));
    }

    #[test]
    fn different_edge_counts_fail_fast() {
        let a = generators::path(5);
        let b = generators::cycle(5);
        assert!(!are_isomorphic(&a, &b));
    }

    #[test]
    fn empty_graphs() {
        let a = OwnedGraph::new(0);
        let b = OwnedGraph::new(0);
        assert!(are_isomorphic(&a, &b));
        assert!(!are_isomorphic(&OwnedGraph::new(2), &OwnedGraph::new(3)));
    }

    #[test]
    fn petersen_like_regular_graphs() {
        // Two 3-regular graphs on 6 vertices: K_{3,3} and the prism. Same degree
        // sequence but not isomorphic (prism contains triangles).
        let k33 = OwnedGraph::from_owned_edges(
            6,
            &[
                (0, 3),
                (0, 4),
                (0, 5),
                (1, 3),
                (1, 4),
                (1, 5),
                (2, 3),
                (2, 4),
                (2, 5),
            ],
        );
        let prism = OwnedGraph::from_owned_edges(
            6,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (3, 4),
                (4, 5),
                (5, 3),
                (0, 3),
                (1, 4),
                (2, 5),
            ],
        );
        assert!(!are_isomorphic(&k33, &prism));
        assert!(are_isomorphic(&k33, &k33.clone()));
    }
}
