//! Structural predicates and descriptors used throughout the dynamics analysis:
//! connectivity, tree tests, diameter, eccentricities, centers and medians.

use crate::distances::{BfsBuffer, UNREACHABLE};
use crate::graph::{NodeId, OwnedGraph};

/// Returns `true` if the graph is connected (the empty graph and single vertices
/// are considered connected).
pub fn is_connected(g: &OwnedGraph) -> bool {
    let n = g.num_nodes();
    if n <= 1 {
        return true;
    }
    let mut buf = BfsBuffer::new(n);
    buf.run(g, 0).iter().all(|&d| d != UNREACHABLE)
}

/// Returns `true` if the graph is a tree (connected with exactly `n - 1` edges).
pub fn is_tree(g: &OwnedGraph) -> bool {
    let n = g.num_nodes();
    n > 0 && g.num_edges() == n - 1 && is_connected(g)
}

/// Connected components as sorted vertex lists, ordered by smallest member.
pub fn components(g: &OwnedGraph) -> Vec<Vec<NodeId>> {
    let n = g.num_nodes();
    let mut seen = vec![false; n];
    let mut out = Vec::new();
    let mut buf = BfsBuffer::new(n);
    for s in 0..n {
        if seen[s] {
            continue;
        }
        let dist = buf.run(g, s);
        let mut comp: Vec<NodeId> = (0..n).filter(|&v| dist[v] != UNREACHABLE).collect();
        comp.sort_unstable();
        for &v in &comp {
            seen[v] = true;
        }
        out.push(comp);
    }
    out
}

/// Eccentricity of every vertex; `None` entries for vertices of a disconnected graph.
pub fn eccentricities(g: &OwnedGraph) -> Vec<Option<u32>> {
    let n = g.num_nodes();
    let mut buf = BfsBuffer::new(n);
    (0..n).map(|v| buf.summary(g, v).max).collect()
}

/// Sum-distance (SUM distance-cost) of every vertex; `None` for disconnected graphs.
pub fn sum_distance_vector(g: &OwnedGraph) -> Vec<Option<u64>> {
    let n = g.num_nodes();
    let mut buf = BfsBuffer::new(n);
    (0..n).map(|v| buf.summary(g, v).sum).collect()
}

/// Diameter (max eccentricity), `None` if the graph is disconnected or empty.
pub fn diameter(g: &OwnedGraph) -> Option<u32> {
    let eccs = eccentricities(g);
    if eccs.is_empty() {
        return None;
    }
    eccs.into_iter()
        .collect::<Option<Vec<_>>>()
        .map(|v| v.into_iter().max().unwrap())
}

/// Radius (min eccentricity), `None` if the graph is disconnected or empty.
pub fn radius(g: &OwnedGraph) -> Option<u32> {
    let eccs = eccentricities(g);
    if eccs.is_empty() {
        return None;
    }
    eccs.into_iter()
        .collect::<Option<Vec<_>>>()
        .map(|v| v.into_iter().min().unwrap())
}

/// Center vertices: vertices of minimum eccentricity (the paper's "center-vertex",
/// Definition 2.5, is a vertex whose MAX cost is minimal).
///
/// Returns an empty vector for disconnected graphs.
pub fn center_vertices(g: &OwnedGraph) -> Vec<NodeId> {
    let eccs = eccentricities(g);
    let Some(all): Option<Vec<u32>> = eccs.into_iter().collect() else {
        return Vec::new();
    };
    let Some(&min) = all.iter().min() else {
        return Vec::new();
    };
    all.iter()
        .enumerate()
        .filter(|&(_, &e)| e == min)
        .map(|(v, _)| v)
        .collect()
}

/// Median vertices (1-median set): vertices of minimum sum-distance.
///
/// Returns an empty vector for disconnected graphs.
pub fn median_vertices(g: &OwnedGraph) -> Vec<NodeId> {
    let sums = sum_distance_vector(g);
    let Some(all): Option<Vec<u64>> = sums.into_iter().collect() else {
        return Vec::new();
    };
    let Some(&min) = all.iter().min() else {
        return Vec::new();
    };
    all.iter()
        .enumerate()
        .filter(|&(_, &s)| s == min)
        .map(|(v, _)| v)
        .collect()
}

/// Returns `true` if removing edge `{u, v}` would disconnect the graph
/// (i.e. the edge is a bridge). The edge must exist.
pub fn is_bridge(g: &OwnedGraph, u: NodeId, v: NodeId) -> bool {
    debug_assert!(g.has_edge(u, v));
    let mut h = g.clone();
    h.remove_edge(u, v);
    // It suffices to check whether v is still reachable from u.
    let mut buf = BfsBuffer::new(h.num_nodes());
    buf.run(&h, u)[v] == UNREACHABLE
}

/// Degree sequence (sorted descending); a cheap graph invariant used by the
/// isomorphism pre-check.
pub fn degree_sequence(g: &OwnedGraph) -> Vec<usize> {
    let mut d: Vec<usize> = (0..g.num_nodes()).map(|v| g.degree(v)).collect();
    d.sort_unstable_by(|a, b| b.cmp(a));
    d
}

/// Returns `true` if the tree `g` is a star: one center adjacent to all others.
/// (Stable trees of the SUM swap games are stars; Alon et al. SPAA'10.)
pub fn is_star(g: &OwnedGraph) -> bool {
    let n = g.num_nodes();
    if n <= 2 {
        return is_tree(g);
    }
    is_tree(g) && (0..n).any(|v| g.degree(v) == n - 1)
}

/// Returns `true` if the tree `g` is a star or a double star (two adjacent centers,
/// every other vertex a leaf attached to one of them). Stable trees of the MAX swap
/// game are exactly stars and double stars (Alon et al. SPAA'10), equivalently trees
/// of diameter at most 3.
pub fn is_star_or_double_star(g: &OwnedGraph) -> bool {
    if !is_tree(g) {
        return false;
    }
    matches!(diameter(g), Some(d) if d <= 3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn connectivity_and_tree() {
        let p = generators::path(6);
        assert!(is_connected(&p));
        assert!(is_tree(&p));
        let c = generators::cycle(6);
        assert!(is_connected(&c));
        assert!(!is_tree(&c));
        let mut g = OwnedGraph::new(3);
        g.add_edge(0, 1);
        assert!(!is_connected(&g));
        assert!(!is_tree(&g));
    }

    #[test]
    fn empty_and_singleton() {
        assert!(is_connected(&OwnedGraph::new(0)));
        assert!(is_connected(&OwnedGraph::new(1)));
        assert!(is_tree(&OwnedGraph::new(1)));
        assert!(!is_tree(&OwnedGraph::new(0)));
        assert_eq!(diameter(&OwnedGraph::new(1)), Some(0));
    }

    #[test]
    fn components_of_forest() {
        let mut g = OwnedGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(3, 4);
        let comps = components(&g);
        assert_eq!(comps, vec![vec![0, 1], vec![2], vec![3, 4]]);
    }

    #[test]
    fn diameter_radius_center_of_path() {
        let p = generators::path(7);
        assert_eq!(diameter(&p), Some(6));
        assert_eq!(radius(&p), Some(3));
        assert_eq!(center_vertices(&p), vec![3]);
        assert_eq!(median_vertices(&p), vec![3]);
        let p6 = generators::path(6);
        assert_eq!(center_vertices(&p6), vec![2, 3]);
    }

    #[test]
    fn disconnected_graph_has_no_diameter() {
        let g = OwnedGraph::new(3);
        assert_eq!(diameter(&g), None);
        assert!(center_vertices(&g).is_empty());
        assert!(median_vertices(&g).is_empty());
    }

    #[test]
    fn bridges() {
        let p = generators::path(4);
        assert!(is_bridge(&p, 1, 2));
        let c = generators::cycle(4);
        assert!(!is_bridge(&c, 0, 1));
    }

    #[test]
    fn star_and_double_star_recognition() {
        assert!(is_star(&generators::star(5)));
        assert!(is_star_or_double_star(&generators::star(5)));
        let ds = generators::double_star(3, 2);
        assert!(!is_star(&ds));
        assert!(is_star_or_double_star(&ds));
        assert!(!is_star_or_double_star(&generators::path(6)));
        // A path on 4 vertices has diameter 3, i.e. it *is* a double star.
        assert!(is_star_or_double_star(&generators::path(4)));
    }

    #[test]
    fn degree_sequence_sorted() {
        let s = generators::star(5);
        assert_eq!(degree_sequence(&s), vec![4, 1, 1, 1, 1]);
    }
}
