//! Deterministic and random network generators.
//!
//! The random generators reproduce the initial-network constructions of the paper's
//! empirical study: the budget-constrained networks of §3.4.1 (every agent owns
//! exactly `k` edges), the `m`-edge networks of §4.2.1, and the `rl` / `dl`
//! path topologies of the starting-topology comparison (Fig. 12 / Fig. 14).

use crate::graph::{NodeId, OwnedGraph};
use rand::seq::SliceRandom;
use rand::Rng;

/// Path `v0 - v1 - … - v(n-1)`; edge `{i, i+1}` is owned by `i`, so the ownership
/// forms a directed path. This is exactly the paper's `dl` (directed line) setting.
pub fn path(n: usize) -> OwnedGraph {
    let mut g = OwnedGraph::new(n);
    for i in 1..n {
        g.add_edge(i - 1, i);
    }
    g
}

/// Alias for [`path`]: the `dl` (directed line) starting topology of Fig. 12 / 14.
pub fn directed_line(n: usize) -> OwnedGraph {
    path(n)
}

/// Path on `n` vertices where the owner of every edge is chosen uniformly at random
/// among its endpoints — the paper's `rl` (random line) starting topology.
pub fn random_line<R: Rng>(n: usize, rng: &mut R) -> OwnedGraph {
    let mut g = OwnedGraph::new(n);
    for i in 1..n {
        if rng.gen_bool(0.5) {
            g.add_edge(i - 1, i);
        } else {
            g.add_edge(i, i - 1);
        }
    }
    g
}

/// Star with center `0` and leaves `1..n`; the center owns every edge.
pub fn star(n: usize) -> OwnedGraph {
    let mut g = OwnedGraph::new(n);
    for i in 1..n {
        g.add_edge(0, i);
    }
    g
}

/// Double star: centers `0` and `1` are adjacent, `a` leaves hang off center `0`
/// and `b` leaves hang off center `1` (total `a + b + 2` vertices).
pub fn double_star(a: usize, b: usize) -> OwnedGraph {
    let n = a + b + 2;
    let mut g = OwnedGraph::new(n);
    g.add_edge(0, 1);
    for i in 0..a {
        g.add_edge(0, 2 + i);
    }
    for i in 0..b {
        g.add_edge(1, 2 + a + i);
    }
    g
}

/// Cycle `v0 - v1 - … - v(n-1) - v0`; edge `{i, i+1 mod n}` owned by `i`.
pub fn cycle(n: usize) -> OwnedGraph {
    let mut g = OwnedGraph::new(n);
    if n < 3 {
        return path(n);
    }
    for i in 0..n {
        g.add_edge(i, (i + 1) % n);
    }
    g
}

/// Complete graph; edge `{i, j}` with `i < j` owned by `i`.
pub fn complete(n: usize) -> OwnedGraph {
    let mut g = OwnedGraph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(i, j);
        }
    }
    g
}

/// Random spanning tree following the paper's procedure (§3.4.1):
/// start from a uniformly chosen pair, then repeatedly connect a uniformly chosen
/// unmarked vertex to a uniformly chosen marked vertex. The owner of every edge is
/// chosen uniformly among its endpoints, subject to the optional per-agent budget
/// `max_owned` (an endpoint that already owns `max_owned` edges never becomes the
/// owner; at least one endpoint always has capacity because the newly attached
/// vertex owns nothing yet).
pub fn random_spanning_tree<R: Rng>(n: usize, max_owned: Option<usize>, rng: &mut R) -> OwnedGraph {
    let mut g = OwnedGraph::new(n);
    if n <= 1 {
        return g;
    }
    let cap = max_owned.unwrap_or(usize::MAX);
    let mut marked: Vec<NodeId> = Vec::with_capacity(n);
    let mut unmarked: Vec<NodeId> = (0..n).collect();
    unmarked.shuffle(rng);

    // First edge between a uniformly chosen pair.
    let a = unmarked.pop().expect("n >= 2");
    let b = unmarked.pop().expect("n >= 2");
    add_with_random_owner(&mut g, a, b, cap, rng);
    marked.push(a);
    marked.push(b);

    while let Some(u) = unmarked.pop() {
        let &m = marked.choose(rng).expect("marked set non-empty");
        add_with_random_owner(&mut g, u, m, cap, rng);
        marked.push(u);
    }
    g
}

fn add_with_random_owner<R: Rng>(
    g: &mut OwnedGraph,
    a: NodeId,
    b: NodeId,
    cap: usize,
    rng: &mut R,
) {
    let a_ok = g.owned_degree(a) < cap;
    let b_ok = g.owned_degree(b) < cap;
    let owner_is_a = match (a_ok, b_ok) {
        (true, true) => rng.gen_bool(0.5),
        (true, false) => true,
        (false, true) => false,
        (false, false) => rng.gen_bool(0.5), // over budget either way; keep the graph valid
    };
    if owner_is_a {
        g.add_edge(a, b);
    } else {
        g.add_edge(b, a);
    }
}

/// Connected random initial network where every agent owns exactly `k` edges
/// (the bounded-budget workload of §3.4.1).
///
/// A random spanning tree (budget-respecting ownership) is built first; afterwards
/// agents that still own fewer than `k` edges repeatedly buy an edge to a uniformly
/// chosen non-neighbour. If an agent is already adjacent to every other vertex it is
/// dropped from the fill-up phase — for feasible parameters (`k <= (n-1)/2` roughly)
/// this never happens and every agent ends up owning exactly `k` edges.
pub fn budgeted_random<R: Rng>(n: usize, k: usize, rng: &mut R) -> OwnedGraph {
    let mut g = random_spanning_tree(n, Some(k), rng);
    if n <= 1 {
        return g;
    }
    // Agents that can still buy edges (own fewer than k).
    let mut open: Vec<NodeId> = (0..n).filter(|&v| g.owned_degree(v) < k).collect();
    let mut scratch: Vec<NodeId> = Vec::with_capacity(n);
    while !open.is_empty() {
        let idx = rng.gen_range(0..open.len());
        let a = open[idx];
        scratch.clear();
        scratch.extend((0..n).filter(|&v| v != a && !g.has_edge(a, v)));
        if scratch.is_empty() {
            // Saturated vertex: cannot reach its budget, drop it.
            open.swap_remove(idx);
            continue;
        }
        let &b = scratch.choose(rng).expect("non-empty");
        g.add_edge(a, b);
        if g.owned_degree(a) >= k {
            open.swap_remove(idx);
        }
    }
    g
}

/// Connected random initial network with exactly `m` edges (the Greedy-Buy-Game
/// workload of §4.2.1): a random spanning tree plus uniformly random additional
/// edges, every edge owned by a uniformly chosen endpoint.
///
/// `m` is clamped to the feasible range `[n - 1, n(n-1)/2]`.
pub fn random_with_m_edges<R: Rng>(n: usize, m: usize, rng: &mut R) -> OwnedGraph {
    let mut g = random_spanning_tree(n, None, rng);
    if n <= 1 {
        return g;
    }
    let max_edges = n * (n - 1) / 2;
    let target = m.clamp(n - 1, max_edges);
    while g.num_edges() < target {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b || g.has_edge(a, b) {
            continue;
        }
        if rng.gen_bool(0.5) {
            g.add_edge(a, b);
        } else {
            g.add_edge(b, a);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::{is_connected, is_tree};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_shapes() {
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(star(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(complete(5).num_edges(), 10);
        assert_eq!(double_star(2, 3).num_nodes(), 7);
        assert_eq!(double_star(2, 3).num_edges(), 6);
        assert!(is_tree(&path(5)));
        assert!(is_tree(&star(5)));
        assert!(is_tree(&double_star(2, 3)));
        assert!(!is_tree(&cycle(5)));
    }

    #[test]
    fn directed_line_ownership() {
        let g = directed_line(4);
        assert!(g.owns_edge(0, 1) && g.owns_edge(1, 2) && g.owns_edge(2, 3));
    }

    #[test]
    fn random_line_is_path() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = random_line(10, &mut rng);
        assert!(is_tree(&g));
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(5), 2);
    }

    #[test]
    fn spanning_tree_is_tree() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [2usize, 3, 5, 17, 40] {
            let g = random_spanning_tree(n, None, &mut rng);
            assert!(is_tree(&g), "n={n}");
            g.check_invariants().unwrap();
        }
    }

    #[test]
    fn spanning_tree_respects_budget() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let g = random_spanning_tree(30, Some(1), &mut rng);
            assert!(is_tree(&g));
            assert!((0..30).all(|v| g.owned_degree(v) <= 1));
        }
    }

    #[test]
    fn budgeted_random_every_agent_owns_k() {
        let mut rng = StdRng::seed_from_u64(11);
        for &(n, k) in &[(10usize, 1usize), (20, 2), (30, 3), (50, 5)] {
            let g = budgeted_random(n, k, &mut rng);
            assert!(is_connected(&g), "n={n} k={k}");
            assert_eq!(g.num_edges(), n * k, "n={n} k={k}");
            assert!((0..n).all(|v| g.owned_degree(v) == k), "n={n} k={k}");
            g.check_invariants().unwrap();
        }
    }

    #[test]
    fn budgeted_random_handles_tight_budgets() {
        // k = 10 with n = 25 is close to the feasibility boundary; the generator
        // must still terminate and produce a connected simple graph.
        let mut rng = StdRng::seed_from_u64(5);
        let g = budgeted_random(25, 10, &mut rng);
        assert!(is_connected(&g));
        assert!(g.num_edges() <= 25 * 24 / 2);
        g.check_invariants().unwrap();
    }

    #[test]
    fn random_with_m_edges_counts() {
        let mut rng = StdRng::seed_from_u64(9);
        for &(n, m) in &[(10usize, 10usize), (20, 40), (30, 120)] {
            let g = random_with_m_edges(n, m, &mut rng);
            assert!(is_connected(&g));
            assert_eq!(g.num_edges(), m);
            g.check_invariants().unwrap();
        }
        // Infeasibly small m is clamped up to a spanning tree.
        let g = random_with_m_edges(10, 3, &mut rng);
        assert_eq!(g.num_edges(), 9);
        // Infeasibly large m is clamped down to the complete graph.
        let g = random_with_m_edges(6, 1000, &mut rng);
        assert_eq!(g.num_edges(), 15);
    }

    #[test]
    fn tiny_graphs() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(random_spanning_tree(0, None, &mut rng).num_nodes(), 0);
        assert_eq!(random_spanning_tree(1, None, &mut rng).num_edges(), 0);
        assert_eq!(budgeted_random(1, 3, &mut rng).num_edges(), 0);
        assert_eq!(random_with_m_edges(1, 5, &mut rng).num_edges(), 0);
    }
}
