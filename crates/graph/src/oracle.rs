//! Pluggable single-source distance oracles for candidate-move scoring.
//!
//! The hot operation of best-response dynamics is: *given the current network
//! `G` and an agent `u`, what is `u`'s distance summary in `G ± a few edges`?*
//! Historically every candidate move paid a full apply → BFS → undo cycle.
//! This module turns that cost into a pluggable engine:
//!
//! * [`FullBfsOracle`] — the baseline: every evaluation is a fresh BFS over a
//!   [`CsrAdjacency`] snapshot patched with the candidate's edge deltas.
//! * [`IncrementalOracle`] — keeps the source's exact distance vector for the
//!   *base* graph and repairs it under each candidate's [`EdgeDelta`]s with
//!   truncated BFS: inserts run a decrease-only relaxation from the improved
//!   endpoint, deletions find the orphaned region (the vertices whose every
//!   shortest path used the deleted edge) and re-settle it with a bucket
//!   Dijkstra seeded from its unaffected boundary. All repairs are journaled
//!   and rolled back after scoring, so hundreds of candidates are evaluated
//!   against one base vector without re-running a single full BFS.
//!
//! Both oracles maintain the SUM / MAX aggregates incrementally (a running sum
//! plus per-level counters), so a candidate evaluation touching `k` vertices
//! costs `O(k + affected edges)` rather than `O(n)`.
//!
//! The oracles are deliberately *what-if* engines: [`DistanceOracle::begin`]
//! pins the base state and [`DistanceOracle::evaluate`] answers one candidate
//! against it. The incremental backend additionally keeps the previous
//! candidate's deltas applied and only rolls back to the longest common delta
//! prefix, so candidate enumerations of the form `(from, to₁), (from, to₂), …`
//! pay the expensive removal repair once per `from`. Correctness of the
//! incremental repairs against from-scratch BFS is enforced by the randomized
//! equivalence tests in the facade crate.
//!
//! The **persistent** backend synchronizes its parked per-source vectors
//! *lazily*: each vector carries its own [`GraphVersion`] stamp and is only
//! repaired — by replaying the journal window between its stamp and the
//! current version — when it is next needed (`begin`, `pin_sources`, the
//! cache-arithmetic path) or when the caller bulk-warms it
//! ([`DistanceOracle::warm_sources`], which also advances provably-unchanged
//! vectors by a stamp bump alone). The staleness fallback is per-vector: a
//! window longer than `max(8, n/8)` changes makes *that* vector re-pin with
//! one full BFS, without touching its neighbours in the cache.

use crate::batch::{BatchSummary, MultiSourceBfs, BATCH_WIDTH};
use crate::csr::{CsrAdjacency, PatchOutcome};
use crate::distances::{DistanceSummary, MAX_NODES, UNREACHABLE};
use crate::graph::{EdgeChange, GraphVersion, NodeId, OwnedGraph};
use ncg_trace as trace;

/// A single undirected edge change relative to the base graph.
///
/// Deltas are applied in order by [`DistanceOracle::evaluate`]; an `Insert`
/// must name an edge absent from (and a `Remove` an edge present in) the graph
/// obtained from the base by the preceding deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeDelta {
    /// Add the undirected edge `{u, v}`.
    Insert {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// Remove the undirected edge `{u, v}`.
    Remove {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
}

/// Which distance-oracle backend a workspace uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OracleKind {
    /// Full BFS per candidate evaluation (the historical behaviour).
    FullBfs,
    /// Journaled truncated-BFS repair per candidate evaluation; every
    /// [`DistanceOracle::begin`] re-pins with a fresh full BFS.
    #[default]
    Incremental,
    /// Like [`OracleKind::Incremental`], but distance vectors are additionally
    /// carried **across** `begin` calls: each source's vector is cached
    /// together with the graph's [`GraphVersion`], and the next `begin` for
    /// that source replays the applied [`EdgeChange`]s from the graph's change
    /// journal instead of re-running the full BFS (with a staleness fallback
    /// when too many changes accumulated).
    Persistent,
}

impl OracleKind {
    /// Short label used in reports and benchmarks.
    pub fn label(&self) -> &'static str {
        match self {
            OracleKind::FullBfs => "full-bfs",
            OracleKind::Incremental => "incremental",
            OracleKind::Persistent => "persistent",
        }
    }

    /// Inverse of [`OracleKind::label`] (plan-spec round trips).
    pub fn parse(s: &str) -> Option<OracleKind> {
        match s {
            "full-bfs" => Some(OracleKind::FullBfs),
            "incremental" => Some(OracleKind::Incremental),
            "persistent" => Some(OracleKind::Persistent),
            _ => None,
        }
    }
}

/// Work counters of an oracle, for ablation measurements.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Full BFS traversals performed (one per [`DistanceOracle::begin`], plus
    /// one per evaluation for the full-BFS backend).
    pub full_bfs_runs: u64,
    /// Candidate evaluations answered.
    pub evaluations: u64,
    /// Vertices expanded across all traversals and repairs — the
    /// backend-comparable measure of work done.
    pub nodes_expanded: u64,
    /// `begin` calls served by replaying the graph's change journal onto a
    /// cached distance vector instead of a full BFS (persistent backend only).
    pub replayed_begins: u64,
    /// CSR snapshot syncs served by in-place journal patching — `O(changes)`
    /// instead of the `O(n + m)` rebuild (persistent backend only).
    pub csr_patches: u64,
    /// CSR snapshot syncs that had to rebuild (or regrow) the flat buffers:
    /// version jumps, dense journals, exhausted segment slack, and every
    /// `begin` of the stateless backends.
    pub csr_rebuilds: u64,
    /// Parked vectors advanced to the current graph version by replaying
    /// their own journal window *outside* a [`DistanceOracle::begin`] — the
    /// lazy path: bulk warming ([`DistanceOracle::warm_sources`]) and
    /// on-demand warming inside
    /// [`DistanceOracle::evaluate_insert_via_cache`] / `pin_sources`.
    pub lazy_replays: u64,
    /// Parked vectors advanced by a trusted *stamp bump* alone: the caller's
    /// dirty set excluded the source, so the vector is provably unchanged
    /// over the window and no repair ran at all.
    pub warm_bumps: u64,
    /// [`DistanceOracle::warm_sources`] passes that advanced at least one
    /// vector (one shared CSR sync, many per-vector repairs).
    pub warm_batches: u64,
    /// Cache-arithmetic what-if queries that were served only because an
    /// on-demand lazy warm first brought the target's parked vector to the
    /// pinned version — queries the eager-sync model would have missed.
    pub lazy_hits: u64,
    /// Parked vectors recomputed by the word-parallel bulk waves (up to
    /// [`BATCH_WIDTH`] sources per shared bitset BFS) instead of one scalar
    /// traversal each: cold bulk pins and vectors whose journal window grew
    /// past the replay limit.
    pub batched_repins: u64,
    /// High-water mark of the parked per-source cache, in bytes. Dense slots
    /// cost `4n + 4` bytes (`u16` distance vector + level counters; the
    /// former `u32` layout cost exactly twice as much); ball-sparse slots
    /// cost `4` bytes per stored ball entry, so the mark reflects the actual
    /// mixed-representation footprint, not the dense envelope.
    pub peak_parked_bytes: u64,
    /// Stale journal windows longer than the per-vector replay limit that
    /// were nonetheless served incrementally, by replaying the window's
    /// *net* edge diff (touching only the region whose distances actually
    /// changed) instead of joining a full `O(n)` recompute wave.
    pub bounded_repairs: u64,
    /// Dense parked vectors demoted to the ball-sparse representation under
    /// byte-budget pressure.
    pub sparse_demotions: u64,
    /// Cache-arithmetic insertion queries served from a ball-sparse parked
    /// vector (`O(|ball|)` instead of the dense kernel's `O(n)` pass).
    pub sparse_hits: u64,
    /// Histogram of warm-pass widths: how many parked vectors each
    /// [`DistanceOracle::warm_sources`] pass had to *repair* (scalar replays
    /// plus batched recomputes; trusted stamp bumps are free and excluded).
    /// Bucket `i` counts passes of width `w` with `ceil(log2(w)) == i`
    /// (bucket 0: `w == 1`, bucket 1: `w == 2`, bucket 2: `3..=4`, …,
    /// bucket 6: `33..=64`, bucket 7: `w > 64`).
    pub warm_batch_width: [u64; 8],
}

/// Histogram bucket of a warm-pass width (see
/// [`OracleStats::warm_batch_width`]).
fn width_bucket(w: usize) -> usize {
    if w <= 1 {
        0
    } else {
        ((usize::BITS - (w - 1).leading_zeros()) as usize).min(7)
    }
}

impl OracleStats {
    /// Internal-consistency invariants that hold for any counter state the
    /// oracle code can produce — and, because each is a linear inequality
    /// over summed fields, for any [`OracleStats::merge`] of such states:
    ///
    /// * every warm pass tallied in the width histogram repaired at least
    ///   one vector, so it also counted as a `warm_batches` pass (bump-only
    ///   passes count toward `warm_batches` but have width 0);
    /// * a `lazy_hits` query first lazily replayed the target's parked
    ///   vector, so each one is covered by a `lazy_replays` increment;
    /// * every bounded net-diff repair served either a `begin` (counted in
    ///   `replayed_begins`) or a lazy warm (counted in `lazy_replays`).
    pub fn consistent(&self) -> bool {
        let width_passes: u64 = self.warm_batch_width.iter().sum();
        width_passes <= self.warm_batches
            && self.lazy_hits <= self.lazy_replays
            && self.bounded_repairs <= self.replayed_begins + self.lazy_replays
    }

    /// Debug assertion of [`OracleStats::consistent`]; free in release
    /// builds, and cheap enough for every [`DistanceOracle::stats`] read.
    pub fn debug_validate(&self) {
        debug_assert!(self.consistent(), "inconsistent oracle counters: {self:?}");
    }

    /// Field-wise sum, for aggregating counters across trials.
    pub fn merge(&mut self, other: &OracleStats) {
        self.full_bfs_runs += other.full_bfs_runs;
        self.evaluations += other.evaluations;
        self.nodes_expanded += other.nodes_expanded;
        self.replayed_begins += other.replayed_begins;
        self.csr_patches += other.csr_patches;
        self.csr_rebuilds += other.csr_rebuilds;
        self.lazy_replays += other.lazy_replays;
        self.warm_bumps += other.warm_bumps;
        self.warm_batches += other.warm_batches;
        self.lazy_hits += other.lazy_hits;
        self.batched_repins += other.batched_repins;
        self.bounded_repairs += other.bounded_repairs;
        self.sparse_demotions += other.sparse_demotions;
        self.sparse_hits += other.sparse_hits;
        self.peak_parked_bytes = self.peak_parked_bytes.max(other.peak_parked_bytes);
        for (a, b) in self
            .warm_batch_width
            .iter_mut()
            .zip(&other.warm_batch_width)
        {
            *a += b;
        }
    }
}

/// A single-source distance engine answering what-if queries about edge deltas.
pub trait DistanceOracle: Send {
    /// The backend this oracle implements.
    fn kind(&self) -> OracleKind;

    /// Pins the base state `(g, src)` and returns the source's base summary.
    ///
    /// Must be called before [`DistanceOracle::evaluate`] and again whenever
    /// the underlying graph or source changes.
    fn begin(&mut self, g: &OwnedGraph, src: NodeId) -> DistanceSummary;

    /// Distance summary of `src` in the base graph modified by `deltas`
    /// (applied in order). A pure what-if query: the next call sees the same
    /// base state (backends may defer the rollback and reuse the longest
    /// common delta prefix between consecutive evaluations).
    fn evaluate(&mut self, deltas: &[EdgeDelta]) -> DistanceSummary;

    /// Warms the backend's per-source state for every vertex of `sources` at
    /// the current version of `g`.
    ///
    /// For the persistent backend each source's distance vector ends up
    /// parked in the per-source cache stamped with `g`'s current version, so
    /// a later [`DistanceOracle::evaluate_for_source`] (or re-`begin`) of the
    /// same source is served by journal replay in `O(changes)` instead of a
    /// full BFS. Sources whose vector is already parked at an older version
    /// are repaired *in place* by replaying their own journal window, without
    /// churning the pinned working vector. Stateless backends simply run one
    /// BFS per source.
    fn pin_sources(&mut self, g: &OwnedGraph, sources: &[NodeId]) {
        for &src in sources {
            self.begin(g, src);
        }
    }

    /// The source's distance summary served *without pinning*: from its
    /// parked vector when that is stamped at the current version of `g` (or
    /// from the working vector when `src` is pinned there). `None` whenever
    /// answering would require any repair or BFS — the caller then falls
    /// back to a full [`DistanceOracle::begin`]. Under post-move warming
    /// this turns the dirty engine's per-step cost refresh into `O(1)` reads
    /// instead of source-switching re-pins.
    fn cached_summary(&mut self, _g: &OwnedGraph, _src: NodeId) -> Option<DistanceSummary> {
        None
    }

    /// The fused post-move pass of the persistent backend: replays the
    /// vectors of `seeds` (a committed move's endpoints, which the caller
    /// pinned at the *pre-move* version) over the move's journal window,
    /// collecting into `changed` the exact union of the seeds and every
    /// vertex whose distance to a seed net-changed — precisely the
    /// invalidation set of the dirty engine — and then advances every other
    /// parked vector like [`DistanceOracle::warm_sources`] with that union
    /// as the dirty set, all in one pass over the shared delta window.
    ///
    /// Returns `false` (with `changed` unspecified and no warming chain
    /// advanced past what was already done) when any seed's window cannot be
    /// replayed — the caller must then invalidate conservatively and call
    /// `warm_sources` with an all-dirty set. Stateless backends always
    /// return `false`.
    fn warm_after_move(
        &mut self,
        _g: &OwnedGraph,
        _seeds: &[NodeId],
        _changed: &mut Vec<NodeId>,
    ) -> bool {
        false
    }

    /// Bulk warming hook of the persistent backend: advances every parked
    /// vector to the current version of `g` in one grouped pass over the
    /// shared delta window (one CSR patch, many per-vector repairs). A no-op
    /// for the stateless backends.
    ///
    /// `dirty` is the caller's promise about what actually moved: it must
    /// contain **every vertex whose distance vector may have changed** since
    /// the previous `warm_sources` call on the same graph (for the dynamics
    /// engine: since the last committed move, whose change union the
    /// dirty-agent machinery computes anyway). Vectors of dirty sources are
    /// repaired by replaying their journal window; vectors of sources *not*
    /// listed are — when the oracle can prove the warming chain is unbroken —
    /// advanced by a stamp bump alone, which is what keeps the pass
    /// `O(changes + |dirty| · repair)` instead of `O(parked · changes)`.
    /// When the chain cannot be trusted (first call, a version gap, a foreign
    /// graph) every parked vector is repaired from its own stamp instead, so
    /// a wrong *gap* degrades to extra work, never to wrong distances; a
    /// dirty set that under-reports the changes of its own window is a
    /// caller bug the randomized warming tests guard against.
    fn warm_sources(&mut self, _g: &OwnedGraph, _dirty: &[NodeId]) {}

    /// Multi-source what-if query: re-pins `(g, src)` and scores `deltas`
    /// against it, returning the source's `(base, modified)` summaries.
    ///
    /// This is the primitive behind consent checks: "what does agent `src`
    /// pay *after* candidate move `deltas`?" answered without materialising
    /// the post-move graph. The persistent backend serves the re-pin from its
    /// per-source cache by replaying the graph's change journal, so the whole
    /// query costs `O(changes + affected region)`; stateless backends pay one
    /// full BFS for the re-pin.
    fn evaluate_for_source(
        &mut self,
        g: &OwnedGraph,
        src: NodeId,
        deltas: &[EdgeDelta],
    ) -> (DistanceSummary, DistanceSummary) {
        let base = self.begin(g, src);
        let modified = self.evaluate(deltas);
        (base, modified)
    }

    /// Arithmetic what-if for a **trailing edge insertion** `{u, v}` applied
    /// on top of `prefix`: the candidate `prefix ++ [Insert {u, v}]` scored
    /// from the pinned source's delta-stack state and `v`'s *parked* base
    /// vector, with no graph traversal at all — one `O(n)` fused min/sum/max
    /// pass over two flat arrays.
    ///
    /// Returns `(summary, exact)`:
    /// * `exact == true` (empty `prefix`) — the summary is the exact
    ///   post-insertion summary, by the single-insertion identity
    ///   `d'(x) = min(d(src, x), 1 + d(v, x))`.
    /// * `exact == false` (removal-only `prefix`) — the parked vector of `v`
    ///   predates the removals, which can only *lengthen* `v`'s distances, so
    ///   the summary is a **lower bound** on the true one: callers may prune
    ///   candidates whose lower-bound cost is already not an improvement, and
    ///   must re-score the rest exactly.
    ///
    /// A stale parked vector of `v` does not miss outright: the persistent
    /// backend first tries to *lazily warm* it by replaying `v`'s own journal
    /// window against `g` (which must be the pinned graph, unchanged since
    /// the last `begin`), so the fast path stays lit even for sources the
    /// caller has not re-pinned in many steps.
    ///
    /// `None` whenever the backend cannot serve the query (stateless
    /// backends; `u` not the pinned source; `v`'s vector neither parked at
    /// the pinned version nor lazily warmable to it; `prefix` containing
    /// insertions, which would flip the bound's direction).
    fn evaluate_insert_via_cache(
        &mut self,
        _g: &OwnedGraph,
        _prefix: &[EdgeDelta],
        _u: NodeId,
        _v: NodeId,
    ) -> Option<(DistanceSummary, bool)> {
        None
    }

    /// After a [`DistanceOracle::begin`] served by cross-step journal replay,
    /// the **exact** set of vertices whose base distance from the source
    /// differs from the previously pinned base vector of the same source
    /// (order unspecified). Returns `None` whenever the last `begin` fell
    /// back to a full BFS or the backend does not persist state — callers
    /// must then invalidate conservatively.
    fn changed_since_begin(&self) -> Option<&[u32]> {
        None
    }

    /// Like [`DistanceOracle::evaluate`], additionally copying the full
    /// modified distance vector into `out` (used by equivalence tests).
    fn evaluate_into(&mut self, deltas: &[EdgeDelta], out: &mut Vec<u16>) -> DistanceSummary;

    /// The base distance vector pinned by the last [`DistanceOracle::begin`].
    fn base_distances(&mut self) -> &[u16];

    /// Enables or disables the word-parallel bulk (re)pin waves of the
    /// persistent backend (on by default). Purely a performance knob: the
    /// batched and scalar paths compute identical exact distances, so every
    /// score — and therefore every dynamics trajectory — is bit-identical
    /// either way; the scalar path remains as the verification baseline and
    /// the fallback for single-source lazy replays. No-op for the stateless
    /// backends.
    fn set_warm_batching(&mut self, _on: bool) {}

    /// Number of parked vectors currently held in the demoted ball-sparse
    /// representation (0 for stateless backends and unbudgeted caches). A
    /// scan loop that is about to activate many sources one by one can use
    /// this to decide whether a bulk [`DistanceOracle::pin_sources`]
    /// re-promotion pays for itself.
    fn sparse_parked(&self) -> usize {
        0
    }

    /// Work counters accumulated since the last reset.
    fn stats(&self) -> OracleStats;

    /// Clears the work counters.
    fn reset_stats(&mut self);
}

/// Creates a boxed oracle of the requested backend for graphs on `n` vertices.
pub fn make_oracle(kind: OracleKind, n: usize) -> Box<dyn DistanceOracle> {
    make_oracle_budgeted(kind, n, None)
}

/// Like [`make_oracle`], with an explicit budget on the number of per-source
/// distance vectors the persistent backend may keep cached (`None` applies
/// the default rule: unlimited at `n ≤ 8192`, capped at 8192 sources beyond).
/// The budget is ignored by the stateless backends.
pub fn make_oracle_budgeted(
    kind: OracleKind,
    n: usize,
    cache_budget: Option<usize>,
) -> Box<dyn DistanceOracle> {
    make_oracle_with_budgets(kind, n, cache_budget, None)
}

/// Like [`make_oracle_budgeted`], additionally capping the persistent
/// backend's parked cache in **bytes**: when the mixed dense/sparse footprint
/// exceeds `byte_budget` (`None` = the 128 MiB default), the stalest cold
/// dense vectors are demoted to the ball-sparse representation, and sparse
/// vectors are evicted outright under further pressure. Purely a memory
/// knob: every representation switch preserves exact summaries, so
/// trajectories are bit-identical across budgets. Ignored by the stateless
/// backends.
pub fn make_oracle_with_budgets(
    kind: OracleKind,
    n: usize,
    cache_budget: Option<usize>,
    byte_budget: Option<u64>,
) -> Box<dyn DistanceOracle> {
    match kind {
        OracleKind::FullBfs => Box::new(FullBfsOracle::new(n)),
        OracleKind::Incremental => Box::new(IncrementalOracle::new(n)),
        OracleKind::Persistent => Box::new(IncrementalOracle::persistent_with_budgets(
            n,
            cache_budget,
            byte_budget,
        )),
    }
}

/// The set of edge deltas currently overlaid on a CSR snapshot.
///
/// Kept tiny (candidate moves touch at most a handful of edges), so membership
/// tests are linear scans over at most a few entries.
#[derive(Debug, Clone, Default)]
struct DeltaOverlay {
    added: Vec<(u32, u32)>,
    removed: Vec<(u32, u32)>,
}

impl DeltaOverlay {
    fn clear(&mut self) {
        self.added.clear();
        self.removed.clear();
    }

    fn key(u: u32, v: u32) -> (u32, u32) {
        if u < v {
            (u, v)
        } else {
            (v, u)
        }
    }

    fn activate(&mut self, delta: &EdgeDelta) {
        match *delta {
            EdgeDelta::Insert { u, v } => {
                let k = Self::key(u as u32, v as u32);
                if let Some(pos) = self.removed.iter().position(|&e| e == k) {
                    self.removed.swap_remove(pos);
                } else {
                    self.added.push(k);
                }
            }
            EdgeDelta::Remove { u, v } => {
                let k = Self::key(u as u32, v as u32);
                if let Some(pos) = self.added.iter().position(|&e| e == k) {
                    self.added.swap_remove(pos);
                } else {
                    self.removed.push(k);
                }
            }
        }
    }

    #[inline]
    fn is_removed(&self, x: u32, y: u32) -> bool {
        self.removed.contains(&Self::key(x, y))
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// The [`EdgeDelta`] that undoes a journal entry.
fn invert(change: &EdgeChange) -> EdgeDelta {
    match *change {
        EdgeChange::Added { u, v } => EdgeDelta::Remove { u, v },
        EdgeChange::Removed { u, v } => EdgeDelta::Insert { u, v },
    }
}

/// Iterates the neighbours of `x` in the overlaid graph.
#[inline]
fn for_each_neighbor<F: FnMut(u32)>(csr: &CsrAdjacency, overlay: &DeltaOverlay, x: u32, mut f: F) {
    if overlay.removed.is_empty() {
        for &y in csr.neighbors(x as usize) {
            f(y);
        }
    } else {
        for &y in csr.neighbors(x as usize) {
            if !overlay.is_removed(x, y) {
                f(y);
            }
        }
    }
    for &(a, b) in &overlay.added {
        if a == x {
            f(b);
        } else if b == x {
            f(a);
        }
    }
}

/// Baseline backend: one full BFS per evaluation.
pub struct FullBfsOracle {
    csr: CsrAdjacency,
    src: u32,
    base: Vec<u16>,
    scratch: Vec<u16>,
    queue: Vec<u32>,
    overlay: DeltaOverlay,
    stats: OracleStats,
}

impl FullBfsOracle {
    /// Creates a full-BFS oracle for graphs on `n` vertices.
    pub fn new(n: usize) -> Self {
        assert!(
            n <= MAX_NODES,
            "u16 distances support at most {MAX_NODES} vertices (got {n})"
        );
        FullBfsOracle {
            csr: CsrAdjacency::new(),
            src: 0,
            base: vec![UNREACHABLE; n],
            scratch: Vec::new(),
            queue: Vec::with_capacity(n),
            overlay: DeltaOverlay::default(),
            stats: OracleStats::default(),
        }
    }

    /// BFS over the overlaid snapshot into `dist`, returning the summary.
    fn bfs(
        csr: &CsrAdjacency,
        overlay: &DeltaOverlay,
        src: u32,
        dist: &mut Vec<u16>,
        queue: &mut Vec<u32>,
        stats: &mut OracleStats,
    ) -> DistanceSummary {
        let n = csr.num_nodes();
        dist.clear();
        dist.resize(n, UNREACHABLE);
        queue.clear();
        dist[src as usize] = 0;
        queue.push(src);
        let mut head = 0usize;
        let mut sum = 0u64;
        let mut max = 0u16;
        while head < queue.len() {
            let x = queue[head];
            head += 1;
            stats.nodes_expanded += 1;
            let dx = dist[x as usize];
            sum += u64::from(dx);
            max = max.max(dx);
            for_each_neighbor(csr, overlay, x, |y| {
                if dist[y as usize] == UNREACHABLE {
                    dist[y as usize] = dx + 1;
                    queue.push(y);
                }
            });
        }
        stats.full_bfs_runs += 1;
        if queue.len() < n {
            DistanceSummary::DISCONNECTED
        } else {
            DistanceSummary {
                sum: Some(sum),
                max: Some(u32::from(max)),
            }
        }
    }
}

impl DistanceOracle for FullBfsOracle {
    fn kind(&self) -> OracleKind {
        OracleKind::FullBfs
    }

    fn begin(&mut self, g: &OwnedGraph, src: NodeId) -> DistanceSummary {
        let _sp = trace::span(trace::Phase::OracleBegin);
        self.csr.rebuild_from(g);
        self.stats.csr_rebuilds += 1;
        self.src = src as u32;
        self.overlay.clear();
        Self::bfs(
            &self.csr,
            &self.overlay,
            self.src,
            &mut self.base,
            &mut self.queue,
            &mut self.stats,
        )
    }

    fn evaluate(&mut self, deltas: &[EdgeDelta]) -> DistanceSummary {
        let _sp = trace::span(trace::Phase::DeltaRepair);
        self.stats.evaluations += 1;
        for delta in deltas {
            self.overlay.activate(delta);
        }
        let summary = Self::bfs(
            &self.csr,
            &self.overlay,
            self.src,
            &mut self.scratch,
            &mut self.queue,
            &mut self.stats,
        );
        self.overlay.clear();
        summary
    }

    fn evaluate_into(&mut self, deltas: &[EdgeDelta], out: &mut Vec<u16>) -> DistanceSummary {
        let summary = self.evaluate(deltas);
        out.clear();
        out.extend_from_slice(&self.scratch);
        summary
    }

    fn base_distances(&mut self) -> &[u16] {
        &self.base
    }

    fn stats(&self) -> OracleStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = OracleStats::default();
    }
}

/// Distance vector with incrementally maintained SUM / MAX aggregates and an
/// undo journal.
#[derive(Debug, Clone, Default)]
struct DistState {
    dist: Vec<u16>,
    /// Sum of all finite distances.
    sum: u64,
    /// Number of vertices with finite distance (including the source).
    reached: usize,
    /// `level_counts[d]` = number of vertices at distance `d`.
    level_counts: Vec<u16>,
    /// Upper bound on the current maximum finite distance.
    max_hint: u16,
    /// `(vertex, previous distance)` pairs for rollback.
    journal: Vec<(u32, u16)>,
    /// When `true`, assignments are applied *permanently*: the undo journal is
    /// bypassed even when the caller requests journaling. Used while replaying
    /// applied graph changes in persistent mode.
    replaying: bool,
    /// While `replaying`, every touched vertex is recorded once together with
    /// its pre-replay distance, for the exact changed-vertex export.
    touched: Vec<u32>,
    touch_stamp: Vec<u32>,
    touch_old: Vec<u16>,
    touch_epoch: u32,
}

impl DistState {
    fn reset(&mut self, n: usize) {
        self.dist.clear();
        self.dist.resize(n, UNREACHABLE);
        self.level_counts.clear();
        self.level_counts.resize(n + 2, 0);
        self.sum = 0;
        self.reached = 0;
        self.max_hint = 0;
        self.journal.clear();
    }

    /// Enters replay mode: journaling off, change tracking on.
    fn begin_replay(&mut self, n: usize) {
        debug_assert!(self.journal.is_empty(), "replay on top of candidate deltas");
        self.replaying = true;
        self.touched.clear();
        if self.touch_stamp.len() < n {
            self.touch_stamp.resize(n, 0);
            self.touch_old.resize(n, 0);
        }
        self.touch_epoch = self.touch_epoch.wrapping_add(1);
        if self.touch_epoch == 0 {
            self.touch_stamp.fill(0);
            self.touch_epoch = 1;
        }
    }

    /// Leaves replay mode, retaining only the vertices whose distance really
    /// differs from its pre-replay value (touch-and-restore cancels out).
    fn end_replay(&mut self) {
        self.replaying = false;
        let DistState {
            touched,
            dist,
            touch_old,
            ..
        } = self;
        touched.retain(|&x| dist[x as usize] != touch_old[x as usize]);
    }

    #[inline]
    fn get(&self, x: u32) -> u16 {
        self.dist[x as usize]
    }

    /// Sets `dist[x] = new`, keeping the aggregates in sync; `journal = true`
    /// records the old value for rollback (unless a replay is in progress, in
    /// which case the assignment is permanent and the vertex is tracked as
    /// touched instead).
    #[inline]
    fn assign(&mut self, x: u32, new: u16, journal: bool) {
        let old = self.dist[x as usize];
        if self.replaying {
            if self.touch_stamp[x as usize] != self.touch_epoch {
                self.touch_stamp[x as usize] = self.touch_epoch;
                self.touch_old[x as usize] = old;
                self.touched.push(x);
            }
        } else if journal {
            self.journal.push((x, old));
        }
        if old != UNREACHABLE {
            self.sum -= u64::from(old);
            self.level_counts[old as usize] -= 1;
            self.reached -= 1;
        }
        if new != UNREACHABLE {
            self.sum += u64::from(new);
            self.level_counts[new as usize] += 1;
            self.reached += 1;
            self.max_hint = self.max_hint.max(new);
        }
        self.dist[x as usize] = new;
    }

    /// Reverts journaled assignments down to `journal_len` entries;
    /// `max_hint` restores the max bound recorded at that point.
    fn rollback_to(&mut self, journal_len: usize, max_hint: u16) {
        while self.journal.len() > journal_len {
            let (x, old) = self.journal.pop().expect("journal length checked");
            self.assign(x, old, false);
        }
        self.max_hint = max_hint;
    }

    /// Current summary; tightens `max_hint` to the true maximum.
    fn summary(&mut self, n: usize) -> DistanceSummary {
        if self.reached < n {
            return DistanceSummary::DISCONNECTED;
        }
        let mut m = self.max_hint;
        while m > 0 && self.level_counts[m as usize] == 0 {
            m -= 1;
        }
        self.max_hint = m;
        DistanceSummary {
            sum: Some(self.sum),
            max: Some(u32::from(m)),
        }
    }
}

/// A resume point of the delta stack: the journal length and max bound right
/// before the corresponding delta was applied.
#[derive(Debug, Clone, Copy)]
struct Checkpoint {
    journal_len: usize,
    max_hint: u16,
}

/// A cached per-source distance vector of the persistent backend, valid at
/// `version` of the pinned graph's change journal. The level counters are
/// cached alongside the vector so activating a source is a pair of `O(1)`
/// buffer swaps rather than an `O(n)` rebuild.
#[derive(Debug, Clone, Default)]
struct SourceCache {
    dist: Vec<u16>,
    level_counts: Vec<u16>,
    sum: u64,
    reached: usize,
    max_hint: u16,
    version: Option<GraphVersion>,
    /// Monotonic recency stamp of the last park/activate, for LRU eviction.
    last_used: u64,
    /// Ball-sparse representation, populated when the slot is demoted under
    /// byte-budget pressure: the vertices within `ball_radius` of the source
    /// (as `u16` ids — `MAX_NODES` fits) paired with their distances in
    /// `ball_dist`. The dense buffers are freed on demotion; the frozen
    /// aggregates (`sum` / `reached` / `max_hint`, with the max tightened at
    /// demotion time) keep serving `cached_summary` in `O(1)`, and the
    /// insertion kernel reads the ball directly whenever the pinned source's
    /// eccentricity proves every out-of-ball vertex irrelevant.
    ball_verts: Vec<u16>,
    ball_dist: Vec<u16>,
    ball_radius: u16,
}

impl SourceCache {
    /// True when the slot holds a demoted ball-sparse vector: no dense buffer
    /// to replay or activate — only `cached_summary` and the insertion kernel
    /// read it until a bulk wave re-promotes it to dense.
    #[inline]
    fn is_sparse(&self) -> bool {
        !self.ball_verts.is_empty()
    }
}

/// Incremental backend: journaled truncated-BFS repair of the base vector.
///
/// Consecutive evaluations share work through the *delta stack*: the deltas of
/// the previous evaluation stay applied, and the next evaluation only rolls
/// back to the longest common prefix before repairing its own suffix. A
/// best-response scan enumerating swaps as `(from, to₁), (from, to₂), …` thus
/// pays the expensive `Remove {u, from}` repair once per `from`, not once per
/// candidate.
///
/// In *persistent* mode ([`IncrementalOracle::persistent`], the
/// [`OracleKind::Persistent`] backend), `begin` additionally carries each
/// source's distance vector **across** calls: the vector is cached together
/// with the graph's [`GraphVersion`], and the next `begin` for that source
/// replays the edge changes recorded in the graph's journal through the same
/// repair machinery instead of re-running the full BFS. A staleness heuristic
/// (too many accumulated changes, a foreign lineage, or a discarded journal
/// window) falls back to the full BFS, so the backend is never slower than
/// re-pinning asymptotically and is exact in all cases.
pub struct IncrementalOracle {
    csr: CsrAdjacency,
    src: u32,
    state: DistState,
    /// Deltas currently applied on top of the base vector.
    active: Vec<EdgeDelta>,
    /// `checkpoints[i]` restores the state right before `active[i]`.
    checkpoints: Vec<Checkpoint>,
    queue: Vec<u32>,
    /// Epoch stamps: `mark[x] == epoch` ⇔ `x` is affected by the current
    /// delete repair.
    mark: Vec<u32>,
    /// Epoch stamps: `x` has already been orphan-checked this repair.
    checked: Vec<u32>,
    /// Tentative distances of affected vertices; entries are (re)initialised
    /// for every vertex marked affected in the current repair, so validity is
    /// implied by `mark[x] == epoch`.
    tent: Vec<u16>,
    /// Affected vertices of the current delete repair.
    affected: Vec<u32>,
    /// Neighbour scratch buffer of the delete repair's phase 1.
    cand: Vec<u32>,
    /// Dial buckets for the bounded re-settling Dijkstra.
    buckets: Vec<Vec<u32>>,
    epoch: u32,
    overlay: DeltaOverlay,
    stats: OracleStats,
    /// Cross-`begin` persistence enabled ([`OracleKind::Persistent`]).
    persistent: bool,
    /// Per-source cached vectors (persistent mode; lazily populated).
    cache: Vec<SourceCache>,
    /// Requested cap on the number of occupied cache slots (`None` = the
    /// default rule: unlimited at `n ≤ 8192`, capped at 8192 beyond).
    requested_cache_budget: Option<usize>,
    /// Requested cap on the parked cache's total footprint in **bytes**
    /// (`None` = the 128 MiB default). Enforced after every park: cold dense
    /// vectors are demoted to the ball-sparse representation first, and slots
    /// are evicted outright only under further pressure.
    requested_byte_budget: Option<u64>,
    /// Current footprint of the parked cache in bytes, maintained
    /// incrementally across every park / activate / demote / evict (an `O(n)`
    /// rescan per transition would dwarf the `O(1)` park it accounts for).
    parked_bytes: u64,
    /// Monotone record of the largest ball radius the insertion kernel has
    /// actually needed so far (the pinned source's tightened eccentricity
    /// minus 2); demotions keep at least this radius so sparse slots keep
    /// serving the kernel. Purely a hit-rate heuristic — the kernel re-checks
    /// the exactness condition against the slot's own radius on every query.
    demand_radius: u16,
    /// Scratch of the sparse insertion kernel: per-level count deltas and the
    /// touched levels, so recomputing the post-insert max costs
    /// `O(levels touched)` instead of `O(n)`.
    level_delta: Vec<i32>,
    level_touched: Vec<u16>,
    /// Memoized parity-compressed *net* journal window for the
    /// bounded-incremental staleness repair, keyed by `(net_from, net_cur)`
    /// so the many per-vector repairs of one warming pass share a single
    /// compression.
    net_window: Vec<EdgeChange>,
    net_scratch: Vec<(u32, u32, u32)>,
    net_from: Option<GraphVersion>,
    net_cur: Option<GraphVersion>,
    /// Number of cache slots currently holding a parked vector.
    cached_count: usize,
    /// Monotonic clock driving the LRU recency stamps.
    lru_tick: u64,
    /// Version the working [`DistState`] reflects; `None` until the first
    /// successful `begin` (persistent mode only).
    pinned_version: Option<GraphVersion>,
    /// Version the CSR snapshot was built at (persistent mode only).
    csr_version: Option<GraphVersion>,
    /// `true` iff the last `begin` was served by replay, making
    /// [`DistanceOracle::changed_since_begin`] meaningful.
    changed_valid: bool,
    /// Spare [`DistState`] the lazy-warm path swaps in so a parked vector can
    /// be repaired without disturbing the pinned working vector (or its
    /// active candidate deltas).
    warm_state: DistState,
    /// Spare overlay of the lazy-warm path (the working overlay may hold the
    /// pinned source's candidate deltas mid-scan).
    warm_overlay: DeltaOverlay,
    /// Version up to which the trusted warming chain is unbroken: every
    /// parked vector was advanced (bump or replay) by the `warm_sources`
    /// call that stamped this version, so the *next* call's dirty set fully
    /// describes the window from here to its own version. `None` until the
    /// first warming pass (and after any cache reset).
    warm_floor: Option<GraphVersion>,
    /// Epoch stamps marking membership in the current warming call's dirty
    /// set (`dirty_stamp[x] == dirty_epoch`).
    dirty_stamp: Vec<u32>,
    dirty_epoch: u32,
    /// Word-parallel bulk waves enabled (the default; see
    /// [`DistanceOracle::set_warm_batching`]).
    warm_batching: bool,
    /// Shared bitset-frontier workspace of the bulk waves.
    wave: MultiSourceBfs,
    /// Sources queued for the next bulk wave (cold or past the replay limit).
    batch_pending: Vec<u32>,
}

impl IncrementalOracle {
    /// Creates an incremental oracle for graphs on `n` vertices.
    pub fn new(n: usize) -> Self {
        assert!(
            n <= MAX_NODES,
            "u16 distances support at most {MAX_NODES} vertices (got {n})"
        );
        let mut oracle = IncrementalOracle {
            csr: CsrAdjacency::new(),
            src: 0,
            state: DistState::default(),
            active: Vec::with_capacity(4),
            checkpoints: Vec::with_capacity(4),
            queue: Vec::with_capacity(n),
            mark: Vec::new(),
            checked: Vec::new(),
            tent: Vec::new(),
            affected: Vec::new(),
            cand: Vec::new(),
            buckets: Vec::new(),
            epoch: 0,
            overlay: DeltaOverlay::default(),
            stats: OracleStats::default(),
            persistent: false,
            cache: Vec::new(),
            requested_cache_budget: None,
            requested_byte_budget: None,
            parked_bytes: 0,
            demand_radius: 2,
            level_delta: Vec::new(),
            level_touched: Vec::new(),
            net_window: Vec::new(),
            net_scratch: Vec::new(),
            net_from: None,
            net_cur: None,
            cached_count: 0,
            lru_tick: 0,
            pinned_version: None,
            csr_version: None,
            changed_valid: false,
            warm_state: DistState::default(),
            warm_overlay: DeltaOverlay::default(),
            warm_floor: None,
            dirty_stamp: Vec::new(),
            dirty_epoch: 0,
            warm_batching: true,
            wave: MultiSourceBfs::new(),
            batch_pending: Vec::new(),
        };
        oracle.resize_scratch(n);
        oracle
    }

    /// Creates a *persistent* incremental oracle for graphs on `n` vertices:
    /// distance vectors are carried across [`DistanceOracle::begin`] calls by
    /// replaying the pinned graph's change journal.
    pub fn persistent(n: usize) -> Self {
        IncrementalOracle::persistent_budgeted(n, None)
    }

    /// Like [`IncrementalOracle::persistent`], with an explicit LRU budget on
    /// the number of sources whose vectors may stay parked in the per-source
    /// cache at once. Each parked vector costs `O(n)` u16s (distances + level
    /// counters, so `O(n²)` over an unbounded cache — half the memory of the
    /// former u32 layout); `None` applies the default rule — unlimited at
    /// `n ≤ 8192`, capped at 8192 sources beyond, bounding the cache at the
    /// bytes the u32 layout spent on one `n = 4096` workspace.
    pub fn persistent_budgeted(n: usize, cache_budget: Option<usize>) -> Self {
        let mut oracle = IncrementalOracle::new(n);
        oracle.persistent = true;
        oracle.requested_cache_budget = cache_budget;
        oracle.cache.resize_with(n, SourceCache::default);
        oracle
    }

    /// Like [`IncrementalOracle::persistent_budgeted`], additionally capping
    /// the parked cache in bytes (`None` = the 128 MiB default): over the
    /// cap, the stalest cold dense vectors are demoted to ball-sparse, then
    /// evicted outright. Purely a memory knob — summaries and trajectories
    /// are bit-identical across byte budgets.
    pub fn persistent_with_budgets(
        n: usize,
        cache_budget: Option<usize>,
        byte_budget: Option<u64>,
    ) -> Self {
        let mut oracle = IncrementalOracle::persistent_budgeted(n, cache_budget);
        oracle.requested_byte_budget = byte_budget;
        oracle
    }

    /// The effective cache budget for the current graph size. The u16 layout
    /// halves the per-slot bytes, so the default unlimited range doubles
    /// relative to the old u32 layout at the same memory ceiling.
    fn cache_budget(&self) -> usize {
        const DEFAULT_UNLIMITED_UP_TO: usize = 8192;
        self.requested_cache_budget.unwrap_or({
            if self.cache.len() <= DEFAULT_UNLIMITED_UP_TO {
                usize::MAX
            } else {
                DEFAULT_UNLIMITED_UP_TO
            }
        })
    }

    /// Default parked-cache byte ceiling. 128 MiB keeps every configuration
    /// up to `n = 4096` all-dense (≈ 67 MB, the historical behaviour,
    /// bit-for-bit) while forcing the sparse demotion path at `n = 8192`
    /// (all-dense would be ≈ 268 MB) and beyond.
    const DEFAULT_BYTE_BUDGET: u64 = 128 * 1024 * 1024;

    /// The effective byte budget of the parked cache.
    fn byte_budget(&self) -> u64 {
        self.requested_byte_budget
            .unwrap_or(Self::DEFAULT_BYTE_BUDGET)
    }

    /// Bytes one dense parked slot occupies: `n` u16 distances plus `n + 2`
    /// u16 level counters.
    fn dense_slot_bytes(&self) -> u64 {
        let n = self.cache.len() as u64;
        2 * (2 * n + 2)
    }

    /// Bytes the parked slot of `src` currently occupies (0 when empty,
    /// 4 per ball entry when demoted).
    fn slot_parked_bytes(&self, src: usize) -> u64 {
        let slot = &self.cache[src];
        if slot.version.is_none() {
            0
        } else if slot.is_sparse() {
            4 * slot.ball_verts.len() as u64
        } else {
            self.dense_slot_bytes()
        }
    }

    /// Evicts one parked vector, freeing its buffers.
    ///
    /// Victim selection is *staleness-aware*: vectors that have drifted the
    /// furthest behind `current` (measured in journal changes; a foreign
    /// lineage counts as infinitely stale) go first — they are the ones whose
    /// next activation is most likely to pay a full BFS anyway, so parking
    /// them buys the least. Among equally stale vectors the least recently
    /// used one loses, which reduces to plain LRU when the cache is kept warm
    /// (every stamp current).
    fn evict_lru(&mut self, current: Option<GraphVersion>) {
        let staleness = |slot: &SourceCache| -> u64 {
            match (current, slot.version) {
                (Some(cur), Some(v)) => cur.changes_since(v).unwrap_or(u64::MAX),
                _ => u64::MAX,
            }
        };
        let victim = self
            .cache
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.version.is_some())
            .max_by_key(|(_, slot)| (staleness(slot), std::cmp::Reverse(slot.last_used)))
            .map(|(i, _)| i);
        if let Some(i) = victim {
            self.evict_at(i);
        }
    }

    /// Drops the parked payload of slot `i` (dense or sparse), keeping the
    /// byte accounting and occupancy count in step.
    fn evict_at(&mut self, i: usize) {
        self.parked_bytes -= self.slot_parked_bytes(i);
        let slot = &mut self.cache[i];
        slot.version = None;
        slot.dist = Vec::new();
        slot.level_counts = Vec::new();
        slot.ball_verts = Vec::new();
        slot.ball_dist = Vec::new();
        slot.ball_radius = 0;
        self.cached_count -= 1;
    }

    /// Demotes one parked dense vector to the ball-sparse representation,
    /// preferring the stalest, then least recently used, victim (the same
    /// order as eviction, so the byte budget degrades the cache gracefully:
    /// shrink first, drop only under further pressure). The kept radius is
    /// the demand radius when the deficit allows it, and is otherwise cut to
    /// the largest one whose ball frees `need` bytes — down to radius 0
    /// (just the source, 4 bytes) under heavy pressure; on small-diameter
    /// graphs the demand ball is most of the vertex set, so this adaptive
    /// cut is what makes demotion free memory at all there. A shrunken ball
    /// only makes the insertion kernel fall back to an exact evaluation more
    /// often; the frozen aggregates and version stamp survive, so
    /// `cached_summary` stays `O(1)` and stamp-bump warming keeps the slot
    /// current. Evicting here instead would cold the slot and turn every
    /// later summary read into a scalar full BFS — the budget would destroy
    /// the cache it was meant to bound. Returns `false` when no dense slot
    /// is parked.
    fn demote_one(&mut self, current: Option<GraphVersion>, need: u64) -> bool {
        let _sp = trace::span(trace::Phase::Demotion);
        let staleness = |slot: &SourceCache| -> u64 {
            match (current, slot.version) {
                (Some(cur), Some(v)) => cur.changes_since(v).unwrap_or(u64::MAX),
                _ => u64::MAX,
            }
        };
        let victim = self
            .cache
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.version.is_some() && !slot.is_sparse())
            .max_by_key(|(_, slot)| (staleness(slot), std::cmp::Reverse(slot.last_used)))
            .map(|(i, _)| i);
        let Some(i) = victim else {
            return false;
        };
        let dense_bytes = self.dense_slot_bytes();
        let demand = self.demand_radius;
        let slot = &mut self.cache[i];
        // Tighten the parked max bound so the kept radius is as small as the
        // data allows; the frozen aggregates serve `cached_summary` as-is.
        let mut m = slot.max_hint;
        while m > 0 && slot.level_counts[m as usize] == 0 {
            m -= 1;
        }
        slot.max_hint = m;
        // Keep the levels the insertion kernel can ever read: a pinned source
        // of eccentricity `mu` never distinguishes vertices past `mu - 2`
        // hops from the inserted endpoint (`1 + d_v ≥ mu` there already), and
        // `demand` records the largest such `mu - 2` observed so far.
        let mut radius = demand.max(m.saturating_sub(2));
        let ball_at = |r: u16| -> usize {
            slot.level_counts
                .iter()
                .take(r as usize + 1)
                .map(|&c| usize::from(c))
                .sum()
        };
        let mut ball = ball_at(radius);
        // Free what the deficit asks for, no more: cut the radius (4 bytes
        // per kept entry) only while this victim still falls short of `need`.
        // Radius 0 keeps one entry — the source itself — so the floor frees
        // all but 4 of the dense footprint.
        let goal = need.min(dense_bytes - 4);
        while radius > 0 && dense_bytes.saturating_sub(4 * ball as u64) < goal {
            radius -= 1;
            ball = ball_at(radius);
        }
        let mut verts = Vec::with_capacity(ball);
        let mut dists = Vec::with_capacity(ball);
        for (x, &d) in slot.dist.iter().enumerate() {
            if d <= radius {
                verts.push(x as u16);
                dists.push(d);
            }
        }
        slot.dist = Vec::new();
        slot.level_counts = Vec::new();
        slot.ball_verts = verts;
        slot.ball_dist = dists;
        slot.ball_radius = radius;
        self.parked_bytes -= dense_bytes;
        self.parked_bytes += 4 * ball as u64;
        self.stats.sparse_demotions += 1;
        true
    }

    /// Brings the parked cache under both budgets after a park: the
    /// slot-count budget by eviction (the legacy knob, semantics unchanged),
    /// the byte budget by demoting dense vectors to ball-sparse first and
    /// evicting only when even the sparse footprint is too large. Each
    /// iteration strictly shrinks `parked_bytes` or empties a slot, so both
    /// loops terminate.
    fn enforce_budgets(&mut self, current: Option<GraphVersion>) {
        while self.cached_count > self.cache_budget() {
            self.evict_lru(current);
        }
        let budget = self.byte_budget();
        while self.parked_bytes > budget && self.demote_one(current, self.parked_bytes - budget) {}
        while self.parked_bytes > budget && self.cached_count > 0 {
            self.evict_lru(current);
        }
        self.note_parked_peak();
    }

    /// Maximum number of journal entries worth replaying before a full BFS is
    /// cheaper: each replayed change costs a truncated repair, so past a small
    /// fraction of `n` the fallback wins.
    fn stale_limit(&self) -> usize {
        (self.mark.len() / 8).max(8)
    }

    fn resize_scratch(&mut self, n: usize) {
        self.mark.clear();
        self.mark.resize(n, 0);
        self.checked.clear();
        self.checked.resize(n, 0);
        self.tent.clear();
        self.tent.resize(n, UNREACHABLE);
        if self.buckets.len() < n + 2 {
            self.buckets.resize_with(n + 2, Vec::new);
        }
        self.epoch = 0;
    }

    fn bump_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.mark.fill(0);
            self.checked.fill(0);
            self.epoch = 1;
        }
    }

    /// Decrease-only relaxation after inserting `{u, v}` (already in the
    /// overlay): distances can only shrink, and only inside the region whose
    /// shortest paths now run through the new edge.
    fn repair_insert(&mut self, u: u32, v: u32) {
        let (du, dv) = (self.state.get(u), self.state.get(v));
        let (far, dn) = if du <= dv { (v, du) } else { (u, dv) };
        if dn == UNREACHABLE || dn + 1 >= self.state.get(far) {
            return;
        }
        self.state.assign(far, dn + 1, true);
        self.queue.clear();
        self.queue.push(far);
        let mut head = 0usize;
        while head < self.queue.len() {
            let x = self.queue[head];
            head += 1;
            self.stats.nodes_expanded += 1;
            let dx = self.state.get(x);
            let state = &mut self.state;
            let queue = &mut self.queue;
            for_each_neighbor(&self.csr, &self.overlay, x, |y| {
                if state.get(y) > dx + 1 {
                    state.assign(y, dx + 1, true);
                    queue.push(y);
                }
            });
        }
    }

    /// Repair after removing `{u, v}` (already gone from the overlay).
    ///
    /// Phase 1 finds the *orphaned* region: vertices whose every shortest
    /// path from the source used the deleted edge. Processing candidates in
    /// BFS order guarantees that when a vertex is orphan-checked, the affected
    /// status of the previous level is final. Phase 2 re-settles the region
    /// with a Dial (bucket) Dijkstra seeded from its unaffected boundary;
    /// orphans with no boundary stay unreachable.
    fn repair_delete(&mut self, u: u32, v: u32) {
        let (du, dv) = (self.state.get(u), self.state.get(v));
        if du == UNREACHABLE || dv == UNREACHABLE || du == dv {
            // The edge was on no shortest path from the source.
            return;
        }
        let child = if du < dv { v } else { u };
        debug_assert_eq!(self.state.get(child), du.min(dv) + 1);
        self.bump_epoch();

        // Phase 1: collect the orphaned region, level by level.
        if self.has_live_parent(child) {
            return;
        }
        self.affected.clear();
        self.mark[child as usize] = self.epoch;
        self.checked[child as usize] = self.epoch;
        self.affected.push(child);
        self.queue.clear();
        self.queue.push(child);
        let mut head = 0usize;
        while head < self.queue.len() {
            let x = self.queue[head];
            head += 1;
            self.stats.nodes_expanded += 1;
            let dx = self.state.get(x);
            self.cand.clear();
            let cand = &mut self.cand;
            for_each_neighbor(&self.csr, &self.overlay, x, |y| {
                cand.push(y);
            });
            for i in 0..self.cand.len() {
                let y = self.cand[i];
                if self.state.get(y) == dx + 1 && self.checked[y as usize] != self.epoch {
                    self.checked[y as usize] = self.epoch;
                    if !self.has_live_parent(y) {
                        self.mark[y as usize] = self.epoch;
                        self.affected.push(y);
                        self.queue.push(y);
                    }
                }
            }
        }

        // Phase 2: re-settle the orphans from their unaffected boundary.
        let mut min_t = UNREACHABLE;
        let mut max_t = 0u16;
        for i in 0..self.affected.len() {
            let x = self.affected[i];
            let mut best = UNREACHABLE;
            let state = &self.state;
            let mark = &self.mark;
            let epoch = self.epoch;
            for_each_neighbor(&self.csr, &self.overlay, x, |z| {
                if mark[z as usize] != epoch {
                    let dz = state.get(z);
                    if dz != UNREACHABLE && dz + 1 < best {
                        best = dz + 1;
                    }
                }
            });
            self.tent[x as usize] = best;
            if best != UNREACHABLE {
                self.buckets[best as usize].push(x);
                min_t = min_t.min(best);
                max_t = max_t.max(best);
            }
            self.state.assign(x, UNREACHABLE, true);
        }
        if min_t == UNREACHABLE {
            return; // The whole region is disconnected from the source now.
        }
        let mut d = min_t;
        while d <= max_t {
            while let Some(x) = self.buckets[d as usize].pop() {
                if self.state.get(x) != UNREACHABLE || self.tent[x as usize] != d {
                    continue; // settled earlier or stale bucket entry
                }
                self.stats.nodes_expanded += 1;
                self.state.assign(x, d, true);
                let mark = &self.mark;
                let epoch = self.epoch;
                let state = &self.state;
                let tent = &mut self.tent;
                let buckets = &mut self.buckets;
                for_each_neighbor(&self.csr, &self.overlay, x, |y| {
                    if mark[y as usize] == epoch
                        && state.get(y) == UNREACHABLE
                        && d + 1 < tent[y as usize]
                    {
                        tent[y as usize] = d + 1;
                        buckets[(d + 1) as usize].push(y);
                        max_t = max_t.max(d + 1);
                    }
                });
            }
            d += 1;
        }
    }

    /// True if `x` has a neighbour one level closer to the source that is not
    /// (currently marked) affected.
    fn has_live_parent(&self, x: u32) -> bool {
        let dx = self.state.get(x);
        let mut live = false;
        for_each_neighbor(&self.csr, &self.overlay, x, |z| {
            if !live
                && self.mark[z as usize] != self.epoch
                && self.state.get(z) != UNREACHABLE
                && self.state.get(z) + 1 == dx
            {
                live = true;
            }
        });
        live
    }

    /// Applies one delta on top of the stack, recording its resume point.
    fn push_delta(&mut self, delta: EdgeDelta) {
        self.checkpoints.push(Checkpoint {
            journal_len: self.state.journal.len(),
            max_hint: self.state.max_hint,
        });
        self.active.push(delta);
        self.overlay.activate(&delta);
        match delta {
            EdgeDelta::Insert { u, v } => self.repair_insert(u as u32, v as u32),
            EdgeDelta::Remove { u, v } => self.repair_delete(u as u32, v as u32),
        }
    }

    /// Rolls the delta stack back to its first `prefix` entries.
    fn rollback_to_prefix(&mut self, prefix: usize) {
        if prefix >= self.active.len() {
            return;
        }
        let cp = self.checkpoints[prefix];
        self.state.rollback_to(cp.journal_len, cp.max_hint);
        self.active.truncate(prefix);
        self.checkpoints.truncate(prefix);
        self.overlay.clear();
        let active = std::mem::take(&mut self.active);
        for delta in &active {
            self.overlay.activate(delta);
        }
        self.active = active;
    }

    /// Moves the delta stack to exactly `deltas`, reusing the longest common
    /// prefix with the previous evaluation.
    fn run_deltas(&mut self, deltas: &[EdgeDelta]) {
        self.stats.evaluations += 1;
        let mut common = 0usize;
        while common < self.active.len()
            && common < deltas.len()
            && self.active[common] == deltas[common]
        {
            common += 1;
        }
        self.rollback_to_prefix(common);
        for &delta in &deltas[common..] {
            self.push_delta(delta);
        }
    }

    /// Brings the CSR snapshot to the pinned graph's current version
    /// (persistent mode): within one dynamics step the graph is immutable, so
    /// the `n` per-agent re-pins of a scan share a single sync. When the
    /// version moved, the sync is served by patching the journal's exact edge
    /// deltas into the flat buffers in place — the `O(n + m)` per-step rebuild
    /// becomes `O(changes)` — with the patcher's own rebuild fallback covering
    /// dense journals, foreign lineages and exhausted segment slack.
    fn sync_csr(&mut self, g: &OwnedGraph) {
        let v = g.version();
        if self.csr_version == Some(v) && self.csr.num_nodes() == g.num_nodes() {
            return;
        }
        let outcome = match self.csr_version {
            Some(from) => match g.changes_since(from) {
                Some(changes) => self.csr.patch_from_journal(g, changes),
                None => {
                    self.csr.rebuild_from(g);
                    PatchOutcome::Rebuilt
                }
            },
            None => {
                self.csr.rebuild_from(g);
                PatchOutcome::Rebuilt
            }
        };
        if outcome.in_place() {
            self.stats.csr_patches += 1;
        } else {
            self.stats.csr_rebuilds += 1;
        }
        self.csr_version = Some(v);
    }

    /// Re-pins `(g, src)` with one full BFS (and, in non-persistent mode, an
    /// unconditional CSR rebuild — the historical per-scan behaviour).
    fn full_repin(&mut self, g: &OwnedGraph, src: NodeId) {
        if self.persistent {
            self.sync_csr(g);
        } else {
            self.csr.rebuild_from(g);
            self.stats.csr_rebuilds += 1;
        }
        let n = g.num_nodes();
        self.src = src as u32;
        self.state.reset(n);
        self.resize_scratch(n);
        self.overlay.clear();
        self.active.clear();
        self.checkpoints.clear();
        self.queue.clear();
        self.state.assign(self.src, 0, false);
        self.queue.push(self.src);
        let mut head = 0usize;
        while head < self.queue.len() {
            let x = self.queue[head];
            head += 1;
            self.stats.nodes_expanded += 1;
            let dx = self.state.get(x);
            let state = &mut self.state;
            let queue = &mut self.queue;
            for &y in self.csr.neighbors(x as usize) {
                if state.get(y) == UNREACHABLE {
                    state.assign(y, dx + 1, false);
                    queue.push(y);
                }
            }
        }
        self.stats.full_bfs_runs += 1;
    }

    /// Parks the working distance vector (valid for `self.src` at
    /// `self.pinned_version`) in the per-source cache. The working vector must
    /// already be rolled back to the base (no active candidate deltas).
    fn save_working(&mut self) {
        let Some(version) = self.pinned_version.take() else {
            return;
        };
        let src = self.src as usize;
        if src >= self.cache.len() {
            return;
        }
        let dense_bytes = self.dense_slot_bytes();
        let slot = &mut self.cache[src];
        // The pinned source's slot is always empty: activating it cleared the
        // slot (dense) or dropped it (sparse), and no warming path re-parks
        // the pinned source.
        debug_assert!(slot.version.is_none(), "parking over an occupied slot");
        std::mem::swap(&mut slot.dist, &mut self.state.dist);
        std::mem::swap(&mut slot.level_counts, &mut self.state.level_counts);
        slot.sum = self.state.sum;
        slot.reached = self.state.reached;
        slot.max_hint = self.state.max_hint;
        if slot.version.is_none() {
            self.cached_count += 1;
            self.parked_bytes += dense_bytes;
        }
        slot.version = Some(version);
        slot.last_used = self.lru_tick;
        self.lru_tick += 1;
        // The just-parked slot carries the newest stamp and recency, so it is
        // never the victim unless the budget is zero (cache disabled) or it
        // is the only slot left over the byte budget.
        self.enforce_budgets(Some(version));
    }

    /// Updates the parked-cache high-water mark from the incrementally
    /// maintained mixed-representation byte count.
    fn note_parked_peak(&mut self) {
        if self.parked_bytes > self.stats.peak_parked_bytes {
            self.stats.peak_parked_bytes = self.parked_bytes;
        }
    }

    /// Recomputes the parked vectors of `pending` (distinct, not-currently-
    /// pinned sources) from scratch in word-parallel waves of up to
    /// [`BATCH_WIDTH`] sources, parking each at the current version of `g`.
    /// The CSR snapshot must already be synced to `g`. This replaces one
    /// scalar BFS *per source* with one shared bitset wave per 64 sources —
    /// the batch-parallel path for cold bulk pins and vectors whose journal
    /// window outgrew the replay limit.
    fn batch_repin(&mut self, g: &OwnedGraph, pending: &[u32]) {
        let _sp = trace::span(trace::Phase::BatchWave);
        debug_assert_eq!(self.csr_version, Some(g.version()));
        let n = g.num_nodes();
        let cur = g.version();
        let dense_bytes = self.dense_slot_bytes();
        for chunk in pending.chunks(BATCH_WIDTH) {
            let mut rows: Vec<Vec<u16>> = Vec::with_capacity(chunk.len());
            let mut counts: Vec<Vec<u16>> = Vec::with_capacity(chunk.len());
            for &src in chunk {
                debug_assert!(
                    self.cache[src as usize].version != Some(cur)
                        || self.cache[src as usize].is_sparse(),
                    "batching a dense source that is already current"
                );
                // Release whatever representation the slot held (a stale
                // dense vector, or a sparse ball being re-promoted); the
                // restore below re-adds the dense footprint.
                self.parked_bytes -= self.slot_parked_bytes(src as usize);
                let slot = &mut self.cache[src as usize];
                slot.ball_verts = Vec::new();
                slot.ball_dist = Vec::new();
                slot.ball_radius = 0;
                let mut row = std::mem::take(&mut slot.dist);
                let mut lc = std::mem::take(&mut slot.level_counts);
                MultiSourceBfs::prepare_row(&mut row, &mut lc, n);
                rows.push(row);
                counts.push(lc);
            }
            let sources: Vec<NodeId> = chunk.iter().map(|&s| s as NodeId).collect();
            let mut summaries = vec![BatchSummary::default(); chunk.len()];
            let mut row_refs: Vec<&mut [u16]> = rows.iter_mut().map(|r| r.as_mut_slice()).collect();
            let mut count_refs: Vec<&mut [u16]> =
                counts.iter_mut().map(|c| c.as_mut_slice()).collect();
            let expanded = self.wave.run(
                &self.csr,
                &sources,
                &mut row_refs,
                &mut count_refs,
                &mut summaries,
            );
            self.stats.nodes_expanded += expanded;
            self.stats.batched_repins += chunk.len() as u64;
            for ((&src, row), (lc, summary)) in chunk
                .iter()
                .zip(rows)
                .zip(counts.into_iter().zip(summaries))
            {
                let slot = &mut self.cache[src as usize];
                slot.dist = row;
                slot.level_counts = lc;
                slot.sum = summary.sum;
                slot.reached = summary.reached;
                slot.max_hint = summary.max_hint;
                if slot.version.is_none() {
                    self.cached_count += 1;
                }
                slot.version = Some(cur);
                slot.last_used = self.lru_tick;
                self.lru_tick += 1;
                self.parked_bytes += dense_bytes;
            }
            self.enforce_budgets(Some(cur));
        }
    }

    /// Activates the cached vector of `src` as the working state — two buffer
    /// swaps and three scalar copies, no per-vertex work at all.
    fn load_cached(&mut self, src: usize, n: usize) {
        let dense_bytes = self.dense_slot_bytes();
        self.parked_bytes -= dense_bytes;
        let slot = &mut self.cache[src];
        debug_assert!(!slot.is_sparse(), "a demoted slot cannot be activated");
        debug_assert_eq!(slot.dist.len(), n, "cached vectors track the graph size");
        debug_assert_eq!(slot.level_counts.len(), n + 2);
        std::mem::swap(&mut slot.dist, &mut self.state.dist);
        std::mem::swap(&mut slot.level_counts, &mut self.state.level_counts);
        slot.version = None;
        self.cached_count -= 1;
        self.state.sum = slot.sum;
        self.state.reached = slot.reached;
        self.state.max_hint = slot.max_hint;
        self.state.journal.clear();
    }

    /// Attempts to advance the working vector (valid at `from`) to the current
    /// graph by replaying the journal's edge changes through the repair
    /// machinery. Returns `false` — leaving the state untouched — when the
    /// journal cannot serve the window (foreign lineage, discarded entries) or
    /// replaying would be slower than a fresh BFS.
    ///
    /// The CSR reflects the *current* graph, so the overlay is first rewound
    /// by the inverted pending changes; re-activating each change then
    /// advances the overlaid graph one step right before its repair runs, and
    /// the rewind cancels out entirely by the end.
    fn try_replay(&mut self, g: &OwnedGraph, from: GraphVersion) -> bool {
        let Some(changes) = g.changes_since(from) else {
            return false;
        };
        let limit = self.stale_limit();
        if changes.len() <= limit {
            self.sync_csr(g);
            self.replay_changes(changes);
            return true;
        }
        // Bounded-incremental staleness repair: a long raw window often nets
        // to a handful of distinct edges (best-response dynamics flips the
        // same edges back and forth), and replaying the parity-compressed
        // net diff touches only the region whose distances actually changed
        // — instead of dragging the vector through a full recompute wave.
        if !self.net_window_for(g, from) || self.net_window.len() > limit {
            return false;
        }
        self.sync_csr(g);
        let net = std::mem::take(&mut self.net_window);
        self.replay_changes(&net);
        self.net_window = net;
        self.stats.bounded_repairs += 1;
        true
    }

    /// Computes (and memoizes, keyed on the version pair) the
    /// parity-compressed **net** edge diff of the journal window
    /// `from → g.version()`: on an undirected edge the journal must
    /// alternate `Added` / `Removed`, so an edge toggled an even number of
    /// times cancels out entirely and an odd count nets to its *last*
    /// toggle. The result is the exact edge-set difference between the two
    /// graph versions, so replaying it through the ordinary repair machinery
    /// is equivalent to replaying the raw window. Returns `false` when the
    /// journal no longer serves the window.
    fn net_window_for(&mut self, g: &OwnedGraph, from: GraphVersion) -> bool {
        let cur = g.version();
        if self.net_from == Some(from) && self.net_cur == Some(cur) {
            return true;
        }
        let Some(changes) = g.changes_since(from) else {
            return false;
        };
        let mut keyed = std::mem::take(&mut self.net_scratch);
        keyed.clear();
        keyed.extend(changes.iter().enumerate().map(|(i, c)| {
            let (u, v) = match *c {
                EdgeChange::Added { u, v } | EdgeChange::Removed { u, v } => (u as u32, v as u32),
            };
            (u.min(v), u.max(v), i as u32)
        }));
        keyed.sort_unstable();
        self.net_window.clear();
        let mut i = 0;
        while i < keyed.len() {
            let mut j = i + 1;
            while j < keyed.len() && (keyed[j].0, keyed[j].1) == (keyed[i].0, keyed[i].1) {
                j += 1;
            }
            if (j - i) % 2 == 1 {
                // Sorted groups keep the original order, so `j - 1` is the
                // edge's last toggle — the one that decides its final state.
                self.net_window.push(changes[keyed[j - 1].2 as usize]);
            }
            i = j;
        }
        self.net_scratch = keyed;
        self.net_from = Some(from);
        self.net_cur = Some(cur);
        true
    }

    /// Runs the journal window `changes` through the repair machinery against
    /// the current working [`DistState`] and overlay. The CSR must already be
    /// synced to the *post-window* graph; the overlay must be empty.
    fn replay_changes(&mut self, changes: &[EdgeChange]) {
        let _sp = trace::span(trace::Phase::ScalarReplay);
        debug_assert!(self.overlay.is_empty());
        for change in changes.iter().rev() {
            self.overlay.activate(&invert(change));
        }
        self.state.begin_replay(self.csr.num_nodes());
        for change in changes {
            match *change {
                EdgeChange::Added { u, v } => {
                    self.overlay.activate(&EdgeDelta::Insert { u, v });
                    self.repair_insert(u as u32, v as u32);
                }
                EdgeChange::Removed { u, v } => {
                    self.overlay.activate(&EdgeDelta::Remove { u, v });
                    self.repair_delete(u as u32, v as u32);
                }
            }
        }
        self.state.end_replay();
        debug_assert!(self.overlay.is_empty(), "replay must cancel the rewind");
    }

    /// Lazily repairs the *parked* vector of `src` to the current version of
    /// `g` by replaying its own journal window — without disturbing the
    /// pinned working vector, its candidate delta stack, or the overlay
    /// (both are swapped aside for the duration, so this is safe to call
    /// mid-scan from the cache-arithmetic path). Returns `false` — leaving
    /// the slot exactly as it was — when the window is unavailable (foreign
    /// lineage, discarded entries) or longer than the per-vector staleness
    /// limit, in which case the vector's next activation pays the usual full
    /// BFS.
    fn warm_slot(&mut self, g: &OwnedGraph, src: usize) -> bool {
        self.warm_slot_collect(g, src, None)
    }

    /// [`IncrementalOracle::warm_slot`] with an optional export of the exact
    /// net-changed vertex set of the replay (the per-seed diff of
    /// [`DistanceOracle::warm_after_move`]).
    fn warm_slot_collect(
        &mut self,
        g: &OwnedGraph,
        src: usize,
        collect: Option<&mut Vec<NodeId>>,
    ) -> bool {
        let Some(from) = self.cache[src].version else {
            return false;
        };
        if self.cache[src].is_sparse() {
            // A demoted slot has no dense vector to repair; the bulk waves
            // re-promote it instead.
            return false;
        }
        let cur = g.version();
        if from == cur {
            return collect.is_none();
        }
        let Some(changes) = g.changes_since(from) else {
            return false;
        };
        let limit = self.stale_limit();
        let use_net = changes.len() > limit;
        if use_net && (!self.net_window_for(g, from) || self.net_window.len() > limit) {
            return false;
        }
        self.sync_csr(g);
        // Work on the slot's vector through the spare state/overlay pair so
        // the pinned working vector stays untouched.
        std::mem::swap(&mut self.state, &mut self.warm_state);
        std::mem::swap(&mut self.overlay, &mut self.warm_overlay);
        let slot = &mut self.cache[src];
        std::mem::swap(&mut slot.dist, &mut self.state.dist);
        std::mem::swap(&mut slot.level_counts, &mut self.state.level_counts);
        self.state.sum = slot.sum;
        self.state.reached = slot.reached;
        self.state.max_hint = slot.max_hint;
        self.state.journal.clear();
        if use_net {
            // Same exactness, bounded work: the net diff of the long window.
            let net = std::mem::take(&mut self.net_window);
            self.replay_changes(&net);
            self.net_window = net;
            self.stats.bounded_repairs += 1;
        } else {
            self.replay_changes(changes);
        }
        if let Some(out) = collect {
            out.extend(self.state.touched.iter().map(|&x| x as NodeId));
        }
        let slot = &mut self.cache[src];
        std::mem::swap(&mut slot.dist, &mut self.state.dist);
        std::mem::swap(&mut slot.level_counts, &mut self.state.level_counts);
        slot.sum = self.state.sum;
        slot.reached = self.state.reached;
        slot.max_hint = self.state.max_hint;
        slot.version = Some(cur);
        slot.last_used = self.lru_tick;
        self.lru_tick += 1;
        std::mem::swap(&mut self.overlay, &mut self.warm_overlay);
        std::mem::swap(&mut self.state, &mut self.warm_state);
        self.stats.lazy_replays += 1;
        true
    }

    /// The fused post-move pass behind [`DistanceOracle::warm_after_move`]:
    /// replay each seed's vector over the move's window collecting the exact
    /// per-seed diffs, then run the ordinary warming pass with the collected
    /// union as the dirty set.
    fn warm_after_move_persistent(
        &mut self,
        g: &OwnedGraph,
        seeds: &[NodeId],
        changed: &mut Vec<NodeId>,
    ) -> bool {
        if !self.persistent || g.num_nodes() != self.cache.len() {
            return false;
        }
        let cur = g.version();
        changed.clear();
        changed.extend_from_slice(seeds);
        for &e in seeds {
            if self.pinned_version.is_some() && self.src == e as u32 {
                let from = self.pinned_version.expect("just checked");
                if from == cur {
                    // Someone already advanced the working vector past the
                    // move: its diff is gone, the caller must be conservative.
                    return false;
                }
                self.rollback_to_prefix(0);
                self.changed_valid = false;
                if !self.try_replay(g, from) {
                    self.pinned_version = None;
                    return false;
                }
                self.pinned_version = Some(cur);
                self.stats.lazy_replays += 1;
                changed.extend(self.state.touched.iter().map(|&x| x as NodeId));
            } else if e >= self.cache.len() || !self.warm_slot_collect(g, e, Some(changed)) {
                return false;
            }
        }
        self.warm_sources_persistent(g, changed);
        true
    }

    /// Marks `dirty` in the epoch-stamped membership scratch.
    fn mark_dirty_set(&mut self, dirty: &[NodeId]) {
        let n = self.cache.len();
        if self.dirty_stamp.len() < n {
            self.dirty_stamp.resize(n, 0);
        }
        self.dirty_epoch = self.dirty_epoch.wrapping_add(1);
        if self.dirty_epoch == 0 {
            self.dirty_stamp.fill(0);
            self.dirty_epoch = 1;
        }
        for &d in dirty {
            if d < n {
                self.dirty_stamp[d] = self.dirty_epoch;
            }
        }
    }

    /// The bulk warming pass behind [`DistanceOracle::warm_sources`]: see the
    /// trait documentation for the caller contract on `dirty`.
    fn warm_sources_persistent(&mut self, g: &OwnedGraph, dirty: &[NodeId]) {
        let _sp = trace::span(trace::Phase::WarmPass);
        let n = g.num_nodes();
        if n != self.cache.len() || n != self.mark.len() {
            // A mismatched graph: the next `begin` resets the cache anyway.
            self.warm_floor = None;
            return;
        }
        let cur = g.version();
        self.mark_dirty_set(dirty);
        // Stamp bumps are only sound while the warming chain is unbroken:
        // a vector stamped exactly at the previous pass's version is covered
        // by this pass's dirty set. Anything else is repaired from its own
        // stamp (or left for the full-BFS fallback on demand).
        let trusted_floor = self.warm_floor.filter(|&f| g.changes_since(f).is_some());
        let mut worked = false;
        let mut width = 0usize;
        // The pinned working vector gets the same treatment as the slots.
        if let Some(pv) = self.pinned_version {
            if pv != cur {
                let src = self.src as usize;
                if self.dirty_stamp[src] != self.dirty_epoch && Some(pv) == trusted_floor {
                    self.pinned_version = Some(cur);
                    self.stats.warm_bumps += 1;
                    worked = true;
                } else {
                    self.rollback_to_prefix(0);
                    self.changed_valid = false;
                    if self.try_replay(g, pv) {
                        self.pinned_version = Some(cur);
                        self.stats.lazy_replays += 1;
                        worked = true;
                        width += 1;
                    } else {
                        // Unreplayable: drop the pin so the stale working
                        // vector can never be mistaken for current state.
                        self.pinned_version = None;
                    }
                }
            }
        }
        let mut pending = std::mem::take(&mut self.batch_pending);
        pending.clear();
        for src in 0..n {
            let Some(sv) = self.cache[src].version else {
                continue;
            };
            if sv == cur {
                continue;
            }
            if self.dirty_stamp[src] != self.dirty_epoch && Some(sv) == trusted_floor {
                self.cache[src].version = Some(cur);
                self.stats.warm_bumps += 1;
                worked = true;
            } else if self.warm_slot(g, src) {
                worked = true;
                width += 1;
            } else if self.warm_batching {
                // Unreplayable window: queue the slot for the shared bitset
                // wave instead of leaving it stale.
                pending.push(src as u32);
            }
            // With batching off, a slot `warm_slot` could not serve keeps its
            // old stamp; it can never match a future floor, so it is excluded
            // from stamp bumps for good and re-pins with one full BFS when
            // next needed.
        }
        if !pending.is_empty() {
            self.sync_csr(g);
            self.batch_repin(g, &pending);
            worked = true;
            width += pending.len();
        }
        self.batch_pending = pending;
        self.warm_floor = Some(cur);
        if worked {
            self.stats.warm_batches += 1;
        }
        if width > 0 {
            self.stats.warm_batch_width[width_bucket(width)] += 1;
        }
    }

    /// The persistent `begin`: serve from the per-source cache + journal
    /// replay when possible, fall back to [`IncrementalOracle::full_repin`].
    fn begin_persistent(&mut self, g: &OwnedGraph, src: NodeId) -> DistanceSummary {
        let _sp = trace::span(trace::Phase::OracleBegin);
        let n = g.num_nodes();
        if n != self.mark.len() || self.cache.len() != n {
            // The graph size changed: every cached vector is meaningless.
            self.resize_scratch(n);
            self.cache.clear();
            self.cache.resize_with(n, SourceCache::default);
            self.cached_count = 0;
            self.parked_bytes = 0;
            self.demand_radius = 2;
            self.net_from = None;
            self.net_cur = None;
            self.net_window.clear();
            self.pinned_version = None;
            self.csr_version = None;
            self.warm_floor = None;
        }
        self.rollback_to_prefix(0);
        self.changed_valid = false;
        let mut base_version = None;
        if self.pinned_version.is_some() && self.src == src as u32 {
            base_version = self.pinned_version;
        } else {
            self.save_working();
            self.src = src as u32;
            if let Some(v) = self.cache[src].version {
                if self.cache[src].is_sparse() {
                    // A demoted slot cannot seed a working vector — its ball
                    // is a read-only summary surface. Drop it and pay the
                    // full re-pin below.
                    self.evict_at(src);
                } else {
                    self.load_cached(src, n);
                    base_version = Some(v);
                }
            }
        }
        let replayed = base_version.is_some_and(|v| self.try_replay(g, v));
        if replayed {
            self.changed_valid = true;
            self.stats.replayed_begins += 1;
        } else {
            self.full_repin(g, src);
        }
        self.pinned_version = Some(g.version());
        self.state.summary(n)
    }

    /// The ball-sparse twin of [`fused_insert_summary`]: the post-insertion
    /// summary of the pinned source when the inserted endpoint `v`'s parked
    /// vector is demoted, computed in `O(|ball| + levels touched)` from the
    /// slot's frozen aggregates and ball entries alone.
    ///
    /// Exactness: with `d_u` the pinned working vector (tightened maximum
    /// `mu`, all `n` reached) and `r` the slot's ball radius, every vertex
    /// outside the ball has `d_v ≥ r + 1`, so whenever `mu ≤ r + 2` its
    /// fused value `min(d_u, 1 + d_v)` is `d_u` unchanged — only ball
    /// entries can move. The sum shrinks by each ball entry's improvement,
    /// and the maximum is rescanned over the per-level count deltas.
    /// Returns `None` — the caller then falls back to an exact full
    /// evaluation — when the condition cannot be proven; the fallback is
    /// exact, so scores and trajectories are bit-identical to the dense
    /// kernel's either way.
    fn sparse_insert_ball_summary(&mut self, v: usize) -> Option<DistanceSummary> {
        let n = self.cache.len();
        if self.state.reached < n {
            // An unreached vertex outside the ball has an unknown fused
            // value; no radius can prove the query away.
            return None;
        }
        // `evaluate_insert_via_cache` tightened the working max already.
        let mu = self.state.max_hint;
        let slot = &self.cache[v];
        if mu > slot.ball_radius.saturating_add(2) {
            return None;
        }
        let mut delta = std::mem::take(&mut self.level_delta);
        let mut touched = std::mem::take(&mut self.level_touched);
        if delta.len() < n + 2 {
            delta.resize(n + 2, 0);
        }
        let mut sum = self.state.sum;
        let slot = &self.cache[v];
        for (&x, &dv) in slot.ball_verts.iter().zip(&slot.ball_dist) {
            let du = self.state.dist[x as usize];
            let nd = dv + 1; // dv ≤ radius < u16::MAX: no overflow
            if nd < du {
                sum -= u64::from(du - nd);
                delta[du as usize] -= 1;
                delta[nd as usize] += 1;
                touched.push(du);
                touched.push(nd);
            }
        }
        let mut m = mu;
        while m > 0
            && i64::from(self.state.level_counts[m as usize]) + i64::from(delta[m as usize]) <= 0
        {
            m -= 1;
        }
        for &l in &touched {
            delta[l as usize] = 0;
        }
        touched.clear();
        self.level_delta = delta;
        self.level_touched = touched;
        Some(DistanceSummary {
            sum: Some(sum),
            max: Some(u32::from(m)),
        })
    }
}

/// Chunk length of [`fused_insert_summary`]'s u32 accumulator lanes: the
/// lanes are flushed into the u64 totals every `FUSED_CHUNK` entries, so the
/// kernel's SUM is exact for **any** input length — not just `n ≤ 4096`.
const FUSED_CHUNK: usize = 4096;

/// A u32 lane must hold `FUSED_CHUNK` worst-case u16 summands between
/// flushes. This breaks the build loudly if either width is ever changed —
/// the silent alternative is a wrapped, wrong SUM at large `n`.
const _: () = assert!(FUSED_CHUNK as u128 * u16::MAX as u128 <= u32::MAX as u128);

/// Fused `min(src, far + 1)` SUM/MAX/reached pass of the cache-arithmetic
/// insertion scorer — the hot kernel of the persistent engine (one `O(n)`
/// pass per scored candidate). Branchless and chunked so it autovectorizes
/// over the u16 vectors: each [`FUSED_CHUNK`]-entry chunk accumulates into
/// u32 lanes and is flushed into u64 totals before a lane could wrap (the
/// compile-time assertion above pins the bound, and the `*_past_u32` kernel
/// tests drive it beyond `u32::MAX` total mass), and unreachable entries
/// are *counted* rather than branched around per element (`UNREACHABLE`
/// saturates through the `+ 1`, so `d == UNREACHABLE` exactly marks
/// vertices neither side reaches).
fn fused_insert_summary(src_dist: &[u16], far_dist: &[u16]) -> DistanceSummary {
    debug_assert_eq!(src_dist.len(), far_dist.len());
    let n = src_dist.len();
    let mut unreach = 0u64;
    let mut sum = 0u64;
    let mut max = 0u16;
    let mut i = 0;
    while i < n {
        let end = (i + FUSED_CHUNK).min(n);
        let mut csum = 0u32;
        let mut cunr = 0u32;
        for (&a, &b) in src_dist[i..end].iter().zip(&far_dist[i..end]) {
            let d = a.min(b.saturating_add(1));
            csum += u32::from(d);
            cunr += u32::from(d == UNREACHABLE);
            max = max.max(d);
        }
        sum += u64::from(csum);
        unreach += u64::from(cunr);
        i = end;
    }
    if unreach > 0 {
        return DistanceSummary::DISCONNECTED;
    }
    DistanceSummary {
        sum: Some(sum),
        max: Some(u32::from(max)),
    }
}

impl DistanceOracle for IncrementalOracle {
    fn kind(&self) -> OracleKind {
        if self.persistent {
            OracleKind::Persistent
        } else {
            OracleKind::Incremental
        }
    }

    fn begin(&mut self, g: &OwnedGraph, src: NodeId) -> DistanceSummary {
        if self.persistent {
            return self.begin_persistent(g, src);
        }
        self.full_repin(g, src);
        self.state.summary(g.num_nodes())
    }

    fn changed_since_begin(&self) -> Option<&[u32]> {
        if self.changed_valid {
            Some(&self.state.touched)
        } else {
            None
        }
    }

    fn cached_summary(&mut self, g: &OwnedGraph, src: NodeId) -> Option<DistanceSummary> {
        if !self.persistent || g.num_nodes() != self.cache.len() || src >= self.cache.len() {
            return None;
        }
        let n = self.cache.len();
        let cur = g.version();
        if self.pinned_version == Some(cur) && self.src == src as u32 {
            self.rollback_to_prefix(0);
            return Some(self.state.summary(n));
        }
        let tick = self.lru_tick;
        let slot = &mut self.cache[src];
        if slot.version != Some(cur) {
            return None;
        }
        // A summary read is a use: without the recency bump, the hottest
        // read path would look LRU-cold to the staleness-aware eviction.
        slot.last_used = tick;
        self.lru_tick += 1;
        if slot.reached < n {
            return Some(DistanceSummary::DISCONNECTED);
        }
        if slot.is_sparse() {
            // The aggregates were frozen — and the max bound tightened — at
            // demotion time, so the answer is O(1) (the empty level counters
            // must not be consulted).
            return Some(DistanceSummary {
                sum: Some(slot.sum),
                max: Some(u32::from(slot.max_hint)),
            });
        }
        // Tighten the parked max bound exactly like `DistState::summary`.
        let mut m = slot.max_hint;
        while m > 0 && slot.level_counts[m as usize] == 0 {
            m -= 1;
        }
        slot.max_hint = m;
        Some(DistanceSummary {
            sum: Some(slot.sum),
            max: Some(u32::from(m)),
        })
    }

    fn pin_sources(&mut self, g: &OwnedGraph, sources: &[NodeId]) {
        let _sp = trace::span(trace::Phase::PinSources);
        if !self.persistent || g.num_nodes() != self.cache.len() {
            for &src in sources {
                self.begin(g, src);
            }
            return;
        }
        let cur = g.version();
        let mut pending = std::mem::take(&mut self.batch_pending);
        pending.clear();
        for &src in sources {
            // Already current — parked dense or pinned — costs nothing; a
            // dense vector at an older stamp is repaired in place by scalar
            // lazy replay (raw window or parity-compressed net diff). Cold
            // or unreplayable sources are queued for the shared 64-wide
            // bitset waves — as are *sparse* slots, even current ones: an
            // explicitly requested source is about to be read as a seed or
            // working vector, so the wave re-promotes its ball to a full
            // dense vector rather than leaving the dirty-engine machinery to
            // fall back conservatively. With batching off they pay the
            // scalar `begin` (and always for the currently pinned source,
            // whose working vector `begin` reuses).
            if (self.cache[src].version == Some(cur) && !self.cache[src].is_sparse())
                || (self.pinned_version == Some(cur) && self.src == src as u32)
            {
                continue;
            }
            if self.warm_slot(g, src) {
                continue;
            }
            if self.warm_batching && !(self.pinned_version.is_some() && self.src == src as u32) {
                pending.push(src as u32);
            } else {
                self.begin(g, src);
            }
        }
        if !pending.is_empty() {
            pending.sort_unstable();
            pending.dedup();
            self.sync_csr(g);
            self.batch_repin(g, &pending);
        }
        self.batch_pending = pending;
    }

    fn set_warm_batching(&mut self, on: bool) {
        self.warm_batching = on;
    }

    fn sparse_parked(&self) -> usize {
        self.cache
            .iter()
            .filter(|s| s.version.is_some() && s.is_sparse())
            .count()
    }

    fn warm_sources(&mut self, g: &OwnedGraph, dirty: &[NodeId]) {
        if self.persistent {
            self.warm_sources_persistent(g, dirty);
        }
    }

    fn warm_after_move(
        &mut self,
        g: &OwnedGraph,
        seeds: &[NodeId],
        changed: &mut Vec<NodeId>,
    ) -> bool {
        self.warm_after_move_persistent(g, seeds, changed)
    }

    fn evaluate(&mut self, deltas: &[EdgeDelta]) -> DistanceSummary {
        let _sp = trace::span(trace::Phase::DeltaRepair);
        self.run_deltas(deltas);
        self.state.summary(self.csr.num_nodes())
    }

    fn evaluate_insert_via_cache(
        &mut self,
        g: &OwnedGraph,
        prefix: &[EdgeDelta],
        u: NodeId,
        v: NodeId,
    ) -> Option<(DistanceSummary, bool)> {
        let _sp = trace::span(trace::Phase::FusedKernel);
        if !self.persistent
            || u as u32 != self.src
            || self.pinned_version.is_none()
            || v >= self.cache.len()
            || prefix.iter().any(|d| matches!(d, EdgeDelta::Insert { .. }))
        {
            return None;
        }
        if self.cache[v].version != self.pinned_version {
            // Lazy on-demand warming: repair `v`'s parked vector by replaying
            // its own journal window right now (the working state and its
            // candidate deltas are swapped aside, so the pin is undisturbed).
            // `g` is the pinned graph, so success lands the slot exactly on
            // the pinned version.
            if self.cache[v].version.is_none()
                || Some(g.version()) != self.pinned_version
                || !self.warm_slot(g, v)
            {
                return None;
            }
            debug_assert_eq!(self.cache[v].version, self.pinned_version);
            self.stats.lazy_hits += 1;
        }
        // Bring the delta stack to exactly `prefix` (for the swap enumeration
        // `(from, to₁), (from, to₂), …` this is a no-op after the first
        // candidate: the shared removal stays applied, and no insertion is
        // ever pushed or rolled back).
        self.run_deltas(prefix);
        let n = self.csr.num_nodes();
        if self.state.reached == n {
            // Record the ball radius a query from this state would need, so
            // later demotions keep enough of their vector to stay servable.
            let mut mu = self.state.max_hint;
            while mu > 0 && self.state.level_counts[mu as usize] == 0 {
                mu -= 1;
            }
            self.state.max_hint = mu;
            self.demand_radius = self.demand_radius.max(mu.saturating_sub(2));
        }
        if self.cache[v].is_sparse() {
            let summary = self.sparse_insert_ball_summary(v)?;
            self.stats.sparse_hits += 1;
            self.stats.nodes_expanded += self.cache[v].ball_verts.len() as u64;
            let tick = self.lru_tick;
            self.cache[v].last_used = tick;
            self.lru_tick += 1;
            return Some((summary, prefix.is_empty()));
        }
        let summary = fused_insert_summary(&self.state.dist[..n], &self.cache[v].dist[..n]);
        self.stats.nodes_expanded += n as u64;
        Some((summary, prefix.is_empty()))
    }

    fn evaluate_into(&mut self, deltas: &[EdgeDelta], out: &mut Vec<u16>) -> DistanceSummary {
        self.run_deltas(deltas);
        out.clear();
        out.extend_from_slice(&self.state.dist);
        self.state.summary(self.csr.num_nodes())
    }

    fn base_distances(&mut self) -> &[u16] {
        self.rollback_to_prefix(0);
        &self.state.dist
    }

    fn stats(&self) -> OracleStats {
        self.stats.debug_validate();
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = OracleStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distances::BfsBuffer;
    use crate::generators;

    /// Ground truth via a fresh BFS on a mutated clone of the graph.
    fn truth(g: &OwnedGraph, src: NodeId, deltas: &[EdgeDelta]) -> (Vec<u16>, DistanceSummary) {
        let mut h = g.clone();
        for delta in deltas {
            match *delta {
                EdgeDelta::Insert { u, v } => assert!(h.add_edge(u, v), "insert {u},{v}"),
                EdgeDelta::Remove { u, v } => assert!(h.remove_edge(u, v), "remove {u},{v}"),
            }
        }
        let mut buf = BfsBuffer::new(h.num_nodes());
        let summary = buf.summary(&h, src);
        (buf.last_distances()[..h.num_nodes()].to_vec(), summary)
    }

    fn check_both(g: &OwnedGraph, src: NodeId, deltas: &[EdgeDelta]) {
        let (expect_dist, expect_summary) = truth(g, src, deltas);
        for kind in [
            OracleKind::FullBfs,
            OracleKind::Incremental,
            OracleKind::Persistent,
        ] {
            let mut oracle = make_oracle(kind, g.num_nodes());
            let base = oracle.begin(g, src);
            let mut buf = BfsBuffer::new(g.num_nodes());
            assert_eq!(base, buf.summary(g, src), "{} base summary", kind.label());
            let mut dist = Vec::new();
            let summary = oracle.evaluate_into(deltas, &mut dist);
            assert_eq!(
                summary,
                expect_summary,
                "{} summary for {deltas:?}",
                kind.label()
            );
            assert_eq!(
                dist,
                expect_dist,
                "{} distances for {deltas:?}",
                kind.label()
            );
            // The base must be restored: re-evaluating nothing gives the base.
            assert_eq!(oracle.evaluate(&[]), base, "{} base restore", kind.label());
            assert_eq!(
                oracle.base_distances(),
                &buf.run(g, src)[..g.num_nodes()],
                "{} base distances",
                kind.label()
            );
        }
    }

    #[test]
    fn insert_shortcut_on_path() {
        let g = generators::path(8);
        check_both(&g, 0, &[EdgeDelta::Insert { u: 0, v: 7 }]);
        check_both(&g, 3, &[EdgeDelta::Insert { u: 0, v: 7 }]);
        check_both(&g, 0, &[EdgeDelta::Insert { u: 0, v: 4 }]);
    }

    #[test]
    fn remove_edge_with_detour() {
        let mut g = generators::cycle(9);
        g.add_edge(0, 4);
        for src in 0..9 {
            check_both(&g, src, &[EdgeDelta::Remove { u: 0, v: 1 }]);
            check_both(&g, src, &[EdgeDelta::Remove { u: 0, v: 4 }]);
        }
    }

    #[test]
    fn remove_bridge_disconnects() {
        let g = generators::path(6);
        check_both(&g, 0, &[EdgeDelta::Remove { u: 2, v: 3 }]);
        check_both(&g, 5, &[EdgeDelta::Remove { u: 2, v: 3 }]);
    }

    #[test]
    fn stats_consistency_invariants_hold_and_detect_corruption() {
        // A real persistent workload: bulk pin, mutate, warm, score — every
        // counter class fires, and the invariants must hold throughout.
        let mut g = generators::cycle(24);
        let mut oracle = make_oracle(OracleKind::Persistent, g.num_nodes());
        let sources: Vec<NodeId> = (0..g.num_nodes()).collect();
        oracle.pin_sources(&g, &sources);
        for step in 0..12 {
            let u = step % 24;
            let v = (u + 7) % 24;
            if g.add_edge(u, v) {
                oracle.warm_sources(&g, &[u, v]);
            }
            oracle.begin(&g, u);
            let _ = oracle.evaluate_insert_via_cache(&g, &[], u, (u + 11) % 24);
            assert!(
                oracle.stats().consistent(),
                "step {step}: {:?}",
                oracle.stats()
            );
        }
        let stats = oracle.stats();
        assert!(stats.warm_batches > 0 && stats.replayed_begins > 0);
        // Merging self-consistent stats stays consistent (the invariants are
        // linear inequalities over summed fields).
        let mut merged = stats;
        merged.merge(&stats);
        assert!(merged.consistent());
        // And each invariant actually bites on corrupted counters.
        let mut bad = stats;
        bad.warm_batch_width[0] = bad.warm_batches + 1;
        assert!(!bad.consistent(), "width histogram over warm_batches");
        let mut bad = stats;
        bad.lazy_hits = bad.lazy_replays + 1;
        assert!(!bad.consistent(), "lazy hit without a lazy replay");
        let mut bad = stats;
        bad.bounded_repairs = bad.replayed_begins + bad.lazy_replays + 1;
        assert!(!bad.consistent(), "bounded repair without a replay");
    }

    #[test]
    fn swap_as_remove_plus_insert() {
        let g = generators::path(7);
        let deltas = [
            EdgeDelta::Remove { u: 0, v: 1 },
            EdgeDelta::Insert { u: 0, v: 3 },
        ];
        for src in 0..7 {
            check_both(&g, src, &deltas);
        }
    }

    #[test]
    fn insert_reconnects_component() {
        let mut g = generators::path(6);
        g.remove_edge(2, 3); // components {0,1,2} and {3,4,5}
        check_both(&g, 0, &[EdgeDelta::Insert { u: 2, v: 3 }]);
        check_both(&g, 0, &[EdgeDelta::Insert { u: 0, v: 5 }]);
        // An edge inside the far component changes nothing for the source.
        check_both(&g, 0, &[EdgeDelta::Insert { u: 3, v: 5 }]);
    }

    #[test]
    fn star_center_swaps() {
        let g = generators::star(10);
        for leaf in [1usize, 5, 9] {
            check_both(
                &g,
                leaf,
                &[
                    EdgeDelta::Remove { u: 0, v: leaf },
                    EdgeDelta::Insert {
                        u: leaf,
                        v: (leaf % 9) + 1,
                    },
                ],
            );
        }
    }

    #[test]
    fn incremental_expands_fewer_nodes_than_full() {
        // From the middle of a path, an edge between two equal-level vertices
        // changes no distance at all: the incremental repair does (almost) no
        // work while the full backend re-walks the whole graph. This is the
        // common case in best-response scans — most candidates barely move
        // the distance vector.
        let g = generators::path(65);
        let src = 32;
        let deltas = [EdgeDelta::Insert { u: 31, v: 33 }];
        let mut full = FullBfsOracle::new(65);
        let mut inc = IncrementalOracle::new(65);
        full.begin(&g, src);
        inc.begin(&g, src);
        full.reset_stats();
        inc.reset_stats();
        for _ in 0..10 {
            assert_eq!(full.evaluate(&deltas), inc.evaluate(&deltas));
        }
        let (fs, is_) = (full.stats(), inc.stats());
        assert_eq!(fs.evaluations, 10);
        assert_eq!(is_.evaluations, 10);
        assert!(
            is_.nodes_expanded * 5 < fs.nodes_expanded,
            "incremental {} vs full {}",
            is_.nodes_expanded,
            fs.nodes_expanded
        );
    }

    #[test]
    fn oracle_kind_labels() {
        assert_eq!(OracleKind::FullBfs.label(), "full-bfs");
        assert_eq!(OracleKind::Incremental.label(), "incremental");
        assert_eq!(OracleKind::Persistent.label(), "persistent");
        assert_eq!(OracleKind::default(), OracleKind::Incremental);
    }

    #[test]
    fn persistent_begin_replays_instead_of_re_running_bfs() {
        let mut g = generators::cycle(16);
        let mut oracle = IncrementalOracle::persistent(16);
        assert_eq!(oracle.kind(), OracleKind::Persistent);
        let mut buf = BfsBuffer::new(16);
        oracle.begin(&g, 3);
        assert_eq!(oracle.stats().full_bfs_runs, 1);
        // Mutate the graph a little and re-pin the same source: the distance
        // vector must be repaired by journal replay, not recomputed.
        for step in 0..12 {
            let a = step % 16;
            let b = (step + 5) % 16;
            if g.has_edge(a, b) {
                g.remove_edge(a, b);
            } else {
                g.add_edge(a, b);
            }
            let summary = oracle.begin(&g, 3);
            assert_eq!(summary, buf.summary(&g, 3), "step {step}");
            assert_eq!(
                oracle.base_distances(),
                &buf.run(&g, 3)[..16],
                "step {step}"
            );
        }
        let stats = oracle.stats();
        assert_eq!(stats.full_bfs_runs, 1, "only the initial pin runs a BFS");
        assert_eq!(stats.replayed_begins, 12);
    }

    #[test]
    fn persistent_cache_survives_source_switches() {
        let mut g = generators::path(20);
        let mut oracle = IncrementalOracle::persistent(20);
        let mut buf = BfsBuffer::new(20);
        // Pin a handful of sources, then interleave mutations with re-pins of
        // the same sources: every re-pin should be a replay.
        for src in [0usize, 5, 19] {
            oracle.begin(&g, src);
        }
        let baseline_bfs = oracle.stats().full_bfs_runs;
        for round in 0..6 {
            let (a, b) = (round, round + 7);
            if g.has_edge(a, b) {
                g.remove_edge(a, b);
            } else {
                g.add_edge(a, b);
            }
            for src in [0usize, 5, 19] {
                let summary = oracle.begin(&g, src);
                assert_eq!(summary, buf.summary(&g, src), "round {round} src {src}");
                assert_eq!(
                    oracle.base_distances(),
                    &buf.run(&g, src)[..20],
                    "round {round} src {src}"
                );
            }
        }
        let stats = oracle.stats();
        assert_eq!(stats.full_bfs_runs, baseline_bfs, "all re-pins replayed");
        assert_eq!(stats.replayed_begins, 18);
    }

    #[test]
    fn persistent_exports_the_exact_changed_vertex_set() {
        let mut g = generators::path(12);
        let mut oracle = IncrementalOracle::persistent(12);
        let mut buf = BfsBuffer::new(12);
        oracle.begin(&g, 0);
        assert_eq!(
            oracle.changed_since_begin(),
            None,
            "a full BFS pin has no diff"
        );
        let before = buf.run(&g, 0).to_vec();
        g.add_edge(0, 8);
        oracle.begin(&g, 0);
        let after = buf.run(&g, 0).to_vec();
        let mut expect: Vec<u32> = (0..12u32)
            .filter(|&x| before[x as usize] != after[x as usize])
            .collect();
        expect.sort_unstable();
        let mut got = oracle
            .changed_since_begin()
            .expect("replayed begin exports a diff")
            .to_vec();
        got.sort_unstable();
        assert_eq!(got, expect);
        // A no-op window reports an empty diff.
        oracle.begin(&g, 0);
        assert_eq!(oracle.changed_since_begin(), Some(&[][..]));
    }

    #[test]
    fn persistent_falls_back_on_stale_or_foreign_histories() {
        let mut g = generators::path(32);
        let mut oracle = IncrementalOracle::persistent(32);
        oracle.begin(&g, 0);
        let bfs_before = oracle.stats().full_bfs_runs;
        // Far more changes than the staleness limit: replay would be slower
        // than a fresh BFS, so the oracle must re-pin.
        for i in 0..16 {
            g.add_edge(i, i + 16);
        }
        let mut buf = BfsBuffer::new(32);
        assert_eq!(oracle.begin(&g, 0), buf.summary(&g, 0));
        assert!(
            oracle.stats().full_bfs_runs > bfs_before,
            "stale → full BFS"
        );
        assert_eq!(oracle.changed_since_begin(), None);
        // A clone has a fresh lineage: its journal can never serve a version
        // taken on the original, so the oracle re-pins rather than replaying
        // against an unrelated history.
        let mut clone = g.clone();
        clone.swap_edge(0, 1, 20);
        let bfs_mid = oracle.stats().full_bfs_runs;
        assert_eq!(oracle.begin(&clone, 0), buf.summary(&clone, 0));
        assert!(oracle.stats().full_bfs_runs > bfs_mid);
        assert_eq!(oracle.changed_since_begin(), None);
    }

    #[test]
    fn lru_budget_caps_parked_vectors_and_stays_exact() {
        // Budget 2, three sources pinned round-robin: every re-pin of the
        // evicted source must fall back to a full BFS, and every summary must
        // stay exact. An unbounded twin oracle replays everything.
        let mut g = generators::cycle(18);
        let mut capped = IncrementalOracle::persistent_budgeted(18, Some(2));
        let mut unbounded = IncrementalOracle::persistent(18);
        let mut buf = BfsBuffer::new(18);
        let sources = [0usize, 6, 12];
        for &src in &sources {
            capped.begin(&g, src);
            unbounded.begin(&g, src);
        }
        let (capped_cold, unbounded_cold) = (
            capped.stats().full_bfs_runs,
            unbounded.stats().full_bfs_runs,
        );
        for round in 0..4 {
            let (a, b) = (round, (round + 9) % 18);
            if g.has_edge(a, b) {
                g.remove_edge(a, b);
            } else {
                g.add_edge(a, b);
            }
            for &src in &sources {
                assert_eq!(capped.begin(&g, src), buf.summary(&g, src));
                assert_eq!(unbounded.begin(&g, src), buf.summary(&g, src));
                assert_eq!(capped.base_distances(), &buf.run(&g, src)[..18]);
            }
        }
        assert_eq!(
            unbounded.stats().full_bfs_runs,
            unbounded_cold,
            "unbounded cache replays every re-pin"
        );
        assert!(
            capped.stats().full_bfs_runs > capped_cold,
            "a 2-slot cache over 3 sources must evict and re-pin"
        );
        assert!(capped.cached_count <= 2, "budget respected");
    }

    #[test]
    fn zero_budget_disables_the_cache_without_losing_exactness() {
        let mut g = generators::path(12);
        let mut oracle = IncrementalOracle::persistent_budgeted(12, Some(0));
        let mut buf = BfsBuffer::new(12);
        oracle.begin(&g, 0);
        g.add_edge(0, 7);
        // Same source re-pinned: the working vector is still live (it is only
        // parked on a source switch), so this replays; switching away and
        // back cannot be served from the (disabled) cache.
        assert_eq!(oracle.begin(&g, 0), buf.summary(&g, 0));
        let bfs_before = oracle.stats().full_bfs_runs;
        oracle.begin(&g, 5);
        assert_eq!(oracle.begin(&g, 0), buf.summary(&g, 0));
        assert_eq!(oracle.cached_count, 0);
        assert!(oracle.stats().full_bfs_runs > bfs_before);
        assert_eq!(oracle.base_distances(), &buf.run(&g, 0)[..12]);
    }

    #[test]
    fn persistent_csr_syncs_by_patching_not_rebuilding() {
        let mut g = generators::cycle(32);
        let mut oracle = IncrementalOracle::persistent(32);
        let mut buf = BfsBuffer::new(32);
        oracle.begin(&g, 0);
        for step in 0..10 {
            let (a, b) = (step % 32, (step + 9) % 32);
            if g.has_edge(a, b) {
                g.remove_edge(a, b);
            } else {
                g.add_edge(a, b);
            }
            let src = (step * 5) % 32;
            assert_eq!(oracle.begin(&g, src), buf.summary(&g, src), "step {step}");
        }
        let stats = oracle.stats();
        // One initial build, at most one slack-granting regrow; every other
        // version sync is an in-place patch.
        assert!(
            stats.csr_patches >= 8,
            "expected patched syncs, got {stats:?}"
        );
        assert!(
            stats.csr_rebuilds <= 2,
            "persistent mode must not rebuild per version: {stats:?}"
        );
    }

    #[test]
    fn evaluate_for_source_matches_fresh_bfs_for_every_backend() {
        let mut g = generators::path(11);
        g.add_edge(2, 8);
        let deltas = [
            EdgeDelta::Remove { u: 4, v: 5 },
            EdgeDelta::Insert { u: 0, v: 6 },
        ];
        let mut buf = BfsBuffer::new(11);
        for kind in [
            OracleKind::FullBfs,
            OracleKind::Incremental,
            OracleKind::Persistent,
        ] {
            let mut oracle = make_oracle(kind, 11);
            oracle.pin_sources(&g, &[0, 4, 9]);
            for src in [4usize, 9, 0, 7] {
                let (base, modified) = oracle.evaluate_for_source(&g, src, &deltas);
                assert_eq!(base, buf.summary(&g, src), "{} src {src}", kind.label());
                let (_, expect) = truth(&g, src, &deltas);
                assert_eq!(modified, expect, "{} src {src}", kind.label());
            }
        }
        // Persistent: pinned sources answer later what-ifs by replay, and the
        // answers stay exact after the graph moved on.
        let mut oracle = IncrementalOracle::persistent(11);
        oracle.pin_sources(&g, &[0, 4, 9]);
        let cold_bfs = oracle.stats().full_bfs_runs;
        g.add_edge(1, 10);
        for src in [0usize, 4, 9] {
            let (base, modified) = oracle.evaluate_for_source(&g, src, &deltas);
            assert_eq!(base, buf.summary(&g, src), "replayed src {src}");
            let (_, expect) = truth(&g, src, &deltas);
            assert_eq!(modified, expect, "replayed src {src}");
        }
        assert_eq!(
            oracle.stats().full_bfs_runs,
            cold_bfs,
            "pinned sources are served by journal replay"
        );
    }

    #[test]
    fn warm_sources_bumps_clean_vectors_and_replays_dirty_ones() {
        // Two components: moves inside one leave the other's vectors
        // untouched, so the warming pass must stamp-bump the clean side and
        // replay only the dirty side.
        let mut g = OwnedGraph::new(12);
        for u in 0..5 {
            g.add_edge(u, u + 1); // first component: a path on {0..5}
        }
        for v in 7..12 {
            g.add_edge(6, v); // second component: a star on {6..11}
        }
        let mut oracle = IncrementalOracle::persistent(12);
        let mut buf = BfsBuffer::new(12);
        let all: Vec<usize> = (0..12).collect();
        oracle.pin_sources(&g, &all);
        // First move + warm establishes the trusted floor.
        g.add_edge(7, 8);
        oracle.warm_sources(&g, &[6, 7, 8, 9, 10, 11]);
        let before = oracle.stats();
        // Second move inside the star: path vectors are clean.
        g.add_edge(9, 10);
        oracle.warm_sources(&g, &[6, 7, 8, 9, 10, 11]);
        let after = oracle.stats();
        assert!(after.warm_batches > before.warm_batches);
        assert!(
            after.warm_bumps >= before.warm_bumps + 6,
            "the six path vectors must be stamp-bumped: {after:?}"
        );
        assert!(
            after.lazy_replays > before.lazy_replays,
            "the star vectors must be replayed: {after:?}"
        );
        let bfs_before = after.full_bfs_runs;
        for src in 0..12 {
            assert_eq!(oracle.begin(&g, src), buf.summary(&g, src), "src {src}");
            assert_eq!(oracle.base_distances(), &buf.run(&g, src)[..12]);
        }
        assert_eq!(
            oracle.stats().full_bfs_runs,
            bfs_before,
            "every re-pin after warming must be an (empty) replay"
        );
    }

    #[test]
    fn cached_summary_answers_without_pinning() {
        let mut g = generators::cycle(14);
        let mut oracle = IncrementalOracle::persistent(14);
        let mut buf = BfsBuffer::new(14);
        let all: Vec<usize> = (0..14).collect();
        oracle.pin_sources(&g, &all);
        let before = oracle.stats();
        for src in 0..14 {
            assert_eq!(
                oracle.cached_summary(&g, src),
                Some(buf.summary(&g, src)),
                "src {src}"
            );
        }
        let after = oracle.stats();
        assert_eq!(after.full_bfs_runs, before.full_bfs_runs);
        assert_eq!(
            after.replayed_begins, before.replayed_begins,
            "summary reads never re-pin"
        );
        // A stale vector refuses — answering would need repair work…
        g.add_edge(0, 7);
        assert_eq!(oracle.cached_summary(&g, 3), None);
        // …and warming restores the O(1) answers.
        oracle.warm_sources(&g, &all);
        assert_eq!(oracle.cached_summary(&g, 3), Some(buf.summary(&g, 3)));
    }

    #[test]
    fn warm_sources_is_sound_without_a_trusted_floor() {
        // The first warming call has no floor: nothing may be stamp-bumped;
        // every parked vector must be repaired from its own stamp instead.
        let mut g = generators::cycle(10);
        let mut oracle = IncrementalOracle::persistent(10);
        let mut buf = BfsBuffer::new(10);
        oracle.pin_sources(&g, &[0, 3, 7]);
        g.add_edge(0, 5);
        // Deliberately empty dirty set — still exact, because an untrusted
        // pass never bumps, it replays.
        oracle.warm_sources(&g, &[]);
        assert_eq!(oracle.stats().warm_bumps, 0, "no floor, no bumps");
        assert!(oracle.stats().lazy_replays >= 3);
        for src in [0usize, 3, 7] {
            assert_eq!(oracle.begin(&g, src), buf.summary(&g, src), "src {src}");
        }
    }

    #[test]
    fn eviction_prefers_stale_vectors_over_plain_lru() {
        // Components {0,1}, {2,3} and a burst area {4..11}. Source 0 is
        // parked *first* (oldest recency) but kept current by stamp bumps;
        // source 2 is parked later (newer recency) but left behind by a
        // burst longer than the staleness limit. Budget pressure must evict
        // the stale vector 2, not the least-recently-used 0.
        let mut g = OwnedGraph::new(12);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        for v in 5..12 {
            g.add_edge(4, v);
        }
        let mut oracle = IncrementalOracle::persistent_budgeted(12, Some(2));
        // This test pins down the *scalar* stale-slot behaviour (an
        // unreplayable slot keeps its old stamp); with batching on the slot
        // would be recomputed by a bulk wave instead — see
        // `batched_warm_recomputes_unreplayable_slots`.
        oracle.set_warm_batching(false);
        oracle.begin(&g, 0);
        oracle.begin(&g, 2); // parks 0
        oracle.begin(&g, 4); // parks 2; cache = {0, 2}, working 4
        oracle.warm_sources(&g, &[]); // establish the floor
                                      // One small window: both parked vectors are clean → bumped.
        g.add_edge(5, 6);
        oracle.warm_sources(&g, &[4, 5, 6]);
        assert!(oracle.stats().warm_bumps >= 2);
        // A burst past max(8, n/8) = 8 changes, all inside the star; claim 2
        // dirty (a legal over-approximation) so its replay is attempted and
        // fails on the window length, leaving it stale — while 0 (clean,
        // stamped at the floor) is bumped for free.
        for (a, b) in [
            (5, 7),
            (6, 8),
            (7, 9),
            (8, 10),
            (9, 11),
            (5, 8),
            (6, 9),
            (7, 10),
            (8, 11),
        ] {
            g.add_edge(a, b);
        }
        let mut dirty: Vec<usize> = (4..12).collect();
        dirty.push(2);
        oracle.warm_sources(&g, &dirty);
        assert!(oracle.cache[0].version == Some(g.version()), "0 bumped");
        assert!(
            oracle.cache[2].version.is_some() && oracle.cache[2].version != Some(g.version()),
            "2 left stale (window too long to replay)"
        );
        // Now force an eviction: park a third vector.
        oracle.begin(&g, 5);
        oracle.begin(&g, 6); // parks 5 → budget 2 exceeded → evict
        assert!(
            oracle.cache[0].version.is_some(),
            "the least-recently-used but *current* vector survives"
        );
        assert!(
            oracle.cache[2].version.is_none(),
            "the stale vector is the eviction victim"
        );
    }

    #[test]
    fn batched_warm_recomputes_unreplayable_slots() {
        // Same shape as `eviction_prefers_stale_vectors_over_plain_lru`, but
        // with batching on (the default): the slot whose journal window grew
        // past the replay limit is recomputed by a shared bitset wave and
        // lands on the current version with exact contents, instead of being
        // left behind stale.
        let mut g = OwnedGraph::new(12);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        for v in 5..12 {
            g.add_edge(4, v);
        }
        let mut oracle = IncrementalOracle::persistent_budgeted(12, None);
        oracle.begin(&g, 0);
        oracle.begin(&g, 2);
        oracle.begin(&g, 4);
        oracle.warm_sources(&g, &[]);
        for (a, b) in [
            (5, 7),
            (6, 8),
            (7, 9),
            (8, 10),
            (9, 11),
            (5, 8),
            (6, 9),
            (7, 10),
            (8, 11),
        ] {
            g.add_edge(a, b);
        }
        let mut dirty: Vec<usize> = (4..12).collect();
        dirty.push(2);
        oracle.warm_sources(&g, &dirty);
        assert_eq!(
            oracle.cache[2].version,
            Some(g.version()),
            "unreplayable slot recomputed by the bulk wave"
        );
        assert!(oracle.stats().batched_repins >= 1);
        assert!(oracle.stats().peak_parked_bytes > 0);
        let mut buf = BfsBuffer::new(12);
        let expect = buf.run(&g, 2).to_vec();
        assert_eq!(&oracle.cache[2].dist[..12], &expect[..]);
        assert_eq!(oracle.cached_summary(&g, 2), Some(buf.summary(&g, 2)));
    }

    #[test]
    fn batched_bulk_pin_matches_scalar_bulk_pin() {
        // Cold bulk pin: every source recomputed. The batched waves and the
        // scalar begins must park identical vectors and identical summaries,
        // and the batched oracle must report the wave work in its counters.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        let g = generators::random_with_m_edges(100, 180, &mut rng);
        let all: Vec<NodeId> = (0..100).collect();
        let mut batched = IncrementalOracle::persistent_budgeted(100, None);
        let mut scalar = IncrementalOracle::persistent_budgeted(100, None);
        scalar.set_warm_batching(false);
        batched.pin_sources(&g, &all);
        scalar.pin_sources(&g, &all);
        assert!(batched.stats().batched_repins >= 100 - 1);
        assert_eq!(batched.stats().full_bfs_runs, 0, "no scalar traversals");
        assert!(scalar.stats().batched_repins == 0);
        let mut buf = BfsBuffer::new(100);
        for &src in &all {
            let expect = buf.summary(&g, src);
            assert_eq!(batched.cached_summary(&g, src), Some(expect), "src {src}");
            assert_eq!(scalar.cached_summary(&g, src), Some(expect), "src {src}");
        }
    }

    #[test]
    fn persistent_candidate_evaluations_match_after_replay() {
        // Replay and candidate scoring compose: pin, mutate, re-pin (replay),
        // then evaluate what-if deltas — everything must match fresh BFS.
        let mut g = generators::cycle(10);
        let mut oracle = IncrementalOracle::persistent(10);
        oracle.begin(&g, 2);
        g.add_edge(2, 7);
        oracle.begin(&g, 2);
        assert_eq!(oracle.stats().replayed_begins, 1);
        let deltas = [
            EdgeDelta::Remove { u: 2, v: 7 },
            EdgeDelta::Insert { u: 2, v: 6 },
        ];
        let (expect_dist, expect_summary) = truth(&g, 2, &deltas);
        let mut got = Vec::new();
        assert_eq!(oracle.evaluate_into(&deltas, &mut got), expect_summary);
        assert_eq!(got, expect_dist);
        // The replayed base is restored after the what-if query.
        let mut buf = BfsBuffer::new(10);
        assert_eq!(oracle.evaluate(&[]), buf.summary(&g, 2));
    }

    #[test]
    fn width_bucket_pins_the_histogram_mapping() {
        // Bucket i covers widths with ceil(log2(w)) == i; a full 64-source
        // wave must land in the top *in-range* bucket 6, with bucket 7
        // reserved for the >64 overflow — no off-by-one at powers of two.
        assert_eq!(width_bucket(0), 0);
        assert_eq!(width_bucket(1), 0);
        assert_eq!(width_bucket(2), 1);
        assert_eq!(width_bucket(3), 2);
        assert_eq!(width_bucket(4), 2);
        assert_eq!(width_bucket(5), 3);
        assert_eq!(width_bucket(8), 3);
        assert_eq!(width_bucket(9), 4);
        assert_eq!(width_bucket(16), 4);
        assert_eq!(width_bucket(17), 5);
        assert_eq!(width_bucket(32), 5);
        assert_eq!(width_bucket(33), 6);
        assert_eq!(width_bucket(BATCH_WIDTH), 6, "full wave in the top bucket");
        assert_eq!(width_bucket(BATCH_WIDTH + 1), 7);
        assert_eq!(width_bucket(10_000), 7);
    }

    #[test]
    fn fused_kernel_sum_is_exact_past_u32_mass() {
        // Drive the kernel's chunk-flush past u32::MAX of total mass — with
        // one unflushed u32 accumulator the sum wraps and this fails. The
        // kernel is length-generic, so the invariant is exercised directly
        // at its boundary, beyond what any single graph would feed it.
        let len = 70_000usize;
        let src: Vec<u16> = (0..len).map(|i| 65_000 + (i % 400) as u16).collect();
        let far = vec![UNREACHABLE - 1; len]; // far + 1 saturates to 65535
        let mut expect = 0u64;
        let mut expect_max = 0u16;
        for (&a, &b) in src.iter().zip(&far) {
            let d = a.min(b.saturating_add(1));
            expect += u64::from(d);
            expect_max = expect_max.max(d);
        }
        assert!(
            expect > u64::from(u32::MAX),
            "the test must cross the u32 boundary"
        );
        let got = fused_insert_summary(&src, &far);
        assert_eq!(got.sum, Some(expect));
        assert_eq!(got.max, Some(u32::from(expect_max)));
    }

    #[test]
    fn fused_kernel_matches_naive_reference_on_mixed_vectors() {
        // Deterministic mixed vectors (finite + unreachable entries) across
        // chunk-boundary lengths, checked against a from-scratch u64 pass.
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        for len in [
            0usize,
            1,
            5,
            FUSED_CHUNK - 1,
            FUSED_CHUNK,
            FUSED_CHUNK + 1,
            10_000,
        ] {
            let mut gen = |unreach_period: u32| -> Vec<u16> {
                (0..len)
                    .map(|_| {
                        let r = next();
                        if r % unreach_period == 0 {
                            UNREACHABLE
                        } else {
                            (r % 1000) as u16
                        }
                    })
                    .collect()
            };
            for period in [7u32, 1_000_000] {
                let src = gen(period);
                let far = gen(period);
                let mut sum = 0u64;
                let mut max = 0u16;
                let mut unreach = 0usize;
                for (&a, &b) in src.iter().zip(&far) {
                    let d = a.min(b.saturating_add(1));
                    if d == UNREACHABLE {
                        unreach += 1;
                    } else {
                        sum += u64::from(d);
                        max = max.max(d);
                    }
                }
                let expect = if unreach > 0 {
                    DistanceSummary::DISCONNECTED
                } else {
                    DistanceSummary {
                        sum: Some(sum),
                        max: Some(u32::from(max)),
                    }
                };
                assert_eq!(fused_insert_summary(&src, &far), expect, "len {len}");
            }
        }
    }

    #[test]
    fn toggle_heavy_windows_replay_via_the_net_diff() {
        // Flip the same edge back and forth far past the stale limit
        // (max(8, 24/8) = 8): the raw window is long but parity-cancels to
        // nothing (or to one real change), so the re-pin must stay
        // incremental instead of falling back to a full BFS.
        let mut g = generators::cycle(24);
        let mut oracle = IncrementalOracle::persistent(24);
        let mut buf = BfsBuffer::new(24);
        oracle.begin(&g, 0);
        assert_eq!(oracle.stats().full_bfs_runs, 1);
        for _ in 0..10 {
            g.add_edge(0, 12);
            g.remove_edge(0, 12);
        }
        assert_eq!(oracle.begin(&g, 0), buf.summary(&g, 0));
        let stats = oracle.stats();
        assert_eq!(stats.full_bfs_runs, 1, "a net-empty window advances free");
        assert!(stats.bounded_repairs >= 1);
        // One real change buried in 12 cancelling toggles nets to itself.
        for _ in 0..6 {
            g.add_edge(3, 17);
            g.remove_edge(3, 17);
        }
        g.add_edge(5, 19);
        assert_eq!(oracle.begin(&g, 0), buf.summary(&g, 0));
        assert_eq!(oracle.base_distances(), &buf.run(&g, 0)[..24]);
        assert_eq!(oracle.stats().full_bfs_runs, 1, "net diff of 1 replays");
        assert!(oracle.changed_since_begin().is_some());
    }

    #[test]
    fn warming_serves_toggle_storms_via_bounded_repair() {
        // The same bounded repair must light up the lazy-warming path: three
        // parked vectors behind a 19-change window that nets to one edge.
        let mut g = generators::cycle(20);
        let mut oracle = IncrementalOracle::persistent(20);
        let mut buf = BfsBuffer::new(20);
        oracle.pin_sources(&g, &[0, 7, 14]);
        let cold = oracle.stats();
        for _ in 0..9 {
            g.add_edge(2, 11);
            g.remove_edge(2, 11);
        }
        g.add_edge(4, 15);
        let all: Vec<usize> = (0..20).collect();
        oracle.warm_sources(&g, &all);
        let stats = oracle.stats();
        assert!(
            stats.bounded_repairs >= 3,
            "every parked vector repairs via the net window: {stats:?}"
        );
        assert_eq!(stats.full_bfs_runs, cold.full_bfs_runs);
        assert_eq!(
            stats.batched_repins, cold.batched_repins,
            "no recompute wave for a storm that nets to one change"
        );
        for &src in &[0usize, 7, 14] {
            assert_eq!(
                oracle.cached_summary(&g, src),
                Some(buf.summary(&g, src)),
                "src {src}"
            );
        }
    }

    #[test]
    fn byte_budget_demotes_then_evicts_and_stays_exact() {
        // Budget below one dense slot (2·(2·16+2) = 68 bytes at n = 16):
        // every park demotes to the ball representation, cutting the radius
        // until the ball fits; only a budget below even the shrunken balls
        // evicts. Exactness must survive both.
        let g = generators::cycle(16);
        let mut oracle = IncrementalOracle::persistent_with_budgets(16, None, Some(60));
        let mut buf = BfsBuffer::new(16);
        oracle.begin(&g, 0);
        oracle.begin(&g, 5); // parks 0: 68 > 60 → demoted to its ball
        let stats = oracle.stats();
        assert!(stats.sparse_demotions >= 1, "{stats:?}");
        assert!(
            stats.peak_parked_bytes <= 60,
            "the recorded peak respects the byte budget: {stats:?}"
        );
        assert_eq!(oracle.cached_summary(&g, 0), Some(buf.summary(&g, 0)));
        oracle.begin(&g, 9); // parks 5 → over budget again → demote/evict
        for src in 0..16 {
            assert_eq!(oracle.begin(&g, src), buf.summary(&g, src), "src {src}");
            assert_eq!(oracle.base_distances(), &buf.run(&g, src)[..16]);
        }
    }

    #[test]
    fn sparse_slot_serves_the_insert_kernel_exactly() {
        // 130 bytes fit one dense slot (68) plus one ball but not two dense
        // slots, so the third pin demotes the oldest slot. The demoted ball
        // must serve the cache-arithmetic insertion kernel with the exact
        // summary (on a 16-cycle every eccentricity is 8 and the kept radius
        // is 8 - 2 = 6, so the exactness condition mu ≤ r + 2 is tight).
        let g = generators::cycle(16);
        let mut oracle = IncrementalOracle::persistent_with_budgets(16, None, Some(130));
        oracle.set_warm_batching(false);
        oracle.begin(&g, 5);
        oracle.begin(&g, 0); // parks 5 (dense, 68 ≤ 130)
        oracle.begin(&g, 9); // parks 0 → 136 > 130 → demotes 5 (oldest)
        assert!(oracle.cache[5].is_sparse(), "oldest slot demoted");
        assert!(!oracle.cache[0].is_sparse(), "newer slot stays dense");
        let (_, expect5) = truth(&g, 9, &[EdgeDelta::Insert { u: 9, v: 5 }]);
        assert_eq!(
            oracle.evaluate_insert_via_cache(&g, &[], 9, 5),
            Some((expect5, true)),
            "sparse slot serves the kernel exactly"
        );
        assert!(oracle.stats().sparse_hits >= 1);
        let (_, expect0) = truth(&g, 9, &[EdgeDelta::Insert { u: 9, v: 0 }]);
        assert_eq!(
            oracle.evaluate_insert_via_cache(&g, &[], 9, 0),
            Some((expect0, true)),
            "the dense twin answers identically"
        );
        let mut buf = BfsBuffer::new(16);
        assert_eq!(oracle.cached_summary(&g, 5), Some(buf.summary(&g, 5)));
        // Re-pinning the demoted source stays exact (the ball cannot seed a
        // working vector, so this pays a fresh BFS).
        assert_eq!(oracle.begin(&g, 5), buf.summary(&g, 5));
        assert_eq!(oracle.base_distances(), &buf.run(&g, 5)[..16]);
    }

    #[test]
    fn out_of_ball_reads_fall_back_without_losing_exactness() {
        // On a path the eccentricities diverge: the demoted middle vertex
        // keeps radius 12 - 2 = 10, and a query from the path's end
        // (eccentricity 23 > 10 + 2) cannot be proven away from the ball —
        // the kernel must refuse, and the caller's exact fallback answers.
        let g = generators::path(24);
        let mut oracle = IncrementalOracle::persistent_with_budgets(24, None, Some(190));
        oracle.set_warm_batching(false);
        oracle.begin(&g, 12);
        oracle.begin(&g, 0); // parks 12 (dense, 100 ≤ 190)
        oracle.begin(&g, 23); // parks 0 → 200 > 190 → demotes 12
        assert!(oracle.cache[12].is_sparse());
        assert_eq!(
            oracle.evaluate_insert_via_cache(&g, &[], 23, 12),
            None,
            "an out-of-ball query refuses instead of guessing"
        );
        assert!(
            oracle.evaluate_insert_via_cache(&g, &[], 23, 0).is_some(),
            "the dense slot serves any source"
        );
        // The ordinary evaluation path remains exact for the same candidate.
        let deltas = [EdgeDelta::Insert { u: 23, v: 12 }];
        let (_, expect) = truth(&g, 23, &deltas);
        assert_eq!(oracle.evaluate(&deltas), expect);
    }
}
