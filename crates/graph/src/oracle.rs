//! Pluggable single-source distance oracles for candidate-move scoring.
//!
//! The hot operation of best-response dynamics is: *given the current network
//! `G` and an agent `u`, what is `u`'s distance summary in `G ± a few edges`?*
//! Historically every candidate move paid a full apply → BFS → undo cycle.
//! This module turns that cost into a pluggable engine:
//!
//! * [`FullBfsOracle`] — the baseline: every evaluation is a fresh BFS over a
//!   [`CsrAdjacency`] snapshot patched with the candidate's edge deltas.
//! * [`IncrementalOracle`] — keeps the source's exact distance vector for the
//!   *base* graph and repairs it under each candidate's [`EdgeDelta`]s with
//!   truncated BFS: inserts run a decrease-only relaxation from the improved
//!   endpoint, deletions find the orphaned region (the vertices whose every
//!   shortest path used the deleted edge) and re-settle it with a bucket
//!   Dijkstra seeded from its unaffected boundary. All repairs are journaled
//!   and rolled back after scoring, so hundreds of candidates are evaluated
//!   against one base vector without re-running a single full BFS.
//!
//! Both oracles maintain the SUM / MAX aggregates incrementally (a running sum
//! plus per-level counters), so a candidate evaluation touching `k` vertices
//! costs `O(k + affected edges)` rather than `O(n)`.
//!
//! The oracles are deliberately *what-if* engines: [`DistanceOracle::begin`]
//! pins the base state and [`DistanceOracle::evaluate`] answers one candidate
//! against it. The incremental backend additionally keeps the previous
//! candidate's deltas applied and only rolls back to the longest common delta
//! prefix, so candidate enumerations of the form `(from, to₁), (from, to₂), …`
//! pay the expensive removal repair once per `from`. Correctness of the
//! incremental repairs against from-scratch BFS is enforced by the randomized
//! equivalence tests in the facade crate.

use crate::csr::CsrAdjacency;
use crate::distances::{DistanceSummary, UNREACHABLE};
use crate::graph::{NodeId, OwnedGraph};

/// A single undirected edge change relative to the base graph.
///
/// Deltas are applied in order by [`DistanceOracle::evaluate`]; an `Insert`
/// must name an edge absent from (and a `Remove` an edge present in) the graph
/// obtained from the base by the preceding deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeDelta {
    /// Add the undirected edge `{u, v}`.
    Insert {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// Remove the undirected edge `{u, v}`.
    Remove {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
}

/// Which distance-oracle backend a workspace uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OracleKind {
    /// Full BFS per candidate evaluation (the historical behaviour).
    FullBfs,
    /// Journaled truncated-BFS repair per candidate evaluation.
    #[default]
    Incremental,
}

impl OracleKind {
    /// Short label used in reports and benchmarks.
    pub fn label(&self) -> &'static str {
        match self {
            OracleKind::FullBfs => "full-bfs",
            OracleKind::Incremental => "incremental",
        }
    }
}

/// Work counters of an oracle, for ablation measurements.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Full BFS traversals performed (one per [`DistanceOracle::begin`], plus
    /// one per evaluation for the full-BFS backend).
    pub full_bfs_runs: u64,
    /// Candidate evaluations answered.
    pub evaluations: u64,
    /// Vertices expanded across all traversals and repairs — the
    /// backend-comparable measure of work done.
    pub nodes_expanded: u64,
}

/// A single-source distance engine answering what-if queries about edge deltas.
pub trait DistanceOracle: Send {
    /// The backend this oracle implements.
    fn kind(&self) -> OracleKind;

    /// Pins the base state `(g, src)` and returns the source's base summary.
    ///
    /// Must be called before [`DistanceOracle::evaluate`] and again whenever
    /// the underlying graph or source changes.
    fn begin(&mut self, g: &OwnedGraph, src: NodeId) -> DistanceSummary;

    /// Distance summary of `src` in the base graph modified by `deltas`
    /// (applied in order). A pure what-if query: the next call sees the same
    /// base state (backends may defer the rollback and reuse the longest
    /// common delta prefix between consecutive evaluations).
    fn evaluate(&mut self, deltas: &[EdgeDelta]) -> DistanceSummary;

    /// Like [`DistanceOracle::evaluate`], additionally copying the full
    /// modified distance vector into `out` (used by equivalence tests).
    fn evaluate_into(&mut self, deltas: &[EdgeDelta], out: &mut Vec<u32>) -> DistanceSummary;

    /// The base distance vector pinned by the last [`DistanceOracle::begin`].
    fn base_distances(&mut self) -> &[u32];

    /// Work counters accumulated since the last reset.
    fn stats(&self) -> OracleStats;

    /// Clears the work counters.
    fn reset_stats(&mut self);
}

/// Creates a boxed oracle of the requested backend for graphs on `n` vertices.
pub fn make_oracle(kind: OracleKind, n: usize) -> Box<dyn DistanceOracle> {
    match kind {
        OracleKind::FullBfs => Box::new(FullBfsOracle::new(n)),
        OracleKind::Incremental => Box::new(IncrementalOracle::new(n)),
    }
}

/// The set of edge deltas currently overlaid on a CSR snapshot.
///
/// Kept tiny (candidate moves touch at most a handful of edges), so membership
/// tests are linear scans over at most a few entries.
#[derive(Debug, Clone, Default)]
struct DeltaOverlay {
    added: Vec<(u32, u32)>,
    removed: Vec<(u32, u32)>,
}

impl DeltaOverlay {
    fn clear(&mut self) {
        self.added.clear();
        self.removed.clear();
    }

    fn key(u: u32, v: u32) -> (u32, u32) {
        if u < v {
            (u, v)
        } else {
            (v, u)
        }
    }

    fn activate(&mut self, delta: &EdgeDelta) {
        match *delta {
            EdgeDelta::Insert { u, v } => {
                let k = Self::key(u as u32, v as u32);
                if let Some(pos) = self.removed.iter().position(|&e| e == k) {
                    self.removed.swap_remove(pos);
                } else {
                    self.added.push(k);
                }
            }
            EdgeDelta::Remove { u, v } => {
                let k = Self::key(u as u32, v as u32);
                if let Some(pos) = self.added.iter().position(|&e| e == k) {
                    self.added.swap_remove(pos);
                } else {
                    self.removed.push(k);
                }
            }
        }
    }

    #[inline]
    fn is_removed(&self, x: u32, y: u32) -> bool {
        self.removed.contains(&Self::key(x, y))
    }
}

/// Iterates the neighbours of `x` in the overlaid graph.
#[inline]
fn for_each_neighbor<F: FnMut(u32)>(csr: &CsrAdjacency, overlay: &DeltaOverlay, x: u32, mut f: F) {
    if overlay.removed.is_empty() {
        for &y in csr.neighbors(x as usize) {
            f(y);
        }
    } else {
        for &y in csr.neighbors(x as usize) {
            if !overlay.is_removed(x, y) {
                f(y);
            }
        }
    }
    for &(a, b) in &overlay.added {
        if a == x {
            f(b);
        } else if b == x {
            f(a);
        }
    }
}

/// Baseline backend: one full BFS per evaluation.
pub struct FullBfsOracle {
    csr: CsrAdjacency,
    src: u32,
    base: Vec<u32>,
    scratch: Vec<u32>,
    queue: Vec<u32>,
    overlay: DeltaOverlay,
    stats: OracleStats,
}

impl FullBfsOracle {
    /// Creates a full-BFS oracle for graphs on `n` vertices.
    pub fn new(n: usize) -> Self {
        FullBfsOracle {
            csr: CsrAdjacency::new(),
            src: 0,
            base: vec![UNREACHABLE; n],
            scratch: Vec::new(),
            queue: Vec::with_capacity(n),
            overlay: DeltaOverlay::default(),
            stats: OracleStats::default(),
        }
    }

    /// BFS over the overlaid snapshot into `dist`, returning the summary.
    fn bfs(
        csr: &CsrAdjacency,
        overlay: &DeltaOverlay,
        src: u32,
        dist: &mut Vec<u32>,
        queue: &mut Vec<u32>,
        stats: &mut OracleStats,
    ) -> DistanceSummary {
        let n = csr.num_nodes();
        dist.clear();
        dist.resize(n, UNREACHABLE);
        queue.clear();
        dist[src as usize] = 0;
        queue.push(src);
        let mut head = 0usize;
        let mut sum = 0u64;
        let mut max = 0u32;
        while head < queue.len() {
            let x = queue[head];
            head += 1;
            stats.nodes_expanded += 1;
            let dx = dist[x as usize];
            sum += u64::from(dx);
            max = max.max(dx);
            for_each_neighbor(csr, overlay, x, |y| {
                if dist[y as usize] == UNREACHABLE {
                    dist[y as usize] = dx + 1;
                    queue.push(y);
                }
            });
        }
        stats.full_bfs_runs += 1;
        if queue.len() < n {
            DistanceSummary::DISCONNECTED
        } else {
            DistanceSummary {
                sum: Some(sum),
                max: Some(max),
            }
        }
    }
}

impl DistanceOracle for FullBfsOracle {
    fn kind(&self) -> OracleKind {
        OracleKind::FullBfs
    }

    fn begin(&mut self, g: &OwnedGraph, src: NodeId) -> DistanceSummary {
        self.csr.rebuild_from(g);
        self.src = src as u32;
        self.overlay.clear();
        Self::bfs(
            &self.csr,
            &self.overlay,
            self.src,
            &mut self.base,
            &mut self.queue,
            &mut self.stats,
        )
    }

    fn evaluate(&mut self, deltas: &[EdgeDelta]) -> DistanceSummary {
        self.stats.evaluations += 1;
        for delta in deltas {
            self.overlay.activate(delta);
        }
        let summary = Self::bfs(
            &self.csr,
            &self.overlay,
            self.src,
            &mut self.scratch,
            &mut self.queue,
            &mut self.stats,
        );
        self.overlay.clear();
        summary
    }

    fn evaluate_into(&mut self, deltas: &[EdgeDelta], out: &mut Vec<u32>) -> DistanceSummary {
        let summary = self.evaluate(deltas);
        out.clear();
        out.extend_from_slice(&self.scratch);
        summary
    }

    fn base_distances(&mut self) -> &[u32] {
        &self.base
    }

    fn stats(&self) -> OracleStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = OracleStats::default();
    }
}

/// Distance vector with incrementally maintained SUM / MAX aggregates and an
/// undo journal.
#[derive(Debug, Clone, Default)]
struct DistState {
    dist: Vec<u32>,
    /// Sum of all finite distances.
    sum: u64,
    /// Number of vertices with finite distance (including the source).
    reached: usize,
    /// `level_counts[d]` = number of vertices at distance `d`.
    level_counts: Vec<u32>,
    /// Upper bound on the current maximum finite distance.
    max_hint: u32,
    /// `(vertex, previous distance)` pairs for rollback.
    journal: Vec<(u32, u32)>,
}

impl DistState {
    fn reset(&mut self, n: usize) {
        self.dist.clear();
        self.dist.resize(n, UNREACHABLE);
        self.level_counts.clear();
        self.level_counts.resize(n + 2, 0);
        self.sum = 0;
        self.reached = 0;
        self.max_hint = 0;
        self.journal.clear();
    }

    #[inline]
    fn get(&self, x: u32) -> u32 {
        self.dist[x as usize]
    }

    /// Sets `dist[x] = new`, keeping the aggregates in sync; `journal = true`
    /// records the old value for rollback.
    #[inline]
    fn assign(&mut self, x: u32, new: u32, journal: bool) {
        let old = self.dist[x as usize];
        if journal {
            self.journal.push((x, old));
        }
        if old != UNREACHABLE {
            self.sum -= u64::from(old);
            self.level_counts[old as usize] -= 1;
            self.reached -= 1;
        }
        if new != UNREACHABLE {
            self.sum += u64::from(new);
            self.level_counts[new as usize] += 1;
            self.reached += 1;
            self.max_hint = self.max_hint.max(new);
        }
        self.dist[x as usize] = new;
    }

    /// Reverts journaled assignments down to `journal_len` entries;
    /// `max_hint` restores the max bound recorded at that point.
    fn rollback_to(&mut self, journal_len: usize, max_hint: u32) {
        while self.journal.len() > journal_len {
            let (x, old) = self.journal.pop().expect("journal length checked");
            self.assign(x, old, false);
        }
        self.max_hint = max_hint;
    }

    /// Current summary; tightens `max_hint` to the true maximum.
    fn summary(&mut self, n: usize) -> DistanceSummary {
        if self.reached < n {
            return DistanceSummary::DISCONNECTED;
        }
        let mut m = self.max_hint;
        while m > 0 && self.level_counts[m as usize] == 0 {
            m -= 1;
        }
        self.max_hint = m;
        DistanceSummary {
            sum: Some(self.sum),
            max: Some(m),
        }
    }
}

/// A resume point of the delta stack: the journal length and max bound right
/// before the corresponding delta was applied.
#[derive(Debug, Clone, Copy)]
struct Checkpoint {
    journal_len: usize,
    max_hint: u32,
}

/// Incremental backend: journaled truncated-BFS repair of the base vector.
///
/// Consecutive evaluations share work through the *delta stack*: the deltas of
/// the previous evaluation stay applied, and the next evaluation only rolls
/// back to the longest common prefix before repairing its own suffix. A
/// best-response scan enumerating swaps as `(from, to₁), (from, to₂), …` thus
/// pays the expensive `Remove {u, from}` repair once per `from`, not once per
/// candidate.
pub struct IncrementalOracle {
    csr: CsrAdjacency,
    src: u32,
    state: DistState,
    /// Deltas currently applied on top of the base vector.
    active: Vec<EdgeDelta>,
    /// `checkpoints[i]` restores the state right before `active[i]`.
    checkpoints: Vec<Checkpoint>,
    queue: Vec<u32>,
    /// Epoch stamps: `mark[x] == epoch` ⇔ `x` is affected by the current
    /// delete repair.
    mark: Vec<u32>,
    /// Epoch stamps: `x` has already been orphan-checked this repair.
    checked: Vec<u32>,
    /// Tentative distances of affected vertices; entries are (re)initialised
    /// for every vertex marked affected in the current repair, so validity is
    /// implied by `mark[x] == epoch`.
    tent: Vec<u32>,
    /// Affected vertices of the current delete repair.
    affected: Vec<u32>,
    /// Neighbour scratch buffer of the delete repair's phase 1.
    cand: Vec<u32>,
    /// Dial buckets for the bounded re-settling Dijkstra.
    buckets: Vec<Vec<u32>>,
    epoch: u32,
    overlay: DeltaOverlay,
    stats: OracleStats,
}

impl IncrementalOracle {
    /// Creates an incremental oracle for graphs on `n` vertices.
    pub fn new(n: usize) -> Self {
        let mut oracle = IncrementalOracle {
            csr: CsrAdjacency::new(),
            src: 0,
            state: DistState::default(),
            active: Vec::with_capacity(4),
            checkpoints: Vec::with_capacity(4),
            queue: Vec::with_capacity(n),
            mark: Vec::new(),
            checked: Vec::new(),
            tent: Vec::new(),
            affected: Vec::new(),
            cand: Vec::new(),
            buckets: Vec::new(),
            epoch: 0,
            overlay: DeltaOverlay::default(),
            stats: OracleStats::default(),
        };
        oracle.resize_scratch(n);
        oracle
    }

    fn resize_scratch(&mut self, n: usize) {
        self.mark.clear();
        self.mark.resize(n, 0);
        self.checked.clear();
        self.checked.resize(n, 0);
        self.tent.clear();
        self.tent.resize(n, UNREACHABLE);
        if self.buckets.len() < n + 2 {
            self.buckets.resize_with(n + 2, Vec::new);
        }
        self.epoch = 0;
    }

    fn bump_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.mark.fill(0);
            self.checked.fill(0);
            self.epoch = 1;
        }
    }

    /// Decrease-only relaxation after inserting `{u, v}` (already in the
    /// overlay): distances can only shrink, and only inside the region whose
    /// shortest paths now run through the new edge.
    fn repair_insert(&mut self, u: u32, v: u32) {
        let (du, dv) = (self.state.get(u), self.state.get(v));
        let (far, dn) = if du <= dv { (v, du) } else { (u, dv) };
        if dn == UNREACHABLE || dn + 1 >= self.state.get(far) {
            return;
        }
        self.state.assign(far, dn + 1, true);
        self.queue.clear();
        self.queue.push(far);
        let mut head = 0usize;
        while head < self.queue.len() {
            let x = self.queue[head];
            head += 1;
            self.stats.nodes_expanded += 1;
            let dx = self.state.get(x);
            let state = &mut self.state;
            let queue = &mut self.queue;
            for_each_neighbor(&self.csr, &self.overlay, x, |y| {
                if state.get(y) > dx + 1 {
                    state.assign(y, dx + 1, true);
                    queue.push(y);
                }
            });
        }
    }

    /// Repair after removing `{u, v}` (already gone from the overlay).
    ///
    /// Phase 1 finds the *orphaned* region: vertices whose every shortest
    /// path from the source used the deleted edge. Processing candidates in
    /// BFS order guarantees that when a vertex is orphan-checked, the affected
    /// status of the previous level is final. Phase 2 re-settles the region
    /// with a Dial (bucket) Dijkstra seeded from its unaffected boundary;
    /// orphans with no boundary stay unreachable.
    fn repair_delete(&mut self, u: u32, v: u32) {
        let (du, dv) = (self.state.get(u), self.state.get(v));
        if du == UNREACHABLE || dv == UNREACHABLE || du == dv {
            // The edge was on no shortest path from the source.
            return;
        }
        let child = if du < dv { v } else { u };
        debug_assert_eq!(self.state.get(child), du.min(dv) + 1);
        self.bump_epoch();

        // Phase 1: collect the orphaned region, level by level.
        if self.has_live_parent(child) {
            return;
        }
        self.affected.clear();
        self.mark[child as usize] = self.epoch;
        self.checked[child as usize] = self.epoch;
        self.affected.push(child);
        self.queue.clear();
        self.queue.push(child);
        let mut head = 0usize;
        while head < self.queue.len() {
            let x = self.queue[head];
            head += 1;
            self.stats.nodes_expanded += 1;
            let dx = self.state.get(x);
            self.cand.clear();
            let cand = &mut self.cand;
            for_each_neighbor(&self.csr, &self.overlay, x, |y| {
                cand.push(y);
            });
            for i in 0..self.cand.len() {
                let y = self.cand[i];
                if self.state.get(y) == dx + 1 && self.checked[y as usize] != self.epoch {
                    self.checked[y as usize] = self.epoch;
                    if !self.has_live_parent(y) {
                        self.mark[y as usize] = self.epoch;
                        self.affected.push(y);
                        self.queue.push(y);
                    }
                }
            }
        }

        // Phase 2: re-settle the orphans from their unaffected boundary.
        let mut min_t = UNREACHABLE;
        let mut max_t = 0u32;
        for i in 0..self.affected.len() {
            let x = self.affected[i];
            let mut best = UNREACHABLE;
            let state = &self.state;
            let mark = &self.mark;
            let epoch = self.epoch;
            for_each_neighbor(&self.csr, &self.overlay, x, |z| {
                if mark[z as usize] != epoch {
                    let dz = state.get(z);
                    if dz != UNREACHABLE && dz + 1 < best {
                        best = dz + 1;
                    }
                }
            });
            self.tent[x as usize] = best;
            if best != UNREACHABLE {
                self.buckets[best as usize].push(x);
                min_t = min_t.min(best);
                max_t = max_t.max(best);
            }
            self.state.assign(x, UNREACHABLE, true);
        }
        if min_t == UNREACHABLE {
            return; // The whole region is disconnected from the source now.
        }
        let mut d = min_t;
        while d <= max_t {
            while let Some(x) = self.buckets[d as usize].pop() {
                if self.state.get(x) != UNREACHABLE || self.tent[x as usize] != d {
                    continue; // settled earlier or stale bucket entry
                }
                self.stats.nodes_expanded += 1;
                self.state.assign(x, d, true);
                let mark = &self.mark;
                let epoch = self.epoch;
                let state = &self.state;
                let tent = &mut self.tent;
                let buckets = &mut self.buckets;
                for_each_neighbor(&self.csr, &self.overlay, x, |y| {
                    if mark[y as usize] == epoch
                        && state.get(y) == UNREACHABLE
                        && d + 1 < tent[y as usize]
                    {
                        tent[y as usize] = d + 1;
                        buckets[(d + 1) as usize].push(y);
                        max_t = max_t.max(d + 1);
                    }
                });
            }
            d += 1;
        }
    }

    /// True if `x` has a neighbour one level closer to the source that is not
    /// (currently marked) affected.
    fn has_live_parent(&self, x: u32) -> bool {
        let dx = self.state.get(x);
        let mut live = false;
        for_each_neighbor(&self.csr, &self.overlay, x, |z| {
            if !live
                && self.mark[z as usize] != self.epoch
                && self.state.get(z) != UNREACHABLE
                && self.state.get(z) + 1 == dx
            {
                live = true;
            }
        });
        live
    }

    /// Applies one delta on top of the stack, recording its resume point.
    fn push_delta(&mut self, delta: EdgeDelta) {
        self.checkpoints.push(Checkpoint {
            journal_len: self.state.journal.len(),
            max_hint: self.state.max_hint,
        });
        self.active.push(delta);
        self.overlay.activate(&delta);
        match delta {
            EdgeDelta::Insert { u, v } => self.repair_insert(u as u32, v as u32),
            EdgeDelta::Remove { u, v } => self.repair_delete(u as u32, v as u32),
        }
    }

    /// Rolls the delta stack back to its first `prefix` entries.
    fn rollback_to_prefix(&mut self, prefix: usize) {
        if prefix >= self.active.len() {
            return;
        }
        let cp = self.checkpoints[prefix];
        self.state.rollback_to(cp.journal_len, cp.max_hint);
        self.active.truncate(prefix);
        self.checkpoints.truncate(prefix);
        self.overlay.clear();
        let active = std::mem::take(&mut self.active);
        for delta in &active {
            self.overlay.activate(delta);
        }
        self.active = active;
    }

    /// Moves the delta stack to exactly `deltas`, reusing the longest common
    /// prefix with the previous evaluation.
    fn run_deltas(&mut self, deltas: &[EdgeDelta]) {
        self.stats.evaluations += 1;
        let mut common = 0usize;
        while common < self.active.len()
            && common < deltas.len()
            && self.active[common] == deltas[common]
        {
            common += 1;
        }
        self.rollback_to_prefix(common);
        for &delta in &deltas[common..] {
            self.push_delta(delta);
        }
    }
}

impl DistanceOracle for IncrementalOracle {
    fn kind(&self) -> OracleKind {
        OracleKind::Incremental
    }

    fn begin(&mut self, g: &OwnedGraph, src: NodeId) -> DistanceSummary {
        self.csr.rebuild_from(g);
        let n = g.num_nodes();
        self.src = src as u32;
        self.state.reset(n);
        self.resize_scratch(n);
        self.overlay.clear();
        self.active.clear();
        self.checkpoints.clear();
        self.queue.clear();
        self.state.assign(self.src, 0, false);
        self.queue.push(self.src);
        let mut head = 0usize;
        while head < self.queue.len() {
            let x = self.queue[head];
            head += 1;
            self.stats.nodes_expanded += 1;
            let dx = self.state.get(x);
            let state = &mut self.state;
            let queue = &mut self.queue;
            for &y in self.csr.neighbors(x as usize) {
                if state.get(y) == UNREACHABLE {
                    state.assign(y, dx + 1, false);
                    queue.push(y);
                }
            }
        }
        self.stats.full_bfs_runs += 1;
        self.state.summary(n)
    }

    fn evaluate(&mut self, deltas: &[EdgeDelta]) -> DistanceSummary {
        self.run_deltas(deltas);
        self.state.summary(self.csr.num_nodes())
    }

    fn evaluate_into(&mut self, deltas: &[EdgeDelta], out: &mut Vec<u32>) -> DistanceSummary {
        self.run_deltas(deltas);
        out.clear();
        out.extend_from_slice(&self.state.dist);
        self.state.summary(self.csr.num_nodes())
    }

    fn base_distances(&mut self) -> &[u32] {
        self.rollback_to_prefix(0);
        &self.state.dist
    }

    fn stats(&self) -> OracleStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = OracleStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distances::BfsBuffer;
    use crate::generators;

    /// Ground truth via a fresh BFS on a mutated clone of the graph.
    fn truth(g: &OwnedGraph, src: NodeId, deltas: &[EdgeDelta]) -> (Vec<u32>, DistanceSummary) {
        let mut h = g.clone();
        for delta in deltas {
            match *delta {
                EdgeDelta::Insert { u, v } => assert!(h.add_edge(u, v), "insert {u},{v}"),
                EdgeDelta::Remove { u, v } => assert!(h.remove_edge(u, v), "remove {u},{v}"),
            }
        }
        let mut buf = BfsBuffer::new(h.num_nodes());
        let summary = buf.summary(&h, src);
        (buf.last_distances()[..h.num_nodes()].to_vec(), summary)
    }

    fn check_both(g: &OwnedGraph, src: NodeId, deltas: &[EdgeDelta]) {
        let (expect_dist, expect_summary) = truth(g, src, deltas);
        for kind in [OracleKind::FullBfs, OracleKind::Incremental] {
            let mut oracle = make_oracle(kind, g.num_nodes());
            let base = oracle.begin(g, src);
            let mut buf = BfsBuffer::new(g.num_nodes());
            assert_eq!(base, buf.summary(g, src), "{} base summary", kind.label());
            let mut dist = Vec::new();
            let summary = oracle.evaluate_into(deltas, &mut dist);
            assert_eq!(
                summary,
                expect_summary,
                "{} summary for {deltas:?}",
                kind.label()
            );
            assert_eq!(
                dist,
                expect_dist,
                "{} distances for {deltas:?}",
                kind.label()
            );
            // The base must be restored: re-evaluating nothing gives the base.
            assert_eq!(oracle.evaluate(&[]), base, "{} base restore", kind.label());
            assert_eq!(
                oracle.base_distances(),
                &buf.run(g, src)[..g.num_nodes()],
                "{} base distances",
                kind.label()
            );
        }
    }

    #[test]
    fn insert_shortcut_on_path() {
        let g = generators::path(8);
        check_both(&g, 0, &[EdgeDelta::Insert { u: 0, v: 7 }]);
        check_both(&g, 3, &[EdgeDelta::Insert { u: 0, v: 7 }]);
        check_both(&g, 0, &[EdgeDelta::Insert { u: 0, v: 4 }]);
    }

    #[test]
    fn remove_edge_with_detour() {
        let mut g = generators::cycle(9);
        g.add_edge(0, 4);
        for src in 0..9 {
            check_both(&g, src, &[EdgeDelta::Remove { u: 0, v: 1 }]);
            check_both(&g, src, &[EdgeDelta::Remove { u: 0, v: 4 }]);
        }
    }

    #[test]
    fn remove_bridge_disconnects() {
        let g = generators::path(6);
        check_both(&g, 0, &[EdgeDelta::Remove { u: 2, v: 3 }]);
        check_both(&g, 5, &[EdgeDelta::Remove { u: 2, v: 3 }]);
    }

    #[test]
    fn swap_as_remove_plus_insert() {
        let g = generators::path(7);
        let deltas = [
            EdgeDelta::Remove { u: 0, v: 1 },
            EdgeDelta::Insert { u: 0, v: 3 },
        ];
        for src in 0..7 {
            check_both(&g, src, &deltas);
        }
    }

    #[test]
    fn insert_reconnects_component() {
        let mut g = generators::path(6);
        g.remove_edge(2, 3); // components {0,1,2} and {3,4,5}
        check_both(&g, 0, &[EdgeDelta::Insert { u: 2, v: 3 }]);
        check_both(&g, 0, &[EdgeDelta::Insert { u: 0, v: 5 }]);
        // An edge inside the far component changes nothing for the source.
        check_both(&g, 0, &[EdgeDelta::Insert { u: 3, v: 5 }]);
    }

    #[test]
    fn star_center_swaps() {
        let g = generators::star(10);
        for leaf in [1usize, 5, 9] {
            check_both(
                &g,
                leaf,
                &[
                    EdgeDelta::Remove { u: 0, v: leaf },
                    EdgeDelta::Insert {
                        u: leaf,
                        v: (leaf % 9) + 1,
                    },
                ],
            );
        }
    }

    #[test]
    fn incremental_expands_fewer_nodes_than_full() {
        // From the middle of a path, an edge between two equal-level vertices
        // changes no distance at all: the incremental repair does (almost) no
        // work while the full backend re-walks the whole graph. This is the
        // common case in best-response scans — most candidates barely move
        // the distance vector.
        let g = generators::path(65);
        let src = 32;
        let deltas = [EdgeDelta::Insert { u: 31, v: 33 }];
        let mut full = FullBfsOracle::new(65);
        let mut inc = IncrementalOracle::new(65);
        full.begin(&g, src);
        inc.begin(&g, src);
        full.reset_stats();
        inc.reset_stats();
        for _ in 0..10 {
            assert_eq!(full.evaluate(&deltas), inc.evaluate(&deltas));
        }
        let (fs, is_) = (full.stats(), inc.stats());
        assert_eq!(fs.evaluations, 10);
        assert_eq!(is_.evaluations, 10);
        assert!(
            is_.nodes_expanded * 5 < fs.nodes_expanded,
            "incremental {} vs full {}",
            is_.nodes_expanded,
            fs.nodes_expanded
        );
    }

    #[test]
    fn oracle_kind_labels() {
        assert_eq!(OracleKind::FullBfs.label(), "full-bfs");
        assert_eq!(OracleKind::Incremental.label(), "incremental");
        assert_eq!(OracleKind::default(), OracleKind::Incremental);
    }
}
