//! Canonical encodings of labelled network states.
//!
//! The dynamics engine detects better-response cycles by remembering every visited
//! state. Two states of the creation process are the same iff the labelled edge set
//! *and its ownership* coincide, so the canonical key is simply the sorted list of
//! `owner -> other` pairs. For ownership-oblivious games (the symmetric Swap Game)
//! an unlabelled-ownership variant is provided.

use crate::graph::OwnedGraph;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// A compact, hashable fingerprint of a labelled network state.
///
/// Keys are exact (no hashing collisions): they contain the full sorted edge list.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateKey {
    n: usize,
    edges: Vec<(u32, u32)>,
}

impl StateKey {
    /// 64-bit digest of the key, convenient for logging.
    pub fn digest(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }

    /// Number of edges recorded in the key.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }
}

/// Canonical key of a state including edge ownership (ASG / GBG / BG / bilateral).
pub fn canonical_state_key(g: &OwnedGraph) -> StateKey {
    let mut edges: Vec<(u32, u32)> = g
        .edges()
        .map(|e| (e.owner as u32, e.other as u32))
        .collect();
    edges.sort_unstable();
    StateKey {
        n: g.num_nodes(),
        edges,
    }
}

/// Canonical key of a state ignoring edge ownership (symmetric Swap Game, where the
/// owner has no influence on strategies or costs).
pub fn canonical_unlabeled_key(g: &OwnedGraph) -> StateKey {
    let mut edges: Vec<(u32, u32)> = g
        .edges()
        .map(|e| {
            let (a, b) = (e.owner as u32, e.other as u32);
            if a < b {
                (a, b)
            } else {
                (b, a)
            }
        })
        .collect();
    edges.sort_unstable();
    StateKey {
        n: g.num_nodes(),
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::OwnedGraph;

    #[test]
    fn key_is_order_independent() {
        let g1 = OwnedGraph::from_owned_edges(4, &[(0, 1), (2, 3)]);
        let g2 = OwnedGraph::from_owned_edges(4, &[(2, 3), (0, 1)]);
        assert_eq!(canonical_state_key(&g1), canonical_state_key(&g2));
        assert_eq!(
            canonical_state_key(&g1).digest(),
            canonical_state_key(&g2).digest()
        );
    }

    #[test]
    fn ownership_distinguishes_labeled_keys() {
        let g1 = OwnedGraph::from_owned_edges(3, &[(0, 1)]);
        let g2 = OwnedGraph::from_owned_edges(3, &[(1, 0)]);
        assert_ne!(canonical_state_key(&g1), canonical_state_key(&g2));
        assert_eq!(canonical_unlabeled_key(&g1), canonical_unlabeled_key(&g2));
    }

    #[test]
    fn different_sizes_differ() {
        let g1 = OwnedGraph::from_owned_edges(3, &[(0, 1)]);
        let g2 = OwnedGraph::from_owned_edges(4, &[(0, 1)]);
        assert_ne!(canonical_state_key(&g1), canonical_state_key(&g2));
    }

    #[test]
    fn edge_count_exposed() {
        let g = OwnedGraph::from_owned_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(canonical_state_key(&g).num_edges(), 3);
    }
}
