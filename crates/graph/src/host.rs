//! Host graphs: restrictions on which edges agents are allowed to build.
//!
//! In the edge-restricted variants (Demaine et al.; Bilò et al.) the game is played
//! on a *host graph* `H` and agents may only create edges of `H`. Corollary 3.6 and
//! Corollary 4.2 of the paper use non-complete host graphs to show that the swap and
//! buy games are then not even weakly acyclic.

use crate::graph::NodeId;

/// The set of buildable edges.
///
/// [`HostGraph::Complete`] is the default network creation setting (any edge may be
/// bought); [`HostGraph::Restricted`] only allows the listed undirected edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostGraph {
    /// Every edge may be created.
    Complete,
    /// Only the listed edges may be created (undirected; stored with `u < v`).
    Restricted {
        /// Number of vertices.
        n: usize,
        /// Sorted list of allowed edges, normalised to `u < v`.
        allowed: Vec<(NodeId, NodeId)>,
    },
}

impl HostGraph {
    /// Complete host graph (no restriction).
    pub fn complete() -> Self {
        HostGraph::Complete
    }

    /// Host graph allowing exactly the given undirected edges.
    pub fn restricted(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut allowed: Vec<(NodeId, NodeId)> = edges
            .iter()
            .map(|&(a, b)| if a <= b { (a, b) } else { (b, a) })
            .collect();
        allowed.sort_unstable();
        allowed.dedup();
        HostGraph::Restricted { n, allowed }
    }

    /// Host graph that is complete except for the given forbidden edges
    /// (how Cor. 3.6 / Cor. 4.2 describe their hosts).
    pub fn complete_without(n: usize, forbidden: &[(NodeId, NodeId)]) -> Self {
        let mut allowed = Vec::with_capacity(n * (n - 1) / 2);
        for u in 0..n {
            for v in (u + 1)..n {
                let banned = forbidden
                    .iter()
                    .any(|&(a, b)| (a, b) == (u, v) || (a, b) == (v, u));
                if !banned {
                    allowed.push((u, v));
                }
            }
        }
        HostGraph::Restricted { n, allowed }
    }

    /// Returns `true` if the undirected edge `{u, v}` may be created.
    pub fn allows(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        match self {
            HostGraph::Complete => true,
            HostGraph::Restricted { allowed, .. } => {
                let key = if u < v { (u, v) } else { (v, u) };
                allowed.binary_search(&key).is_ok()
            }
        }
    }

    /// Number of allowed edges (`None` for the complete host, which depends on `n`).
    pub fn allowed_count(&self) -> Option<usize> {
        match self {
            HostGraph::Complete => None,
            HostGraph::Restricted { allowed, .. } => Some(allowed.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_allows_everything_but_loops() {
        let h = HostGraph::complete();
        assert!(h.allows(0, 5));
        assert!(!h.allows(3, 3));
        assert_eq!(h.allowed_count(), None);
    }

    #[test]
    fn restricted_normalises_orientation() {
        let h = HostGraph::restricted(4, &[(2, 0), (1, 3), (0, 2)]);
        assert!(h.allows(0, 2) && h.allows(2, 0));
        assert!(h.allows(3, 1));
        assert!(!h.allows(0, 1));
        assert_eq!(h.allowed_count(), Some(2));
    }

    #[test]
    fn complete_without_removes_only_forbidden() {
        let h = HostGraph::complete_without(4, &[(1, 2)]);
        assert!(!h.allows(1, 2) && !h.allows(2, 1));
        assert!(h.allows(0, 1));
        assert_eq!(h.allowed_count(), Some(5));
    }
}
