//! # ncg-graph
//!
//! Graph substrate for the selfish network creation dynamics library.
//!
//! Network creation games (Fabrikant et al., PODC'03 and variants) are played on
//! *owned* undirected graphs: every vertex is an agent, every edge is paid for and
//! controlled by exactly one of its endpoints. This crate provides
//!
//! * [`OwnedGraph`] — an undirected graph with per-edge ownership and cheap
//!   mutation (add / delete / swap an edge),
//! * shortest-path machinery with reusable buffers ([`BfsBuffer`],
//!   [`DistanceMatrix`], [`DistanceSummary`]) tuned for the inner loop of
//!   best-response computations,
//! * pluggable what-if distance oracles ([`oracle`]): a full-BFS baseline and
//!   an incremental backend that repairs a source's distance vector under
//!   single edge insert/delete deltas, both operating on a flat CSR adjacency
//!   snapshot ([`csr`]) for cache locality,
//! * structural predicates and descriptors ([`properties`]): connectivity, tree
//!   tests, diameter, eccentricities, centers and medians,
//! * the workload generators used by the paper's empirical study
//!   ([`generators`]): budget-constrained random networks, random spanning
//!   trees, paths, random/directed lines and Erdős–Rényi style edge fill,
//! * [`HostGraph`] — restrictions of the buildable edge set (Cor. 3.6 / 4.2),
//! * canonical state encodings ([`canonical`]) used by the dynamics engine for
//!   exact cycle detection, and
//! * a small-graph isomorphism check ([`isomorphism`]) used to validate the
//!   paper's best-response-cycle constructions.
//!
//! The crate has no opinion about costs or strategies; that lives in `ncg-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod canonical;
pub mod csr;
pub mod distances;
pub mod generators;
pub mod graph;
pub mod host;
pub mod isomorphism;
pub mod oracle;
pub mod properties;

pub use batch::{BatchSummary, MultiSourceBfs, BATCH_WIDTH};
pub use canonical::{canonical_state_key, canonical_unlabeled_key, StateKey};
pub use csr::{CsrAdjacency, PatchOutcome};
pub use distances::{BfsBuffer, DistanceMatrix, DistanceSummary, UNREACHABLE};
pub use graph::{EdgeChange, EdgeRef, GraphVersion, NodeId, OwnedGraph};
pub use host::HostGraph;
pub use isomorphism::{are_isomorphic, are_isomorphic_owned};
pub use oracle::{
    make_oracle, DistanceOracle, EdgeDelta, FullBfsOracle, IncrementalOracle, OracleKind,
    OracleStats,
};
pub use properties::{
    center_vertices, components, diameter, eccentricities, is_connected, is_tree, median_vertices,
    radius, sum_distance_vector,
};
