//! Flat CSR (compressed sparse row) adjacency snapshots with in-place patching.
//!
//! [`OwnedGraph`] stores one `Vec` per vertex, which is convenient for mutation
//! but scatters the adjacency lists across the heap. The distance oracles of
//! [`crate::oracle`] traverse the whole graph thousands of times per dynamics
//! step, so they operate on a [`CsrAdjacency`] snapshot instead: all neighbour
//! lists live in one contiguous `u32` buffer, indexed by a flat offsets array.
//!
//! Two ways of keeping the snapshot current:
//!
//! * [`CsrAdjacency::rebuild_from`] — the classic `O(n + m)` rebuild (the cost
//!   of a single BFS); buffers are reused, so it never allocates in steady
//!   state.
//! * [`CsrAdjacency::patch_from_journal`] — applies the exact
//!   [`EdgeChange`]s of a graph's change journal **in place**. Each vertex
//!   segment keeps a little slack, so a single-edge change edits two segments
//!   in `O(deg)` and the once-per-version rebuild of the persistent oracle
//!   becomes a once-per-version patch proportional to what actually changed.
//!   A full segment triggers one amortized *regrow* (a rebuild that grants
//!   every vertex fresh slack), and journals denser than
//!   [`CsrAdjacency::patch_limit`] fall back to the plain rebuild, so the
//!   patch path is never asymptotically worse than rebuilding.
//!
//! The patch window is **shared** across everything the persistent oracle
//! does at one graph version: one `patch_from_journal` brings the snapshot
//! current, after which any number of per-source vector repairs — the eager
//! re-pins of a policy scan as much as the lazy replays and bulk warming
//! passes of the dirty engine — traverse the same flat buffers. Keeping the
//! snapshot a pure function of the graph (never of which vectors were
//! warmed) is what lets vectors at *different* stamps be repaired against
//! one snapshot via the overlay-rewind trick in `ncg_graph::oracle`.

use crate::graph::{EdgeChange, NodeId, OwnedGraph};

/// How [`CsrAdjacency::patch_from_journal`] brought the snapshot up to date.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatchOutcome {
    /// Every change was applied in place (`O(changes · deg)` total).
    Patched,
    /// A segment ran out of slack mid-patch: the snapshot was regrown from the
    /// target graph with fresh per-vertex slack (`O(n + m)`, amortized over
    /// the inserts the slack will absorb).
    Compacted,
    /// The journal was denser than [`CsrAdjacency::patch_limit`] (or the node
    /// count changed), so the snapshot was rebuilt outright.
    Rebuilt,
}

impl PatchOutcome {
    /// True if the snapshot was brought up to date without an `O(n + m)` pass.
    #[inline]
    pub fn in_place(self) -> bool {
        self == PatchOutcome::Patched
    }
}

/// A cache-friendly, read-only adjacency snapshot of an [`OwnedGraph`].
///
/// Vertex ids are stored as `u32` (network creation instances are far below
/// `u32::MAX` agents); `neighbors(u)` is a contiguous, sorted slice. The
/// segment of vertex `u` spans `offsets[u]..offsets[u + 1]` of which the first
/// `lens[u]` entries are live — the remainder is slack for in-place inserts.
#[derive(Debug, Clone, Default)]
pub struct CsrAdjacency {
    n: usize,
    /// `offsets[u]..offsets[u + 1]` is the (capacity) segment of vertex `u`.
    offsets: Vec<u32>,
    /// `lens[u]` live entries at the front of `u`'s segment, kept sorted.
    lens: Vec<u32>,
    /// Concatenated neighbour segments (live prefix + slack per vertex).
    targets: Vec<u32>,
    /// Total number of live entries (`2 m`).
    live: usize,
}

impl CsrAdjacency {
    /// An empty snapshot; call [`CsrAdjacency::rebuild_from`] before use.
    pub fn new() -> Self {
        CsrAdjacency::default()
    }

    /// Builds a snapshot of `g`.
    pub fn build(g: &OwnedGraph) -> Self {
        let mut csr = CsrAdjacency::new();
        csr.rebuild_from(g);
        csr
    }

    /// Re-populates the snapshot from `g`, reusing the existing buffers.
    ///
    /// The rebuild is *packed* (no slack): the first in-place insert per
    /// vertex will regrow with slack, so read-only consumers never pay for
    /// headroom they do not use.
    pub fn rebuild_from(&mut self, g: &OwnedGraph) {
        let _sp = ncg_trace::span(ncg_trace::Phase::CsrRebuild);
        self.populate(g, |_| 0);
    }

    /// Rebuilds from `g` granting every vertex `max(2, deg / 4)` slack slots,
    /// so subsequent patches absorb a constant fraction of the degree in
    /// inserts before the next regrow (amortized `O(1)` regrows per insert).
    fn regrow_from(&mut self, g: &OwnedGraph) {
        self.populate(g, |deg| (deg / 4).max(2));
    }

    fn populate(&mut self, g: &OwnedGraph, slack: impl Fn(usize) -> usize) {
        let n = g.num_nodes();
        self.n = n;
        self.offsets.clear();
        self.lens.clear();
        self.targets.clear();
        self.offsets.reserve(n + 1);
        self.lens.reserve(n);
        self.offsets.push(0);
        self.live = 0;
        for u in 0..n {
            let neighbors = g.neighbors(u);
            for &v in neighbors {
                self.targets.push(v as u32);
            }
            let pad = slack(neighbors.len());
            for _ in 0..pad {
                self.targets.push(u32::MAX);
            }
            self.lens.push(neighbors.len() as u32);
            self.live += neighbors.len();
            self.offsets.push(self.targets.len() as u32);
        }
    }

    /// Maximum number of journal entries worth patching before the plain
    /// rebuild is cheaper: each change edits two `O(deg)` segments, so past a
    /// small fraction of `n` the `O(n + m)` rebuild wins.
    #[inline]
    pub fn patch_limit(&self) -> usize {
        (self.n / 8).max(8)
    }

    /// Brings the snapshot from the state *before* `changes` to the state of
    /// `g` (which must already include them), editing segments in place.
    ///
    /// The caller guarantees the snapshot currently mirrors `g` minus
    /// `changes` (the contract of [`OwnedGraph::changes_since`]). Node-count
    /// mismatches, journals denser than [`CsrAdjacency::patch_limit`] and
    /// exhausted segment slack all degrade gracefully to a rebuild — the
    /// snapshot always ends up equal to `g`.
    pub fn patch_from_journal(&mut self, g: &OwnedGraph, changes: &[EdgeChange]) -> PatchOutcome {
        if g.num_nodes() != self.n || changes.len() > self.patch_limit() {
            self.rebuild_from(g);
            return PatchOutcome::Rebuilt;
        }
        let _sp = ncg_trace::span(ncg_trace::Phase::CsrPatch);
        for change in changes {
            let ok = match *change {
                EdgeChange::Added { u, v } => {
                    self.insert_half(u as u32, v as u32) && self.insert_half(v as u32, u as u32)
                }
                EdgeChange::Removed { u, v } => {
                    self.remove_half(u as u32, v as u32) && self.remove_half(v as u32, u as u32)
                }
            };
            if !ok {
                // Out of slack (or an inconsistent journal): regrow from the
                // target state, which already contains every change — the
                // partially applied prefix is simply absorbed.
                self.regrow_from(g);
                return PatchOutcome::Compacted;
            }
        }
        PatchOutcome::Patched
    }

    /// Inserts `v` into `u`'s sorted live prefix; `false` when the segment has
    /// no slack left (or `v` is unexpectedly present — a journal mismatch).
    fn insert_half(&mut self, u: u32, v: u32) -> bool {
        let lo = self.offsets[u as usize] as usize;
        let len = self.lens[u as usize] as usize;
        let cap = self.offsets[u as usize + 1] as usize - lo;
        if len == cap {
            return false;
        }
        let seg = &mut self.targets[lo..lo + len];
        let pos = match seg.binary_search(&v) {
            Err(pos) => pos,
            Ok(_) => return false,
        };
        self.targets.copy_within(lo + pos..lo + len, lo + pos + 1);
        self.targets[lo + pos] = v;
        self.lens[u as usize] += 1;
        self.live += 1;
        true
    }

    /// Removes `v` from `u`'s sorted live prefix; `false` when absent.
    fn remove_half(&mut self, u: u32, v: u32) -> bool {
        let lo = self.offsets[u as usize] as usize;
        let len = self.lens[u as usize] as usize;
        let seg = &mut self.targets[lo..lo + len];
        let Ok(pos) = seg.binary_search(&v) else {
            return false;
        };
        self.targets.copy_within(lo + pos + 1..lo + len, lo + pos);
        self.lens[u as usize] -= 1;
        self.live -= 1;
        true
    }

    /// Number of vertices in the snapshot.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Total number of stored edge endpoints (`2 m`).
    #[inline]
    pub fn endpoint_count(&self) -> usize {
        self.live
    }

    /// The sorted neighbours of `u` as a contiguous slice.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[u32] {
        let lo = self.offsets[u] as usize;
        let hi = lo + self.lens[u] as usize;
        &self.targets[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn assert_matches(csr: &CsrAdjacency, g: &OwnedGraph, what: &str) {
        assert_eq!(csr.num_nodes(), g.num_nodes(), "{what}: node count");
        assert_eq!(csr.endpoint_count(), g.endpoint_count(), "{what}: 2m");
        for u in 0..g.num_nodes() {
            let expected: Vec<u32> = g.neighbors(u).iter().map(|&v| v as u32).collect();
            assert_eq!(csr.neighbors(u), expected.as_slice(), "{what}: vertex {u}");
        }
    }

    #[test]
    fn snapshot_matches_graph() {
        let g = generators::double_star(3, 4);
        let csr = CsrAdjacency::build(&g);
        assert_matches(&csr, &g, "build");
    }

    #[test]
    fn rebuild_reuses_buffers_and_tracks_mutations() {
        let mut g = generators::path(6);
        let mut csr = CsrAdjacency::build(&g);
        assert_eq!(csr.neighbors(0), &[1]);
        g.add_edge(0, 5);
        csr.rebuild_from(&g);
        assert_eq!(csr.neighbors(0), &[1, 5]);
        assert_eq!(csr.neighbors(5), &[0, 4]);
        // Shrinking graphs are handled too.
        let small = generators::path(2);
        csr.rebuild_from(&small);
        assert_eq!(csr.num_nodes(), 2);
        assert_eq!(csr.neighbors(1), &[0]);
    }

    #[test]
    fn empty_graph_snapshot() {
        let g = OwnedGraph::new(3);
        let csr = CsrAdjacency::build(&g);
        for u in 0..3 {
            assert!(csr.neighbors(u).is_empty());
        }
    }

    #[test]
    fn patch_applies_single_changes_in_place() {
        let mut g = generators::cycle(12);
        let mut csr = CsrAdjacency::build(&g);
        // The packed build has no slack: the first insert-bearing patch
        // regrows once, after which patches are in place.
        let v0 = g.version();
        g.add_edge(0, 6);
        let outcome = csr.patch_from_journal(&g, g.changes_since(v0).unwrap());
        assert_eq!(outcome, PatchOutcome::Compacted);
        assert_matches(&csr, &g, "first insert");
        for step in 0..8 {
            let v = g.version();
            let (a, b) = (step % 12, (step + 5) % 12);
            if g.has_edge(a, b) {
                g.remove_edge(a, b);
            } else {
                g.add_edge(a, b);
            }
            let outcome = csr.patch_from_journal(&g, g.changes_since(v).unwrap());
            assert!(
                outcome.in_place(),
                "step {step}: slack absorbs single-edge changes, got {outcome:?}"
            );
            assert_matches(&csr, &g, "patched step");
        }
    }

    #[test]
    fn dense_journals_fall_back_to_rebuild() {
        let mut g = generators::path(16);
        let mut csr = CsrAdjacency::build(&g);
        let v0 = g.version();
        for i in 0..8 {
            g.add_edge(i, i + 8);
        }
        // 8 changes > patch_limit() = max(8, 16/8) = 8? No: 8 > 8 is false, so
        // force clearly past the limit.
        for i in 0..4 {
            g.add_edge(i, i + 4);
        }
        let changes = g.changes_since(v0).unwrap();
        assert!(changes.len() > csr.patch_limit());
        let outcome = csr.patch_from_journal(&g, changes);
        assert_eq!(outcome, PatchOutcome::Rebuilt);
        assert_matches(&csr, &g, "dense fallback");
    }

    #[test]
    fn node_count_change_falls_back_to_rebuild() {
        let g = generators::path(6);
        let mut csr = CsrAdjacency::build(&g);
        let bigger = generators::path(9);
        let outcome = csr.patch_from_journal(&bigger, &[]);
        assert_eq!(outcome, PatchOutcome::Rebuilt);
        assert_matches(&csr, &bigger, "grown");
        let smaller = generators::path(4);
        let outcome = csr.patch_from_journal(&smaller, &[]);
        assert_eq!(outcome, PatchOutcome::Rebuilt);
        assert_matches(&csr, &smaller, "shrunk");
    }

    #[test]
    fn exhausted_slack_regrows_and_stays_correct() {
        // Keep inserting around one hub: each regrow grants deg/4 slack, so
        // the hub exhausts it repeatedly; every state must still match.
        let mut g = OwnedGraph::new(24);
        for v in 1..4 {
            g.add_edge(0, v);
        }
        let mut csr = CsrAdjacency::build(&g);
        for v in 4..24 {
            let ver = g.version();
            g.add_edge(0, v);
            csr.patch_from_journal(&g, g.changes_since(ver).unwrap());
            assert_matches(&csr, &g, "hub growth");
        }
    }
}
