//! Flat CSR (compressed sparse row) adjacency snapshots.
//!
//! [`OwnedGraph`] stores one `Vec` per vertex, which is convenient for mutation
//! but scatters the adjacency lists across the heap. The distance oracles of
//! [`crate::oracle`] traverse the whole graph thousands of times per dynamics
//! step, so they operate on a [`CsrAdjacency`] snapshot instead: all neighbour
//! lists live in one contiguous `u32` buffer, indexed by a flat offsets array.
//! Rebuilding the snapshot is `O(n + m)` — the cost of a single BFS — and the
//! buffers are reused across rebuilds, so the snapshot never allocates in
//! steady state.

use crate::graph::{NodeId, OwnedGraph};

/// A cache-friendly, read-only adjacency snapshot of an [`OwnedGraph`].
///
/// Vertex ids are stored as `u32` (network creation instances are far below
/// `u32::MAX` agents); `neighbors(u)` is a contiguous, sorted slice.
#[derive(Debug, Clone, Default)]
pub struct CsrAdjacency {
    n: usize,
    /// `offsets[u]..offsets[u + 1]` indexes `targets` for vertex `u`.
    offsets: Vec<u32>,
    /// Concatenated sorted neighbour lists.
    targets: Vec<u32>,
}

impl CsrAdjacency {
    /// An empty snapshot; call [`CsrAdjacency::rebuild_from`] before use.
    pub fn new() -> Self {
        CsrAdjacency::default()
    }

    /// Builds a snapshot of `g`.
    pub fn build(g: &OwnedGraph) -> Self {
        let mut csr = CsrAdjacency::new();
        csr.rebuild_from(g);
        csr
    }

    /// Re-populates the snapshot from `g`, reusing the existing buffers.
    pub fn rebuild_from(&mut self, g: &OwnedGraph) {
        let n = g.num_nodes();
        self.n = n;
        self.offsets.clear();
        self.targets.clear();
        self.offsets.reserve(n + 1);
        self.targets.reserve(g.endpoint_count());
        self.offsets.push(0);
        for u in 0..n {
            for &v in g.neighbors(u) {
                self.targets.push(v as u32);
            }
            self.offsets.push(self.targets.len() as u32);
        }
    }

    /// Number of vertices in the snapshot.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Total number of stored edge endpoints (`2 m`).
    #[inline]
    pub fn endpoint_count(&self) -> usize {
        self.targets.len()
    }

    /// The sorted neighbours of `u` as a contiguous slice.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[u32] {
        let lo = self.offsets[u] as usize;
        let hi = self.offsets[u + 1] as usize;
        &self.targets[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn snapshot_matches_graph() {
        let g = generators::double_star(3, 4);
        let csr = CsrAdjacency::build(&g);
        assert_eq!(csr.num_nodes(), g.num_nodes());
        assert_eq!(csr.endpoint_count(), g.endpoint_count());
        for u in 0..g.num_nodes() {
            let expected: Vec<u32> = g.neighbors(u).iter().map(|&v| v as u32).collect();
            assert_eq!(csr.neighbors(u), expected.as_slice(), "vertex {u}");
        }
    }

    #[test]
    fn rebuild_reuses_buffers_and_tracks_mutations() {
        let mut g = generators::path(6);
        let mut csr = CsrAdjacency::build(&g);
        assert_eq!(csr.neighbors(0), &[1]);
        g.add_edge(0, 5);
        csr.rebuild_from(&g);
        assert_eq!(csr.neighbors(0), &[1, 5]);
        assert_eq!(csr.neighbors(5), &[0, 4]);
        // Shrinking graphs are handled too.
        let small = generators::path(2);
        csr.rebuild_from(&small);
        assert_eq!(csr.num_nodes(), 2);
        assert_eq!(csr.neighbors(1), &[0]);
    }

    #[test]
    fn empty_graph_snapshot() {
        let g = OwnedGraph::new(3);
        let csr = CsrAdjacency::build(&g);
        for u in 0..3 {
            assert!(csr.neighbors(u).is_empty());
        }
    }
}
