//! Zero-overhead-when-off instrumentation for the NCG engine.
//!
//! The crate provides three primitives behind one global runtime switch:
//!
//! * **Spans** ([`span`]): RAII guards that attribute wall-clock time to a
//!   node of a per-thread phase tree. Nesting follows the call stack, so an
//!   oracle span opened inside a dynamics scan lands under the scan node.
//! * **Counters** ([`add`]): flat per-thread event tallies (agents scanned,
//!   improving moves, journal appends, …).
//! * **Histograms** ([`record`]): fixed power-of-two bucket tallies,
//!   mergeable exactly like `StreamingStats` aggregates.
//!
//! When tracing is off — the default — every probe is a single relaxed
//! atomic load and an untaken branch: no clock reads, no thread-local
//! access, no allocation. Probes never feed back into the computation they
//! observe, so trajectories are bit-identical with tracing on or off (the
//! ablation smoke run asserts this in CI).
//!
//! A thread harvests its accumulated profile with [`take_report`], which
//! returns a mergeable [`TraceReport`] and resets the thread's recorder.
//! Reports serialize to JSON by hand (like the repo's `BENCH_*.json`
//! writers) and render as a text flame profile via
//! [`TraceReport::render_flame`].

use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// The stable phase taxonomy shared by every instrumented layer. Labels are
/// part of the JSON schema; extend the enum rather than repurposing a
/// variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// One dynamics trial (sim runner): setup + step loop until convergence.
    Trial,
    /// Trial setup: topology generation and engine construction.
    Setup,
    /// Mover selection: scanning agents for an improving move.
    Scan,
    /// Re-scan iterations of the dirty engine's final confirmation sweep.
    ConfirmSweep,
    /// Choosing the mover's best response and applying it to the graph.
    Apply,
    /// Post-move invalidation and bulk warming of parked vectors.
    Warm,
    /// Per-agent cost refresh feeding the max-cost policy order.
    CostRefresh,
    /// One agent's candidate enumeration + scoring loop (`scan_moves`): move
    /// generation, delta assembly, pruning and comparisons. The oracle's
    /// kernel phases nest beneath it; its self-time is the enumeration
    /// arithmetic proper.
    Enumerate,
    /// `DistanceOracle::begin`: making one source current for a scan.
    OracleBegin,
    /// Bulk pinning of many sources (`pin_sources`, trial-start bulk pin).
    PinSources,
    /// Scalar journal-window replay of one parked vector.
    ScalarReplay,
    /// Word-parallel 64-wide bitset BFS wave (cold pins, long windows).
    BatchWave,
    /// In-place CSR patch from the change journal.
    CsrPatch,
    /// Full CSR rebuild fallback.
    CsrRebuild,
    /// Branchless cache-arithmetic insertion-scoring kernel.
    FusedKernel,
    /// Per-candidate what-if evaluation by incremental repair (or, on the
    /// full-BFS backend, a fresh BFS) of the pinned vector.
    DeltaRepair,
    /// Work on the evaluator's *consent* oracle: counterpart what-if queries
    /// and consent-source pins/warms. Oracle phases nest beneath it, so
    /// consent time is separable from mover time in the profile.
    Consent,
    /// Post-move bulk warming pass over all parked vectors.
    WarmPass,
    /// Demotion of a parked vector to its ball-sparse form (byte budget).
    Demotion,
    /// One (point, chunk) job executed by an orchestrator worker.
    ChunkRun,
    /// Appending one chunk record to the sweep journal.
    JournalAppend,
}

/// All phases, in rendering/serialization order.
pub const PHASES: [Phase; 21] = [
    Phase::Trial,
    Phase::Setup,
    Phase::Scan,
    Phase::ConfirmSweep,
    Phase::Apply,
    Phase::Warm,
    Phase::CostRefresh,
    Phase::Enumerate,
    Phase::OracleBegin,
    Phase::PinSources,
    Phase::ScalarReplay,
    Phase::BatchWave,
    Phase::CsrPatch,
    Phase::CsrRebuild,
    Phase::FusedKernel,
    Phase::DeltaRepair,
    Phase::Consent,
    Phase::WarmPass,
    Phase::Demotion,
    Phase::ChunkRun,
    Phase::JournalAppend,
];

impl Phase {
    /// Stable label used in flame profiles and the JSON schema.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Trial => "trial",
            Phase::Setup => "setup",
            Phase::Scan => "scan",
            Phase::ConfirmSweep => "confirmation-sweep",
            Phase::Apply => "apply",
            Phase::Warm => "warm",
            Phase::CostRefresh => "cost-refresh",
            Phase::Enumerate => "enumerate",
            Phase::OracleBegin => "oracle-begin",
            Phase::PinSources => "pin-sources",
            Phase::ScalarReplay => "scalar-replay",
            Phase::BatchWave => "batch-wave",
            Phase::CsrPatch => "csr-patch",
            Phase::CsrRebuild => "csr-rebuild",
            Phase::FusedKernel => "fused-kernel",
            Phase::DeltaRepair => "delta-repair",
            Phase::Consent => "consent",
            Phase::WarmPass => "warm-pass",
            Phase::Demotion => "demotion",
            Phase::ChunkRun => "chunk-run",
            Phase::JournalAppend => "journal-append",
        }
    }

    /// Whether this phase's *self-time* (time inside the span but outside
    /// every child span) is attributed work rather than unexplained slop.
    ///
    /// Work phases do their job in their own frame — `oracle-begin`'s version
    /// checks, `cost-refresh`'s cost arithmetic, `enumerate`'s move
    /// generation — so the child spans they open are refinements, not a
    /// completeness requirement. Structural phases (`trial`, `scan`,
    /// `apply`, …) exist to group children; their self-time is exactly the
    /// part of the profile the taxonomy failed to explain, which is what
    /// [`TraceReport::leaf_coverage`] measures.
    pub fn self_is_work(&self) -> bool {
        !matches!(
            self,
            Phase::Trial
                | Phase::Scan
                | Phase::ConfirmSweep
                | Phase::Apply
                | Phase::Warm
                | Phase::PinSources
                | Phase::Consent
                | Phase::ChunkRun
        )
    }
}

/// Event counters of the wasted-work and telemetry metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Agents examined for an improving move during mover selection.
    AgentsScanned,
    /// Selections that actually found an improving move (≈ applied steps).
    ImprovingMoves,
    /// Agents re-examined by confirmation-sweep iterations only.
    ConfirmScans,
    /// (point, chunk) jobs claimed from the orchestrator work queue.
    ChunkClaims,
    /// Chunk records appended to the sweep journal.
    JournalAppends,
}

/// All counters, in serialization order.
pub const COUNTERS: [Counter; 5] = [
    Counter::AgentsScanned,
    Counter::ImprovingMoves,
    Counter::ConfirmScans,
    Counter::ChunkClaims,
    Counter::JournalAppends,
];

impl Counter {
    /// Stable label used in the JSON schema.
    pub fn label(&self) -> &'static str {
        match self {
            Counter::AgentsScanned => "agents_scanned",
            Counter::ImprovingMoves => "improving_moves",
            Counter::ConfirmScans => "confirm_scans",
            Counter::ChunkClaims => "chunk_claims",
            Counter::JournalAppends => "journal_appends",
        }
    }
}

/// Number of buckets of a [`Hist`]: bucket `0` holds zeros, bucket `b ≥ 1`
/// holds values in `[2^(b-1), 2^b)`, the last bucket saturates.
pub const HIST_BUCKETS: usize = 16;

/// Registered fixed-bucket histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistId {
    /// Agents examined per mover selection (scan width).
    ScanWidth,
    /// Sources repaired per warm pass (wave width).
    WaveWidth,
}

/// All histograms, in serialization order.
pub const HISTS: [HistId; 2] = [HistId::ScanWidth, HistId::WaveWidth];

impl HistId {
    /// Stable label used in the JSON schema.
    pub fn label(&self) -> &'static str {
        match self {
            HistId::ScanWidth => "scan_width",
            HistId::WaveWidth => "wave_width",
        }
    }
}

/// A fixed power-of-two-bucket histogram; merging is element-wise addition,
/// which makes it associative and commutative like `StreamingStats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Hist {
    /// Bucket tallies (see [`HIST_BUCKETS`] for the value → bucket map).
    pub buckets: [u64; HIST_BUCKETS],
}

impl Hist {
    /// The bucket index of `value`.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Tallies one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Element-wise merge of another histogram into this one.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

// ---------------------------------------------------------------------------
// Global switch
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns tracing on or off globally. Probes installed while off cost one
/// relaxed atomic load each; flipping mid-run only affects spans opened
/// afterwards (an already-open span still records on drop).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether tracing is currently on.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Thread-local recorder
// ---------------------------------------------------------------------------

const NO_PARENT: usize = usize::MAX;

struct Node {
    phase: Phase,
    parent: usize,
    children: Vec<usize>,
    total_ns: u64,
    count: u64,
}

struct Recorder {
    nodes: Vec<Node>,
    stack: Vec<usize>,
    counters: [u64; COUNTERS.len()],
    hists: [Hist; HISTS.len()],
    /// Bumped by [`take_report`] so guards from a previous harvest epoch
    /// cannot write into the reset arena.
    epoch: u64,
}

impl Recorder {
    fn new() -> Self {
        Recorder {
            nodes: Vec::new(),
            stack: Vec::new(),
            counters: [0; COUNTERS.len()],
            hists: [Hist::default(); HISTS.len()],
            epoch: 0,
        }
    }

    fn enter(&mut self, phase: Phase) -> usize {
        let parent = self.stack.last().copied().unwrap_or(NO_PARENT);
        let existing = if parent == NO_PARENT {
            self.nodes
                .iter()
                .position(|n| n.parent == NO_PARENT && n.phase == phase)
        } else {
            self.nodes[parent]
                .children
                .iter()
                .copied()
                .find(|&c| self.nodes[c].phase == phase)
        };
        let idx = existing.unwrap_or_else(|| {
            let idx = self.nodes.len();
            self.nodes.push(Node {
                phase,
                parent,
                children: Vec::new(),
                total_ns: 0,
                count: 0,
            });
            if parent != NO_PARENT {
                self.nodes[parent].children.push(idx);
            }
            idx
        });
        self.stack.push(idx);
        idx
    }

    fn exit(&mut self, idx: usize, epoch: u64, ns: u64) {
        if epoch != self.epoch || idx >= self.nodes.len() {
            return; // guard outlived a take_report harvest
        }
        self.nodes[idx].total_ns += ns;
        self.nodes[idx].count += 1;
        // Well-nested guards make this a single pop; popping until the
        // span's own index keeps the stack consistent even if an inner
        // guard was leaked.
        while let Some(top) = self.stack.pop() {
            if top == idx {
                break;
            }
        }
    }

    fn export(&self, idx: usize) -> PhaseNode {
        let n = &self.nodes[idx];
        PhaseNode {
            phase: n.phase,
            total_ns: n.total_ns,
            count: n.count,
            children: n.children.iter().map(|&c| self.export(c)).collect(),
        }
    }

    fn take(&mut self) -> TraceReport {
        let roots = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].parent == NO_PARENT)
            .map(|i| self.export(i))
            .collect();
        let report = TraceReport {
            roots,
            counters: self.counters,
            hists: self.hists,
        };
        self.nodes.clear();
        self.stack.clear();
        self.counters = [0; COUNTERS.len()];
        self.hists = [Hist::default(); HISTS.len()];
        self.epoch += 1;
        report
    }
}

thread_local! {
    static RECORDER: RefCell<Recorder> = RefCell::new(Recorder::new());
}

/// RAII guard of one span; records elapsed time under its phase node on
/// drop. Dropping during unwind records and pops like a normal exit, so a
/// panicking scan leaves the recorder consistent.
#[must_use = "a span records its time when the guard drops"]
pub struct SpanGuard {
    start: Option<Instant>,
    idx: usize,
    epoch: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            let ns = t0.elapsed().as_nanos() as u64;
            let _ = RECORDER.try_with(|r| r.borrow_mut().exit(self.idx, self.epoch, ns));
        }
    }
}

/// Opens a span under the current thread's innermost open span (or as a
/// root). When tracing is off this is one relaxed load and an inert guard.
#[inline]
pub fn span(phase: Phase) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            start: None,
            idx: 0,
            epoch: 0,
        };
    }
    let (idx, epoch) = RECORDER.with(|r| {
        let mut r = r.borrow_mut();
        (r.enter(phase), r.epoch)
    });
    SpanGuard {
        start: Some(Instant::now()),
        idx,
        epoch,
    }
}

/// Adds `delta` to a counter. A no-op (one relaxed load) when tracing is off.
#[inline]
pub fn add(counter: Counter, delta: u64) {
    if !enabled() {
        return;
    }
    let slot = COUNTERS.iter().position(|c| *c == counter).unwrap_or(0);
    let _ = RECORDER.try_with(|r| r.borrow_mut().counters[slot] += delta);
}

/// Tallies one histogram observation. A no-op when tracing is off.
#[inline]
pub fn record(hist: HistId, value: u64) {
    if !enabled() {
        return;
    }
    let slot = HISTS.iter().position(|h| *h == hist).unwrap_or(0);
    let _ = RECORDER.try_with(|r| r.borrow_mut().hists[slot].record(value));
}

/// Harvests and resets the current thread's recorder. Open spans at harvest
/// time are dropped from the report (their guards become inert).
pub fn take_report() -> TraceReport {
    RECORDER.with(|r| r.borrow_mut().take())
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// One node of an exported phase tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseNode {
    /// The phase this node attributes time to.
    pub phase: Phase,
    /// Total wall-clock nanoseconds spent inside this span (children
    /// included).
    pub total_ns: u64,
    /// Number of times the span was entered.
    pub count: u64,
    /// Nested spans opened while this span was innermost.
    pub children: Vec<PhaseNode>,
}

impl PhaseNode {
    fn merge_from(&mut self, other: &PhaseNode) {
        self.total_ns += other.total_ns;
        self.count += other.count;
        for oc in &other.children {
            match self.children.iter_mut().find(|c| c.phase == oc.phase) {
                Some(c) => c.merge_from(oc),
                None => self.children.push(oc.clone()),
            }
        }
    }

    fn leaf_ns(&self) -> u64 {
        if self.children.is_empty() {
            return self.total_ns;
        }
        let child_total: u64 = self.children.iter().map(|c| c.total_ns).sum();
        let own = if self.phase.self_is_work() {
            self.total_ns.saturating_sub(child_total)
        } else {
            0
        };
        own + self.children.iter().map(PhaseNode::leaf_ns).sum::<u64>()
    }

    fn render(&self, out: &mut String, depth: usize, root_ns: u64) {
        let pct = if root_ns > 0 {
            100.0 * self.total_ns as f64 / root_ns as f64
        } else {
            0.0
        };
        let name = format!("{:indent$}{}", "", self.phase.label(), indent = 2 * depth);
        let _ = writeln!(
            out,
            "{name:<28} {:>10.3} ms {pct:>6.1} %  x{}",
            self.total_ns as f64 / 1e6,
            self.count
        );
        let child_ns: u64 = self.children.iter().map(|c| c.total_ns).sum();
        for c in &self.children {
            c.render(out, depth + 1, root_ns);
        }
        if !self.children.is_empty() && self.total_ns > child_ns {
            let self_ns = self.total_ns - child_ns;
            let spct = if root_ns > 0 {
                100.0 * self_ns as f64 / root_ns as f64
            } else {
                0.0
            };
            let name = format!("{:indent$}(self)", "", indent = 2 * (depth + 1));
            let _ = writeln!(
                out,
                "{name:<28} {:>10.3} ms {spct:>6.1} %",
                self_ns as f64 / 1e6
            );
        }
    }

    fn json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"phase\":\"{}\",\"total_ns\":{},\"count\":{},\"children\":[",
            self.phase.label(),
            self.total_ns,
            self.count
        );
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            c.json(out);
        }
        out.push_str("]}");
    }
}

/// A harvested, mergeable phase profile: phase tree + counters + histograms.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceReport {
    /// Root phase nodes (spans opened with no enclosing span).
    pub roots: Vec<PhaseNode>,
    /// Counter values, indexed like [`COUNTERS`].
    pub counters: [u64; COUNTERS.len()],
    /// Histograms, indexed like [`HISTS`].
    pub hists: [Hist; HISTS.len()],
}

impl TraceReport {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty() && self.counters.iter().all(|&c| c == 0)
    }

    /// Merges another report into this one: matching phase paths add their
    /// times and counts, counters and histograms add element-wise. Merging
    /// is associative, so per-thread or per-chunk reports fold in any
    /// grouping.
    pub fn merge(&mut self, other: &TraceReport) {
        for or in &other.roots {
            match self.roots.iter_mut().find(|r| r.phase == or.phase) {
                Some(r) => r.merge_from(or),
                None => self.roots.push(or.clone()),
            }
        }
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += *b;
        }
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.merge(b);
        }
    }

    /// The value of one counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        let slot = COUNTERS.iter().position(|c| *c == counter).unwrap_or(0);
        self.counters[slot]
    }

    /// One histogram.
    pub fn hist(&self, hist: HistId) -> &Hist {
        let slot = HISTS.iter().position(|h| *h == hist).unwrap_or(0);
        &self.hists[slot]
    }

    /// Total nanoseconds across the root spans.
    pub fn total_ns(&self) -> u64 {
        self.roots.iter().map(|r| r.total_ns).sum()
    }

    /// Fraction of root wall-clock attributed to the finest instrumented
    /// phase: leaf spans count in full, and interior spans of *work* phases
    /// ([`Phase::self_is_work`]) additionally contribute their self-time.
    /// What's left out is exactly the self-time of structural phases (trial,
    /// scan, apply, …) — the share of the profile the taxonomy failed to
    /// explain. `1.0` when nothing was recorded.
    pub fn leaf_coverage(&self) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            return 1.0;
        }
        let leaves: u64 = self.roots.iter().map(PhaseNode::leaf_ns).sum();
        leaves as f64 / total as f64
    }

    /// Agents scanned per improving move — the wasted-work headline metric
    /// (1.0 would mean every scanned agent moved). `None` before any
    /// improving move was observed.
    pub fn wasted_scan_ratio(&self) -> Option<f64> {
        let moves = self.counter(Counter::ImprovingMoves);
        if moves == 0 {
            return None;
        }
        Some(self.counter(Counter::AgentsScanned) as f64 / moves as f64)
    }

    /// Renders the phase tree as an indented text flame profile with
    /// percentages relative to each root span.
    pub fn render_flame(&self) -> String {
        let mut out = String::new();
        for r in &self.roots {
            r.render(&mut out, 0, r.total_ns);
        }
        out
    }

    /// Hand-rolled JSON (the repo's `BENCH_*.json` convention): phase tree,
    /// all counters, all histograms — a stable schema pinned by a golden
    /// test.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"ncg_trace_report\":1,\"phases\":[");
        for (i, r) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            r.json(&mut out);
        }
        out.push_str("],\"counters\":{");
        for (i, c) in COUNTERS.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", c.label(), self.counters[i]);
        }
        out.push_str("},\"hists\":{");
        for (i, h) in HISTS.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":[", h.label());
            for (j, b) in self.hists[i].buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{b}");
            }
            out.push(']');
        }
        out.push_str("}}");
        out
    }
}

/// Always-on wall-clock helper for the bench binaries, so headline timings
/// and span profiles come from one crate (spans stay off on timed reps to
/// keep them undistorted; the stopwatch never touches the recorder).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    t0: Instant,
}

impl Stopwatch {
    /// Starts the stopwatch.
    pub fn start() -> Self {
        Stopwatch { t0: Instant::now() }
    }

    /// Elapsed seconds since start.
    pub fn elapsed_secs(&self) -> f64 {
        self.t0.elapsed().as_secs_f64()
    }

    /// Elapsed nanoseconds since start.
    pub fn elapsed_ns(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes recorder-touching tests: the recorder is thread-local and
    /// `cargo test` may run tests on the same worker thread concurrently
    /// only across threads, but `set_enabled` is process-global.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn with_tracing<T>(f: impl FnOnce() -> T) -> T {
        let _g = LOCK.lock().unwrap();
        let _ = take_report();
        set_enabled(true);
        let out = f();
        set_enabled(false);
        out
    }

    #[test]
    fn off_path_records_nothing() {
        let _g = LOCK.lock().unwrap();
        set_enabled(false);
        let _ = take_report();
        {
            let _s = span(Phase::Scan);
            add(Counter::AgentsScanned, 5);
            record(HistId::ScanWidth, 3);
        }
        assert!(take_report().is_empty());
    }

    #[test]
    fn spans_nest_into_a_tree() {
        let report = with_tracing(|| {
            {
                let _t = span(Phase::Trial);
                {
                    let _s = span(Phase::Scan);
                    let _k = span(Phase::FusedKernel);
                }
                {
                    let _s = span(Phase::Scan);
                }
                let _a = span(Phase::Apply);
            }
            take_report()
        });
        assert_eq!(report.roots.len(), 1);
        let trial = &report.roots[0];
        assert_eq!(trial.phase, Phase::Trial);
        assert_eq!(trial.count, 1);
        assert_eq!(trial.children.len(), 2, "scan entries coalesce");
        let scan = &trial.children[0];
        assert_eq!(scan.phase, Phase::Scan);
        assert_eq!(scan.count, 2);
        assert_eq!(scan.children[0].phase, Phase::FusedKernel);
        assert!(trial.total_ns >= scan.total_ns);
    }

    #[test]
    fn unwind_leaves_the_recorder_consistent() {
        let report = with_tracing(|| {
            let _t = span(Phase::Trial);
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _s = span(Phase::Scan);
                let _k = span(Phase::FusedKernel);
                panic!("scan blew up");
            }));
            assert!(caught.is_err());
            // After the unwind the stack must be back at the trial span:
            // a new span lands under `trial`, not under the dead scan.
            let _a = span(Phase::Apply);
            drop(_a);
            drop(_t);
            take_report()
        });
        let trial = &report.roots[0];
        assert_eq!(trial.children.len(), 2);
        assert_eq!(trial.children[0].phase, Phase::Scan);
        assert_eq!(trial.children[0].count, 1, "unwound span still recorded");
        assert_eq!(trial.children[0].children[0].phase, Phase::FusedKernel);
        assert_eq!(trial.children[1].phase, Phase::Apply);
    }

    #[test]
    fn counters_and_hists_accumulate_and_reset() {
        let report = with_tracing(|| {
            add(Counter::AgentsScanned, 7);
            add(Counter::AgentsScanned, 3);
            add(Counter::ImprovingMoves, 2);
            record(HistId::ScanWidth, 0);
            record(HistId::ScanWidth, 1);
            record(HistId::ScanWidth, 5);
            take_report()
        });
        assert_eq!(report.counter(Counter::AgentsScanned), 10);
        assert_eq!(report.counter(Counter::ImprovingMoves), 2);
        assert_eq!(report.wasted_scan_ratio(), Some(5.0));
        let h = report.hist(HistId::ScanWidth);
        assert_eq!(h.total(), 3);
        assert_eq!(h.buckets[0], 1, "zeros");
        assert_eq!(h.buckets[1], 1, "value 1");
        assert_eq!(h.buckets[3], 1, "value 5 in [4,8)");
        // The harvest reset everything.
        let _g = LOCK.lock().unwrap();
        assert!(take_report().is_empty());
    }

    #[test]
    fn hist_bucket_mapping_is_pinned() {
        assert_eq!(Hist::bucket_of(0), 0);
        assert_eq!(Hist::bucket_of(1), 1);
        assert_eq!(Hist::bucket_of(2), 2);
        assert_eq!(Hist::bucket_of(3), 2);
        assert_eq!(Hist::bucket_of(4), 3);
        assert_eq!(Hist::bucket_of(1 << 14), 15);
        assert_eq!(Hist::bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn hist_merge_is_associative_and_commutative() {
        let mk = |vals: &[u64]| {
            let mut h = Hist::default();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let a = mk(&[0, 1, 2, 900]);
        let b = mk(&[3, 3, 3, 1 << 20]);
        let c = mk(&[7, 64, u64::MAX]);
        // (a ⊕ b) ⊕ c
        let mut ab = a;
        ab.merge(&b);
        let mut ab_c = ab;
        ab_c.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b;
        bc.merge(&c);
        let mut a_bc = a;
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        // b ⊕ a == a ⊕ b
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab_c.total(), a.total() + b.total() + c.total());
    }

    fn fixed_report() -> TraceReport {
        let mut counters = [0u64; COUNTERS.len()];
        counters[0] = 40; // agents_scanned
        counters[1] = 4; // improving_moves
        let mut hists = [Hist::default(); HISTS.len()];
        hists[0].record(10);
        TraceReport {
            roots: vec![PhaseNode {
                phase: Phase::Trial,
                total_ns: 1000,
                count: 1,
                children: vec![
                    PhaseNode {
                        phase: Phase::Scan,
                        total_ns: 700,
                        count: 4,
                        children: vec![PhaseNode {
                            phase: Phase::FusedKernel,
                            total_ns: 650,
                            count: 40,
                            children: Vec::new(),
                        }],
                    },
                    PhaseNode {
                        phase: Phase::Apply,
                        total_ns: 250,
                        count: 4,
                        children: Vec::new(),
                    },
                ],
            }],
            counters,
            hists,
        }
    }

    #[test]
    fn golden_json_schema() {
        let expected = concat!(
            "{\"ncg_trace_report\":1,\"phases\":[",
            "{\"phase\":\"trial\",\"total_ns\":1000,\"count\":1,\"children\":[",
            "{\"phase\":\"scan\",\"total_ns\":700,\"count\":4,\"children\":[",
            "{\"phase\":\"fused-kernel\",\"total_ns\":650,\"count\":40,\"children\":[]}",
            "]},",
            "{\"phase\":\"apply\",\"total_ns\":250,\"count\":4,\"children\":[]}",
            "]}",
            "],\"counters\":{\"agents_scanned\":40,\"improving_moves\":4,",
            "\"confirm_scans\":0,\"chunk_claims\":0,\"journal_appends\":0},",
            "\"hists\":{\"scan_width\":[0,0,0,0,1,0,0,0,0,0,0,0,0,0,0,0],",
            "\"wave_width\":[0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0]}}",
        );
        assert_eq!(fixed_report().to_json(), expected);
    }

    #[test]
    fn report_merge_adds_matching_paths() {
        let mut a = fixed_report();
        let b = fixed_report();
        a.merge(&b);
        assert_eq!(a.roots[0].total_ns, 2000);
        assert_eq!(a.roots[0].children[0].children[0].count, 80);
        assert_eq!(a.counter(Counter::AgentsScanned), 80);
        assert_eq!(a.hist(HistId::ScanWidth).total(), 2);
        // Merging a report with a new root phase appends it.
        let mut c = TraceReport::default();
        c.merge(&fixed_report());
        assert_eq!(c, fixed_report());
    }

    #[test]
    fn leaf_coverage_and_flame_render() {
        let r = fixed_report();
        // Leaves: fused-kernel (650) + apply (250) over trial (1000); the
        // structural scan's self-time (50) and the trial's own slop (50)
        // stay unattributed.
        assert!((r.leaf_coverage() - 0.9).abs() < 1e-12);
        let flame = r.render_flame();
        assert!(flame.contains("trial"));
        assert!(flame.contains("fused-kernel"));
        assert!(flame.contains("(self)"));
        assert!(flame.contains("100.0 %"));
    }

    #[test]
    fn work_phase_self_time_counts_toward_coverage() {
        // enumerate (a work phase, self 40) wrapping fused-kernel (60) under
        // a structural trial (self 0): coverage = (60 + 40) / 100.
        let r = TraceReport {
            roots: vec![PhaseNode {
                phase: Phase::Trial,
                total_ns: 100,
                count: 1,
                children: vec![PhaseNode {
                    phase: Phase::Enumerate,
                    total_ns: 100,
                    count: 5,
                    children: vec![PhaseNode {
                        phase: Phase::FusedKernel,
                        total_ns: 60,
                        count: 50,
                        children: Vec::new(),
                    }],
                }],
            }],
            counters: [0; COUNTERS.len()],
            hists: [Hist::default(); HISTS.len()],
        };
        assert!(Phase::Enumerate.self_is_work());
        assert!(!Phase::Scan.self_is_work());
        assert!((r.leaf_coverage() - 1.0).abs() < 1e-12);
    }
}
