//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this repository has no access to crates.io, so the
//! workspace resolves the `rand` dependency to this minimal in-tree
//! implementation. It covers exactly the API surface the workspace uses:
//!
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`],
//! * [`Rng::gen_range`] on half-open integer ranges, [`Rng::gen_bool`],
//! * [`seq::SliceRandom::shuffle`] and [`seq::SliceRandom::choose`].
//!
//! The generator is a (fixed-increment) SplitMix64 feeding a xoshiro256++
//! state, which is statistically more than adequate for randomized simulations
//! and property tests. It is **not** the upstream `StdRng` stream: seeds
//! produce different (but still deterministic and reproducible) sequences.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be uniformly sampled from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($(($t:ty, $u:ty)),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                // Reinterpreting the same-width wrapping difference as the
                // unsigned partner type yields the span even for signed
                // types; rejection sampling over 64 bits removes the modulo
                // bias.
                let span = u128::from(high.wrapping_sub(low) as $u);
                let zone = u128::from(u64::MAX) + 1;
                let cap = zone - (zone % span);
                loop {
                    let x = u128::from(rng.next_u64());
                    if x < cap {
                        return low.wrapping_add((x % span) as $t);
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(
    (usize, u64),
    (u64, u64),
    (u32, u32),
    (u16, u16),
    (u8, u8),
    (i64, u64),
    (i32, u32)
);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with an empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from the half-open range `low..high`.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Pre-packaged generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the sequence.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item> {
            if self.is_empty() {
                None
            } else {
                let i = rng.gen_range(0..self.len());
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<usize> = (0..20).map(|_| a.gen_range(0..1_000_000)).collect();
        let vc: Vec<usize> = (0..20).map(|_| c.gen_range(0..1_000_000)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
        }
        // Small spans hit every value.
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<usize> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
    }
}
