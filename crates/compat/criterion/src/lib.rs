//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment of this repository has no access to crates.io, so the
//! workspace resolves the `criterion` dependency to this minimal in-tree
//! implementation. It provides the subset of the API the benchmark files use
//! ([`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], the
//! [`criterion_group!`] / [`criterion_main!`] macros) and measures wall-clock
//! time with a simple warm-up + adaptive-batch scheme, printing one line per
//! benchmark:
//!
//! ```text
//! bench group/id ... 12.345 µs/iter (n iters)
//! ```
//!
//! The measurement budget per benchmark is intentionally small so that
//! `cargo bench` terminates quickly; set `CRITERION_SHIM_MS` (milliseconds of
//! measurement per benchmark, default 60) to trade precision for runtime.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn measure_budget() -> Duration {
    let ms = std::env::var("CRITERION_SHIM_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(60);
    Duration::from_millis(ms.max(1))
}

/// Identifier of a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), param),
        }
    }

    /// An id consisting of a parameter only.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handed to every benchmark closure.
pub struct Bencher {
    total: Duration,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            total: Duration::ZERO,
            iters: 0,
            budget,
        }
    }

    /// Runs `f` repeatedly, accumulating wall-clock time over the measurement
    /// budget. The return value is passed through [`black_box`] so the
    /// computation is not optimised away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up round, also an estimate of the per-iteration cost.
        let warm = Instant::now();
        black_box(f());
        let per_iter = warm.elapsed().max(Duration::from_nanos(50));

        let mut batch = (self.budget.as_nanos() / 20 / per_iter.as_nanos().max(1)).clamp(1, 10_000);
        let deadline = Instant::now() + self.budget;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.total += start.elapsed();
            self.iters += batch as u64;
            if Instant::now() >= deadline {
                break;
            }
            batch = (batch * 2).min(10_000);
        }
    }
}

fn report(label: &str, b: &Bencher) {
    let per_iter = if b.iters == 0 {
        Duration::ZERO
    } else {
        b.total / (b.iters as u32).max(1)
    };
    let nanos = per_iter.as_nanos();
    let pretty = if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    };
    println!("bench {label} ... {pretty}/iter ({} iters)", b.iters);
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes batches by wall-clock
    /// budget instead of sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(measure_budget());
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(measure_budget());
        f(&mut b, input);
        report(&format!("{}/{id}", self.name), &b);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(measure_budget());
        f(&mut b);
        report(&id.to_string(), &b);
        self
    }
}

/// Declares a function running the listed benchmarks with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` invoking the listed [`criterion_group!`] functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        std::env::set_var("CRITERION_SHIM_MS", "5");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        let mut runs = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("bfs", 100).to_string(), "bfs/100");
        assert_eq!(BenchmarkId::from_parameter("n20").to_string(), "n20");
    }
}
