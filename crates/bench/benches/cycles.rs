//! Benchmarks of the theory artefacts: verifying the paper's best-response cycles
//! (Thm 3.7 / Thm 4.1) and exploring the Cor. 4.2 host-graph state spaces.

use criterion::{criterion_group, criterion_main, Criterion};
use ncg_instances::{fig05, fig09, fig10, hosts};
use std::hint::black_box;

fn bench_cycle_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("cycle_verification");
    group.bench_function("fig05_sum_asg_budget1", |b| {
        let inst = fig05::cycle();
        b.iter(|| black_box(inst.verify().unwrap()))
    });
    group.bench_function("fig09_sum_gbg", |b| {
        let inst = fig09::greedy_buy_game_cycle();
        b.iter(|| black_box(inst.verify().unwrap()))
    });
    group.bench_function("fig09_sum_bg_exhaustive", |b| {
        let inst = fig09::buy_game_cycle();
        b.iter(|| black_box(inst.verify().unwrap()))
    });
    group.bench_function("fig10_max_gbg", |b| {
        let inst = fig10::greedy_buy_game_cycle();
        b.iter(|| black_box(inst.verify().unwrap()))
    });
    group.finish();
}

fn bench_host_exploration(c: &mut Criterion) {
    let mut group = c.benchmark_group("host_state_space_exploration");
    group.sample_size(10);
    group.bench_function("cor42_sum_host", |b| {
        b.iter(|| black_box(hosts::explore_sum_host(20_000)))
    });
    group.bench_function("cor42_max_host", |b| {
        b.iter(|| black_box(hosts::explore_max_host(20_000)))
    });
    group.finish();
}

criterion_group!(benches, bench_cycle_verification, bench_host_exploration);
criterion_main!(benches);
