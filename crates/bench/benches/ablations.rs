//! Ablation benchmarks for the design choices called out in DESIGN.md §4:
//! single-source scoring vs. all-pairs re-computation, early-exit unhappiness
//! scanning vs. full best-response computation, cycle detection on vs. off, and
//! parallel vs. sequential trial execution.

use criterion::{criterion_group, criterion_main, Criterion};
use ncg_core::dynamics::{run_dynamics, DynamicsConfig};
use ncg_core::policy::Policy;
use ncg_core::{Game, GreedyBuyGame, Workspace};
use ncg_graph::{generators, DistanceMatrix};
use ncg_sim::{run_point, AlphaSpec, EngineSpec, ExperimentPoint, GameFamily, InitialTopology};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Single-source scoring (what the library does) vs. recomputing all-pairs
/// distances per candidate (the naive alternative).
fn ablation_bfs_vs_all_pairs(c: &mut Criterion) {
    let n = 50;
    let mut rng = StdRng::seed_from_u64(2);
    let g = generators::random_with_m_edges(n, 2 * n, &mut rng);
    let game = GreedyBuyGame::sum(n as f64 / 4.0);
    let mut group = c.benchmark_group("ablation_candidate_scoring");
    group.bench_function("single_source_best_response", |b| {
        let mut ws = Workspace::new(n);
        b.iter(|| black_box(game.best_response(&g, 0, &mut ws)))
    });
    group.bench_function("all_pairs_recompute_per_candidate", |b| {
        let mut moves = Vec::new();
        game.candidate_moves(&g, 0, &mut moves);
        b.iter(|| {
            let mut best = f64::INFINITY;
            for mv in &moves {
                let mut h = g.clone();
                if ncg_core::apply_move(&mut h, 0, mv).is_some() {
                    let m = DistanceMatrix::compute(&h);
                    let cost = m.sum_distance(0).map_or(f64::INFINITY, |s| s as f64)
                        + game.alpha() * h.owned_degree(0) as f64;
                    best = best.min(cost);
                }
            }
            black_box(best)
        })
    });
    group.finish();
}

/// Early-exit unhappiness scan vs. computing the full best response per agent.
fn ablation_policy_scan(c: &mut Criterion) {
    let n = 60;
    let mut rng = StdRng::seed_from_u64(4);
    let g = generators::random_with_m_edges(n, 2 * n, &mut rng);
    let game = GreedyBuyGame::sum(n as f64 / 4.0);
    let mut group = c.benchmark_group("ablation_unhappiness_scan");
    group.bench_function("early_exit_scan", |b| {
        let mut ws = Workspace::new(n);
        b.iter(|| {
            let count = (0..n)
                .filter(|&u| game.has_improving_move(&g, u, &mut ws))
                .count();
            black_box(count)
        })
    });
    group.bench_function("full_best_response_scan", |b| {
        let mut ws = Workspace::new(n);
        b.iter(|| {
            let count = (0..n)
                .filter(|&u| game.best_response(&g, u, &mut ws).is_some())
                .count();
            black_box(count)
        })
    });
    group.finish();
}

/// Cost of exact cycle detection (state hashing) along a converging run.
fn ablation_cycle_detection(c: &mut Criterion) {
    let n = 30;
    let mut group = c.benchmark_group("ablation_cycle_detection");
    group.sample_size(10);
    for detect in [false, true] {
        let label = if detect {
            "with_state_hashing"
        } else {
            "without"
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(11);
                let g = generators::random_with_m_edges(n, 2 * n, &mut rng);
                let game = GreedyBuyGame::sum(n as f64 / 4.0);
                let mut cfg = DynamicsConfig::simulation(400 * n).with_policy(Policy::MaxCost);
                cfg.detect_cycles = detect;
                black_box(run_dynamics(&game, &g, &cfg, &mut rng).steps)
            })
        });
    }
    group.finish();
}

/// Parallel (crossbeam) vs. sequential trial execution of an experiment point.
fn ablation_parallel_runner(c: &mut Criterion) {
    let point = ExperimentPoint {
        n: 25,
        family: GameFamily::GbgSum,
        alpha: AlphaSpec::FractionOfN(0.25),
        topology: InitialTopology::RandomEdges { m_per_n: 2 },
        policy: Policy::MaxCost,
        trials: 16,
        base_seed: 5,
        max_steps_factor: 400,
        engine: EngineSpec::default(),
    };
    let mut group = c.benchmark_group("ablation_parallel_runner");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(run_point(&point, Some(1))))
    });
    group.bench_function("parallel_all_cpus", |b| {
        b.iter(|| black_box(run_point(&point, None)))
    });
    group.finish();
}

criterion_group!(
    benches,
    ablation_bfs_vs_all_pairs,
    ablation_policy_scan,
    ablation_cycle_detection,
    ablation_parallel_runner
);
criterion_main!(benches);
