//! Micro-benchmarks of the graph substrate operations that dominate the dynamics
//! inner loop: BFS, distance summaries, canonical state keys and generators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncg_graph::{canonical_state_key, generators, BfsBuffer, DistanceMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs_summary");
    for &n in &[20usize, 50, 100] {
        let mut rng = StdRng::seed_from_u64(7);
        let g = generators::random_with_m_edges(n, 2 * n, &mut rng);
        let mut buf = BfsBuffer::new(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| black_box(buf.summary(g, 0)))
        });
    }
    group.finish();
}

fn bench_all_pairs(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_pairs_distances");
    for &n in &[20usize, 50, 100] {
        let mut rng = StdRng::seed_from_u64(7);
        let g = generators::random_with_m_edges(n, 2 * n, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| black_box(DistanceMatrix::compute(g)))
        });
    }
    group.finish();
}

fn bench_canonical_key(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let g = generators::random_with_m_edges(100, 400, &mut rng);
    c.bench_function("canonical_state_key_n100_m400", |b| {
        b.iter(|| black_box(canonical_state_key(&g)))
    });
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.bench_function("budgeted_random_n100_k3", |b| {
        let mut rng = StdRng::seed_from_u64(11);
        b.iter(|| black_box(generators::budgeted_random(100, 3, &mut rng)))
    });
    group.bench_function("random_with_m_edges_n100_m400", |b| {
        let mut rng = StdRng::seed_from_u64(11);
        b.iter(|| black_box(generators::random_with_m_edges(100, 400, &mut rng)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bfs,
    bench_all_pairs,
    bench_canonical_key,
    bench_generators
);
criterion_main!(benches);
