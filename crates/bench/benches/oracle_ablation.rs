//! Ablation of the pluggable cost-evaluation engine: full-BFS re-evaluation
//! vs. the incremental distance oracle vs. the cross-step persistent oracle,
//! with and without dirty-agent tracking, on the swap-game dynamics hot path
//! (plus the GBG for the buy-move mix and the Buy-Game `SetOwned`
//! enumeration for the whole-strategy delta path).
//!
//! The `oracle_ablation` *binary* prints the same comparison as a speedup
//! table over an `n` sweep; this bench integrates it into `cargo bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncg_bench::ConsentForced;
use ncg_core::{AsymSwapGame, BuyGame, Game, GreedyBuyGame, OracleKind, Workspace};
use ncg_graph::generators;
use ncg_sim::{
    run_trial_with_game, AlphaSpec, EngineSpec, ExperimentPoint, GameFamily, InitialTopology,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const BACKENDS: [OracleKind; 3] = [
    OracleKind::FullBfs,
    OracleKind::Incremental,
    OracleKind::Persistent,
];

/// One best-response scan of a single agent — the innermost hot operation.
fn bench_best_response_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_best_response");
    for &n in &[64usize, 128, 256] {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::budgeted_random(n, 2, &mut rng);
        let asg = AsymSwapGame::sum();
        for kind in BACKENDS {
            let mut ws = Workspace::with_oracle(n, kind);
            group.bench_with_input(
                BenchmarkId::new(format!("ASG_{}", kind.label()), n),
                &g,
                |b, g| b.iter(|| black_box(asg.best_response(g, 0, &mut ws))),
            );
        }
        let h = generators::random_with_m_edges(n, 2 * n, &mut rng);
        let gbg = GreedyBuyGame::sum(n as f64 / 4.0);
        for kind in BACKENDS {
            let mut ws = Workspace::with_oracle(n, kind);
            group.bench_with_input(
                BenchmarkId::new(format!("GBG_{}", kind.label()), n),
                &h,
                |b, h| b.iter(|| black_box(gbg.best_response(h, 0, &mut ws))),
            );
        }
    }
    group.finish();
}

/// Buy-Game `SetOwned` enumeration: Gray-code delta scoring vs. the
/// historical apply → BFS → undo cycle.
fn bench_buy_game_set_owned(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_setowned");
    group.sample_size(10);
    for &n in &[10usize, 13] {
        let mut rng = StdRng::seed_from_u64(7);
        let g = generators::random_with_m_edges(n, n + n / 2, &mut rng);
        let alpha = n as f64 / 4.0;
        let delta_game = BuyGame::sum(alpha);
        let fallback_game = ConsentForced(BuyGame::sum(alpha));
        let mut ws = Workspace::with_oracle(n, OracleKind::Incremental);
        group.bench_with_input(BenchmarkId::new("delta", n), &g, |b, g| {
            b.iter(|| {
                let mut found = 0usize;
                for u in 0..n {
                    found += usize::from(delta_game.best_response(g, u, &mut ws).is_some());
                }
                black_box(found)
            })
        });
        group.bench_with_input(BenchmarkId::new("apply_undo", n), &g, |b, g| {
            b.iter(|| {
                let mut found = 0usize;
                for u in 0..n {
                    found += usize::from(fallback_game.best_response(g, u, &mut ws).is_some());
                }
                black_box(found)
            })
        });
    }
    group.finish();
}

fn engine_point(n: usize, engine: EngineSpec) -> ExperimentPoint {
    ExperimentPoint {
        n,
        family: GameFamily::AsgSum,
        alpha: AlphaSpec::Fixed(0.0),
        topology: InitialTopology::Budgeted { k: 2 },
        policy: ncg_core::policy::Policy::MaxCost,
        trials: 1,
        base_seed: 42,
        max_steps_factor: 400,
        engine,
    }
}

/// A full swap-game dynamics run per engine — the end-to-end hot path.
fn bench_swap_dynamics_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_swap_dynamics");
    group.sample_size(10);
    for &n in &[128usize, 256] {
        for engine in [
            EngineSpec::baseline(),
            EngineSpec::default(),
            EngineSpec::persistent(),
            EngineSpec::fast(),
            EngineSpec::fastest(),
        ] {
            let point = engine_point(n, engine);
            let game = point.make_game();
            let id = format!("n{n}_{}", engine.label());
            group.bench_with_input(BenchmarkId::from_parameter(id), &point, |b, point| {
                b.iter(|| {
                    let r = run_trial_with_game(point, game.as_ref(), 0);
                    assert!(r.converged);
                    black_box(r.steps)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_best_response_backends,
    bench_buy_game_set_owned,
    bench_swap_dynamics_engines
);
criterion_main!(benches);
