//! Ablation of the pluggable cost-evaluation engine: full-BFS re-evaluation
//! vs. the incremental distance oracle, with and without dirty-agent tracking,
//! on the swap-game dynamics hot path (plus the GBG for the buy-move mix).
//!
//! The `oracle_ablation` *binary* prints the same comparison as a speedup
//! table over an `n` sweep; this bench integrates it into `cargo bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncg_core::{AsymSwapGame, Game, GreedyBuyGame, OracleKind, Workspace};
use ncg_graph::generators;
use ncg_sim::{
    run_trial_with_game, AlphaSpec, EngineSpec, ExperimentPoint, GameFamily, InitialTopology,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// One best-response scan of a single agent — the innermost hot operation.
fn bench_best_response_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_best_response");
    for &n in &[64usize, 128, 256] {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::budgeted_random(n, 2, &mut rng);
        let asg = AsymSwapGame::sum();
        for kind in [OracleKind::FullBfs, OracleKind::Incremental] {
            let mut ws = Workspace::with_oracle(n, kind);
            group.bench_with_input(
                BenchmarkId::new(format!("ASG_{}", kind.label()), n),
                &g,
                |b, g| b.iter(|| black_box(asg.best_response(g, 0, &mut ws))),
            );
        }
        let h = generators::random_with_m_edges(n, 2 * n, &mut rng);
        let gbg = GreedyBuyGame::sum(n as f64 / 4.0);
        for kind in [OracleKind::FullBfs, OracleKind::Incremental] {
            let mut ws = Workspace::with_oracle(n, kind);
            group.bench_with_input(
                BenchmarkId::new(format!("GBG_{}", kind.label()), n),
                &h,
                |b, h| b.iter(|| black_box(gbg.best_response(h, 0, &mut ws))),
            );
        }
    }
    group.finish();
}

fn engine_point(n: usize, engine: EngineSpec) -> ExperimentPoint {
    ExperimentPoint {
        n,
        family: GameFamily::AsgSum,
        alpha: AlphaSpec::Fixed(0.0),
        topology: InitialTopology::Budgeted { k: 2 },
        policy: ncg_core::policy::Policy::MaxCost,
        trials: 1,
        base_seed: 42,
        max_steps_factor: 400,
        engine,
    }
}

/// A full swap-game dynamics run per engine — the end-to-end hot path.
fn bench_swap_dynamics_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_swap_dynamics");
    group.sample_size(10);
    for &n in &[128usize, 256] {
        for engine in [
            EngineSpec::baseline(),
            EngineSpec::default(),
            EngineSpec::fast(),
        ] {
            let point = engine_point(n, engine);
            let game = point.make_game();
            let id = format!("n{n}_{}", engine.label());
            group.bench_with_input(BenchmarkId::from_parameter(id), &point, |b, point| {
                b.iter(|| {
                    let r = run_trial_with_game(point, game.as_ref(), 0);
                    assert!(r.converged);
                    black_box(r.steps)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_best_response_backends,
    bench_swap_dynamics_engines
);
criterion_main!(benches);
