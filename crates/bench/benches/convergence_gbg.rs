//! Convergence benchmarks of the Greedy Buy Game — the Criterion counterpart of
//! Fig. 11 / Fig. 13 (density and α sweeps) and Fig. 12 / Fig. 14 (starting
//! topologies).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncg_core::policy::Policy;
use ncg_sim::{run_trial, AlphaSpec, EngineSpec, ExperimentPoint, GameFamily, InitialTopology};
use std::hint::black_box;

fn point(
    family: GameFamily,
    n: usize,
    topology: InitialTopology,
    alpha: AlphaSpec,
    policy: Policy,
) -> ExperimentPoint {
    ExperimentPoint {
        n,
        family,
        alpha,
        topology,
        policy,
        trials: 1,
        base_seed: 7,
        max_steps_factor: 400,
        engine: EngineSpec::default(),
    }
}

fn bench_fig11_fig13_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_fig13_gbg_convergence");
    group.sample_size(10);
    for family in [GameFamily::GbgSum, GameFamily::GbgMax] {
        for &m in &[1usize, 4] {
            for alpha in [AlphaSpec::FractionOfN(0.1), AlphaSpec::FractionOfN(1.0)] {
                let n = 30;
                let p = point(
                    family,
                    n,
                    InitialTopology::RandomEdges { m_per_n: m },
                    alpha,
                    Policy::MaxCost,
                );
                let id = format!(
                    "{}_n{n}_m{m}n_a{}",
                    family.label(),
                    alpha.label().replace('/', "_")
                );
                group.bench_with_input(BenchmarkId::from_parameter(id), &p, |b, p| {
                    b.iter(|| {
                        let r = run_trial(p, 0);
                        assert!(r.converged);
                        black_box(r.steps)
                    })
                });
            }
        }
    }
    group.finish();
}

fn bench_fig12_fig14_topologies(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_fig14_topology_convergence");
    group.sample_size(10);
    for family in [GameFamily::GbgSum, GameFamily::GbgMax] {
        for topology in [
            InitialTopology::RandomEdges { m_per_n: 1 },
            InitialTopology::RandomLine,
            InitialTopology::DirectedLine,
        ] {
            let n = 30;
            let p = point(
                family,
                n,
                topology,
                AlphaSpec::FractionOfN(0.25),
                Policy::MaxCost,
            );
            let id = format!("{}_n{n}_{}", family.label(), topology.label());
            group.bench_with_input(BenchmarkId::from_parameter(id), &p, |b, p| {
                b.iter(|| {
                    let r = run_trial(p, 0);
                    assert!(r.converged);
                    black_box(r.steps)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fig11_fig13_density,
    bench_fig12_fig14_topologies
);
criterion_main!(benches);
