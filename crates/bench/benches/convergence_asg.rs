//! Convergence benchmarks of the bounded-budget Asymmetric Swap Game — the
//! Criterion counterpart of Fig. 7 (SUM) and Fig. 8 (MAX).
//!
//! Every benchmark measures a full dynamics run (initial-network generation plus
//! best-response moves until stability) for one `(n, k, policy)` configuration.
//! The measured quantity is wall-clock time; the printed trial summaries of
//! `cargo run -p ncg-bench --bin fig07_asg_sum` report the step counts that the
//! paper actually plots.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncg_core::policy::Policy;
use ncg_sim::{run_trial, AlphaSpec, EngineSpec, ExperimentPoint, GameFamily, InitialTopology};
use std::hint::black_box;

fn point(family: GameFamily, n: usize, k: usize, policy: Policy) -> ExperimentPoint {
    ExperimentPoint {
        n,
        family,
        alpha: AlphaSpec::Fixed(0.0),
        topology: InitialTopology::Budgeted { k },
        policy,
        trials: 1,
        base_seed: 42,
        max_steps_factor: 400,
        engine: EngineSpec::default(),
    }
}

fn bench_fig07_sum_asg(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig07_sum_asg_convergence");
    group.sample_size(10);
    for &n in &[20usize, 40] {
        for &k in &[1usize, 2, 4] {
            for policy in [Policy::MaxCost, Policy::Random] {
                let p = point(GameFamily::AsgSum, n, k, policy);
                let id = format!("n{n}_k{k}_{}", policy.label().replace(' ', "_"));
                group.bench_with_input(BenchmarkId::from_parameter(id), &p, |b, p| {
                    b.iter(|| {
                        let r = run_trial(p, 0);
                        assert!(r.converged);
                        black_box(r.steps)
                    })
                });
            }
        }
    }
    group.finish();
}

fn bench_fig08_max_asg(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig08_max_asg_convergence");
    group.sample_size(10);
    for &n in &[20usize, 40] {
        for &k in &[1usize, 2, 4] {
            let p = point(GameFamily::AsgMax, n, k, Policy::MaxCost);
            let id = format!("n{n}_k{k}_max_cost");
            group.bench_with_input(BenchmarkId::from_parameter(id), &p, |b, p| {
                b.iter(|| {
                    let r = run_trial(p, 0);
                    assert!(r.converged);
                    black_box(r.steps)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig07_sum_asg, bench_fig08_max_asg);
criterion_main!(benches);
