//! Benchmarks of best-response computation for every game family — the single
//! hottest operation of the empirical study (§3.4.1 notes that a best possible
//! edge-swap is computed by checking all candidate swaps; §4.2.1 likewise for the
//! Greedy Buy Game).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncg_core::{AsymSwapGame, BilateralBuyGame, BuyGame, Game, GreedyBuyGame, SwapGame, Workspace};
use ncg_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_swap_games(c: &mut Criterion) {
    let mut group = c.benchmark_group("best_response_swap_games");
    for &n in &[20usize, 50, 100] {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::budgeted_random(n, 2, &mut rng);
        let mut ws = Workspace::new(n);
        let sg = SwapGame::sum();
        let asg = AsymSwapGame::max();
        group.bench_with_input(BenchmarkId::new("SUM-SG", n), &g, |b, g| {
            b.iter(|| black_box(sg.best_response(g, 0, &mut ws)))
        });
        group.bench_with_input(BenchmarkId::new("MAX-ASG", n), &g, |b, g| {
            b.iter(|| black_box(asg.best_response(g, 0, &mut ws)))
        });
    }
    group.finish();
}

fn bench_buy_games(c: &mut Criterion) {
    let mut group = c.benchmark_group("best_response_buy_games");
    for &n in &[20usize, 50, 100] {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::random_with_m_edges(n, 2 * n, &mut rng);
        let mut ws = Workspace::new(n);
        let gbg = GreedyBuyGame::sum(n as f64 / 4.0);
        group.bench_with_input(BenchmarkId::new("SUM-GBG", n), &g, |b, g| {
            b.iter(|| black_box(gbg.best_response(g, 0, &mut ws)))
        });
    }
    // The exhaustive Buy Game and bilateral best responses only run on small
    // instances (the paper's constructions); benchmark them at that scale.
    let g = ncg_instances::fig09::initial();
    let mut ws = Workspace::new(g.num_nodes());
    let bg = BuyGame::sum(7.5);
    group.bench_function("SUM-BG_fig9_n7", |b| {
        b.iter(|| black_box(bg.best_response(&g, 6, &mut ws)))
    });
    let star = generators::star(9);
    let bil = BilateralBuyGame::sum(2.0);
    let mut ws9 = Workspace::new(9);
    group.bench_function("SUM-bilateral_star_n9", |b| {
        b.iter(|| black_box(bil.best_response(&star, 1, &mut ws9)))
    });
    group.finish();
}

fn bench_unhappiness_scan(c: &mut Criterion) {
    // Cost of deciding whether an agent is unhappy (early-exit scan), which the
    // move policies perform for many agents per step.
    let mut group = c.benchmark_group("has_improving_move");
    for &n in &[50usize, 100] {
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::random_with_m_edges(n, 4 * n, &mut rng);
        let game = GreedyBuyGame::max(n as f64 / 4.0);
        let mut ws = Workspace::new(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let mut any = false;
                for u in 0..g.num_nodes() {
                    any |= game.has_improving_move(g, u, &mut ws);
                }
                black_box(any)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_swap_games,
    bench_buy_games,
    bench_unhappiness_scan
);
criterion_main!(benches);
