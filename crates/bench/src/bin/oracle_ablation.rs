//! Ablation report: full-BFS re-evaluation vs. the incremental distance
//! oracle vs. the cross-step **persistent** oracle (each with and without
//! dirty-agent tracking) on the swap-game and greedy-buy-game dynamics hot
//! paths, plus a Buy-Game `SetOwned` series comparing whole-strategy delta
//! scoring against the historical apply → BFS → undo cycle, plus a
//! **ball-sparse parking** series running the same seeded trial under parked
//! byte budgets (dense / 128 MiB default / an eighth of the dense envelope)
//! and asserting bit-identical trajectories with a high-water mark strictly
//! below the dense-u16 `n · (2n+2) · 2` envelope.
//!
//! ```text
//! cargo run -p ncg-bench --release --bin oracle_ablation -- max_n=512 trials=5
//! cargo run -p ncg-bench --release --bin oracle_ablation -- smoke=1
//! cargo run -p ncg-bench --release --bin oracle_ablation -- json=BENCH_oracle.json
//! ```
//!
//! Prints, per `(family, n)`, the wall-clock per engine together with the
//! speedup of the persistent engine over the per-scan re-pinning incremental
//! engine and of the fastest engine (persistent + dirty) over the full-BFS
//! baseline. `smoke=1` shrinks everything for CI; `json=PATH` additionally
//! writes the measurements as a JSON snapshot.

use ncg_bench::ConsentForced;
use ncg_core::policy::Policy;
use ncg_core::{BilateralBuyGame, BuyGame, Game, OracleKind, Workspace};
use ncg_graph::generators;
use ncg_graph::oracle::OracleStats;
use ncg_sim::{
    run_trial_with_game_probed, AlphaSpec, EngineSpec, ExperimentPoint, GameFamily, InitialTopology,
};
use ncg_trace as trace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

struct Scale {
    max_n: usize,
    /// Largest `n` the slow engines (full BFS and the per-scan re-pinning
    /// incremental pair) still run at; beyond it only the persistent engines
    /// are measured, which is what lets the sweep reach n = 1024 on one core.
    full_max_n: usize,
    /// Largest `n` the *eager* persistent engine still runs at; beyond it
    /// only `persistent+dirty` is measured — the eager engine rescans all
    /// agents per step and falls behind by an order of magnitude at
    /// n ≥ 2048, while the dirty engine carries the sweep to n = 4096.
    pers_max_n: usize,
    /// Largest `n` of the ball-sparse parking series (its headline cell is
    /// n = 8192, past the dense layout's memory envelope).
    sparse_max_n: usize,
    trials: usize,
    smoke: bool,
    /// `trace=1`: keep the global trace switch on for the whole run — the CI
    /// smoke mode that exercises every instrumented code path and the
    /// tracing-on ≡ tracing-off trajectory assertion.
    trace: bool,
    json: Option<String>,
}

fn parse_scale() -> Scale {
    let mut scale = Scale {
        max_n: 256,
        full_max_n: 256,
        pers_max_n: 1024,
        sparse_max_n: 8192,
        trials: 3,
        smoke: false,
        trace: false,
        json: None,
    };
    for arg in std::env::args().skip(1) {
        let Some((key, value)) = arg.split_once('=') else {
            continue;
        };
        match key {
            "max_n" => scale.max_n = value.parse().unwrap_or(scale.max_n),
            "full_max_n" => scale.full_max_n = value.parse().unwrap_or(scale.full_max_n),
            "pers_max_n" => scale.pers_max_n = value.parse().unwrap_or(scale.pers_max_n),
            "sparse_max_n" => scale.sparse_max_n = value.parse().unwrap_or(scale.sparse_max_n),
            "trials" => scale.trials = value.parse().unwrap_or(scale.trials),
            "smoke" => scale.smoke = value == "1" || value == "true",
            "trace" => scale.trace = value == "1" || value == "true",
            "json" => scale.json = Some(value.to_string()),
            _ => eprintln!("ignoring unknown argument {key}={value}"),
        }
    }
    if scale.smoke {
        scale.max_n = scale.max_n.min(64);
        scale.trials = 1;
    }
    scale.pers_max_n = scale.pers_max_n.max(scale.full_max_n);
    scale
}

fn point(family: GameFamily, n: usize, engine: EngineSpec, trials: usize) -> ExperimentPoint {
    let topology = match family {
        GameFamily::AsgSum | GameFamily::AsgMax => InitialTopology::Budgeted { k: 2 },
        GameFamily::GbgSum
        | GameFamily::GbgMax
        | GameFamily::BilateralSum
        | GameFamily::BilateralMax
        | GameFamily::BuySum
        | GameFamily::BuyMax => InitialTopology::RandomEdges { m_per_n: 2 },
    };
    ExperimentPoint {
        n,
        family,
        alpha: AlphaSpec::FractionOfN(0.25),
        topology,
        policy: Policy::MaxCost,
        trials,
        base_seed: 42,
        max_steps_factor: 400,
        engine,
    }
}

/// Wall-clock seconds, step total and summed oracle counters of `trials`
/// converged runs of `point`. With `repeats > 1` the whole trial block is
/// run that many times and the fastest wall-clock is reported (steps and
/// counters are identical across repeats — trials are seed-deterministic) —
/// the usual min-based defence against one-off scheduler noise on the cells
/// whose ratios the snapshot's headline claims rest on.
fn measure(point: &ExperimentPoint, repeats: usize) -> (f64, usize, OracleStats) {
    let game = point.make_game();
    let mut best = f64::INFINITY;
    let mut steps = 0usize;
    let mut stats = OracleStats::default();
    for rep in 0..repeats.max(1) {
        let watch = trace::Stopwatch::start();
        let mut rep_steps = 0usize;
        let mut rep_stats = OracleStats::default();
        for t in 0..point.trials {
            let (r, s) = run_trial_with_game_probed(point, game.as_ref(), t);
            assert!(r.converged, "{} n={} must converge", point.label(), point.n);
            rep_steps += r.steps;
            rep_stats.merge(&s);
        }
        best = best.min(watch.elapsed_secs());
        if rep == 0 {
            steps = rep_steps;
            stats = rep_stats;
        } else {
            assert_eq!(
                rep_steps,
                steps,
                "{}: trials are deterministic",
                point.label()
            );
        }
    }
    (best, steps, stats)
}

/// Measures the `persistent` / `persistent+dirty` pair with their repeat
/// blocks *interleaved* (p, pd, p, pd, …), taking the fastest block of each.
/// The snapshot's headline claim is the *ratio* of exactly these two cells,
/// and adjacent-in-time blocks cancel the slow drift a one-core box shows
/// over a multi-minute sweep far better than measuring the two engines
/// minutes apart.
type Cell = (f64, usize, OracleStats);
fn measure_pair(p2: &ExperimentPoint, p4: &ExperimentPoint, repeats: usize) -> (Cell, Cell) {
    let mut r2 = measure(p2, 1);
    let mut r4 = measure(p4, 1);
    for rep in 1..repeats.max(1) {
        // Alternate which engine runs first within a rep — the first block
        // after an idle gap systematically runs a hair faster, and that bias
        // must not always land on the same side of the ratio.
        let (n2, n4) = if rep % 2 == 1 {
            let n4 = measure(p4, 1);
            (measure(p2, 1), n4)
        } else {
            (measure(p2, 1), measure(p4, 1))
        };
        assert_eq!(n2.1, r2.1, "{}: trials are deterministic", p2.label());
        assert_eq!(n4.1, r4.1, "{}: trials are deterministic", p4.label());
        r2.0 = r2.0.min(n2.0);
        r4.0 = r4.0.min(n4.0);
    }
    (r2, r4)
}

/// The dirty-engine trajectory-identity assertion of the CI smoke job: with
/// the same seed, full-BFS + dirty, incremental + dirty and the warmed
/// persistent + dirty engine must walk **identical** move sequences — the
/// dirty set is computed from the same exact distance diffs in all three, and
/// warming/replay never change a score. Asserted on both headline families.
fn assert_dirty_trajectories_match_full_bfs(n: usize) {
    use ncg_core::dynamics::{run_dynamics, DynamicsConfig};
    for family in [GameFamily::AsgSum, GameFamily::GbgSum] {
        let p = point(family, n, EngineSpec::baseline(), 1);
        let game = p.make_game();
        let mut seed_rng = StdRng::seed_from_u64(p.base_seed);
        let initial = p.topology.generate(n, &mut seed_rng);
        let run = |engine: EngineSpec| {
            let mut rng = StdRng::seed_from_u64(0xd1b7);
            let mut cfg = DynamicsConfig::simulation(p.max_steps())
                .with_oracle(engine.oracle)
                .with_dirty_agents(true)
                .with_warm_parked(engine.warm_parked)
                .with_warm_batching(engine.warm_batching);
            cfg.record_trajectory = true;
            run_dynamics(game.as_ref(), &initial, &cfg, &mut rng)
        };
        let reference = run(EngineSpec::baseline().with_warm_parked(false));
        assert!(reference.converged(), "{} n={n}", family.label());
        for engine in [
            EngineSpec::fast(),
            EngineSpec::fastest(),
            EngineSpec::fastest().with_warm_batching(false),
            EngineSpec::fastest_cold(),
        ] {
            let out = run(engine);
            assert_eq!(
                out.trajectory,
                reference.trajectory,
                "{} n={n}: {} trajectory diverged from full-bfs+dirty",
                family.label(),
                engine.label()
            );
            assert_eq!(out.final_graph, reference.final_graph);
        }
        println!(
            "dirty trajectory identity OK: {} n={n} ({} steps, full-bfs ≡ incremental ≡ \
             persistent warm/cold, batched ≡ scalar)",
            family.label(),
            reference.steps
        );
    }
}

/// The observability contract of `ncg-trace`: flipping the global switch must
/// be invisible to the simulation. The same seeded trial with tracing on and
/// tracing off must take the same number of steps, walk the identical move
/// sequence and land on the same final graph — spans and counters observe,
/// they never steer. Asserted on both headline families with the fastest
/// engine (the most instrumented code path).
fn assert_trace_identity(n: usize) {
    use ncg_core::dynamics::{run_dynamics, DynamicsConfig};
    for family in [GameFamily::AsgSum, GameFamily::GbgSum] {
        let p = point(family, n, EngineSpec::fastest(), 1);
        let game = p.make_game();
        let mut seed_rng = StdRng::seed_from_u64(p.base_seed);
        let initial = p.topology.generate(n, &mut seed_rng);
        let was_on = trace::enabled();
        let run = |traced: bool| {
            trace::set_enabled(traced);
            let mut rng = StdRng::seed_from_u64(0x7ace);
            let mut cfg = DynamicsConfig::simulation(p.max_steps())
                .with_oracle(OracleKind::Persistent)
                .with_dirty_agents(true);
            cfg.record_trajectory = true;
            let out = run_dynamics(game.as_ref(), &initial, &cfg, &mut rng);
            trace::set_enabled(false);
            out
        };
        let off = run(false);
        let on = run(true);
        let report = trace::take_report();
        trace::set_enabled(was_on);
        assert!(off.converged(), "{} n={n}", family.label());
        assert_eq!(
            on.steps,
            off.steps,
            "{} n={n}: step count changed under tracing",
            family.label()
        );
        assert_eq!(
            on.trajectory,
            off.trajectory,
            "{} n={n}: tracing-on trajectory diverged from tracing-off",
            family.label()
        );
        assert_eq!(on.final_graph, off.final_graph, "{} n={n}", family.label());
        assert!(
            !report.is_empty(),
            "{} n={n}: the traced run must actually have recorded spans",
            family.label()
        );
        println!(
            "trace identity OK: {} n={n} ({} steps, tracing on ≡ off)",
            family.label(),
            off.steps
        );
    }
}

/// One extra tracing-enabled rep of a cell's trial block, harvested as a
/// [`trace::TraceReport`]. The timed reps stay tracing-off (or whatever the
/// global `trace=1` switch says), so the profile never contaminates the
/// wall-clock columns — it is measured on its own rep.
fn trace_cell(point: &ExperimentPoint) -> trace::TraceReport {
    let game = point.make_game();
    let was_on = trace::enabled();
    trace::set_enabled(true);
    let _ = trace::take_report(); // drop whatever earlier cells recorded
    for t in 0..point.trials {
        let (r, _) = run_trial_with_game_probed(point, game.as_ref(), t);
        assert!(r.converged, "{} n={} must converge", point.label(), point.n);
    }
    trace::set_enabled(was_on);
    trace::take_report()
}

/// Per-cell batched ≡ scalar identity of the word-parallel waves: on the
/// exact `(family, n, seed)` of an ablation cell, `persistent+dirty` with
/// batching on and off must walk identical move sequences and land on the
/// same final graph — the waves compute the same exact distances the scalar
/// path does, so nothing downstream may diverge.
fn assert_batch_identity(family: GameFamily, n: usize, trials: usize) {
    use ncg_core::dynamics::{run_dynamics, DynamicsConfig};
    let p = point(family, n, EngineSpec::fastest(), trials);
    let game = p.make_game();
    let mut seed_rng = StdRng::seed_from_u64(p.base_seed);
    let initial = p.topology.generate(n, &mut seed_rng);
    let run = |batch: bool| {
        let mut rng = StdRng::seed_from_u64(0xba7c);
        let mut cfg = DynamicsConfig::simulation(p.max_steps())
            .with_oracle(OracleKind::Persistent)
            .with_dirty_agents(true)
            .with_warm_batching(batch);
        cfg.record_trajectory = true;
        run_dynamics(game.as_ref(), &initial, &cfg, &mut rng)
    };
    let batched = run(true);
    let scalar = run(false);
    assert_eq!(
        batched.trajectory,
        scalar.trajectory,
        "{} n={n}: batched waves diverged from the scalar replay baseline",
        family.label()
    );
    assert_eq!(batched.final_graph, scalar.final_graph);
    println!(
        "batch identity OK: {} n={n} ({} steps, batched ≡ scalar)",
        family.label(),
        batched.steps
    );
}

struct SetOwnedRow {
    n: usize,
    reps: usize,
    delta_s: f64,
    apply_undo_s: f64,
}

/// Buy-Game `SetOwned` series: time the exponential strategy enumeration with
/// delta scoring (Gray-code prefix reuse on the incremental oracle) vs. the
/// apply → BFS → undo fallback, all agents of a random connected network.
fn measure_set_owned(n: usize, reps: usize) -> SetOwnedRow {
    let mut rng = StdRng::seed_from_u64(7 + n as u64);
    let g = generators::random_with_m_edges(n, n + n / 2, &mut rng);
    let alpha = n as f64 / 4.0;
    let delta_game = BuyGame::sum(alpha);
    let fallback_game = ConsentForced(BuyGame::sum(alpha));
    let mut ws = Workspace::with_oracle(n, OracleKind::Incremental);
    let run = |game: &dyn Game, ws: &mut Workspace| {
        let watch = trace::Stopwatch::start();
        let mut found = 0usize;
        for _ in 0..reps {
            for u in 0..n {
                if game.best_response(&g, u, ws).is_some() {
                    found += 1;
                }
            }
        }
        (watch.elapsed_secs(), found)
    };
    let (delta_s, found_delta) = run(&delta_game, &mut ws);
    let (apply_undo_s, found_fallback) = run(&fallback_game, &mut ws);
    assert_eq!(
        found_delta, found_fallback,
        "n={n}: both paths must agree on who has a best response"
    );
    SetOwnedRow {
        n,
        reps,
        delta_s,
        apply_undo_s,
    }
}

struct BilateralRow {
    n: usize,
    reps: usize,
    delta_s: f64,
    apply_undo_s: f64,
}

/// Bilateral series: best-response scans (exponential neighbour-set
/// enumeration **plus consent checks**) with the persistent engine's
/// delta-scored consent vs. the same workspace forced onto the historical
/// apply → BFS → undo path.
fn measure_bilateral(n: usize, reps: usize) -> BilateralRow {
    let mut rng = StdRng::seed_from_u64(11 + n as u64);
    let g = generators::random_with_m_edges(n, 2 * n, &mut rng);
    let alpha = n as f64 / 4.0;
    let delta_game = BilateralBuyGame::sum(alpha);
    let fallback_game = ConsentForced(BilateralBuyGame::sum(alpha));
    let mut ws = Workspace::with_oracle(n, OracleKind::Persistent);
    fn run(
        game: &dyn Game,
        g: &ncg_graph::OwnedGraph,
        n: usize,
        reps: usize,
        ws: &mut Workspace,
    ) -> (f64, usize) {
        let watch = trace::Stopwatch::start();
        let mut found = 0usize;
        for _ in 0..reps {
            for u in 0..n {
                if game.best_response(g, u, ws).is_some() {
                    found += 1;
                }
            }
        }
        (watch.elapsed_secs(), found)
    }
    let (delta_s, found_delta) = run(&delta_game, &g, n, reps, &mut ws);
    let (apply_undo_s, found_fallback) = run(&fallback_game, &g, n, reps, &mut ws);
    assert_eq!(
        found_delta, found_fallback,
        "n={n}: delta consent and apply-undo consent must agree"
    );
    BilateralRow {
        n,
        reps,
        delta_s,
        apply_undo_s,
    }
}

struct SparseRow {
    family: &'static str,
    n: usize,
    label: &'static str,
    seconds: f64,
    steps: usize,
    peak_parked_bytes: u64,
    dense_envelope: u64,
    sparse_demotions: u64,
    sparse_hits: u64,
    bounded_repairs: u64,
}

/// The documented default parked-cache ceiling of the persistent oracle
/// (what a `None` byte budget resolves to); mirrored here so the series can
/// decide which rows are *actually* budget-bound.
const DEFAULT_BYTE_BUDGET: u64 = 128 * 1024 * 1024;

/// Ball-sparse parking series: the same seeded trial under up to three
/// parked-cache byte budgets — effectively unbounded ("dense"), the 128 MiB
/// default ("auto"), and half the dense envelope ("tight", an eighth in
/// smoke; dropped where it would duplicate "auto"). Demotion, eviction and
/// the sparse-miss fallback are representation changes only, so all runs
/// must walk **identical** move sequences (over a shared 1024-step prefix at
/// full scale) and land on the same state; every budget-bound run's parked
/// high-water mark must sit strictly below the dense-u16 envelope
/// `n · (2n+2) · 2` — the footprint that made `n = 8192` unreachable for the
/// all-dense layout (≈ 268 MB).
fn measure_sparse_parking(scale: &Scale) -> Vec<SparseRow> {
    use ncg_core::dynamics::{Dynamics, DynamicsConfig};
    let all_ns: &[usize] = if scale.smoke {
        &[256]
    } else {
        &[2048, 4096, 8192]
    };
    let mut ns: Vec<usize> = all_ns
        .iter()
        .copied()
        .filter(|&n| scale.smoke || n <= scale.sparse_max_n)
        .collect();
    if ns.is_empty() {
        // A sub-2048 `sparse_max_n` probes that single size directly.
        ns.push(scale.sparse_max_n);
    }
    // The buy game, not the swap game: greedy-buy moves are local, so most
    // demoted slots ride trusted stamp bumps across steps and the budget-bound
    // runs stay within a small factor of dense. A swap dirties ~90% of all
    // vectors per move, which would re-densify (and re-demote) nearly the
    // whole cache every step — a thrash benchmark, not a memory benchmark.
    let family = GameFamily::GbgSum;
    let mut rows = Vec::new();
    println!("\nball-sparse parking (same seed across parked byte budgets)");
    println!(
        "{:>6} {:>7} {:>13} {:>7} {:>15} {:>15} {:>9} {:>9} {:>9}",
        "n",
        "budget",
        "seconds",
        "steps",
        "peak bytes",
        "dense env",
        "demote",
        "sp hits",
        "bounded"
    );
    for &n in &ns {
        let p = point(family, n, EngineSpec::fastest(), 1);
        let game = p.make_game();
        let mut seed_rng = StdRng::seed_from_u64(p.base_seed);
        let initial = p.topology.generate(n, &mut seed_rng);
        let envelope = n as u64 * (2 * n as u64 + 2) * 2;
        // The smoke variant squeezes the cache to an eighth of the envelope —
        // maximum demote/evict churn on a tiny cell, which is what CI wants
        // to cover. The full-scale series uses half the envelope: still
        // strictly budget-bound at every n, without turning the big cells
        // into multi-hour thrash benchmarks.
        let tight = if scale.smoke {
            envelope / 8
        } else {
            envelope / 2
        };
        let mut budgets: Vec<(&'static str, Option<u64>)> =
            vec![("dense", Some(u64::MAX)), ("auto", None)];
        // At n = 8192 half the envelope ≈ the 128 MiB default — the "tight"
        // run would just repeat "auto", so it is only kept while it is
        // meaningfully tighter.
        if tight < DEFAULT_BYTE_BUDGET * 9 / 10 {
            budgets.push(("tight", Some(tight)));
        }
        // Budget-bound runs trade memory for recompute waves; at large n that
        // trade is steep (the budget holds less than one step's working set),
        // so the non-smoke series compares a fixed 1024-step prefix instead
        // of running every budget to convergence. Identity over the executed
        // prefix is exactly as strong per step, and the peak is reached in
        // the very first steps (the cold bulk pin parks everything).
        let step_cap = if scale.smoke {
            p.max_steps()
        } else {
            p.max_steps().min(1024)
        };
        let mut reference: Option<(Vec<ncg_core::dynamics::MoveRecord>, ncg_graph::OwnedGraph)> =
            None;
        for &(label, budget) in &budgets {
            let mut cfg = DynamicsConfig::simulation(step_cap)
                .with_oracle(OracleKind::Persistent)
                .with_dirty_agents(true)
                .with_oracle_byte_budget(budget);
            cfg.record_trajectory = true;
            let mut rng = StdRng::seed_from_u64(0x5bb1);
            let watch = trace::Stopwatch::start();
            let mut dynamics = Dynamics::new(game.as_ref(), initial.clone(), cfg);
            let mut steps = 0usize;
            let converged = loop {
                if steps >= step_cap {
                    break false;
                }
                match dynamics.step(&mut rng) {
                    Some(_) => steps += 1,
                    None => break true,
                }
            };
            let seconds = watch.elapsed_secs();
            assert!(
                converged || steps == step_cap,
                "sparse parking n={n} {label}: must converge or fill the prefix"
            );
            let stats = dynamics.oracle_stats();
            match &reference {
                None => {
                    reference = Some((dynamics.trajectory().to_vec(), dynamics.graph().clone()))
                }
                Some((traj, final_graph)) => {
                    assert_eq!(
                        dynamics.trajectory(),
                        &traj[..],
                        "n={n}: {label} trajectory diverged from the dense reference"
                    );
                    assert_eq!(dynamics.graph(), final_graph, "n={n}: {label} final graph");
                }
            }
            let effective = budget.unwrap_or(DEFAULT_BYTE_BUDGET);
            if effective >= envelope {
                // Nothing to demote: the dense layout fits, and its
                // accounting must land exactly on the envelope (n slots of
                // `2·(2n+2)` bytes each, all pinned by the bulk cold fill).
                assert_eq!(
                    stats.peak_parked_bytes, envelope,
                    "n={n} {label}: un-bound run must park the full dense envelope"
                );
            } else {
                assert!(
                    stats.peak_parked_bytes < envelope,
                    "n={n} {label}: peak {} must sit strictly below the dense envelope {envelope}",
                    stats.peak_parked_bytes
                );
                assert!(
                    stats.peak_parked_bytes <= effective,
                    "n={n} {label}: peak {} exceeds the byte budget {effective}",
                    stats.peak_parked_bytes
                );
                assert!(
                    stats.sparse_demotions > 0,
                    "n={n} {label}: a budget-bound run must demote at least one slot"
                );
            }
            println!(
                "{:>6} {:>7} {:>13.4} {:>7} {:>15} {:>15} {:>9} {:>9} {:>9}",
                n,
                label,
                seconds,
                steps,
                stats.peak_parked_bytes,
                envelope,
                stats.sparse_demotions,
                stats.sparse_hits,
                stats.bounded_repairs
            );
            if std::env::var_os("SPARSE_DEBUG").is_some() {
                eprintln!("  {label}: {stats:?}");
            }
            rows.push(SparseRow {
                family: family.label(),
                n,
                label,
                seconds,
                steps,
                peak_parked_bytes: stats.peak_parked_bytes,
                dense_envelope: envelope,
                sparse_demotions: stats.sparse_demotions,
                sparse_hits: stats.sparse_hits,
                bounded_repairs: stats.bounded_repairs,
            });
        }
        let labels: Vec<&str> = budgets.iter().map(|&(l, _)| l).collect();
        println!(
            "sparse parking identity OK: {} n={n} ({})",
            family.label(),
            labels.join(" ≡ ")
        );
    }
    rows
}

struct SweepRow {
    family: &'static str,
    n: usize,
    /// Wall-clock per engine; `None` when the engine was skipped at this `n`
    /// (slow engines past `full_max_n`).
    times: Vec<Option<f64>>,
    /// Summed oracle work counters per engine (same indexing as `times`).
    stats: Vec<Option<OracleStats>>,
    /// Phase profile of one extra tracing-enabled rep (same indexing as
    /// `times`); only the persistent pair is traced — the cells the
    /// snapshot's headline ratios rest on.
    profiles: Vec<Option<trace::TraceReport>>,
    steps: usize,
}

fn main() {
    let scale = parse_scale();
    // Trajectory-identity guards first: the dirty engines must replay the
    // full-BFS dirty engine's exact move sequence, and the trace switch must
    // be observationally invisible, before any timing runs.
    assert_dirty_trajectories_match_full_bfs(if scale.smoke { 32 } else { 48 });
    assert_trace_identity(if scale.smoke { 32 } else { 48 });
    if scale.trace {
        trace::set_enabled(true);
    }
    let engines = [
        EngineSpec::baseline(),
        EngineSpec::default(),
        EngineSpec::persistent(),
        EngineSpec::fast(),
        EngineSpec::fastest(),
        EngineSpec::fastest_cold(),
    ];
    // Which engines still run at a given n: `persistent+dirty` always, the
    // eager persistent engine up to `pers_max_n`, the re-scanning baselines
    // and the cold ablation only up to `full_max_n`.
    let engine_runs_at = |idx: usize, n: usize| -> bool {
        idx == 4 || (idx == 2 && n <= scale.pers_max_n) || n <= scale.full_max_n
    };
    let mut ns = Vec::new();
    let mut n = 64usize;
    while n <= scale.max_n {
        ns.push(n);
        n *= 2;
    }
    println!(
        "oracle ablation (trials per cell: {}; engines: {})",
        scale.trials,
        engines
            .iter()
            .map(|e| e.label())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let fmt_time = |t: Option<f64>| match t {
        Some(t) => format!("{t:>13.4}"),
        None => format!("{:>13}", "-"),
    };
    let mut sweep_rows = Vec::new();
    for family in [GameFamily::AsgSum, GameFamily::GbgSum] {
        println!("\nfamily {}", family.label());
        println!(
            "{:>6} {:>13} {:>13} {:>13} {:>13} {:>13} {:>13} {:>9} {:>9} {:>9} {:>9}",
            "n",
            "full-bfs [s]",
            "increm [s]",
            "persist [s]",
            "inc+dirty [s]",
            "pers+dirty[s]",
            "pd+cold [s]",
            "p/inc",
            "p/pd",
            "pd/full",
            "steps e/d"
        );
        for &n in &ns {
            // The big-n extension cells run one trial (a single n = 4096
            // trial already integrates minutes of work — the repeat/min
            // machinery is what fights noise at the small sizes).
            let cell_trials = if n >= 2048 { 1 } else { scale.trials };
            assert_batch_identity(family, n, cell_trials);
            let mut times: Vec<Option<f64>> = Vec::new();
            let mut stats: Vec<Option<OracleStats>> = Vec::new();
            let mut profiles: Vec<Option<trace::TraceReport>> = Vec::new();
            let mut steps = 0usize;
            let mut eager_steps: Option<usize> = None;
            let mut dirty_steps: Option<usize> = None;
            // The persistent pair carries the snapshot's headline ratio
            // (`persistent+dirty` ≥ plain `persistent` everywhere), so those
            // two cells are measured interleaved, best-of-k; the baselines
            // are context and run once.
            let mut stashed_pd: Option<Cell> = None;
            for (idx, engine) in engines.into_iter().enumerate() {
                if !engine_runs_at(idx, n) {
                    times.push(None);
                    stats.push(None);
                    profiles.push(None);
                    continue;
                }
                let p = point(family, n, engine, cell_trials);
                let (secs, s, st) = if scale.smoke {
                    measure(&p, 1)
                } else if idx == 2 {
                    let p4 = point(family, n, engines[4], cell_trials);
                    // The swap-game cells sit at true parity (a swap dirties
                    // ~90% of all vectors, so there is little for the dirty
                    // engine to skip); they need more repeats than the
                    // clearly-separated buy-game cells for the minima to
                    // stabilise.
                    let repeats = match family {
                        GameFamily::AsgSum | GameFamily::AsgMax => {
                            if n <= 256 {
                                7
                            } else {
                                6
                            }
                        }
                        _ => 3,
                    };
                    let (r2, r4) = measure_pair(&p, &p4, repeats);
                    stashed_pd = Some(r4);
                    r2
                } else if idx == 4 {
                    // Past `pers_max_n` the pair partner is skipped and
                    // `persistent+dirty` is measured on its own.
                    match stashed_pd.take() {
                        Some(cell) => cell,
                        None => measure(&p, if n >= 2048 { 1 } else { 3 }),
                    }
                } else {
                    measure(&p, 1)
                };
                times.push(Some(secs));
                stats.push(Some(st));
                // Phase profile + wasted-scan counters for the persistent
                // pair, each from one extra traced rep of the same cell.
                profiles.push(if (idx == 2 || idx == 4) && scale.json.is_some() {
                    Some(trace_cell(&p))
                } else {
                    None
                });
                steps = s;
                // The eager engines follow the exact policy order, so their
                // trajectories (and hence step counts) must coincide — this
                // is the patched-CSR ≡ full-BFS trajectory assertion of the
                // CI smoke run. The dirty engines form a second equivalence
                // class: their invalidation sets are identical across
                // oracles (exact diffs either way) and warming never touches
                // a score, so inc+dirty, pers+dirty and pers+dirty+cold must
                // also agree step for step (with each other, not with the
                // eager class — mover order legally differs between classes).
                if idx <= 2 {
                    match eager_steps {
                        None => eager_steps = Some(s),
                        Some(expect) => assert_eq!(
                            s,
                            expect,
                            "{} n={n}: engine {} step count diverged from the eager reference",
                            family.label(),
                            engine.label()
                        ),
                    }
                } else {
                    match dirty_steps {
                        None => dirty_steps = Some(s),
                        Some(expect) => assert_eq!(
                            s,
                            expect,
                            "{} n={n}: engine {} step count diverged from the dirty reference",
                            family.label(),
                            engine.label()
                        ),
                    }
                }
            }
            let ratio = |a: Option<f64>, b: Option<f64>| match (a, b) {
                (Some(a), Some(b)) => format!("{:>8.2}x", a / b.max(1e-9)),
                _ => format!("{:>9}", "-"),
            };
            println!(
                "{:>6} {} {} {} {} {} {} {} {} {} {:>5}/{}",
                n,
                fmt_time(times[0]),
                fmt_time(times[1]),
                fmt_time(times[2]),
                fmt_time(times[3]),
                fmt_time(times[4]),
                fmt_time(times[5]),
                ratio(times[1], times[2]),
                ratio(times[2], times[4]),
                ratio(times[0], times[4]),
                eager_steps.unwrap_or(0),
                dirty_steps.unwrap_or(0)
            );
            sweep_rows.push(SweepRow {
                family: family.label(),
                n,
                times,
                stats,
                profiles,
                steps,
            });
        }
    }

    // Buy-Game SetOwned series: delta scoring vs apply → BFS → undo.
    let bg_ns: &[usize] = if scale.smoke { &[10] } else { &[10, 12, 14] };
    let reps = if scale.smoke { 2 } else { 6 };
    println!("\nBuy-Game SetOwned enumeration (delta path vs apply->BFS->undo)");
    println!(
        "{:>6} {:>6} {:>13} {:>15} {:>9}",
        "n", "reps", "delta [s]", "apply-undo [s]", "speedup"
    );
    let mut set_owned_rows = Vec::new();
    for &n in bg_ns {
        let row = measure_set_owned(n, reps);
        println!(
            "{:>6} {:>6} {:>13.4} {:>15.4} {:>8.2}x",
            row.n,
            row.reps,
            row.delta_s,
            row.apply_undo_s,
            row.apply_undo_s / row.delta_s.max(1e-9)
        );
        set_owned_rows.push(row);
    }

    // Bilateral series: delta-scored consent vs apply → BFS → undo.
    let bil_ns: &[usize] = if scale.smoke { &[8] } else { &[10, 12, 14, 16] };
    let bil_reps = if scale.smoke { 2 } else { 4 };
    println!("\nBilateral best-response scans (delta consent vs apply->BFS->undo)");
    println!(
        "{:>6} {:>6} {:>13} {:>15} {:>9}",
        "n", "reps", "delta [s]", "apply-undo [s]", "speedup"
    );
    let mut bilateral_rows = Vec::new();
    for &n in bil_ns {
        let row = measure_bilateral(n, bil_reps);
        println!(
            "{:>6} {:>6} {:>13.4} {:>15.4} {:>8.2}x",
            row.n,
            row.reps,
            row.delta_s,
            row.apply_undo_s,
            row.apply_undo_s / row.delta_s.max(1e-9)
        );
        bilateral_rows.push(row);
    }

    // Ball-sparse parking series: byte budgets vs. the dense envelope.
    let sparse_rows = measure_sparse_parking(&scale);

    if let Some(path) = &scale.json {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"smoke\": {},", scale.smoke);
        let _ = writeln!(out, "  \"trials\": {},", scale.trials);
        let labels: Vec<String> = engines.iter().map(|e| e.label()).collect();
        out.push_str("  \"sweep\": [\n");
        for (i, row) in sweep_rows.iter().enumerate() {
            let engines_json: Vec<String> = labels
                .iter()
                .zip(&row.times)
                .filter_map(|(l, t)| t.map(|t| format!("\"{l}\": {t:.6}")))
                .collect();
            let stats_json: Vec<String> = labels
                .iter()
                .zip(&row.stats)
                .filter_map(|(l, st)| {
                    st.map(|st| {
                        let widths: Vec<String> =
                            st.warm_batch_width.iter().map(|w| w.to_string()).collect();
                        format!(
                            "\"{l}\": {{\"full_bfs_runs\": {}, \"replayed_begins\": {}, \
                             \"lazy_replays\": {}, \"warm_bumps\": {}, \"warm_batches\": {}, \
                             \"lazy_hits\": {}, \"csr_patches\": {}, \"csr_rebuilds\": {}, \
                             \"batched_repins\": {}, \"bounded_repairs\": {}, \
                             \"sparse_demotions\": {}, \"sparse_hits\": {}, \
                             \"peak_parked_bytes\": {}, \"warm_batch_width\": [{}]}}",
                            st.full_bfs_runs,
                            st.replayed_begins,
                            st.lazy_replays,
                            st.warm_bumps,
                            st.warm_batches,
                            st.lazy_hits,
                            st.csr_patches,
                            st.csr_rebuilds,
                            st.batched_repins,
                            st.bounded_repairs,
                            st.sparse_demotions,
                            st.sparse_hits,
                            st.peak_parked_bytes,
                            widths.join(", ")
                        )
                    })
                })
                .collect();
            // Per-cell observability: wasted-scan counters (how many agents
            // the policy scanned per improving move) and the full `ncg-trace`
            // phase tree of the traced rep, keyed by engine label.
            let wasted_json: Vec<String> = labels
                .iter()
                .zip(&row.profiles)
                .filter_map(|(l, pr)| {
                    pr.as_ref().map(|pr| {
                        let scanned = pr.counter(trace::Counter::AgentsScanned);
                        let improving = pr.counter(trace::Counter::ImprovingMoves);
                        let ratio = pr
                            .wasted_scan_ratio()
                            .map_or("null".to_string(), |r| format!("{r:.3}"));
                        format!(
                            "\"{l}\": {{\"agents_scanned\": {scanned}, \
                             \"improving_moves\": {improving}, \"ratio\": {ratio}}}"
                        )
                    })
                })
                .collect();
            let profile_json: Vec<String> = labels
                .iter()
                .zip(&row.profiles)
                .filter_map(|(l, pr)| pr.as_ref().map(|pr| format!("\"{l}\": {}", pr.to_json())))
                .collect();
            let _ = write!(
                out,
                "    {{\"family\": \"{}\", \"n\": {}, \"steps\": {}, \"seconds\": {{{}}}, \
                 \"oracle_stats\": {{{}}}, \"wasted_scan\": {{{}}}, \"phase_profile\": {{{}}}}}",
                row.family,
                row.n,
                row.steps,
                engines_json.join(", "),
                stats_json.join(", "),
                wasted_json.join(", "),
                profile_json.join(", ")
            );
            out.push_str(if i + 1 < sweep_rows.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"bilateral\": [\n");
        for (i, row) in bilateral_rows.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"n\": {}, \"reps\": {}, \"delta_s\": {:.6}, \"apply_undo_s\": {:.6}, \"speedup\": {:.3}}}",
                row.n,
                row.reps,
                row.delta_s,
                row.apply_undo_s,
                row.apply_undo_s / row.delta_s.max(1e-9)
            );
            out.push_str(if i + 1 < bilateral_rows.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"set_owned\": [\n");
        for (i, row) in set_owned_rows.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"n\": {}, \"reps\": {}, \"delta_s\": {:.6}, \"apply_undo_s\": {:.6}, \"speedup\": {:.3}}}",
                row.n,
                row.reps,
                row.delta_s,
                row.apply_undo_s,
                row.apply_undo_s / row.delta_s.max(1e-9)
            );
            out.push_str(if i + 1 < set_owned_rows.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"sparse_parking\": [\n");
        for (i, row) in sparse_rows.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"family\": \"{}\", \"n\": {}, \"budget\": \"{}\", \"seconds\": {:.6}, \
                 \"steps\": {}, \"peak_parked_bytes\": {}, \"dense_envelope\": {}, \
                 \"sparse_demotions\": {}, \"sparse_hits\": {}, \"bounded_repairs\": {}}}",
                row.family,
                row.n,
                row.label,
                row.seconds,
                row.steps,
                row.peak_parked_bytes,
                row.dense_envelope,
                row.sparse_demotions,
                row.sparse_hits,
                row.bounded_repairs
            );
            out.push_str(if i + 1 < sparse_rows.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        std::fs::write(path, out).expect("write json snapshot");
        println!("\nwrote {path}");
    }
}
