//! Ablation report: full-BFS re-evaluation vs. the incremental distance
//! oracle (with and without dirty-agent tracking) on the swap-game and
//! greedy-buy-game dynamics hot paths, over an `n` sweep.
//!
//! ```text
//! cargo run -p ncg-bench --release --bin oracle_ablation -- max_n=512 trials=5
//! ```
//!
//! Prints, per `(family, n)`, the wall-clock per engine and the speedup of the
//! fast engine (incremental oracle + dirty-agent tracking) over the historical
//! full-BFS baseline.

use ncg_core::policy::Policy;
use ncg_sim::{
    run_trial_with_game, AlphaSpec, EngineSpec, ExperimentPoint, GameFamily, InitialTopology,
};
use std::time::Instant;

struct Scale {
    max_n: usize,
    trials: usize,
}

fn parse_scale() -> Scale {
    let mut scale = Scale {
        max_n: 256,
        trials: 3,
    };
    for arg in std::env::args().skip(1) {
        let Some((key, value)) = arg.split_once('=') else {
            continue;
        };
        match key {
            "max_n" => scale.max_n = value.parse().unwrap_or(scale.max_n),
            "trials" => scale.trials = value.parse().unwrap_or(scale.trials),
            _ => eprintln!("ignoring unknown argument {key}={value}"),
        }
    }
    scale
}

fn point(family: GameFamily, n: usize, engine: EngineSpec, trials: usize) -> ExperimentPoint {
    let topology = match family {
        GameFamily::AsgSum | GameFamily::AsgMax => InitialTopology::Budgeted { k: 2 },
        GameFamily::GbgSum | GameFamily::GbgMax => InitialTopology::RandomEdges { m_per_n: 2 },
    };
    ExperimentPoint {
        n,
        family,
        alpha: AlphaSpec::FractionOfN(0.25),
        topology,
        policy: Policy::MaxCost,
        trials,
        base_seed: 42,
        max_steps_factor: 400,
        engine,
    }
}

/// Wall-clock seconds of `trials` converged runs of `point`.
fn measure(point: &ExperimentPoint) -> (f64, usize) {
    let game = point.make_game();
    let start = Instant::now();
    let mut steps = 0usize;
    for t in 0..point.trials {
        let r = run_trial_with_game(point, game.as_ref(), t);
        assert!(r.converged, "{} n={} must converge", point.label(), point.n);
        steps += r.steps;
    }
    (start.elapsed().as_secs_f64(), steps)
}

fn main() {
    let scale = parse_scale();
    let engines = [
        EngineSpec::baseline(),
        EngineSpec::default(),
        EngineSpec::fast(),
    ];
    let mut ns = Vec::new();
    let mut n = 64usize;
    while n <= scale.max_n {
        ns.push(n);
        n *= 2;
    }
    println!(
        "oracle ablation (trials per cell: {}; engines: {})",
        scale.trials,
        engines
            .iter()
            .map(|e| e.label())
            .collect::<Vec<_>>()
            .join(", ")
    );
    for family in [GameFamily::AsgSum, GameFamily::GbgSum] {
        println!("\nfamily {}", family.label());
        println!(
            "{:>6} {:>16} {:>16} {:>16} {:>9} {:>9}",
            "n", "full-bfs [s]", "incremental [s]", "inc+dirty [s]", "speedup", "steps"
        );
        for &n in &ns {
            let mut times = Vec::new();
            let mut steps = 0usize;
            for engine in engines {
                let p = point(family, n, engine, scale.trials);
                let (secs, s) = measure(&p);
                times.push(secs);
                steps = s;
            }
            println!(
                "{:>6} {:>16.4} {:>16.4} {:>16.4} {:>8.1}x {:>9}",
                n,
                times[0],
                times[1],
                times[2],
                times[0] / times[2].max(1e-9),
                steps
            );
        }
    }
}
