//! Ablation report: full-BFS re-evaluation vs. the incremental distance
//! oracle vs. the cross-step **persistent** oracle (each with and without
//! dirty-agent tracking) on the swap-game and greedy-buy-game dynamics hot
//! paths, plus a Buy-Game `SetOwned` series comparing whole-strategy delta
//! scoring against the historical apply → BFS → undo cycle.
//!
//! ```text
//! cargo run -p ncg-bench --release --bin oracle_ablation -- max_n=512 trials=5
//! cargo run -p ncg-bench --release --bin oracle_ablation -- smoke=1
//! cargo run -p ncg-bench --release --bin oracle_ablation -- json=BENCH_oracle.json
//! ```
//!
//! Prints, per `(family, n)`, the wall-clock per engine together with the
//! speedup of the persistent engine over the per-scan re-pinning incremental
//! engine and of the fastest engine (persistent + dirty) over the full-BFS
//! baseline. `smoke=1` shrinks everything for CI; `json=PATH` additionally
//! writes the measurements as a JSON snapshot.

use ncg_bench::ConsentForced;
use ncg_core::policy::Policy;
use ncg_core::{BilateralBuyGame, BuyGame, Game, OracleKind, Workspace};
use ncg_graph::generators;
use ncg_sim::{
    run_trial_with_game, AlphaSpec, EngineSpec, ExperimentPoint, GameFamily, InitialTopology,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

struct Scale {
    max_n: usize,
    /// Largest `n` the slow engines (full BFS and the per-scan re-pinning
    /// incremental pair) still run at; beyond it only the persistent engines
    /// are measured, which is what lets the sweep reach n = 1024 on one core.
    full_max_n: usize,
    trials: usize,
    smoke: bool,
    json: Option<String>,
}

fn parse_scale() -> Scale {
    let mut scale = Scale {
        max_n: 256,
        full_max_n: 256,
        trials: 3,
        smoke: false,
        json: None,
    };
    for arg in std::env::args().skip(1) {
        let Some((key, value)) = arg.split_once('=') else {
            continue;
        };
        match key {
            "max_n" => scale.max_n = value.parse().unwrap_or(scale.max_n),
            "full_max_n" => scale.full_max_n = value.parse().unwrap_or(scale.full_max_n),
            "trials" => scale.trials = value.parse().unwrap_or(scale.trials),
            "smoke" => scale.smoke = value == "1" || value == "true",
            "json" => scale.json = Some(value.to_string()),
            _ => eprintln!("ignoring unknown argument {key}={value}"),
        }
    }
    if scale.smoke {
        scale.max_n = scale.max_n.min(64);
        scale.trials = 1;
    }
    scale
}

fn point(family: GameFamily, n: usize, engine: EngineSpec, trials: usize) -> ExperimentPoint {
    let topology = match family {
        GameFamily::AsgSum | GameFamily::AsgMax => InitialTopology::Budgeted { k: 2 },
        GameFamily::GbgSum
        | GameFamily::GbgMax
        | GameFamily::BilateralSum
        | GameFamily::BilateralMax => InitialTopology::RandomEdges { m_per_n: 2 },
    };
    ExperimentPoint {
        n,
        family,
        alpha: AlphaSpec::FractionOfN(0.25),
        topology,
        policy: Policy::MaxCost,
        trials,
        base_seed: 42,
        max_steps_factor: 400,
        engine,
    }
}

/// Wall-clock seconds of `trials` converged runs of `point`.
fn measure(point: &ExperimentPoint) -> (f64, usize) {
    let game = point.make_game();
    let start = Instant::now();
    let mut steps = 0usize;
    for t in 0..point.trials {
        let r = run_trial_with_game(point, game.as_ref(), t);
        assert!(r.converged, "{} n={} must converge", point.label(), point.n);
        steps += r.steps;
    }
    (start.elapsed().as_secs_f64(), steps)
}

struct SetOwnedRow {
    n: usize,
    reps: usize,
    delta_s: f64,
    apply_undo_s: f64,
}

/// Buy-Game `SetOwned` series: time the exponential strategy enumeration with
/// delta scoring (Gray-code prefix reuse on the incremental oracle) vs. the
/// apply → BFS → undo fallback, all agents of a random connected network.
fn measure_set_owned(n: usize, reps: usize) -> SetOwnedRow {
    let mut rng = StdRng::seed_from_u64(7 + n as u64);
    let g = generators::random_with_m_edges(n, n + n / 2, &mut rng);
    let alpha = n as f64 / 4.0;
    let delta_game = BuyGame::sum(alpha);
    let fallback_game = ConsentForced(BuyGame::sum(alpha));
    let mut ws = Workspace::with_oracle(n, OracleKind::Incremental);
    let run = |game: &dyn Game, ws: &mut Workspace| {
        let start = Instant::now();
        let mut found = 0usize;
        for _ in 0..reps {
            for u in 0..n {
                if game.best_response(&g, u, ws).is_some() {
                    found += 1;
                }
            }
        }
        (start.elapsed().as_secs_f64(), found)
    };
    let (delta_s, found_delta) = run(&delta_game, &mut ws);
    let (apply_undo_s, found_fallback) = run(&fallback_game, &mut ws);
    assert_eq!(
        found_delta, found_fallback,
        "n={n}: both paths must agree on who has a best response"
    );
    SetOwnedRow {
        n,
        reps,
        delta_s,
        apply_undo_s,
    }
}

struct BilateralRow {
    n: usize,
    reps: usize,
    delta_s: f64,
    apply_undo_s: f64,
}

/// Bilateral series: best-response scans (exponential neighbour-set
/// enumeration **plus consent checks**) with the persistent engine's
/// delta-scored consent vs. the same workspace forced onto the historical
/// apply → BFS → undo path.
fn measure_bilateral(n: usize, reps: usize) -> BilateralRow {
    let mut rng = StdRng::seed_from_u64(11 + n as u64);
    let g = generators::random_with_m_edges(n, 2 * n, &mut rng);
    let alpha = n as f64 / 4.0;
    let delta_game = BilateralBuyGame::sum(alpha);
    let fallback_game = ConsentForced(BilateralBuyGame::sum(alpha));
    let mut ws = Workspace::with_oracle(n, OracleKind::Persistent);
    fn run(
        game: &dyn Game,
        g: &ncg_graph::OwnedGraph,
        n: usize,
        reps: usize,
        ws: &mut Workspace,
    ) -> (f64, usize) {
        let start = Instant::now();
        let mut found = 0usize;
        for _ in 0..reps {
            for u in 0..n {
                if game.best_response(g, u, ws).is_some() {
                    found += 1;
                }
            }
        }
        (start.elapsed().as_secs_f64(), found)
    }
    let (delta_s, found_delta) = run(&delta_game, &g, n, reps, &mut ws);
    let (apply_undo_s, found_fallback) = run(&fallback_game, &g, n, reps, &mut ws);
    assert_eq!(
        found_delta, found_fallback,
        "n={n}: delta consent and apply-undo consent must agree"
    );
    BilateralRow {
        n,
        reps,
        delta_s,
        apply_undo_s,
    }
}

struct SweepRow {
    family: &'static str,
    n: usize,
    /// Wall-clock per engine; `None` when the engine was skipped at this `n`
    /// (slow engines past `full_max_n`).
    times: Vec<Option<f64>>,
    steps: usize,
}

fn main() {
    let scale = parse_scale();
    let engines = [
        EngineSpec::baseline(),
        EngineSpec::default(),
        EngineSpec::persistent(),
        EngineSpec::fast(),
        EngineSpec::fastest(),
    ];
    // Which engines still run at a given n: the persistent pair always, the
    // re-scanning baselines only up to `full_max_n`.
    let engine_runs_at =
        |idx: usize, n: usize| -> bool { n <= scale.full_max_n || matches!(idx, 2 | 4) };
    let mut ns = Vec::new();
    let mut n = 64usize;
    while n <= scale.max_n {
        ns.push(n);
        n *= 2;
    }
    println!(
        "oracle ablation (trials per cell: {}; engines: {})",
        scale.trials,
        engines
            .iter()
            .map(|e| e.label())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let fmt_time = |t: Option<f64>| match t {
        Some(t) => format!("{t:>13.4}"),
        None => format!("{:>13}", "-"),
    };
    let mut sweep_rows = Vec::new();
    for family in [GameFamily::AsgSum, GameFamily::GbgSum] {
        println!("\nfamily {}", family.label());
        println!(
            "{:>6} {:>13} {:>13} {:>13} {:>13} {:>13} {:>9} {:>9} {:>9}",
            "n",
            "full-bfs [s]",
            "increm [s]",
            "persist [s]",
            "inc+dirty [s]",
            "pers+dirty[s]",
            "p/inc",
            "pd/full",
            "steps"
        );
        for &n in &ns {
            let mut times: Vec<Option<f64>> = Vec::new();
            let mut steps = 0usize;
            let mut eager_steps: Option<usize> = None;
            for (idx, engine) in engines.into_iter().enumerate() {
                if !engine_runs_at(idx, n) {
                    times.push(None);
                    continue;
                }
                let p = point(family, n, engine, scale.trials);
                let (secs, s) = measure(&p);
                times.push(Some(secs));
                steps = s;
                // The eager engines follow the exact policy order, so their
                // trajectories (and hence step counts) must coincide — this
                // is the patched-CSR ≡ full-BFS trajectory assertion of the
                // CI smoke run (dirty engines may legally deviate).
                if idx <= 2 {
                    match eager_steps {
                        None => eager_steps = Some(s),
                        Some(expect) => assert_eq!(
                            s,
                            expect,
                            "{} n={n}: engine {} step count diverged from the eager reference",
                            family.label(),
                            engine.label()
                        ),
                    }
                }
            }
            let ratio = |a: Option<f64>, b: Option<f64>| match (a, b) {
                (Some(a), Some(b)) => format!("{:>8.2}x", a / b.max(1e-9)),
                _ => format!("{:>9}", "-"),
            };
            println!(
                "{:>6} {} {} {} {} {} {} {} {:>9}",
                n,
                fmt_time(times[0]),
                fmt_time(times[1]),
                fmt_time(times[2]),
                fmt_time(times[3]),
                fmt_time(times[4]),
                ratio(times[1], times[2]),
                ratio(times[0], times[4]),
                steps
            );
            sweep_rows.push(SweepRow {
                family: family.label(),
                n,
                times,
                steps,
            });
        }
    }

    // Buy-Game SetOwned series: delta scoring vs apply → BFS → undo.
    let bg_ns: &[usize] = if scale.smoke { &[10] } else { &[10, 12, 14] };
    let reps = if scale.smoke { 2 } else { 6 };
    println!("\nBuy-Game SetOwned enumeration (delta path vs apply->BFS->undo)");
    println!(
        "{:>6} {:>6} {:>13} {:>15} {:>9}",
        "n", "reps", "delta [s]", "apply-undo [s]", "speedup"
    );
    let mut set_owned_rows = Vec::new();
    for &n in bg_ns {
        let row = measure_set_owned(n, reps);
        println!(
            "{:>6} {:>6} {:>13.4} {:>15.4} {:>8.2}x",
            row.n,
            row.reps,
            row.delta_s,
            row.apply_undo_s,
            row.apply_undo_s / row.delta_s.max(1e-9)
        );
        set_owned_rows.push(row);
    }

    // Bilateral series: delta-scored consent vs apply → BFS → undo.
    let bil_ns: &[usize] = if scale.smoke { &[8] } else { &[10, 12, 14, 16] };
    let bil_reps = if scale.smoke { 2 } else { 4 };
    println!("\nBilateral best-response scans (delta consent vs apply->BFS->undo)");
    println!(
        "{:>6} {:>6} {:>13} {:>15} {:>9}",
        "n", "reps", "delta [s]", "apply-undo [s]", "speedup"
    );
    let mut bilateral_rows = Vec::new();
    for &n in bil_ns {
        let row = measure_bilateral(n, bil_reps);
        println!(
            "{:>6} {:>6} {:>13.4} {:>15.4} {:>8.2}x",
            row.n,
            row.reps,
            row.delta_s,
            row.apply_undo_s,
            row.apply_undo_s / row.delta_s.max(1e-9)
        );
        bilateral_rows.push(row);
    }

    if let Some(path) = &scale.json {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"smoke\": {},", scale.smoke);
        let _ = writeln!(out, "  \"trials\": {},", scale.trials);
        let labels: Vec<String> = engines.iter().map(|e| e.label()).collect();
        out.push_str("  \"sweep\": [\n");
        for (i, row) in sweep_rows.iter().enumerate() {
            let engines_json: Vec<String> = labels
                .iter()
                .zip(&row.times)
                .filter_map(|(l, t)| t.map(|t| format!("\"{l}\": {t:.6}")))
                .collect();
            let _ = write!(
                out,
                "    {{\"family\": \"{}\", \"n\": {}, \"steps\": {}, \"seconds\": {{{}}}}}",
                row.family,
                row.n,
                row.steps,
                engines_json.join(", ")
            );
            out.push_str(if i + 1 < sweep_rows.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"bilateral\": [\n");
        for (i, row) in bilateral_rows.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"n\": {}, \"reps\": {}, \"delta_s\": {:.6}, \"apply_undo_s\": {:.6}, \"speedup\": {:.3}}}",
                row.n,
                row.reps,
                row.delta_s,
                row.apply_undo_s,
                row.apply_undo_s / row.delta_s.max(1e-9)
            );
            out.push_str(if i + 1 < bilateral_rows.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"set_owned\": [\n");
        for (i, row) in set_owned_rows.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"n\": {}, \"reps\": {}, \"delta_s\": {:.6}, \"apply_undo_s\": {:.6}, \"speedup\": {:.3}}}",
                row.n,
                row.reps,
                row.delta_s,
                row.apply_undo_s,
                row.apply_undo_s / row.delta_s.max(1e-9)
            );
            out.push_str(if i + 1 < set_owned_rows.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        std::fs::write(path, out).expect("write json snapshot");
        println!("\nwrote {path}");
    }
}
