//! Batch sweep driver on the `ncg-lab` orchestrator: grinds the Fig. 7/11
//! grids to large `n` on the persistent engine (plus a scenario-catalog
//! showcase), with streaming aggregation and checkpoint/resume.
//!
//! ```text
//! cargo run -p ncg-bench --release --bin sweep -- max_n=512 trials=3 json=BENCH_sweeps.json
//! cargo run -p ncg-bench --release --bin sweep -- smoke=1
//! cargo run -p ncg-bench --release --bin sweep -- journal=sweep.jsonl resume=1
//! ```
//!
//! `smoke=1` runs a tiny grid three ways — uninterrupted, killed mid-sweep,
//! and resumed from the kill's journal — and **asserts** that the resumed
//! aggregates are bit-identical to the uninterrupted run (the CI resume
//! check); it then repeats the check through the fault-tolerant path: a
//! supervised 2-shard run with a worker kill injected mid-sweep must merge
//! bit-identical too. `journal=PATH` checkpoints every completed trial
//! chunk; with `resume=1` a previous journal is replayed instead of
//! re-running.
//!
//! `shards=K` runs every plan as `K` supervised worker processes (this same
//! binary re-entered via the `NCG_SHARD_*` environment protocol), each with
//! its own journal, merged at the end — crashes are retried with backoff,
//! hangs are killed by the no-progress deadline, and a shard that exhausts
//! its retry budget degrades the run instead of aborting it. See
//! `ncg_lab::supervisor`.
//!
//! Cross-machine mode (see `ncg_lab::transport`):
//!
//! * `serve=ADDR` turns this binary into a long-lived shard server: bind
//!   `ADDR` (port 0 picks an ephemeral port, announced on stdout) and take
//!   shard assignments from a remote coordinator over TCP.
//! * `workers=HOST:PORT,HOST:PORT,...` runs every plan as a distributed
//!   coordinator over that worker pool (`shards=K` controls the shard
//!   count, default one per worker) — severed connections and heartbeat
//!   stalls retry with jittered backoff and reassign across the pool, and
//!   the merge is bit-identical to a local run.
//!
//! Every mode ends with a `run health:` report naming incomplete points,
//! discarded journal lines and telemetry degradation, so a degraded batch
//! is visible at the bottom of the log, not just inline.

use ncg_bench::sweeps;
use ncg_lab::supervisor::{supervise, ShardRuntime, SupervisorConfig};
use ncg_lab::transport::{run_distributed, TransportConfig};
use ncg_lab::{run_sweep, MergedSweep, PointOutcome, RunOptions, SweepOutcome, SweepPlan};
use ncg_trace as trace;
use std::path::PathBuf;
use std::process::Command;

struct Args {
    max_n: usize,
    trials: usize,
    threads: Option<usize>,
    smoke: bool,
    json: Option<String>,
    journal: Option<PathBuf>,
    resume: bool,
    seed: u64,
    shards: Option<usize>,
    serve: Option<String>,
    workers: Vec<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        max_n: 512,
        trials: 3,
        threads: None,
        smoke: false,
        json: None,
        journal: None,
        resume: false,
        seed: 0x5eed_2013,
        shards: None,
        serve: None,
        workers: Vec::new(),
    };
    for arg in std::env::args().skip(1) {
        let Some((key, value)) = arg.split_once('=') else {
            continue;
        };
        match key {
            "max_n" => args.max_n = value.parse().unwrap_or(args.max_n),
            "trials" => args.trials = value.parse().unwrap_or(args.trials),
            "threads" => args.threads = value.parse().ok(),
            "smoke" => args.smoke = value == "1" || value == "true",
            "json" => args.json = Some(value.to_string()),
            "journal" => args.journal = Some(PathBuf::from(value)),
            "resume" => args.resume = value == "1" || value == "true",
            "seed" => args.seed = value.parse().unwrap_or(args.seed),
            "shards" => args.shards = value.parse().ok().filter(|&k: &usize| k > 0),
            "serve" => args.serve = Some(value.to_string()),
            "workers" => {
                args.workers = value
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            _ => eprintln!("ignoring unknown argument {key}={value}"),
        }
    }
    args
}

fn print_outcome(plan: &SweepPlan, outcome: &SweepOutcome) {
    println!(
        "\nplan {} ({} points, engine {}, {} trials/point; {} chunks run, {} resumed)",
        plan.name,
        outcome.points.len(),
        plan.engine.label(),
        plan.trials,
        outcome.executed_chunks,
        outcome.resumed_chunks,
    );
    println!(
        "{:>42} {:>6} {:>10} {:>8} {:>8} {:>8} {:>9} {:>6}",
        "point", "n", "avg steps", "max", "std", "nonconv", "steps/n", "scan"
    );
    for p in &outcome.points {
        let s = &p.stats;
        let summary = s.summary(p.point.n);
        println!(
            "{:>42} {:>6} {:>10.2} {:>8} {:>8.2} {:>8} {:>9.3} {:>6}",
            p.point.label(),
            p.point.n,
            summary.avg_steps,
            s.max_steps,
            s.std_dev(),
            s.non_converged,
            s.max_steps as f64 / p.point.n as f64,
            if p.point.engine.parallel_scan.is_some() {
                "par"
            } else {
                "seq"
            },
        );
    }
    if outcome.journal_skipped_lines > 0 {
        println!(
            "note: {} torn or corrupted journal line(s) were discarded on resume \
             (their chunks re-ran; see the warning above for the file)",
            outcome.journal_skipped_lines
        );
    }
    if outcome.journal_superseded > 0 {
        println!(
            "note: {} duplicate journal record(s) superseded by a later rewrite",
            outcome.journal_superseded
        );
    }
    if outcome.telemetry_degraded {
        println!(
            "note: telemetry stream went dark mid-run (append failure); \
             aggregates are unaffected"
        );
    }
}

/// Per-plan health facts, echoed once more at the bottom of the log: a
/// degraded batch must be visible in the last screenful, not only in a note
/// that scrolled past hours earlier.
struct RunHealth {
    plan: String,
    incomplete: Vec<String>,
    skipped_lines: usize,
    telemetry_degraded: bool,
}

impl RunHealth {
    fn of(plan: &SweepPlan, outcome: &SweepOutcome, incomplete: Vec<String>) -> RunHealth {
        RunHealth {
            plan: plan.name.clone(),
            incomplete,
            skipped_lines: outcome.journal_skipped_lines,
            telemetry_degraded: outcome.telemetry_degraded,
        }
    }
}

fn print_health(health: &[RunHealth]) {
    println!("\nrun health:");
    for h in health {
        let mut notes = Vec::new();
        if !h.incomplete.is_empty() {
            notes.push(format!(
                "{} incomplete point(s): {}",
                h.incomplete.len(),
                h.incomplete.join(", ")
            ));
        }
        if h.skipped_lines > 0 {
            notes.push(format!(
                "{} torn/corrupt journal line(s) discarded",
                h.skipped_lines
            ));
        }
        if h.telemetry_degraded {
            notes.push("telemetry stream went dark mid-run".to_string());
        }
        if notes.is_empty() {
            println!("  {}: ok", h.plan);
        } else {
            println!("  {}: {}", h.plan, notes.join("; "));
        }
    }
}

/// Adapts a supervised-merge result to the common printing/JSON shape. The
/// executed/resumed split is not observable post-merge, so every present
/// chunk counts as executed.
fn merged_to_outcome(merged: MergedSweep) -> SweepOutcome {
    SweepOutcome {
        completed: merged.completed,
        executed_chunks: merged.points.iter().map(|p| p.completed_chunks).sum(),
        resumed_chunks: 0,
        journal_skipped_lines: merged.skipped_lines,
        journal_superseded: merged.superseded_chunks,
        telemetry_degraded: false,
        trace: None,
        points: merged.points,
    }
}

/// Launches this same binary as a shard worker (`main` re-enters
/// [`ncg_lab::supervisor::worker_main`] when `NCG_SHARD_WORKER=1`). `fault`
/// optionally injects an `NCG_FAULT` spec into one shard's **first** attempt
/// — the supervised smoke uses it; real runs pass `None`.
fn worker_launcher(fault: Option<(usize, &'static str)>) -> impl Fn(&ShardRuntime) -> Command {
    let exe = std::env::current_exe().expect("current executable path");
    move |rt: &ShardRuntime| {
        let mut cmd = Command::new(&exe);
        cmd.env_remove("NCG_FAULT");
        if let Some((shard, spec)) = fault {
            if rt.shard.index == shard && rt.attempt == 0 {
                cmd.env("NCG_FAULT", spec);
            }
        }
        cmd
    }
}

/// Runs one plan as a distributed coordinator over a TCP worker pool and
/// reports the merged outcome plus per-shard transport summaries. The
/// incomplete point labels ride along for the end-of-run health report.
fn run_transported(
    plan: &SweepPlan,
    args: &Args,
    workers: &[String],
) -> (SweepOutcome, Vec<String>) {
    let dir = match &args.journal {
        Some(p) => p.with_extension(format!("{}.transport", plan.name)),
        None => std::env::temp_dir().join(format!(
            "ncg-sweep-transport-{}-{}",
            std::process::id(),
            plan.name
        )),
    };
    let cfg = TransportConfig {
        shards: args.shards.unwrap_or_else(|| workers.len().max(1)),
        threads_per_shard: args.threads,
        ..TransportConfig::default()
    };
    let outcome = run_distributed(plan, &dir, &cfg, workers).expect("distributed sweep");
    for r in &outcome.shards {
        println!(
            "shard {}: {} attempt(s), {} reassignment(s), {} stall kill(s), {} severed, \
             {} corrupt frame(s){}",
            r.shard,
            r.attempts,
            r.reassignments,
            r.stall_kills,
            r.severed,
            r.corrupt_frames,
            if r.completed { "" } else { " — GAVE UP" },
        );
    }
    if !outcome.dead_workers.is_empty() {
        eprintln!(
            "sweep: worker(s) dropped from the pool: {}",
            outcome.dead_workers.join(", ")
        );
    }
    if outcome.degraded {
        eprintln!(
            "sweep: {} point(s) incomplete after the transport exhausted its budget: {}",
            outcome.merged.incomplete_points.len(),
            outcome.merged.incomplete_points.join(", "),
        );
    }
    let incomplete = outcome.merged.incomplete_points.clone();
    (merged_to_outcome(outcome.merged), incomplete)
}

/// The `serve=ADDR` mode: this binary as a long-lived shard server taking
/// remote assignments. Never returns on success.
fn serve_forever(bind: &str) -> ! {
    if let Err(e) = ncg_lab::faultpoint::arm_from_env() {
        eprintln!("sweep serve: {e}");
        std::process::exit(2);
    }
    let listener = match std::net::TcpListener::bind(bind) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("sweep serve: cannot bind {bind}: {e}");
            std::process::exit(2);
        }
    };
    let addr = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| bind.to_string());
    println!("ncg-shard-server listening on {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let opts = ncg_lab::ServeOptions::default();
    if let Err(e) = ncg_lab::serve(&listener, &opts) {
        eprintln!("sweep serve: {e}");
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// Runs one plan as `shards` supervised worker processes and reports the
/// merged outcome plus per-shard supervision summaries.
fn run_supervised(plan: &SweepPlan, args: &Args, shards: usize) -> (SweepOutcome, Vec<String>) {
    let dir = match &args.journal {
        Some(p) => p.with_extension(format!("{}.shards", plan.name)),
        None => std::env::temp_dir().join(format!(
            "ncg-sweep-shards-{}-{}",
            std::process::id(),
            plan.name
        )),
    };
    let cfg = SupervisorConfig {
        shards,
        threads_per_shard: args.threads,
        ..SupervisorConfig::default()
    };
    let outcome = supervise(plan, &dir, &cfg, worker_launcher(None)).expect("supervised sweep");
    for r in &outcome.shards {
        println!(
            "shard {}: {} attempt(s), {} crash(es), {} hang kill(s){}",
            r.shard,
            r.attempts,
            r.crashes,
            r.hang_kills,
            if r.completed { "" } else { " — GAVE UP" },
        );
    }
    if outcome.degraded {
        eprintln!(
            "sweep: {} point(s) incomplete after a shard exhausted its retry budget: {}",
            outcome.merged.incomplete_points.len(),
            outcome.merged.incomplete_points.join(", "),
        );
    }
    let incomplete = outcome.merged.incomplete_points.clone();
    (merged_to_outcome(outcome.merged), incomplete)
}

fn assert_bit_identical(a: &[PointOutcome], b: &[PointOutcome], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: point count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(
            x.stats,
            y.stats,
            "{what}: aggregates of {} must be bit-identical",
            x.point.label()
        );
        assert_eq!(
            x.stats.mean.to_bits(),
            y.stats.mean.to_bits(),
            "{what}: {} mean bits",
            x.point.label()
        );
        assert_eq!(
            x.stats.m2.to_bits(),
            y.stats.m2.to_bits(),
            "{what}: {} m2 bits",
            x.point.label()
        );
    }
}

/// The CI resume check: a tiny grid, run uninterrupted, then killed
/// mid-sweep and resumed — all three must agree bit-for-bit.
fn smoke(args: &Args) {
    let mut plan = sweeps::fig11_style(0, 4, args.seed); // one small n
    plan.ns = vec![12, 16];
    plan.chunk_size = 2;
    let mut catalog = sweeps::catalog_showcase(14, 4, args.seed);
    catalog.chunk_size = 2;
    // Bilateral kill/resume: the delta-scored consent path must checkpoint
    // and resume bit-identically like every other engine.
    let mut bilateral = sweeps::bilateral_small(10, 3, args.seed);
    bilateral.chunk_size = 1;
    // Exact Buy Game: the whole-strategy (`strategy_rewrites`) trajectories
    // go through the same journal/checkpoint machinery.
    let mut exact_buy = sweeps::exact_buy_small(8, 3, args.seed);
    exact_buy.chunk_size = 1;

    for plan in [plan, catalog, bilateral, exact_buy] {
        let total_chunks: usize = plan.flatten().iter().map(|p| plan.chunks(p).len()).sum();
        let full = run_sweep(
            &plan,
            &RunOptions {
                threads: args.threads,
                ..RunOptions::default()
            },
        )
        .expect("uninterrupted smoke sweep");
        assert!(full.completed);

        let journal = std::env::temp_dir().join(format!(
            "ncg-sweep-smoke-{}-{}.jsonl",
            std::process::id(),
            plan.name
        ));
        let killed = run_sweep(
            &plan,
            &RunOptions {
                threads: args.threads,
                journal: Some(journal.clone()),
                resume: false,
                stop_after_chunks: Some(total_chunks / 2),
                ..RunOptions::default()
            },
        )
        .expect("killed smoke sweep");
        assert!(
            !killed.completed,
            "{}: the mid-sweep kill must leave work pending",
            plan.name
        );
        let resumed = run_sweep(
            &plan,
            &RunOptions {
                threads: args.threads,
                journal: Some(journal.clone()),
                resume: true,
                stop_after_chunks: None,
                ..RunOptions::default()
            },
        )
        .expect("resumed smoke sweep");
        assert!(resumed.completed);
        assert_eq!(
            resumed.resumed_chunks, killed.executed_chunks,
            "{}: every journaled chunk restored",
            plan.name
        );
        assert!(
            resumed.executed_chunks < total_chunks,
            "{}: resume must not re-run completed chunks",
            plan.name
        );
        assert_bit_identical(&full.points, &resumed.points, &plan.name);
        print_outcome(&plan, &resumed);
        std::fs::remove_file(&journal).ok();
        println!(
            "smoke OK: {} kill/resume aggregates bit-identical",
            plan.name
        );
    }
    smoke_sharded(args);
}

/// The CI fault-tolerance check: a supervised 2-shard run with a worker
/// kill injected mid-sweep (shard 0, second chunk claim of its first
/// attempt) must retry, resume its own journal, and merge bit-identical to
/// the unsharded baseline.
fn smoke_sharded(args: &Args) {
    let mut plan = sweeps::fig11_style(0, 4, args.seed);
    plan.ns = vec![12, 16];
    plan.chunk_size = 2;
    let baseline = run_sweep(
        &plan,
        &RunOptions {
            threads: args.threads,
            ..RunOptions::default()
        },
    )
    .expect("unsharded baseline sweep");
    assert!(baseline.completed);

    let dir = std::env::temp_dir().join(format!("ncg-sweep-smoke-shards-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = SupervisorConfig {
        shards: 2,
        threads_per_shard: args.threads,
        backoff_base_ms: 20,
        poll_ms: 10,
        ..SupervisorConfig::default()
    };
    let outcome = supervise(
        &plan,
        &dir,
        &cfg,
        worker_launcher(Some((0, "chunk-run:kill:hits=2"))),
    )
    .expect("supervised smoke sweep");
    assert!(outcome.merged.completed, "supervised smoke must complete");
    assert!(!outcome.degraded);
    assert!(
        outcome.shards[0].crashes >= 1,
        "the injected worker kill must have fired"
    );
    assert_bit_identical(
        &baseline.points,
        &outcome.merged.points,
        "supervised 2-shard smoke",
    );
    std::fs::remove_dir_all(&dir).ok();
    println!(
        "smoke OK: supervised 2-shard sweep with injected worker kill \
         merges bit-identical to the unsharded run"
    );
}

fn main() {
    // Shard-worker re-entry: the supervisor launches this same binary with
    // the NCG_SHARD_* protocol in the environment.
    if std::env::var("NCG_SHARD_WORKER").as_deref() == Ok("1") {
        std::process::exit(ncg_lab::supervisor::worker_main());
    }
    let args = parse_args();
    if let Some(bind) = &args.serve {
        serve_forever(bind);
    }
    if args.smoke {
        smoke(&args);
        return;
    }

    let watch = trace::Stopwatch::start();
    let plans = vec![
        sweeps::fig07_style(args.max_n, args.trials, args.seed),
        sweeps::fig11_style(args.max_n, args.trials, args.seed),
        sweeps::catalog_showcase(args.max_n.min(64), args.trials, args.seed),
        sweeps::bilateral_small(args.max_n, args.trials, args.seed),
        sweeps::exact_buy_small(args.max_n, args.trials, args.seed),
    ];
    let mut runs = Vec::new();
    let mut health = Vec::new();
    for plan in plans {
        let (outcome, incomplete) = if !args.workers.is_empty() {
            run_transported(&plan, &args, &args.workers)
        } else if let Some(shards) = args.shards {
            run_supervised(&plan, &args, shards)
        } else {
            // One journal per plan when checkpointing is requested; the live
            // telemetry stream (chunk/worker/run events) lands next to it.
            let journal = args
                .journal
                .as_ref()
                .map(|p| p.with_extension(format!("{}.jsonl", plan.name)));
            let telemetry = args
                .journal
                .as_ref()
                .map(|p| p.with_extension(format!("{}.telemetry.jsonl", plan.name)));
            let outcome = run_sweep(
                &plan,
                &RunOptions {
                    threads: args.threads,
                    journal,
                    resume: args.resume,
                    stop_after_chunks: None,
                    telemetry,
                    heartbeat: true,
                    shard: None,
                },
            )
            .expect("sweep failed");
            // A single-process run that didn't finish (capped or resumed
            // against a short journal) names its unfinished points too.
            let incomplete = if outcome.completed {
                Vec::new()
            } else {
                outcome
                    .points
                    .iter()
                    .filter(|p| p.completed_chunks < plan.chunks(&p.point).len())
                    .map(|p| p.point.label())
                    .collect()
            };
            (outcome, incomplete)
        };
        print_outcome(&plan, &outcome);
        health.push(RunHealth::of(&plan, &outcome, incomplete));
        runs.push((plan, outcome));
    }
    let seconds = watch.elapsed_secs();
    println!("\ntotal wall time: {seconds:.1}s");
    print_health(&health);

    if let Some(path) = &args.json {
        let json = sweeps::render_json(&runs, false, seconds);
        std::fs::write(path, json).expect("write json snapshot");
        println!("wrote {path}");
    }
}
