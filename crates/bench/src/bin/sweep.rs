//! Batch sweep driver on the `ncg-lab` orchestrator: grinds the Fig. 7/11
//! grids to large `n` on the persistent engine (plus a scenario-catalog
//! showcase), with streaming aggregation and checkpoint/resume.
//!
//! ```text
//! cargo run -p ncg-bench --release --bin sweep -- max_n=512 trials=3 json=BENCH_sweeps.json
//! cargo run -p ncg-bench --release --bin sweep -- smoke=1
//! cargo run -p ncg-bench --release --bin sweep -- journal=sweep.jsonl resume=1
//! ```
//!
//! `smoke=1` runs a tiny grid three ways — uninterrupted, killed mid-sweep,
//! and resumed from the kill's journal — and **asserts** that the resumed
//! aggregates are bit-identical to the uninterrupted run (the CI resume
//! check). `journal=PATH` checkpoints every completed trial chunk; with
//! `resume=1` a previous journal is replayed instead of re-running.

use ncg_bench::sweeps;
use ncg_lab::{run_sweep, PointOutcome, RunOptions, SweepOutcome, SweepPlan};
use ncg_trace as trace;
use std::path::PathBuf;

struct Args {
    max_n: usize,
    trials: usize,
    threads: Option<usize>,
    smoke: bool,
    json: Option<String>,
    journal: Option<PathBuf>,
    resume: bool,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        max_n: 512,
        trials: 3,
        threads: None,
        smoke: false,
        json: None,
        journal: None,
        resume: false,
        seed: 0x5eed_2013,
    };
    for arg in std::env::args().skip(1) {
        let Some((key, value)) = arg.split_once('=') else {
            continue;
        };
        match key {
            "max_n" => args.max_n = value.parse().unwrap_or(args.max_n),
            "trials" => args.trials = value.parse().unwrap_or(args.trials),
            "threads" => args.threads = value.parse().ok(),
            "smoke" => args.smoke = value == "1" || value == "true",
            "json" => args.json = Some(value.to_string()),
            "journal" => args.journal = Some(PathBuf::from(value)),
            "resume" => args.resume = value == "1" || value == "true",
            "seed" => args.seed = value.parse().unwrap_or(args.seed),
            _ => eprintln!("ignoring unknown argument {key}={value}"),
        }
    }
    args
}

fn print_outcome(plan: &SweepPlan, outcome: &SweepOutcome) {
    println!(
        "\nplan {} ({} points, engine {}, {} trials/point; {} chunks run, {} resumed)",
        plan.name,
        outcome.points.len(),
        plan.engine.label(),
        plan.trials,
        outcome.executed_chunks,
        outcome.resumed_chunks,
    );
    println!(
        "{:>42} {:>6} {:>10} {:>8} {:>8} {:>8} {:>9} {:>6}",
        "point", "n", "avg steps", "max", "std", "nonconv", "steps/n", "scan"
    );
    for p in &outcome.points {
        let s = &p.stats;
        let summary = s.summary(p.point.n);
        println!(
            "{:>42} {:>6} {:>10.2} {:>8} {:>8.2} {:>8} {:>9.3} {:>6}",
            p.point.label(),
            p.point.n,
            summary.avg_steps,
            s.max_steps,
            s.std_dev(),
            s.non_converged,
            s.max_steps as f64 / p.point.n as f64,
            if p.point.engine.parallel_scan.is_some() {
                "par"
            } else {
                "seq"
            },
        );
    }
}

fn assert_bit_identical(a: &[PointOutcome], b: &[PointOutcome], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: point count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(
            x.stats,
            y.stats,
            "{what}: aggregates of {} must be bit-identical",
            x.point.label()
        );
        assert_eq!(
            x.stats.mean.to_bits(),
            y.stats.mean.to_bits(),
            "{what}: {} mean bits",
            x.point.label()
        );
        assert_eq!(
            x.stats.m2.to_bits(),
            y.stats.m2.to_bits(),
            "{what}: {} m2 bits",
            x.point.label()
        );
    }
}

/// The CI resume check: a tiny grid, run uninterrupted, then killed
/// mid-sweep and resumed — all three must agree bit-for-bit.
fn smoke(args: &Args) {
    let mut plan = sweeps::fig11_style(0, 4, args.seed); // one small n
    plan.ns = vec![12, 16];
    plan.chunk_size = 2;
    let mut catalog = sweeps::catalog_showcase(14, 4, args.seed);
    catalog.chunk_size = 2;
    // Bilateral kill/resume: the delta-scored consent path must checkpoint
    // and resume bit-identically like every other engine.
    let mut bilateral = sweeps::bilateral_small(10, 3, args.seed);
    bilateral.chunk_size = 1;
    // Exact Buy Game: the whole-strategy (`strategy_rewrites`) trajectories
    // go through the same journal/checkpoint machinery.
    let mut exact_buy = sweeps::exact_buy_small(8, 3, args.seed);
    exact_buy.chunk_size = 1;

    for plan in [plan, catalog, bilateral, exact_buy] {
        let total_chunks: usize = plan.flatten().iter().map(|p| plan.chunks(p).len()).sum();
        let full = run_sweep(
            &plan,
            &RunOptions {
                threads: args.threads,
                ..RunOptions::default()
            },
        )
        .expect("uninterrupted smoke sweep");
        assert!(full.completed);

        let journal = std::env::temp_dir().join(format!(
            "ncg-sweep-smoke-{}-{}.jsonl",
            std::process::id(),
            plan.name
        ));
        let killed = run_sweep(
            &plan,
            &RunOptions {
                threads: args.threads,
                journal: Some(journal.clone()),
                resume: false,
                stop_after_chunks: Some(total_chunks / 2),
                ..RunOptions::default()
            },
        )
        .expect("killed smoke sweep");
        assert!(
            !killed.completed,
            "{}: the mid-sweep kill must leave work pending",
            plan.name
        );
        let resumed = run_sweep(
            &plan,
            &RunOptions {
                threads: args.threads,
                journal: Some(journal.clone()),
                resume: true,
                stop_after_chunks: None,
                ..RunOptions::default()
            },
        )
        .expect("resumed smoke sweep");
        assert!(resumed.completed);
        assert_eq!(
            resumed.resumed_chunks, killed.executed_chunks,
            "{}: every journaled chunk restored",
            plan.name
        );
        assert!(
            resumed.executed_chunks < total_chunks,
            "{}: resume must not re-run completed chunks",
            plan.name
        );
        assert_bit_identical(&full.points, &resumed.points, &plan.name);
        print_outcome(&plan, &resumed);
        std::fs::remove_file(&journal).ok();
        println!(
            "smoke OK: {} kill/resume aggregates bit-identical",
            plan.name
        );
    }
}

fn main() {
    let args = parse_args();
    if args.smoke {
        smoke(&args);
        return;
    }

    let watch = trace::Stopwatch::start();
    let plans = vec![
        sweeps::fig07_style(args.max_n, args.trials, args.seed),
        sweeps::fig11_style(args.max_n, args.trials, args.seed),
        sweeps::catalog_showcase(args.max_n.min(64), args.trials, args.seed),
        sweeps::bilateral_small(args.max_n, args.trials, args.seed),
        sweeps::exact_buy_small(args.max_n, args.trials, args.seed),
    ];
    let mut runs = Vec::new();
    for plan in plans {
        // One journal per plan when checkpointing is requested; the live
        // telemetry stream (chunk/worker/run events) lands next to it.
        let journal = args
            .journal
            .as_ref()
            .map(|p| p.with_extension(format!("{}.jsonl", plan.name)));
        let telemetry = args
            .journal
            .as_ref()
            .map(|p| p.with_extension(format!("{}.telemetry.jsonl", plan.name)));
        let outcome = run_sweep(
            &plan,
            &RunOptions {
                threads: args.threads,
                journal,
                resume: args.resume,
                stop_after_chunks: None,
                telemetry,
                heartbeat: true,
            },
        )
        .expect("sweep failed");
        print_outcome(&plan, &outcome);
        runs.push((plan, outcome));
    }
    let seconds = watch.elapsed_secs();
    println!("\ntotal wall time: {seconds:.1}s");

    if let Some(path) = &args.json {
        let json = sweeps::render_json(&runs, false, seconds);
        std::fs::write(path, json).expect("write json snapshot");
        println!("wrote {path}");
    }
}
