//! Regenerates Fig14 of the paper's empirical study (see `ncg_sim::experiments`).
fn main() {
    ncg_bench::regenerate(ncg_sim::experiments::fig14(), ncg_bench::Scale::from_env());
}
