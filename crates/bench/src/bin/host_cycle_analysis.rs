//! Analyses, state by state, which agents are unhappy along the Fig. 9 / Fig. 10
//! cycles on the Corollary 4.2 host graphs (see the reproduction note in
//! `ncg_instances::hosts`).
use ncg_core::moves::apply_move;
use ncg_core::{Game, Workspace};

fn analyze<G: Game>(label: &str, inst: &ncg_instances::CycleInstance<G>) {
    println!("=== {label} ===");
    let mut g = inst.initial.clone();
    let mut ws = Workspace::new(g.num_nodes());
    for (i, step) in inst.steps.iter().enumerate() {
        print!("state {i}: unhappy = ");
        for u in 0..g.num_nodes() {
            let moves = inst.game.improving_moves(&g, u, &mut ws);
            if !moves.is_empty() {
                print!("{}({}) ", inst.names[u], moves.len());
                if u != step.agent {
                    for m in moves.iter().take(3) {
                        print!("[{:?} {}->{}] ", m.mv, m.old_cost, m.new_cost);
                    }
                }
            }
        }
        println!();
        apply_move(&mut g, step.agent, &step.mv);
    }
}

fn main() {
    analyze(
        "SUM fig09 on host",
        &ncg_instances::fig09::host_restricted_cycle(),
    );
    analyze(
        "MAX fig10 on host",
        &ncg_instances::fig10::host_restricted_cycle(),
    );
}
