//! Regenerates Fig07 of the paper's empirical study (see `ncg_sim::experiments`).
fn main() {
    ncg_bench::regenerate(ncg_sim::experiments::fig07(), ncg_bench::Scale::from_env());
}
