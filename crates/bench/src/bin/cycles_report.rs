//! Verifies and prints every best-response cycle instance reproduced from the paper
//! (Fig. 5, Fig. 9 and Fig. 10), move by move.

use ncg_core::Game;
use ncg_instances::{fig05, fig09, fig10, CycleInstance};

fn report<G: Game>(title: &str, instance: &CycleInstance<G>) {
    println!("== {title} ({}) ==", instance.game.name());
    match instance.verify() {
        Ok(states) => {
            for (i, step) in instance.steps.iter().enumerate() {
                println!(
                    "  step {}: {:<3} {}",
                    i + 1,
                    instance.names[step.agent],
                    step.description
                );
            }
            println!(
                "  cycle of {} moves verified; {} intermediate states; returns to the initial network\n",
                instance.steps.len(),
                states.len() - 1
            );
        }
        Err(err) => println!("  VERIFICATION FAILED: {err}\n"),
    }
}

fn main() {
    report(
        "Fig. 5 — SUM-ASG, every agent owns one edge (Thm 3.7)",
        &fig05::cycle(),
    );
    report(
        "Fig. 9 — SUM Greedy Buy Game (Thm 4.1)",
        &fig09::greedy_buy_game_cycle(),
    );
    report("Fig. 9 — SUM Buy Game (Thm 4.1)", &fig09::buy_game_cycle());
    report(
        "Fig. 10 — MAX Greedy Buy Game (Thm 4.1)",
        &fig10::greedy_buy_game_cycle(),
    );
    report("Fig. 10 — MAX Buy Game (Thm 4.1)", &fig10::buy_game_cycle());
    report(
        "Fig. 9 on the Cor. 4.2 host graph",
        &fig09::host_restricted_cycle(),
    );
    report(
        "Fig. 10 on the Cor. 4.2 host graph",
        &fig10::host_restricted_cycle(),
    );
}
