//! Regenerates Fig. 1: the convergence trace of the MAX Swap Game on the path P_9
//! under the max cost policy with deterministic (smallest-index) tie-breaking.
//!
//! Prints one line per move (mover, swap, cost change) and the final stable tree,
//! plus the Θ(n log n) bound of Theorem 2.11 for comparison.

use ncg_core::dynamics::{Dynamics, DynamicsConfig};
use ncg_core::policy::{Policy, TieBreak};
use ncg_core::SwapGame;
use ncg_graph::properties;
use ncg_instances::paths;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n: usize = std::env::args()
        .skip(1)
        .find_map(|a| a.strip_prefix("n=").and_then(|v| v.parse().ok()))
        .unwrap_or(9);
    let game = SwapGame::max();
    let initial = paths::figure1_path(n);
    let config = DynamicsConfig::analysis(100 * n * n)
        .with_policy(Policy::MaxCost)
        .with_tie_break(TieBreak::Deterministic);
    let mut rng = StdRng::seed_from_u64(1);
    let mut dynamics = Dynamics::new(&game, initial, config);
    println!("MAX-SG on P_{n} under the max cost policy (Fig. 1)");
    while let Some(record) = dynamics.step(&mut rng) {
        println!(
            "step {:>3}: v{:<3} {:?}  cost {} -> {}",
            record.step + 1,
            record.agent + 1,
            record.mv,
            record.old_cost,
            record.new_cost
        );
    }
    let final_graph = dynamics.graph();
    println!(
        "converged after {} moves; final tree diameter {:?} (star or double star: {})",
        dynamics.steps(),
        properties::diameter(final_graph),
        properties::is_star_or_double_star(final_graph)
    );
    println!(
        "Θ(n log n) lower bound of Lemma 2.14: {:.1} moves",
        paths::lemma_2_14_lower_bound(n)
    );
}
