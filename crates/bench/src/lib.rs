//! Shared helpers for the figure-regeneration binaries of the benchmark crate.
//!
//! Every binary regenerates one figure of the paper's empirical study. The scale
//! of the sweep (largest `n`, stride over the `n`-axis, trials per point, worker
//! threads) is controlled by simple `key=value` command-line arguments so that the
//! same binary can run a quick CI-scale sweep or the paper's full 10,000-trial
//! configuration:
//!
//! ```text
//! cargo run -p ncg-bench --release --bin fig07_asg_sum -- max_n=100 trials=10000
//! ```

#![forbid(unsafe_code)]

use ncg_core::cost::{DistanceMetric, EdgeCostMode};
use ncg_core::moves::Move;
use ncg_core::Game;
use ncg_graph::{BfsBuffer, HostGraph, NodeId, OwnedGraph};
use ncg_sim::{render_csv, render_table, FigureData, FigureDef};

/// Forces the apply → BFS → undo fallback for every candidate by claiming a
/// consent requirement — the historical whole-strategy scoring path. Used by
/// the `oracle_ablation` bench and binary as the baseline of the Buy-Game
/// `SetOwned` delta-scoring series.
pub struct ConsentForced<G>(pub G);

impl<G: Game> Game for ConsentForced<G> {
    fn name(&self) -> String {
        format!("{}+apply-undo", self.0.name())
    }
    fn metric(&self) -> DistanceMetric {
        self.0.metric()
    }
    fn alpha(&self) -> f64 {
        self.0.alpha()
    }
    fn edge_cost_mode(&self) -> EdgeCostMode {
        self.0.edge_cost_mode()
    }
    fn host(&self) -> &HostGraph {
        self.0.host()
    }
    fn cost(&self, g: &OwnedGraph, u: NodeId, buf: &mut BfsBuffer) -> f64 {
        self.0.cost(g, u, buf)
    }
    fn candidate_moves(&self, g: &OwnedGraph, u: NodeId, out: &mut Vec<Move>) {
        self.0.candidate_moves(g, u, out)
    }
    fn needs_consent(&self) -> bool {
        true
    }
}

/// Scale parameters of a regeneration run.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Largest number of agents in the sweep.
    pub max_n: usize,
    /// Keep every `stride`-th sweep point.
    pub stride: usize,
    /// Trials per point.
    pub trials: usize,
    /// Worker threads (`None` = all CPUs).
    pub threads: Option<usize>,
    /// Also print CSV after the table.
    pub csv: bool,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            max_n: 40,
            stride: 1,
            trials: 30,
            threads: None,
            csv: false,
        }
    }
}

impl Scale {
    /// Parses `key=value` arguments (`max_n`, `stride`, `trials`, `threads`, `csv`).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut scale = Scale::default();
        for arg in args {
            let Some((key, value)) = arg.split_once('=') else {
                continue;
            };
            match key {
                "max_n" => scale.max_n = value.parse().unwrap_or(scale.max_n),
                "stride" => scale.stride = value.parse().unwrap_or(scale.stride),
                "trials" => scale.trials = value.parse().unwrap_or(scale.trials),
                "threads" => scale.threads = value.parse().ok(),
                "csv" => scale.csv = value.parse().unwrap_or(false),
                _ => eprintln!("ignoring unknown argument {key}={value}"),
            }
        }
        scale
    }

    /// Parses the process arguments.
    pub fn from_env() -> Self {
        Self::from_args(std::env::args().skip(1))
    }
}

/// Runs one figure definition at the given scale and prints the table (and
/// optionally CSV) to stdout.
pub fn regenerate(def: FigureDef, scale: Scale) {
    let def = def.scaled(scale.max_n, scale.stride, scale.trials);
    eprintln!(
        "regenerating {} (max_n={}, stride={}, trials={}) …",
        def.id, scale.max_n, scale.stride, scale.trials
    );
    let data = FigureData::measure(&def, scale.threads);
    println!("{}", render_table(&def, &data));
    if scale.csv {
        println!("{}", render_csv(&data));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        let s = Scale::from_args(
            [
                "max_n=20", "trials=7", "stride=2", "csv=true", "bogus", "x=1",
            ]
            .map(String::from),
        );
        assert_eq!(s.max_n, 20);
        assert_eq!(s.trials, 7);
        assert_eq!(s.stride, 2);
        assert!(s.csv);
        assert_eq!(s.threads, None);
    }
}
