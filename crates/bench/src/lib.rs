//! Shared helpers for the figure-regeneration binaries of the benchmark crate.
//!
//! Every binary regenerates one figure of the paper's empirical study. The scale
//! of the sweep (largest `n`, stride over the `n`-axis, trials per point, worker
//! threads) is controlled by simple `key=value` command-line arguments so that the
//! same binary can run a quick CI-scale sweep or the paper's full 10,000-trial
//! configuration:
//!
//! ```text
//! cargo run -p ncg-bench --release --bin fig07_asg_sum -- max_n=100 trials=10000
//! ```

#![forbid(unsafe_code)]

use ncg_core::cost::{DistanceMetric, EdgeCostMode};
use ncg_core::moves::Move;
use ncg_core::Game;
use ncg_graph::{BfsBuffer, HostGraph, NodeId, OwnedGraph};
use ncg_sim::{render_csv, render_table, FigureData, FigureDef};

/// Forces the apply → BFS → undo fallback for every candidate by claiming a
/// consent requirement (while *not* opting into delta-scored consent) — the
/// historical whole-strategy scoring path. Used by the `oracle_ablation`
/// bench and binary as the baseline of the Buy-Game `SetOwned` and bilateral
/// delta-scoring series.
pub struct ConsentForced<G>(pub G);

impl<G: Game> Game for ConsentForced<G> {
    fn name(&self) -> String {
        format!("{}+apply-undo", self.0.name())
    }
    fn metric(&self) -> DistanceMetric {
        self.0.metric()
    }
    fn alpha(&self) -> f64 {
        self.0.alpha()
    }
    fn edge_cost_mode(&self) -> EdgeCostMode {
        self.0.edge_cost_mode()
    }
    fn host(&self) -> &HostGraph {
        self.0.host()
    }
    fn cost(&self, g: &OwnedGraph, u: NodeId, buf: &mut BfsBuffer) -> f64 {
        self.0.cost(g, u, buf)
    }
    fn candidate_moves(&self, g: &OwnedGraph, u: NodeId, out: &mut Vec<Move>) {
        self.0.candidate_moves(g, u, out)
    }
    fn move_is_blocked(
        &self,
        g_before: &OwnedGraph,
        agent: NodeId,
        mv: &Move,
        g_after: &OwnedGraph,
        buf: &mut BfsBuffer,
    ) -> bool {
        self.0.move_is_blocked(g_before, agent, mv, g_after, buf)
    }
    fn needs_consent(&self) -> bool {
        true
    }
    // `delta_consent` deliberately stays `false`: that is the whole point of
    // the wrapper — every candidate takes the scratch-graph fallback.
}

/// Scale parameters of a regeneration run.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Largest number of agents in the sweep.
    pub max_n: usize,
    /// Keep every `stride`-th sweep point.
    pub stride: usize,
    /// Trials per point.
    pub trials: usize,
    /// Worker threads (`None` = all CPUs).
    pub threads: Option<usize>,
    /// Also print CSV after the table.
    pub csv: bool,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            max_n: 40,
            stride: 1,
            trials: 30,
            threads: None,
            csv: false,
        }
    }
}

impl Scale {
    /// Parses `key=value` arguments (`max_n`, `stride`, `trials`, `threads`, `csv`).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut scale = Scale::default();
        for arg in args {
            let Some((key, value)) = arg.split_once('=') else {
                continue;
            };
            match key {
                "max_n" => scale.max_n = value.parse().unwrap_or(scale.max_n),
                "stride" => scale.stride = value.parse().unwrap_or(scale.stride),
                "trials" => scale.trials = value.parse().unwrap_or(scale.trials),
                "threads" => scale.threads = value.parse().ok(),
                "csv" => scale.csv = value.parse().unwrap_or(false),
                _ => eprintln!("ignoring unknown argument {key}={value}"),
            }
        }
        scale
    }

    /// Parses the process arguments.
    pub fn from_env() -> Self {
        Self::from_args(std::env::args().skip(1))
    }
}

/// Sweep-plan presets and reporting for the `sweep` binary: the Fig. 7/11
/// grids extended to large `n` on the persistent engine, plus a showcase of
/// the `ncg-lab` scenario catalog.
pub mod sweeps {
    use ncg_core::policy::Policy;
    use ncg_lab::{PointOutcome, Scenario, SweepOutcome, SweepPlan};
    use ncg_sim::{AlphaSpec, EngineSpec, GameFamily, InitialTopology, STEP_HIST_BUCKET_WIDTH};
    use std::fmt::Write as _;

    /// Doubling `n` axis `64, 128, … , max_n` (clamped below by one entry).
    fn doubling_ns(max_n: usize) -> Vec<usize> {
        let mut ns = Vec::new();
        let mut n = 64usize;
        while n <= max_n {
            ns.push(n);
            n *= 2;
        }
        if ns.is_empty() {
            ns.push(max_n.max(8));
        }
        ns
    }

    /// Fig. 7-style grid (SUM-ASG, budgeted starts) extended to `max_n` on
    /// the persistent engine.
    pub fn fig07_style(max_n: usize, trials: usize, base_seed: u64) -> SweepPlan {
        let mut plan = SweepPlan::new("fig07-style");
        plan.scenarios = vec![
            Scenario::Paper(InitialTopology::Budgeted { k: 1 }),
            Scenario::Paper(InitialTopology::Budgeted { k: 3 }),
        ];
        plan.families = vec![GameFamily::AsgSum];
        plan.policies = vec![Policy::MaxCost];
        plan.ns = doubling_ns(max_n);
        plan.trials = trials;
        plan.chunk_size = trials.div_ceil(4).max(1);
        plan.base_seed = base_seed;
        plan.engine = EngineSpec::persistent();
        plan
    }

    /// Fig. 11-style grid (SUM-GBG, random `m = 2n` starts, α ∈ {n/4, n})
    /// extended to `max_n` on the persistent engine.
    pub fn fig11_style(max_n: usize, trials: usize, base_seed: u64) -> SweepPlan {
        let mut plan = SweepPlan::new("fig11-style");
        plan.scenarios = vec![Scenario::Paper(InitialTopology::RandomEdges { m_per_n: 2 })];
        plan.families = vec![GameFamily::GbgSum];
        plan.policies = vec![Policy::MaxCost];
        plan.alphas = vec![AlphaSpec::FractionOfN(0.25), AlphaSpec::FractionOfN(1.0)];
        plan.ns = doubling_ns(max_n);
        plan.trials = trials;
        plan.chunk_size = trials.div_ceil(4).max(1);
        plan.base_seed = base_seed.wrapping_add(0x11);
        plan.engine = EngineSpec::persistent();
        plan
    }

    /// Bilateral equal-split sweeps (paper §5) at tiny `n` — bilateral best
    /// responses enumerate every neighbour set, so `n` is capped at
    /// `GameFamily::MAX_BILATERAL_N` — with the consent checks delta-scored
    /// on the persistent engine (no apply → BFS → undo per candidate).
    pub fn bilateral_small(max_n: usize, trials: usize, base_seed: u64) -> SweepPlan {
        let cap = max_n.min(GameFamily::MAX_BILATERAL_N);
        let mut plan = SweepPlan::new("bilateral-small");
        plan.scenarios = vec![Scenario::Paper(InitialTopology::RandomEdges { m_per_n: 2 })];
        plan.families = vec![GameFamily::BilateralSum];
        plan.policies = vec![Policy::MaxCost];
        plan.alphas = vec![AlphaSpec::FractionOfN(0.25), AlphaSpec::FractionOfN(1.0)];
        plan.ns = [8usize, 10, 12, 14]
            .into_iter()
            .filter(|&n| n <= cap)
            .collect();
        if plan.ns.is_empty() {
            plan.ns.push(cap.max(6));
        }
        plan.trials = trials;
        plan.chunk_size = trials.div_ceil(4).max(1);
        plan.base_seed = base_seed.wrapping_add(0xb1);
        plan.engine = EngineSpec::persistent();
        plan
    }

    /// Exact Buy Game sweeps (the original NCG of Fabrikant et al.) at tiny
    /// `n` — best responses enumerate every owned-neighbour subset, so `n` is
    /// capped at `GameFamily::MAX_EXACT_BUY_N` — with the Gray-code delta
    /// scoring of the exponential enumeration on the persistent engine. Its
    /// trajectories are pure `strategy_rewrites`, which is what makes the
    /// family worth sweeping: the `sw` column of the move-kind reports is
    /// exercised at every point.
    pub fn exact_buy_small(max_n: usize, trials: usize, base_seed: u64) -> SweepPlan {
        let cap = max_n.min(GameFamily::MAX_EXACT_BUY_N);
        let mut plan = SweepPlan::new("exact-buy-small");
        plan.scenarios = vec![Scenario::Paper(InitialTopology::RandomEdges { m_per_n: 2 })];
        plan.families = vec![GameFamily::BuySum];
        plan.policies = vec![Policy::MaxCost];
        plan.alphas = vec![AlphaSpec::FractionOfN(0.25), AlphaSpec::FractionOfN(1.0)];
        plan.ns = [8usize, 10, 12].into_iter().filter(|&n| n <= cap).collect();
        if plan.ns.is_empty() {
            plan.ns.push(cap.max(6));
        }
        plan.trials = trials;
        plan.chunk_size = trials.div_ceil(4).max(1);
        plan.base_seed = base_seed.wrapping_add(0xb6);
        plan.engine = EngineSpec::persistent();
        plan
    }

    /// A tour of the new catalog families on the greedy buy game.
    pub fn catalog_showcase(n: usize, trials: usize, base_seed: u64) -> SweepPlan {
        let mut plan = SweepPlan::new("catalog-showcase");
        plan.scenarios = vec![
            Scenario::ErdosRenyi { m_per_n: 2 },
            Scenario::SmallWorld {
                k: 2,
                rewire_permille: 100,
            },
            Scenario::TorusGrid,
            Scenario::Hypercube,
            Scenario::PreferentialAttachment { m: 2 },
        ];
        plan.families = vec![GameFamily::GbgSum];
        plan.policies = vec![Policy::MaxCost];
        plan.alphas = vec![AlphaSpec::FractionOfN(0.25)];
        plan.ns = vec![n];
        plan.trials = trials;
        plan.chunk_size = trials.div_ceil(2).max(1);
        plan.base_seed = base_seed.wrapping_add(0x5c);
        plan.engine = EngineSpec::persistent();
        plan
    }

    /// The non-empty buckets of a point's steps-per-agent histogram as
    /// `"[lo,hi)": count` JSON members; the last bucket is open-ended (it
    /// absorbs every ratio beyond the covered range) and renders as
    /// `"[lo,inf)"`.
    fn hist_json(p: &PointOutcome) -> String {
        let mut parts = Vec::new();
        for (i, &count) in p.stats.hist.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let lo = i as f64 * STEP_HIST_BUCKET_WIDTH;
            if i + 1 < p.stats.hist.len() {
                let hi = lo + STEP_HIST_BUCKET_WIDTH;
                parts.push(format!("\"[{lo:.1},{hi:.1})\": {count}"));
            } else {
                parts.push(format!("\"[{lo:.1},inf)\": {count}"));
            }
        }
        parts.join(", ")
    }

    /// Renders the measured sweeps as the `BENCH_sweeps.json` snapshot.
    pub fn render_json(runs: &[(SweepPlan, SweepOutcome)], smoke: bool, seconds: f64) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"smoke\": {smoke},");
        let _ = writeln!(out, "  \"wall_seconds\": {seconds:.1},");
        out.push_str("  \"sweeps\": [\n");
        for (si, (plan, outcome)) in runs.iter().enumerate() {
            let _ = writeln!(out, "    {{\"plan\": \"{}\",", plan.name);
            let _ = writeln!(out, "     \"engine\": \"{}\",", plan.engine.label());
            let _ = writeln!(out, "     \"trials_per_point\": {},", plan.trials);
            let worst = outcome
                .points
                .iter()
                .map(|p| p.stats.max_steps as f64 / p.point.n as f64)
                .fold(0.0, f64::max);
            let _ = writeln!(out, "     \"worst_max_steps_per_agent\": {worst:.3},");
            out.push_str("     \"points\": [\n");
            for (i, p) in outcome.points.iter().enumerate() {
                let s = &p.stats;
                let _ = write!(
                    out,
                    "       {{\"label\": \"{}\", \"n\": {}, \"trials\": {}, \
                     \"avg_steps\": {:.3}, \"max_steps\": {}, \"min_steps\": {}, \
                     \"std_dev\": {:.3}, \"non_converged\": {}, \
                     \"avg_steps_per_agent\": {:.4}, \"max_steps_per_agent\": {:.4}, \
                     \"scan_mode\": {}, \"hist_steps_per_agent\": {{{}}}}}",
                    p.point.label().replace(',', ";"),
                    p.point.n,
                    s.count,
                    s.summary(p.point.n).avg_steps,
                    s.max_steps,
                    s.min_steps,
                    s.std_dev(),
                    s.non_converged,
                    s.summary(p.point.n).avg_steps_per_agent(),
                    s.max_steps as f64 / p.point.n as f64,
                    p.point.engine.parallel_scan.is_some(),
                    hist_json(p)
                );
                out.push_str(if i + 1 < outcome.points.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            out.push_str("     ]}");
            out.push_str(if si + 1 < runs.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Runs one figure definition at the given scale and prints the table (and
/// optionally CSV) to stdout.
pub fn regenerate(def: FigureDef, scale: Scale) {
    let def = def.scaled(scale.max_n, scale.stride, scale.trials);
    eprintln!(
        "regenerating {} (max_n={}, stride={}, trials={}) …",
        def.id, scale.max_n, scale.stride, scale.trials
    );
    let data = FigureData::measure(&def, scale.threads);
    println!("{}", render_table(&def, &data));
    if scale.csv {
        println!("{}", render_csv(&data));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        let s = Scale::from_args(
            [
                "max_n=20", "trials=7", "stride=2", "csv=true", "bogus", "x=1",
            ]
            .map(String::from),
        );
        assert_eq!(s.max_n, 20);
        assert_eq!(s.trials, 7);
        assert_eq!(s.stride, 2);
        assert!(s.csv);
        assert_eq!(s.threads, None);
    }
}
