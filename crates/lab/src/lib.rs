//! # ncg-lab
//!
//! The batch experimentation layer on top of the simulation harness: a
//! **scenario catalog** of named, seeded initial-network families beyond the
//! paper's topologies, and an **adaptive batch orchestrator** that grinds
//! arbitrary sweep grids with streaming aggregation and exact
//! checkpoint/resume.
//!
//! * [`scenario`] — the catalog: Erdős–Rényi `G(n, m)`, ring lattices,
//!   small-world rewirings, torus grids, hypercubes, preferential attachment,
//!   star forests, plus the paper's own topologies; all seed-deterministic
//!   and structurally property-tested.
//! * [`plan`] — declarative [`SweepPlan`] grids (scenario × game family ×
//!   policy × α × `n`), flattened into stably-hashed [`SweepPoint`]s and
//!   fixed trial chunks; resolves the trial-level vs. scan-level parallelism
//!   split from `n`, the trial count and the machine's core count.
//! * [`orchestrator`] — the shared work queue: workers steal `(point,
//!   trial-chunk)` jobs round-robin across points, aggregates stream through
//!   [`ncg_sim::StreamingStats`] (memory `O(points)`, not `O(trials)`), and
//!   every completed chunk is durably journaled.
//! * [`journal`] — the JSON-lines chunk journal: bit-exact f64 payloads,
//!   plan-hash guarded, torn-tail tolerant.
//! * [`telemetry`] — best-effort live JSONL telemetry written next to the
//!   journal (per-chunk progress, per-worker utilization, run summary), plus
//!   optional stderr heartbeat lines with points-done and ETA.
//! * [`shard`] — deterministic partition of a plan's `(point, chunk)` jobs
//!   into `k` shards and the merge/fold of per-shard journals back into
//!   single-process-identical aggregates.
//! * [`supervisor`] — the fault-tolerant shard runner: child-process shard
//!   workers, liveness via journal/telemetry growth, retry with exponential
//!   backoff, timeout-and-kill on hang, graceful degradation when a shard
//!   exhausts its retry budget.
//! * [`transport`] — cross-machine shard transport: a tiny length-prefixed,
//!   checksummed TCP protocol where a coordinator dispatches shard
//!   assignments to remote accept-loop workers, with retry/backoff,
//!   byte-growth heartbeat liveness, reassignment on stall or sever, and
//!   per-attempt journals fed through the same merge fold.
//! * [`faultpoint`] — the kill-anywhere fault-injection harness (env-gated
//!   named fault points, zero overhead when off) behind the fault matrix.
//!
//! The headline guarantee, enforced by the workspace reproducibility test:
//! a plan run with 1 worker, N workers, killed and resumed mid-sweep, or
//! sharded across supervised processes (with or without injected faults)
//! produces **bit-identical** per-point aggregates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faultpoint;
pub mod journal;
pub mod orchestrator;
pub mod plan;
pub mod scenario;
pub mod shard;
pub mod supervisor;
pub mod telemetry;
pub mod transport;

pub use journal::{load_journal, ChunkRecord, JournalWriter};
pub use orchestrator::{run_sweep, PointOutcome, RunOptions, SweepOutcome};
pub use plan::{fnv1a, AutoSplit, SweepPlan, SweepPoint};
pub use scenario::Scenario;
pub use shard::{merge_shard_journals, shard_of, MergedSweep, ShardSpec};
pub use supervisor::{
    backoff_with_jitter, supervise, ShardReport, SupervisedOutcome, SupervisorConfig,
};
pub use telemetry::{ChunkEvent, TelemetryWriter};
pub use transport::{
    run_distributed, serve, ServeOptions, ShardTransportReport, TransportConfig, TransportOutcome,
};
