//! Declarative sweep plans: cartesian grids over the scenario catalog.
//!
//! A [`SweepPlan`] names a grid over scenario × game family × move policy ×
//! α × `n`; [`SweepPlan::flatten`] expands it into concrete [`SweepPoint`]s
//! (one per grid cell) and fixed trial *chunks* — the unit of scheduling and
//! of checkpoint/resume. Every point carries a stable 64-bit hash derived
//! from its full configuration, so journal entries survive process restarts
//! and plan re-construction.
//!
//! The plan also resolves the **trial-level vs. scan-level parallelism
//! split** the ROADMAP flagged: whether a point's trials run with the
//! parallel unhappiness scan is decided *here*, from `n`, the trial count and
//! the machine's core count — never from the `threads` run option — so on a
//! given machine the aggregates are bit-identical across worker counts and
//! kill/resume splits. (A resume on a machine with a different core count
//! that would flip the split is caught by the journal's plan-hash guard and
//! refused rather than silently mixed.) The scan *width*, which cannot
//! influence trajectories, is the only knob resolved at run time.

use crate::scenario::Scenario;
use ncg_core::policy::Policy;
use ncg_core::Game;
use ncg_sim::{AlphaSpec, EngineSpec, GameFamily};

/// FNV-1a over a byte string: the stable hash behind point and plan identity
/// (never `DefaultHasher`, whose output may change between Rust releases).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Thresholds of the automatic trial-vs-scan parallelism split.
///
/// A point switches its trials to the parallel unhappiness scan when its `n`
/// is at least `scan_min_n`, the plan runs at most `scan_max_trials` trials
/// per point, **and** the machine has at least `scan_min_cores` cores: many
/// trials saturate the workers on their own, few trials of a huge `n` leave
/// cores idle that the scan can use, and on a single core the full rescan
/// only forfeits the sequential policy's short-circuit (the max-cost scan
/// stops at the first unhappy agent; the parallel scan examines all `n`).
///
/// The decision consumes the *core count*, never the `threads` run option,
/// so on one machine the aggregates are identical for every worker count and
/// resume split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoSplit {
    /// Minimum `n` for the per-step scan to be worth distributing.
    pub scan_min_n: usize,
    /// Maximum trials per point at which trial-level parallelism alone is
    /// considered insufficient.
    pub scan_max_trials: usize,
    /// Minimum machine cores for the parallel scan to pay for itself.
    pub scan_min_cores: usize,
}

impl Default for AutoSplit {
    fn default() -> Self {
        AutoSplit {
            scan_min_n: 256,
            scan_max_trials: 4,
            scan_min_cores: 2,
        }
    }
}

impl AutoSplit {
    /// Never use the parallel scan (every trial is sequential).
    pub fn never() -> Self {
        AutoSplit {
            scan_min_n: usize::MAX,
            scan_max_trials: 0,
            scan_min_cores: usize::MAX,
        }
    }

    /// True if a point with `n` agents and `trials` trials should run its
    /// per-step scans in parallel on a machine with `cores` cores.
    pub fn scan_mode(&self, n: usize, trials: usize, cores: usize) -> bool {
        n >= self.scan_min_n && trials <= self.scan_max_trials && cores >= self.scan_min_cores
    }
}

/// The machine's core count as seen by the split decision.
pub fn detected_cores() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// A declarative sweep: the cartesian grid and its execution parameters.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// Plan name (journals and reports).
    pub name: String,
    /// Initial-network families.
    pub scenarios: Vec<Scenario>,
    /// Game families.
    pub families: Vec<GameFamily>,
    /// Move policies.
    pub policies: Vec<Policy>,
    /// Edge-price rules (collapsed to a single entry for families that take
    /// no α, so swap games do not multiply the grid).
    pub alphas: Vec<AlphaSpec>,
    /// Numbers of agents.
    pub ns: Vec<usize>,
    /// Independent trials per point.
    pub trials: usize,
    /// Trials per chunk (the checkpoint granule).
    pub chunk_size: usize,
    /// Base RNG seed of the whole sweep.
    pub base_seed: u64,
    /// Step limit per trial as a multiple of `n`.
    pub max_steps_factor: usize,
    /// Execution engine of every trial (`parallel_scan` is overridden per
    /// point by the [`AutoSplit`] decision).
    pub engine: EngineSpec,
    /// Automatic trial-vs-scan parallelism split.
    pub split: AutoSplit,
}

impl SweepPlan {
    /// A small, fully-specified plan with sensible defaults: callers override
    /// the grid axes they care about.
    pub fn new(name: &str) -> Self {
        SweepPlan {
            name: name.to_string(),
            scenarios: vec![Scenario::Paper(ncg_sim::InitialTopology::Budgeted { k: 2 })],
            families: vec![GameFamily::AsgSum],
            policies: vec![Policy::MaxCost],
            alphas: vec![AlphaSpec::FractionOfN(0.25)],
            ns: vec![20],
            trials: 8,
            chunk_size: 4,
            base_seed: 0x5eed,
            max_steps_factor: 400,
            engine: EngineSpec::persistent(),
            split: AutoSplit::default(),
        }
    }

    /// Expands the grid into concrete sweep points (alpha collapsed for
    /// α-free families, scan mode resolved per point against this machine's
    /// core count).
    pub fn flatten(&self) -> Vec<SweepPoint> {
        self.flatten_with_cores(detected_cores())
    }

    /// Like [`SweepPlan::flatten`], with an explicit core count for the
    /// scan-mode decision (tests and cross-machine tooling).
    pub fn flatten_with_cores(&self, cores: usize) -> Vec<SweepPoint> {
        let mut points = Vec::new();
        let no_alpha = [AlphaSpec::Fixed(0.0)];
        for &scenario in &self.scenarios {
            for &family in &self.families {
                let alphas: &[AlphaSpec] = if family.needs_alpha() {
                    &self.alphas
                } else {
                    &no_alpha
                };
                for &alpha in alphas {
                    for &policy in &self.policies {
                        for &n in &self.ns {
                            points.push(self.point(scenario, family, alpha, policy, n, cores));
                        }
                    }
                }
            }
        }
        points
    }

    fn point(
        &self,
        scenario: Scenario,
        family: GameFamily,
        alpha: AlphaSpec,
        policy: Policy,
        n: usize,
        cores: usize,
    ) -> SweepPoint {
        let mut engine = self.engine;
        engine.parallel_scan = if self.split.scan_mode(n, self.trials, cores) {
            // Width 0 is the "resolve from the machine at run time" marker;
            // the orchestrator replaces it before execution. The *mode* is
            // part of the point identity, the width never is.
            Some(0)
        } else {
            None
        };
        let mut point = SweepPoint {
            scenario,
            family,
            alpha,
            policy,
            n,
            trials: self.trials,
            base_seed: 0,
            max_steps_factor: self.max_steps_factor,
            engine,
            hash: 0,
        };
        // Per-point trial seed: decorrelates the grid cells while staying a
        // pure function of the plan seed and the point configuration.
        point.base_seed = self
            .base_seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(fnv1a(point.descriptor().as_bytes()));
        point.hash = fnv1a(point.descriptor().as_bytes()) ^ point.base_seed.rotate_left(17);
        point
    }

    /// The chunk layout of one point: `(start, len)` trial ranges.
    pub fn chunks(&self, point: &SweepPoint) -> Vec<(usize, usize)> {
        let size = self.chunk_size.max(1);
        let mut out = Vec::new();
        let mut start = 0;
        while start < point.trials {
            let len = size.min(point.trials - start);
            out.push((start, len));
            start += len;
        }
        out
    }

    /// Stable identity of the whole plan (grid + chunk layout, including the
    /// per-point scan modes); journals are only resumable into a plan with
    /// the same hash — a resume on a machine whose core count would flip a
    /// scan mode is therefore refused instead of silently mixing engines.
    pub fn plan_hash(&self) -> u64 {
        let mut desc = format!("{}|chunk={}|", self.name, self.chunk_size.max(1));
        for p in self.flatten() {
            desc.push_str(&format!("{:016x};", p.hash));
        }
        fnv1a(desc.as_bytes())
    }

    /// Serializes the plan as a line-based `key=value` spec — the transport
    /// format handed to supervised shard-worker processes. Lossless: α values
    /// and every engine field are encoded exactly (α via IEEE bit patterns),
    /// so [`SweepPlan::parse_spec`] reconstructs a plan with the identical
    /// [`SweepPlan::plan_hash`] *on the same machine* (the scan-mode split
    /// consults the core count; a cross-machine flip is still caught by the
    /// worker's plan-hash check).
    pub fn to_spec_string(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("ncg_sweep_plan=1\n");
        let _ = writeln!(s, "name={}", self.name);
        for sc in &self.scenarios {
            let _ = writeln!(s, "scenario={}", sc.label());
        }
        for f in &self.families {
            let _ = writeln!(s, "family={}", f.label());
        }
        for p in &self.policies {
            let _ = writeln!(s, "policy={}", p.label());
        }
        for a in &self.alphas {
            let bits = match a {
                AlphaSpec::Fixed(v) => format!("f{:016x}", v.to_bits()),
                AlphaSpec::FractionOfN(v) => format!("n{:016x}", v.to_bits()),
            };
            let _ = writeln!(s, "alpha={bits}");
        }
        for n in &self.ns {
            let _ = writeln!(s, "n={n}");
        }
        let _ = writeln!(s, "trials={}", self.trials);
        let _ = writeln!(s, "chunk_size={}", self.chunk_size);
        let _ = writeln!(s, "base_seed={:016x}", self.base_seed);
        let _ = writeln!(s, "max_steps_factor={}", self.max_steps_factor);
        let _ = writeln!(s, "engine.oracle={}", self.engine.oracle.label());
        let _ = writeln!(s, "engine.dirty={}", u8::from(self.engine.dirty_agents));
        let _ = writeln!(s, "engine.par={}", opt_str(self.engine.parallel_scan));
        let _ = writeln!(
            s,
            "engine.cache={}",
            opt_str(self.engine.oracle_cache_budget)
        );
        let _ = writeln!(
            s,
            "engine.bytes={}",
            opt_str(self.engine.oracle_byte_budget)
        );
        let _ = writeln!(s, "engine.warm={}", u8::from(self.engine.warm_parked));
        let _ = writeln!(s, "engine.batch={}", u8::from(self.engine.warm_batching));
        let _ = writeln!(s, "split.scan_min_n={}", self.split.scan_min_n);
        let _ = writeln!(s, "split.scan_max_trials={}", self.split.scan_max_trials);
        let _ = writeln!(s, "split.scan_min_cores={}", self.split.scan_min_cores);
        s
    }

    /// Parses a spec produced by [`SweepPlan::to_spec_string`]. Unknown keys
    /// are rejected (a version-skewed spec must fail loudly, not
    /// half-apply); so is any unparseable value.
    pub fn parse_spec(spec: &str) -> Result<SweepPlan, String> {
        let mut lines = spec.lines().filter(|l| !l.trim().is_empty());
        if lines.next() != Some("ncg_sweep_plan=1") {
            return Err("not a sweep-plan spec (missing ncg_sweep_plan=1 header)".into());
        }
        let mut plan = SweepPlan::new("unnamed");
        plan.scenarios.clear();
        plan.families.clear();
        plan.policies.clear();
        plan.alphas.clear();
        plan.ns.clear();
        fn bad(key: &str, val: &str) -> String {
            format!("bad value for {key}: {val:?}")
        }
        fn uint<T: std::str::FromStr>(key: &str, val: &str) -> Result<T, String> {
            val.parse().map_err(|_| bad(key, val))
        }
        for line in lines {
            let (key, val) = line
                .split_once('=')
                .ok_or_else(|| format!("malformed spec line: {line:?}"))?;
            match key {
                "name" => plan.name = val.to_string(),
                "scenario" => plan
                    .scenarios
                    .push(Scenario::parse(val).ok_or_else(|| bad(key, val))?),
                "family" => plan
                    .families
                    .push(GameFamily::parse(val).ok_or_else(|| bad(key, val))?),
                "policy" => plan
                    .policies
                    .push(Policy::parse(val).ok_or_else(|| bad(key, val))?),
                "alpha" => {
                    // `get` rather than slicing: an empty or non-ASCII value
                    // must be a parse error, not an out-of-bounds panic.
                    let digits = val.get(1..).unwrap_or("");
                    let bits = u64::from_str_radix(digits, 16).map_err(|_| bad(key, val));
                    plan.alphas.push(match val.as_bytes().first() {
                        Some(b'f') => AlphaSpec::Fixed(f64::from_bits(bits?)),
                        Some(b'n') => AlphaSpec::FractionOfN(f64::from_bits(bits?)),
                        _ => return Err(bad(key, val)),
                    });
                }
                "n" => plan.ns.push(uint(key, val)?),
                "trials" => plan.trials = uint(key, val)?,
                "chunk_size" => plan.chunk_size = uint(key, val)?,
                "base_seed" => {
                    plan.base_seed = u64::from_str_radix(val, 16).map_err(|_| bad(key, val))?;
                }
                "max_steps_factor" => plan.max_steps_factor = uint(key, val)?,
                "engine.oracle" => {
                    plan.engine.oracle =
                        ncg_graph::OracleKind::parse(val).ok_or_else(|| bad(key, val))?;
                }
                "engine.dirty" => plan.engine.dirty_agents = parse_flag(key, val)?,
                "engine.par" => plan.engine.parallel_scan = parse_opt(key, val)?,
                "engine.cache" => plan.engine.oracle_cache_budget = parse_opt(key, val)?,
                "engine.bytes" => plan.engine.oracle_byte_budget = parse_opt(key, val)?,
                "engine.warm" => plan.engine.warm_parked = parse_flag(key, val)?,
                "engine.batch" => plan.engine.warm_batching = parse_flag(key, val)?,
                "split.scan_min_n" => plan.split.scan_min_n = uint(key, val)?,
                "split.scan_max_trials" => plan.split.scan_max_trials = uint(key, val)?,
                "split.scan_min_cores" => plan.split.scan_min_cores = uint(key, val)?,
                _ => return Err(format!("unknown spec key: {key:?}")),
            }
        }
        Ok(plan)
    }
}

fn opt_str<T: std::fmt::Display>(v: Option<T>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "none".to_string(),
    }
}

fn parse_opt<T: std::str::FromStr>(key: &str, val: &str) -> Result<Option<T>, String> {
    if val == "none" {
        return Ok(None);
    }
    val.parse()
        .map(Some)
        .map_err(|_| format!("bad value for {key}: {val:?}"))
}

fn parse_flag(key: &str, val: &str) -> Result<bool, String> {
    match val {
        "0" => Ok(false),
        "1" => Ok(true),
        _ => Err(format!("bad value for {key}: {val:?}")),
    }
}

/// One cell of the sweep grid, ready to execute.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Initial-network family.
    pub scenario: Scenario,
    /// Game family.
    pub family: GameFamily,
    /// Edge-price rule.
    pub alpha: AlphaSpec,
    /// Move policy.
    pub policy: Policy,
    /// Number of agents.
    pub n: usize,
    /// Independent trials.
    pub trials: usize,
    /// Trial `t` seeds its RNG stream with `base_seed + t`.
    pub base_seed: u64,
    /// Step limit as a multiple of `n`.
    pub max_steps_factor: usize,
    /// Execution engine; `parallel_scan == Some(0)` means "parallel scan
    /// with a machine-resolved width".
    pub engine: EngineSpec,
    /// Stable 64-bit identity (journal key).
    pub hash: u64,
}

impl SweepPoint {
    /// The canonical configuration string hashed into the point identity.
    /// The α is encoded via its exact bit pattern, not a decimal rendering.
    pub fn descriptor(&self) -> String {
        let alpha_bits = match self.alpha {
            AlphaSpec::Fixed(a) => format!("f{:016x}", a.to_bits()),
            AlphaSpec::FractionOfN(f) => format!("n{:016x}", f.to_bits()),
        };
        format!(
            "{}|{}|{}|{}|n={}|t={}|msf={}|{}",
            self.scenario.label(),
            self.family.label(),
            alpha_bits,
            self.policy.label(),
            self.n,
            self.trials,
            self.max_steps_factor,
            self.engine.label(),
        )
    }

    /// Human-readable label for reports.
    pub fn label(&self) -> String {
        let mut parts = vec![
            self.family.label().to_string(),
            self.scenario.label(),
            format!("n={}", self.n),
        ];
        if self.family.needs_alpha() {
            parts.push(format!("a={}", self.alpha.label()));
        }
        parts.push(self.policy.label().to_string());
        parts.join(", ")
    }

    /// Instantiates the game of this point.
    pub fn make_game(&self) -> Box<dyn Game + Send + Sync> {
        self.family.make_game(self.n, self.alpha.resolve(self.n))
    }

    /// The step limit of one trial.
    pub fn max_steps(&self) -> usize {
        self.max_steps_factor * self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_plan() -> SweepPlan {
        let mut plan = SweepPlan::new("test");
        plan.scenarios = vec![
            Scenario::TorusGrid,
            Scenario::Paper(ncg_sim::InitialTopology::RandomEdges { m_per_n: 2 }),
        ];
        plan.families = vec![GameFamily::AsgSum, GameFamily::GbgSum];
        plan.policies = vec![Policy::MaxCost, Policy::Random];
        plan.alphas = vec![AlphaSpec::FractionOfN(0.25), AlphaSpec::FractionOfN(1.0)];
        plan.ns = vec![10, 20];
        plan
    }

    #[test]
    fn flatten_collapses_alpha_for_swap_games() {
        let points = grid_plan().flatten();
        // ASG: 2 scenarios × 1 α × 2 policies × 2 n = 8;
        // GBG: 2 scenarios × 2 α × 2 policies × 2 n = 16.
        assert_eq!(points.len(), 24);
        let asg = points
            .iter()
            .filter(|p| p.family == GameFamily::AsgSum)
            .count();
        assert_eq!(asg, 8);
    }

    #[test]
    fn point_hashes_are_stable_and_distinct() {
        let a = grid_plan().flatten();
        let b = grid_plan().flatten();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.hash, y.hash, "hashes are pure functions of the plan");
            assert_eq!(x.base_seed, y.base_seed);
        }
        let mut hashes: Vec<u64> = a.iter().map(|p| p.hash).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), a.len(), "no hash collisions across the grid");
        // Changing the plan seed moves every per-point seed.
        let mut reseeded = grid_plan();
        reseeded.base_seed ^= 1;
        assert_ne!(reseeded.flatten()[0].base_seed, a[0].base_seed);
        assert_ne!(reseeded.plan_hash(), grid_plan().plan_hash());
    }

    #[test]
    fn chunk_layout_covers_all_trials() {
        let mut plan = grid_plan();
        plan.trials = 10;
        plan.chunk_size = 4;
        let point = &plan.flatten()[0];
        let chunks = plan.chunks(point);
        assert_eq!(chunks, vec![(0, 4), (4, 4), (8, 2)]);
        assert_eq!(chunks.iter().map(|&(_, l)| l).sum::<usize>(), 10);
    }

    #[test]
    fn autosplit_weighs_n_trials_and_cores() {
        let split = AutoSplit::default();
        assert!(split.scan_mode(512, 3, 8), "big n, few trials, cores free");
        assert!(!split.scan_mode(512, 100, 8), "many trials fill workers");
        assert!(!split.scan_mode(64, 3, 8), "small n scans are cheap");
        assert!(
            !split.scan_mode(512, 3, 1),
            "a single core gains nothing from a full rescan"
        );
        assert!(!AutoSplit::never().scan_mode(1 << 30, 1, 64));
        let mut plan = grid_plan();
        plan.ns = vec![16, 300];
        plan.trials = 2;
        for p in plan.flatten_with_cores(8) {
            assert_eq!(p.engine.parallel_scan.is_some(), p.n >= 256, "n={}", p.n);
        }
        for p in plan.flatten_with_cores(1) {
            assert_eq!(p.engine.parallel_scan, None, "n={}", p.n);
        }
    }

    #[test]
    fn scan_mode_is_part_of_the_point_identity() {
        let mut plan = grid_plan();
        plan.ns = vec![300];
        plan.trials = 2;
        let seq = &plan.flatten_with_cores(1)[0];
        let par = &plan.flatten_with_cores(8)[0];
        assert_ne!(
            seq.hash, par.hash,
            "flipping the scan mode must change the journal key"
        );
    }

    #[test]
    fn spec_string_round_trips_the_full_plan() {
        let mut plan = grid_plan();
        plan.trials = 7;
        plan.chunk_size = 3;
        plan.base_seed = 0xdead_beef;
        plan.alphas = vec![AlphaSpec::Fixed(2.5), AlphaSpec::FractionOfN(1.0 / 3.0)];
        plan.engine = EngineSpec::fastest()
            .with_cache_budget(Some(77))
            .with_byte_budget(Some(1 << 20))
            .with_warm_batching(false);
        plan.split = AutoSplit {
            scan_min_n: 100,
            scan_max_trials: 9,
            scan_min_cores: 3,
        };
        let spec = plan.to_spec_string();
        let back = SweepPlan::parse_spec(&spec).expect("parses");
        assert_eq!(back.name, plan.name);
        assert_eq!(back.scenarios, plan.scenarios);
        assert_eq!(back.families, plan.families);
        assert_eq!(back.policies, plan.policies);
        assert_eq!(back.alphas, plan.alphas);
        assert_eq!(back.ns, plan.ns);
        assert_eq!(back.engine, plan.engine);
        assert_eq!(back.split, plan.split);
        assert_eq!(
            back.plan_hash(),
            plan.plan_hash(),
            "the spec reconstructs the identical grid on this machine"
        );
        // Exact α bits survive even for values with no finite decimal form.
        let AlphaSpec::FractionOfN(f) = back.alphas[1] else {
            panic!("alpha kind survived");
        };
        assert_eq!(f.to_bits(), (1.0f64 / 3.0).to_bits());
    }

    #[test]
    fn spec_parsing_rejects_garbage_loudly() {
        assert!(SweepPlan::parse_spec("not a spec").is_err());
        let spec = grid_plan().to_spec_string();
        let with_unknown = format!("{spec}mystery_key=1\n");
        assert!(SweepPlan::parse_spec(&with_unknown)
            .unwrap_err()
            .contains("unknown spec key"));
        let broken = spec.replace("engine.oracle=persistent", "engine.oracle=quantum");
        assert!(SweepPlan::parse_spec(&broken).is_err());
        let broken = spec.replace("policy=max cost", "policy=psychic");
        assert!(SweepPlan::parse_spec(&broken).is_err());
    }

    #[test]
    fn spec_round_trips_an_empty_grid() {
        // A plan with every axis empty is degenerate but legal — it owns no
        // points — and its spec must survive the round trip rather than
        // collapsing back to the non-empty defaults of `SweepPlan::new`.
        let mut plan = SweepPlan::new("empty");
        plan.scenarios.clear();
        plan.families.clear();
        plan.policies.clear();
        plan.alphas.clear();
        plan.ns.clear();
        let back = SweepPlan::parse_spec(&plan.to_spec_string()).expect("parses");
        assert!(back.scenarios.is_empty());
        assert!(back.families.is_empty());
        assert!(back.policies.is_empty());
        assert!(back.alphas.is_empty());
        assert!(back.ns.is_empty());
        assert!(back.flatten().is_empty());
        assert_eq!(back.plan_hash(), plan.plan_hash());
    }

    #[test]
    fn spec_round_trips_a_max_size_plan_with_hostile_alpha_bits() {
        let mut plan = grid_plan();
        plan.ns = (8..208).collect();
        plan.trials = usize::MAX;
        plan.chunk_size = usize::MAX;
        plan.max_steps_factor = usize::MAX;
        plan.base_seed = u64::MAX;
        // α values whose bit patterns have no short decimal form — including
        // signed zero, subnormals, infinities and NaN — must survive the
        // IEEE-bit codec exactly.
        plan.alphas = vec![
            AlphaSpec::Fixed(-0.0),
            AlphaSpec::Fixed(f64::MIN_POSITIVE / 2.0), // subnormal
            AlphaSpec::Fixed(f64::INFINITY),
            AlphaSpec::Fixed(f64::NEG_INFINITY),
            AlphaSpec::Fixed(f64::NAN),
            AlphaSpec::FractionOfN(f64::MAX),
            AlphaSpec::FractionOfN(1.0e-308),
        ];
        let back = SweepPlan::parse_spec(&plan.to_spec_string()).expect("parses");
        assert_eq!(back.ns, plan.ns);
        assert_eq!(back.trials, usize::MAX);
        assert_eq!(back.chunk_size, usize::MAX);
        for (a, b) in plan.alphas.iter().zip(&back.alphas) {
            let bits = |s: &AlphaSpec| match *s {
                AlphaSpec::Fixed(v) => (0u8, v.to_bits()),
                AlphaSpec::FractionOfN(v) => (1u8, v.to_bits()),
            };
            assert_eq!(bits(a), bits(b), "α bit pattern survives: {a:?}");
        }
    }

    #[test]
    fn adversarial_alpha_values_error_instead_of_panicking() {
        let arm = |val: &str| SweepPlan::parse_spec(&format!("ncg_sweep_plan=1\nalpha={val}\n"));
        for val in ["", "f", "n", "fzz", "x0000000000000000", "αβγ", "f αβ"] {
            let err = arm(val).expect_err(&format!("alpha={val:?} must be rejected"));
            assert!(err.contains("alpha"), "{err}");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected_or_changes_the_hash() {
        let plan = grid_plan();
        let spec = plan.to_spec_string();
        // Structural garbage fails the parse outright.
        for garbage in ["lol\n", "=\n", "alpha\n"] {
            assert!(
                SweepPlan::parse_spec(&format!("{spec}{garbage}")).is_err(),
                "trailing {garbage:?} must not parse"
            );
        }
        // Well-formed trailing lines that *extend* the grid parse fine — but
        // the plan hash moves, so a worker handed the tampered spec refuses
        // it against the coordinator's expected hash.
        let padded = format!("{spec}n=999\n");
        let back = SweepPlan::parse_spec(&padded).expect("well-formed extension parses");
        assert_ne!(
            back.plan_hash(),
            plan.plan_hash(),
            "grid tampering must be visible in the plan hash"
        );
    }

    #[test]
    fn descriptors_distinguish_engines_and_alphas() {
        let mut plan = grid_plan();
        let a = plan.flatten()[0].descriptor();
        plan.engine = EngineSpec::baseline();
        let b = plan.flatten()[0].descriptor();
        assert_ne!(a, b, "engine is part of the identity");
        assert!(a.contains("n=10"));
    }
}
