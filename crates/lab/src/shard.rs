//! Sharded sweep execution: deterministic partition of a [`SweepPlan`]'s
//! `(point, chunk)` jobs into `k` shards, and the merge/fold that combines
//! per-shard journals back into the exact aggregates of a single-process run.
//!
//! The partition is a pure function of the stable chunk key — never of
//! machine state, worker counts, or timing — so every process (and every
//! retry of a crashed shard) agrees on who owns which chunk. Each shard
//! appends to its own journal, whose header folds the shard id next to the
//! plan hash; [`merge_shard_journals`] refuses journals from the wrong grid
//! or shard count, rejects records a journal's declared shard does not own,
//! deduplicates equal-payload chunk records across files (retried shards may
//! legitimately re-record a chunk), and treats two *different* payloads for
//! the same chunk key as a hard integrity error — chunk contents are pure
//! functions of `(point, start, len)`, so a payload conflict means one side
//! is corrupt or mislabeled.
//!
//! The merged fold walks each point's chunks strictly in chunk order, exactly
//! like the in-process orchestrator, so a completed sharded sweep is
//! **bit-identical** to the fault-free single-process run.

use crate::journal::{load_journal, ChunkRecord};
use crate::orchestrator::PointOutcome;
use crate::plan::{fnv1a, SweepPlan};
use std::path::PathBuf;

/// Identity of one shard of a sharded sweep: `index` of `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This shard's id, `0 ..= count - 1`.
    pub index: usize,
    /// Total shards the sweep is split into.
    pub count: usize,
}

impl ShardSpec {
    /// Creates a validated spec.
    ///
    /// # Panics
    /// Panics if `index >= count` or `count == 0`.
    pub fn new(index: usize, count: usize) -> ShardSpec {
        assert!(count > 0, "a sweep has at least one shard");
        assert!(index < count, "shard index {index} out of {count}");
        ShardSpec { index, count }
    }

    /// True if this shard owns the chunk with the given stable key.
    pub fn owns(&self, point_hash: u64, chunk_index: usize) -> bool {
        shard_of(point_hash, chunk_index, self.count) == self.index
    }

    /// The conventional shard journal filename inside a run directory.
    pub fn journal_name(&self) -> String {
        format!("shard-{}-of-{}.jsonl", self.index, self.count)
    }

    /// The conventional shard telemetry filename inside a run directory.
    pub fn telemetry_name(&self) -> String {
        format!("shard-{}-of-{}.telemetry.jsonl", self.index, self.count)
    }

    /// The per-attempt journal filename a transport coordinator persists a
    /// streamed assignment into. Every attempt keeps its own file —
    /// [`merge_shard_journals`] accepts any number of files per shard and
    /// deduplicates replayed records, which is what makes reassignment after
    /// a severed or stalled attempt idempotent.
    pub fn attempt_journal_name(&self, attempt: usize) -> String {
        format!("shard-{}-of-{}.a{attempt}.jsonl", self.index, self.count)
    }
}

/// The shard owning chunk `(point_hash, chunk_index)` in a `count`-way
/// split: an FNV-1a hash of the stable chunk key, reduced mod `count`.
/// Deterministic across machines, processes and Rust releases — every
/// worker and every retry agrees on the partition without coordination.
pub fn shard_of(point_hash: u64, chunk_index: usize, count: usize) -> usize {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&point_hash.to_le_bytes());
    bytes[8..].copy_from_slice(&(chunk_index as u64).to_le_bytes());
    (fnv1a(&bytes) % count.max(1) as u64) as usize
}

/// Every chunk key a shard owns, in the orchestrator's round-robin order.
pub fn shard_chunk_keys(plan: &SweepPlan, shard: ShardSpec) -> Vec<(u64, usize)> {
    let points = plan.flatten();
    let layouts: Vec<usize> = points.iter().map(|p| plan.chunks(p).len()).collect();
    let max_chunks = layouts.iter().copied().max().unwrap_or(0);
    let mut keys = Vec::new();
    for ci in 0..max_chunks {
        for (pi, &chunks) in layouts.iter().enumerate() {
            if ci < chunks && shard.owns(points[pi].hash, ci) {
                keys.push((points[pi].hash, ci));
            }
        }
    }
    keys
}

/// The merged result of a set of per-shard journals.
#[derive(Debug)]
pub struct MergedSweep {
    /// Per-point aggregates in plan (flatten) order, each the chunk-ordered
    /// fold of every completed chunk — bit-identical to a single-process run
    /// when complete.
    pub points: Vec<PointOutcome>,
    /// True once every chunk of every point is present.
    pub completed: bool,
    /// Labels of points with at least one missing chunk (a dead shard's
    /// unfinished work), in plan order.
    pub incomplete_points: Vec<String>,
    /// Equal-payload chunk records deduplicated across shard journals
    /// (retried shards re-recording work they had already journaled).
    pub deduped_chunks: usize,
    /// Torn or checksum-rejected lines skipped across all journals (plus any
    /// journal whose header itself was destroyed).
    pub skipped_lines: usize,
    /// Within-journal records superseded by a later rewrite (keep-last).
    pub superseded_chunks: usize,
}

fn integrity_error(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Merges the journals of a `count`-way sharded run of `plan` into the same
/// chunk-ordered per-point aggregates a single-process run produces.
///
/// Any number of journal files may be passed (a retried shard may have
/// written more than one); each *present* file is strictly validated: plan
/// hash, a shard header declaring the same `count`, and every record's chunk
/// key actually owned by the file's declared shard. A missing file is
/// tolerated — that shard simply contributed nothing. Duplicate chunk keys
/// across files are deduplicated only when their payloads are bit-identical;
/// a conflict is a hard integrity error. A file whose header was destroyed
/// before reaching disk holds no trustworthy records and counts as one
/// skipped line.
pub fn merge_shard_journals(
    plan: &SweepPlan,
    count: usize,
    journals: &[PathBuf],
) -> std::io::Result<MergedSweep> {
    let plan_hash = plan.plan_hash();
    let count = count.max(1);
    let mut merged: std::collections::HashMap<(u64, usize), ChunkRecord> =
        std::collections::HashMap::new();
    let mut deduped = 0usize;
    let mut skipped = 0usize;
    let mut superseded = 0usize;

    for path in journals {
        if !path.exists() {
            continue;
        }
        let contents = match load_journal(path, plan_hash) {
            Ok(c) => c,
            // A journal whose header never made it to disk holds no
            // trustworthy records; the file is treated as absent.
            Err(e) if crate::journal::header_is_damaged(&e) => {
                skipped += 1;
                continue;
            }
            Err(e) => return Err(e),
        };
        let shard = match contents.shard {
            Some(s) if s.count == count && s.index < count => s,
            other => {
                return Err(integrity_error(format!(
                    "{} carries shard header {other:?}, expected a shard of {count}",
                    path.display(),
                )));
            }
        };
        skipped += contents.skipped_lines;
        superseded += contents.superseded_chunks;
        for (key, rec) in contents.chunks {
            if !shard.owns(key.0, key.1) {
                return Err(integrity_error(format!(
                    "{} holds chunk {:016x}/{} that belongs to shard {}, not shard {} — \
                     the journal is mislabeled or the partition changed",
                    path.display(),
                    key.0,
                    key.1,
                    shard_of(key.0, key.1, count),
                    shard.index,
                )));
            }
            match merged.get(&key) {
                None => {
                    merged.insert(key, rec);
                }
                Some(existing) if *existing == rec => deduped += 1,
                Some(_) => {
                    return Err(integrity_error(format!(
                        "conflicting payloads for chunk {:016x}/{} across shard journals — \
                         chunk contents are pure functions of (point, start, len), so one \
                         record is corrupt or mislabeled",
                        key.0, key.1
                    )));
                }
            }
        }
    }

    Ok(fold_records(plan, merged, deduped, skipped, superseded))
}

/// Folds deduplicated chunk records into per-point aggregates, strictly in
/// chunk order per point — the reproducibility anchor shared with the
/// in-process orchestrator.
fn fold_records(
    plan: &SweepPlan,
    records: std::collections::HashMap<(u64, usize), ChunkRecord>,
    deduped_chunks: usize,
    skipped_lines: usize,
    superseded_chunks: usize,
) -> MergedSweep {
    let points = plan.flatten();
    let mut outcomes = Vec::with_capacity(points.len());
    let mut incomplete = Vec::new();
    let mut completed = true;
    for point in points {
        let layout = plan.chunks(&point);
        let mut stats = ncg_sim::StreamingStats::new();
        let mut done = 0usize;
        for (ci, &(start, len)) in layout.iter().enumerate() {
            if let Some(rec) = records.get(&(point.hash, ci)) {
                if rec.start == start && rec.len == len {
                    stats.merge(&rec.stats);
                    done += 1;
                }
            }
        }
        if done < layout.len() {
            completed = false;
            incomplete.push(point.label());
        }
        outcomes.push(PointOutcome {
            point,
            completed_chunks: done,
            total_chunks: layout.len(),
            stats,
        });
    }
    MergedSweep {
        points: outcomes,
        completed,
        incomplete_points: incomplete,
        deduped_chunks,
        skipped_lines,
        superseded_chunks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::JournalWriter;
    use crate::plan::AutoSplit;
    use crate::scenario::Scenario;
    use ncg_core::policy::Policy;
    use ncg_sim::GameFamily;
    use std::path::Path;

    fn tiny_plan() -> SweepPlan {
        let mut plan = SweepPlan::new("shardtest");
        plan.scenarios = vec![Scenario::RingLattice { k: 2 }, Scenario::TorusGrid];
        plan.families = vec![GameFamily::AsgSum];
        plan.policies = vec![Policy::MaxCost];
        plan.ns = vec![8, 10];
        plan.trials = 4;
        plan.chunk_size = 2;
        plan.split = AutoSplit::never();
        plan
    }

    #[test]
    fn partition_is_total_deterministic_and_exhaustive() {
        let plan = tiny_plan();
        let points = plan.flatten();
        let total_jobs: usize = points.iter().map(|p| plan.chunks(p).len()).sum();
        for count in [1usize, 2, 3, 5] {
            let mut seen = 0usize;
            for shard in 0..count {
                let keys = shard_chunk_keys(&plan, ShardSpec::new(shard, count));
                let again = shard_chunk_keys(&plan, ShardSpec::new(shard, count));
                assert_eq!(keys, again, "partition is deterministic");
                seen += keys.len();
                for (ph, ci) in keys {
                    assert_eq!(shard_of(ph, ci, count), shard);
                }
            }
            assert_eq!(seen, total_jobs, "every chunk owned by exactly one shard");
        }
        let all = shard_chunk_keys(&plan, ShardSpec::new(0, 1));
        assert_eq!(all.len(), total_jobs, "one shard owns everything");
    }

    #[test]
    fn shard_spec_validates_bounds() {
        assert!(std::panic::catch_unwind(|| ShardSpec::new(2, 2)).is_err());
        assert!(std::panic::catch_unwind(|| ShardSpec::new(0, 0)).is_err());
        assert_eq!(ShardSpec::new(1, 4).journal_name(), "shard-1-of-4.jsonl");
    }

    /// A synthetic but deterministic chunk record for `(point, chunk)` —
    /// payload equality across files means "the retry recomputed the same
    /// thing", which this construction guarantees.
    fn synthetic_record(
        plan: &SweepPlan,
        point: &crate::plan::SweepPoint,
        ci: usize,
    ) -> ChunkRecord {
        let (start, len) = plan.chunks(point)[ci];
        let mut stats = ncg_sim::StreamingStats::new();
        for t in 0..len {
            stats.push(
                &ncg_sim::TrialResult {
                    steps: start + t + 1,
                    converged: true,
                    kinds: ncg_sim::MoveKindCounts::default(),
                },
                point.n,
            );
        }
        ChunkRecord {
            point_hash: point.hash,
            chunk_index: ci,
            start,
            len,
            stats,
        }
    }

    fn write_shard_journals(plan: &SweepPlan, dir: &Path, count: usize) -> Vec<PathBuf> {
        let plan_hash = plan.plan_hash();
        let points = plan.flatten();
        let mut paths = Vec::new();
        for index in 0..count {
            let spec = ShardSpec::new(index, count);
            let path = dir.join(spec.journal_name());
            let writer = JournalWriter::create_sharded(&path, plan_hash, Some(spec)).unwrap();
            for point in &points {
                for ci in 0..plan.chunks(point).len() {
                    if spec.owns(point.hash, ci) {
                        writer.record(&synthetic_record(plan, point, ci)).unwrap();
                    }
                }
            }
            paths.push(path);
        }
        paths
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ncg-shard-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn merge_folds_complete_journals() {
        let plan = tiny_plan();
        let dir = tmp_dir("merge");
        let paths = write_shard_journals(&plan, &dir, 3);
        let merged = merge_shard_journals(&plan, 3, &paths).unwrap();
        assert!(merged.completed);
        assert!(merged.incomplete_points.is_empty());
        assert_eq!(merged.points.len(), 4);
        for p in &merged.points {
            assert!(p.complete());
            assert_eq!(p.stats.count, 4, "all four trials folded");
        }
        assert_eq!(merged.deduped_chunks, 0);
        assert_eq!(merged.skipped_lines, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_tolerates_missing_shards_and_reports_incomplete_points() {
        let plan = tiny_plan();
        let dir = tmp_dir("missing");
        let mut paths = write_shard_journals(&plan, &dir, 2);
        std::fs::remove_file(&paths[1]).unwrap();
        paths[1] = dir.join("gone.jsonl");
        let merged = merge_shard_journals(&plan, 2, &paths).unwrap();
        assert!(!merged.completed);
        assert!(!merged.incomplete_points.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_dedupes_equal_payloads_across_retry_files() {
        let plan = tiny_plan();
        let dir = tmp_dir("dedupe");
        let plan_hash = plan.plan_hash();
        let mut paths = write_shard_journals(&plan, &dir, 2);
        // A retried shard 0 wrote a second journal re-recording one of its
        // chunks with the identical payload (chunk contents are pure).
        let points = plan.flatten();
        let spec = ShardSpec::new(0, 2);
        let (point, ci) = points
            .iter()
            .flat_map(|p| (0..plan.chunks(p).len()).map(move |ci| (p, ci)))
            .find(|(p, ci)| spec.owns(p.hash, *ci))
            .expect("shard 0 owns something");
        let retry = dir.join("shard-0-of-2.retry.jsonl");
        JournalWriter::create_sharded(&retry, plan_hash, Some(spec))
            .unwrap()
            .record(&synthetic_record(&plan, point, ci))
            .unwrap();
        paths.push(retry);
        let merged = merge_shard_journals(&plan, 2, &paths).unwrap();
        assert!(merged.completed);
        assert_eq!(merged.deduped_chunks, 1, "identical duplicate deduplicated");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_rejects_cross_file_payload_conflicts() {
        let plan = tiny_plan();
        let dir = tmp_dir("conflict");
        let plan_hash = plan.plan_hash();
        let mut paths = write_shard_journals(&plan, &dir, 2);
        let points = plan.flatten();
        let spec = ShardSpec::new(0, 2);
        let (point, ci) = points
            .iter()
            .flat_map(|p| (0..plan.chunks(p).len()).map(move |ci| (p, ci)))
            .find(|(p, ci)| spec.owns(p.hash, *ci))
            .expect("shard 0 owns something");
        let mut conflicted = synthetic_record(&plan, point, ci);
        conflicted.stats.total_steps += 7;
        let retry = dir.join("shard-0-of-2.retry.jsonl");
        JournalWriter::create_sharded(&retry, plan_hash, Some(spec))
            .unwrap()
            .record(&conflicted)
            .unwrap();
        paths.push(retry);
        let err = merge_shard_journals(&plan, 2, &paths).unwrap_err();
        assert!(err.to_string().contains("conflicting payloads"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_rejects_mislabeled_journals_and_foreign_plans() {
        let plan = tiny_plan();
        let dir = tmp_dir("headers");
        let plan_hash = plan.plan_hash();
        let paths = write_shard_journals(&plan, &dir, 2);
        // Wrong shard count in a header.
        let odd = dir.join("odd.jsonl");
        JournalWriter::create_sharded(&odd, plan_hash, Some(ShardSpec::new(0, 3))).unwrap();
        let err = merge_shard_journals(&plan, 2, std::slice::from_ref(&odd)).unwrap_err();
        assert!(err.to_string().contains("shard header"));
        // An unsharded journal cannot be merged as a shard.
        let plain = dir.join("plain.jsonl");
        JournalWriter::create(&plain, plan_hash).unwrap();
        let err = merge_shard_journals(&plan, 2, std::slice::from_ref(&plain)).unwrap_err();
        assert!(err.to_string().contains("shard header"));
        // A journal holding a record its declared shard does not own.
        let points = plan.flatten();
        let spec0 = ShardSpec::new(0, 2);
        let (stolen_point, stolen_ci) = points
            .iter()
            .flat_map(|p| (0..plan.chunks(p).len()).map(move |ci| (p, ci)))
            .find(|(p, ci)| !spec0.owns(p.hash, *ci))
            .expect("shard 1 owns something");
        let mislabeled = dir.join("mislabeled.jsonl");
        JournalWriter::create_sharded(&mislabeled, plan_hash, Some(spec0))
            .unwrap()
            .record(&synthetic_record(&plan, stolen_point, stolen_ci))
            .unwrap();
        let err = merge_shard_journals(&plan, 2, &[mislabeled]).unwrap_err();
        assert!(err.to_string().contains("mislabeled"));
        // A foreign plan is refused by the plan-hash guard.
        let mut other = tiny_plan();
        other.base_seed ^= 1;
        let err = merge_shard_journals(&other, 2, &paths).unwrap_err();
        assert!(err.to_string().contains("belongs to plan"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_treats_a_destroyed_header_as_an_absent_file() {
        let plan = tiny_plan();
        let dir = tmp_dir("torn-header");
        let mut paths = write_shard_journals(&plan, &dir, 2);
        std::fs::write(&paths[0], "{\"ncg_sweep_jo").unwrap();
        let merged = merge_shard_journals(&plan, 2, &paths).unwrap();
        assert!(!merged.completed, "shard 0's chunks are gone");
        assert_eq!(merged.skipped_lines, 1, "the dead file is counted");
        // An empty file (killed before any header byte) behaves the same.
        std::fs::write(&paths[0], "").unwrap();
        assert!(!merge_shard_journals(&plan, 2, &paths).unwrap().completed);
        paths.remove(0);
        let partial = merge_shard_journals(&plan, 2, &paths).unwrap();
        assert!(!partial.completed);
        std::fs::remove_dir_all(&dir).ok();
    }
}
