//! The scenario catalog: named, seeded initial-network families beyond the
//! paper's topologies.
//!
//! Every [`Scenario`] produces [`OwnedGraph`] instances compatible with the
//! paper's [`InitialTopology`] workloads (simple graphs with per-edge
//! ownership), so the whole simulation stack — games, policies, engines —
//! runs unchanged on top of them. The catalog adds the classic random-graph
//! families of the scaling literature:
//!
//! * Erdős–Rényi `G(n, m)` (uniform edge set, no connectivity guarantee),
//! * ring lattices and Watts–Strogatz-style small-world rewirings,
//! * 2-D torus grids,
//! * hypercubes (induced sub-cubes for non-power-of-two `n`),
//! * preferential attachment (Barabási–Albert style),
//! * star forests (disconnected equilibrium-like starting states).
//!
//! Ownership conventions are chosen per family so that every graph satisfies
//! `OwnedGraph::check_invariants`; generation is deterministic under a fixed
//! seed, which the batch orchestrator relies on for exact checkpoint/resume.

use ncg_graph::{NodeId, OwnedGraph};
use ncg_sim::InitialTopology;
use rand::seq::SliceRandom;
use rand::Rng;

/// A named, seeded initial-network family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scenario {
    /// One of the paper's own starting topologies (§3.4.1 / §4.2.1).
    Paper(InitialTopology),
    /// Erdős–Rényi `G(n, m)` with `m = m_per_n · n` uniformly random edges,
    /// uniform ownership. Connectivity is *not* guaranteed.
    ErdosRenyi {
        /// Edge count as a multiple of `n`.
        m_per_n: usize,
    },
    /// Ring lattice: every vertex owns edges to its `k` clockwise neighbours
    /// (`n · k` edges for `n > 2k`; clamps towards the complete graph below).
    RingLattice {
        /// Clockwise neighbourhood radius.
        k: usize,
    },
    /// Watts–Strogatz-style small world: a `k`-ring lattice whose *chord*
    /// edges (distance ≥ 2) are rewired to uniform random endpoints with
    /// probability `rewire_permille / 1000`. The distance-1 ring is never
    /// rewired, so the graph stays connected.
    SmallWorld {
        /// Clockwise neighbourhood radius of the underlying lattice (≥ 2 for
        /// any rewiring to happen).
        k: usize,
        /// Rewiring probability in permille (0 … 1000).
        rewire_permille: u32,
    },
    /// 2-D torus grid on `rows × cols = n` vertices (rows = the largest
    /// divisor of `n` at most `√n`; degenerates to a cycle for prime `n`).
    /// Every vertex owns its "right" and "down" wrap-around edges.
    TorusGrid,
    /// Hypercube: vertices are bit strings, edges connect at Hamming
    /// distance 1. For `n` not a power of two this is the sub-cube induced on
    /// `{0, …, n-1}`, which is still connected. Lower endpoint owns.
    Hypercube,
    /// Preferential attachment: vertices arrive one at a time and buy `m`
    /// edges to distinct existing vertices chosen proportionally to degree.
    PreferentialAttachment {
        /// Edges bought by each arriving vertex.
        m: usize,
    },
    /// A forest of `stars` disjoint stars of near-equal size (centers own all
    /// edges). Deliberately disconnected: a stress scenario for buy games,
    /// which must first merge the components.
    StarForest {
        /// Number of disjoint stars (clamped to `1 ..= n`).
        stars: usize,
    },
}

impl Scenario {
    /// Generates an instance on `n` agents.
    pub fn generate<R: Rng>(&self, n: usize, rng: &mut R) -> OwnedGraph {
        match *self {
            Scenario::Paper(topology) => topology.generate(n, rng),
            Scenario::ErdosRenyi { m_per_n } => erdos_renyi_gnm(n, m_per_n * n, rng),
            Scenario::RingLattice { k } => ring_lattice(n, k),
            Scenario::SmallWorld { k, rewire_permille } => {
                small_world(n, k, f64::from(rewire_permille.min(1000)) / 1000.0, rng)
            }
            Scenario::TorusGrid => torus_grid(n),
            Scenario::Hypercube => hypercube(n),
            Scenario::PreferentialAttachment { m } => preferential_attachment(n, m, rng),
            Scenario::StarForest { stars } => star_forest(n, stars),
        }
    }

    /// True if every generated instance is guaranteed to be connected
    /// (for `n ≥ 2` and in-range parameters).
    pub fn connectivity_guaranteed(&self) -> bool {
        match self {
            Scenario::Paper(_) => true,
            Scenario::ErdosRenyi { .. } => false,
            Scenario::RingLattice { .. } => true,
            Scenario::SmallWorld { .. } => true,
            Scenario::TorusGrid => true,
            Scenario::Hypercube => true,
            Scenario::PreferentialAttachment { .. } => true,
            Scenario::StarForest { stars } => *stars <= 1,
        }
    }

    /// Short label used in reports, journals and the point hash.
    pub fn label(&self) -> String {
        match *self {
            Scenario::Paper(t) => t.label(),
            Scenario::ErdosRenyi { m_per_n } => format!("er:m={m_per_n}n"),
            Scenario::RingLattice { k } => format!("ring:k={k}"),
            Scenario::SmallWorld { k, rewire_permille } => {
                format!("ws:k={k},p={rewire_permille}")
            }
            Scenario::TorusGrid => "torus".to_string(),
            Scenario::Hypercube => "cube".to_string(),
            Scenario::PreferentialAttachment { m } => format!("pa:m={m}"),
            Scenario::StarForest { stars } => format!("stars:{stars}"),
        }
    }

    /// Parses a scenario label (the inverse of [`Scenario::label`], also
    /// accepting the paper topology labels `k=…`, `m=…n`, `rl`, `dl`).
    pub fn parse(s: &str) -> Option<Scenario> {
        fn num<T: std::str::FromStr>(s: &str, prefix: &str) -> Option<T> {
            s.strip_prefix(prefix)?.parse().ok()
        }
        match s {
            "rl" => return Some(Scenario::Paper(InitialTopology::RandomLine)),
            "dl" => return Some(Scenario::Paper(InitialTopology::DirectedLine)),
            "torus" => return Some(Scenario::TorusGrid),
            "cube" => return Some(Scenario::Hypercube),
            _ => {}
        }
        if let Some(k) = num(s, "k=") {
            return Some(Scenario::Paper(InitialTopology::Budgeted { k }));
        }
        if let Some(m) = s.strip_prefix("m=").and_then(|r| r.strip_suffix('n')) {
            return Some(Scenario::Paper(InitialTopology::RandomEdges {
                m_per_n: m.parse().ok()?,
            }));
        }
        if let Some(m_per_n) = s
            .strip_prefix("er:m=")
            .and_then(|r| r.strip_suffix('n'))
            .and_then(|r| r.parse().ok())
        {
            return Some(Scenario::ErdosRenyi { m_per_n });
        }
        if let Some(k) = num(s, "ring:k=") {
            return Some(Scenario::RingLattice { k });
        }
        if let Some(rest) = s.strip_prefix("ws:k=") {
            let (k, p) = rest.split_once(",p=")?;
            return Some(Scenario::SmallWorld {
                k: k.parse().ok()?,
                rewire_permille: p.parse().ok()?,
            });
        }
        if let Some(m) = num(s, "pa:m=") {
            return Some(Scenario::PreferentialAttachment { m });
        }
        if let Some(stars) = num(s, "stars:") {
            return Some(Scenario::StarForest { stars });
        }
        None
    }

    /// One exemplar of every catalog family (paper topologies included), for
    /// discovery in CLIs and docs.
    pub fn catalog() -> Vec<Scenario> {
        vec![
            Scenario::Paper(InitialTopology::Budgeted { k: 2 }),
            Scenario::Paper(InitialTopology::RandomEdges { m_per_n: 2 }),
            Scenario::Paper(InitialTopology::RandomLine),
            Scenario::Paper(InitialTopology::DirectedLine),
            Scenario::ErdosRenyi { m_per_n: 2 },
            Scenario::RingLattice { k: 2 },
            Scenario::SmallWorld {
                k: 2,
                rewire_permille: 100,
            },
            Scenario::TorusGrid,
            Scenario::Hypercube,
            Scenario::PreferentialAttachment { m: 2 },
            Scenario::StarForest { stars: 4 },
        ]
    }
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct uniform edges (clamped to the
/// feasible range), each owned by a uniformly chosen endpoint.
pub fn erdos_renyi_gnm<R: Rng>(n: usize, m: usize, rng: &mut R) -> OwnedGraph {
    let mut g = OwnedGraph::new(n);
    if n <= 1 {
        return g;
    }
    let target = m.min(n * (n - 1) / 2);
    while g.num_edges() < target {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b || g.has_edge(a, b) {
            continue;
        }
        if rng.gen_bool(0.5) {
            g.add_edge(a, b);
        } else {
            g.add_edge(b, a);
        }
    }
    g
}

/// Ring lattice: vertex `i` owns edges to `i+1, …, i+k` (mod `n`); duplicate
/// wrap-arounds on tiny rings are skipped, clamping towards `K_n`.
pub fn ring_lattice(n: usize, k: usize) -> OwnedGraph {
    let mut g = OwnedGraph::new(n);
    for i in 0..n {
        for j in 1..=k {
            let to = (i + j) % n;
            if to != i && !g.has_edge(i, to) {
                g.add_edge(i, to);
            }
        }
    }
    g
}

/// Watts–Strogatz-style small world: each chord `{i, i+j}` (`2 ≤ j ≤ k`) of a
/// `k`-ring lattice is rewired with probability `p` to `{i, random}`; the
/// distance-1 ring stays intact, so connectivity is preserved.
pub fn small_world<R: Rng>(n: usize, k: usize, p: f64, rng: &mut R) -> OwnedGraph {
    let mut g = ring_lattice(n, k);
    if n < 5 || k < 2 {
        return g;
    }
    for i in 0..n {
        for j in 2..=k {
            let to = (i + j) % n;
            if to == i || !g.owns_edge(i, to) || !rng.gen_bool(p) {
                continue;
            }
            // Rewire {i, to} to a uniformly chosen fresh endpoint of i.
            let candidates: Vec<NodeId> = (0..n)
                .filter(|&v| v != i && v != to && !g.has_edge(i, v))
                .collect();
            if let Some(&fresh) = candidates.choose(rng) {
                g.remove_edge(i, to);
                g.add_edge(i, fresh);
            }
        }
    }
    g
}

/// The `rows × cols` decomposition of the torus: the largest divisor of `n`
/// not exceeding `√n` (1 for prime `n`, degenerating the torus to a cycle).
pub fn torus_dimensions(n: usize) -> (usize, usize) {
    if n == 0 {
        return (0, 0);
    }
    let mut rows = 1;
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            rows = d;
        }
        d += 1;
    }
    (rows, n / rows)
}

/// 2-D torus grid: vertex `(r, c)` owns its right and down wrap-around edges.
pub fn torus_grid(n: usize) -> OwnedGraph {
    let (rows, cols) = torus_dimensions(n);
    let mut g = OwnedGraph::new(n);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            let v = id(r, c);
            let right = id(r, (c + 1) % cols);
            let down = id((r + 1) % rows, c);
            for to in [right, down] {
                if to != v && !g.has_edge(v, to) {
                    g.add_edge(v, to);
                }
            }
        }
    }
    g
}

/// Hypercube (induced on `{0, …, n-1}`): edges connect vertices at Hamming
/// distance 1; the lower endpoint owns. Connected for every `n ≥ 1`.
pub fn hypercube(n: usize) -> OwnedGraph {
    let mut g = OwnedGraph::new(n);
    for v in 0..n {
        let mut bit = 1usize;
        while v + bit < n {
            if v & bit == 0 {
                g.add_edge(v, v | bit);
            }
            bit <<= 1;
        }
    }
    g
}

/// Preferential attachment: vertex `v` buys `min(m, v)` edges to distinct
/// earlier vertices sampled proportionally to their current degree
/// (Barabási–Albert repeated-endpoint sampling).
pub fn preferential_attachment<R: Rng>(n: usize, m: usize, rng: &mut R) -> OwnedGraph {
    let mut g = OwnedGraph::new(n);
    if n <= 1 {
        return g;
    }
    let m = m.max(1);
    // Endpoint multiset: every finished edge contributes both endpoints, so a
    // uniform draw from it is a degree-proportional draw over vertices.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * m * n);
    let mut picked: Vec<NodeId> = Vec::with_capacity(m);
    for v in 1..n {
        picked.clear();
        let want = m.min(v);
        while picked.len() < want {
            let candidate = if endpoints.is_empty() {
                0
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if candidate != v && !g.has_edge(v, candidate) {
                g.add_edge(v, candidate);
                picked.push(candidate);
            } else if g_saturated(&g, v) >= v {
                // Degenerate corner: v is adjacent to every earlier vertex.
                break;
            }
        }
        for &u in &picked {
            endpoints.push(v);
            endpoints.push(u);
        }
    }
    g
}

/// Number of earlier vertices `v` is already adjacent to (helper for the
/// preferential-attachment saturation check).
fn g_saturated(g: &OwnedGraph, v: NodeId) -> usize {
    g.neighbors(v).iter().filter(|&&u| u < v).count()
}

/// A forest of `stars` disjoint stars over `n` vertices (sizes differ by at
/// most one; centers own every edge). `n - s` edges, `s` components.
pub fn star_forest(n: usize, stars: usize) -> OwnedGraph {
    let mut g = OwnedGraph::new(n);
    if n == 0 {
        return g;
    }
    let s = stars.clamp(1, n);
    let (base, extra) = (n / s, n % s);
    let mut start = 0usize;
    for i in 0..s {
        let size = base + usize::from(i < extra);
        for leaf in start + 1..start + size {
            g.add_edge(start, leaf);
        }
        start += size;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncg_graph::properties::{components, is_connected};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gen2(s: &Scenario, n: usize, seed: u64) -> (OwnedGraph, OwnedGraph) {
        let mut r1 = StdRng::seed_from_u64(seed);
        let mut r2 = StdRng::seed_from_u64(seed);
        (s.generate(n, &mut r1), s.generate(n, &mut r2))
    }

    #[test]
    fn every_catalog_family_is_deterministic_and_valid() {
        for scenario in Scenario::catalog() {
            for n in [1usize, 2, 9, 24] {
                let (a, b) = gen2(&scenario, n, 42);
                assert_eq!(
                    a,
                    b,
                    "{} n={n} must be seed-deterministic",
                    scenario.label()
                );
                assert_eq!(a.num_nodes(), n, "{}", scenario.label());
                a.check_invariants()
                    .unwrap_or_else(|e| panic!("{} n={n}: {e}", scenario.label()));
                if scenario.connectivity_guaranteed() && n >= 2 {
                    assert!(is_connected(&a), "{} n={n}", scenario.label());
                }
            }
        }
    }

    #[test]
    fn labels_round_trip_through_parse() {
        for scenario in Scenario::catalog() {
            let label = scenario.label();
            let parsed =
                Scenario::parse(&label).unwrap_or_else(|| panic!("label {label} must parse back"));
            assert_eq!(parsed, scenario, "{label}");
        }
        assert_eq!(Scenario::parse("nonsense"), None);
        assert_eq!(
            Scenario::parse("ws:k=3"),
            None,
            "missing rewire probability"
        );
    }

    #[test]
    fn erdos_renyi_edge_counts_and_clamping() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(n, m) in &[(12usize, 24usize), (20, 20), (30, 90)] {
            let g = erdos_renyi_gnm(n, m, &mut rng);
            assert_eq!(g.num_edges(), m, "n={n} m={m}");
            g.check_invariants().unwrap();
        }
        // Infeasibly large m clamps to the complete graph.
        let g = erdos_renyi_gnm(6, 10_000, &mut rng);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(erdos_renyi_gnm(1, 5, &mut rng).num_edges(), 0);
    }

    #[test]
    fn ring_lattice_structure() {
        let g = ring_lattice(12, 2);
        assert_eq!(g.num_edges(), 24, "n·k edges");
        assert!(is_connected(&g));
        assert!((0..12).all(|v| g.degree(v) == 4), "2k-regular");
        assert!((0..12).all(|v| g.owned_degree(v) == 2), "each owns k");
        // Tiny ring clamps to the complete graph instead of duplicating.
        let tiny = ring_lattice(4, 3);
        assert_eq!(tiny.num_edges(), 6);
        ring_lattice(2, 1).check_invariants().unwrap();
    }

    #[test]
    fn small_world_keeps_ring_and_edge_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 30;
        let g = small_world(n, 3, 0.5, &mut rng);
        assert_eq!(g.num_edges(), n * 3, "rewiring preserves the edge count");
        assert!(is_connected(&g), "the distance-1 ring is never rewired");
        for i in 0..n {
            assert!(g.has_edge(i, (i + 1) % n), "ring edge {i} intact");
        }
        // p = 0 is exactly the lattice; p = 1 rewires at least one chord.
        let lattice = small_world(n, 3, 0.0, &mut StdRng::seed_from_u64(9));
        assert_eq!(lattice, ring_lattice(n, 3));
        let rewired = small_world(n, 3, 1.0, &mut StdRng::seed_from_u64(9));
        assert_ne!(rewired, ring_lattice(n, 3));
    }

    #[test]
    fn torus_grid_structure() {
        assert_eq!(torus_dimensions(24), (4, 6));
        assert_eq!(torus_dimensions(13), (1, 13), "prime n degenerates");
        let g = torus_grid(24);
        assert_eq!(g.num_edges(), 48, "2 owned edges per vertex");
        assert!(is_connected(&g));
        assert!((0..24).all(|v| g.degree(v) == 4));
        // Degenerate cases: cycle (prime) and tiny grids stay simple graphs.
        for n in [1usize, 2, 3, 4, 6, 13] {
            let g = torus_grid(n);
            g.check_invariants().unwrap();
            if n >= 2 {
                assert!(is_connected(&g), "n={n}");
            }
        }
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(16);
        assert_eq!(g.num_edges(), 32, "d · 2^d / 2 for d = 4");
        assert!((0..16).all(|v| g.degree(v) == 4));
        assert!(is_connected(&g));
        // Induced sub-cube for non-power-of-two n stays connected.
        for n in [1usize, 3, 5, 11, 24] {
            let g = hypercube(n);
            g.check_invariants().unwrap();
            if n >= 2 {
                assert!(is_connected(&g), "n={n}");
            }
        }
    }

    #[test]
    fn preferential_attachment_structure() {
        let mut rng = StdRng::seed_from_u64(11);
        let (n, m) = (40usize, 2usize);
        let g = preferential_attachment(n, m, &mut rng);
        // 1 edge for v=1, then m for everyone else.
        assert_eq!(g.num_edges(), 1 + (n - 2) * m);
        assert!(is_connected(&g));
        assert!(
            (2..n).all(|v| g.owned_degree(v) == m),
            "arrivals own m edges"
        );
        // Hubs exist: some early vertex collects well above the mean degree.
        let max_degree = (0..n).map(|v| g.degree(v)).max().unwrap();
        assert!(max_degree > 2 * m, "max degree {max_degree}");
        preferential_attachment(1, 3, &mut rng)
            .check_invariants()
            .unwrap();
    }

    #[test]
    fn star_forest_structure() {
        let g = star_forest(22, 4);
        assert_eq!(g.num_edges(), 22 - 4);
        assert_eq!(components(&g).len(), 4);
        g.check_invariants().unwrap();
        // Every component is a star: one center owning everything.
        for comp in components(&g) {
            let centers = comp.iter().filter(|&&v| g.owned_degree(v) > 0).count();
            assert!(centers <= 1, "at most one owner per star");
        }
        assert!(is_connected(&star_forest(9, 1)));
        assert_eq!(components(&star_forest(5, 9)).len(), 5, "clamped to n");
    }
}
