//! Cross-machine shard transport: a tiny length-prefixed, checksummed TCP
//! protocol (std-only) that turns the sharded runner into a distributed
//! sweep service.
//!
//! A **coordinator** ([`run_distributed`]) dispatches shard assignments —
//! the plan as a [`SweepPlan::to_spec_string`] spec plus shard index/of and
//! the expected plan hash — to remote accept-loop **workers** ([`serve`]).
//! Each worker re-derives the plan from the spec, *refuses on plan-hash
//! mismatch* (the same cross-machine scan-mode guard as the local worker
//! protocol), runs its shard through the ordinary orchestrator into a local
//! shard journal, and streams the raw journal bytes back as they are
//! appended. The coordinator persists each attempt's stream into its own
//! per-shard journal file and feeds every file to the existing
//! [`merge_shard_journals`] fold **unchanged** — so a distributed run is
//! proven bit-identical to a single-process run by the same machinery, and
//! replayed records from reassigned shards are deduplicated by the fold's
//! equal-payload rule exactly like local retries.
//!
//! # Wire format
//!
//! Every frame is `magic(4) | kind(1) | len(4 LE) | payload | fnv1a(8 LE)`,
//! the checksum taken over `kind | len | payload`. The reader rejects any
//! frame whose checksum, kind or length is wrong and **resyncs** by hunting
//! for the next magic — a corrupted frame costs its own bytes, never the
//! connection. Frame kinds: `Assign` (spec + shard identity + plan hash),
//! `Refuse` (worker rejects the assignment, with a reason), `Data` (raw
//! journal bytes), `Heartbeat` (cumulative journal bytes sent — the
//! byte-growth liveness signal), `Done` (worker's exit code for the
//! assignment).
//!
//! # Robustness model
//!
//! * **Connect**: exponential backoff with decorrelating jitter
//!   ([`backoff_with_jitter`]) and a bounded retry budget.
//! * **Liveness**: the supervisor's byte-growth model over the wire — a
//!   connection that delivers no *new* journal bytes (via `Data` or a
//!   `Heartbeat` high-water mark) within the no-progress deadline is killed
//!   and the shard is **reassigned**, preferring a different worker.
//! * **Integrity**: per-frame FNV-1a checksums catch corruption in flight;
//!   the journal's own per-record checksums catch anything that slips
//!   through to disk; a worker's `Done(0)` is never believed without the
//!   coordinator auditing the received journal against the shard's expected
//!   chunk keys.
//! * **Degradation**: a worker accumulating consecutive failures is dropped
//!   from the pool; survivors absorb its shards. A shard that exhausts its
//!   assignment budget (or outlives every worker) degrades to named
//!   `incomplete_points` in the merged outcome, exactly like the local
//!   supervisor.
//!
//! The transport paths are threaded through the [`crate::faultpoint`]
//! harness (`net-accept`, `net-read`, `net-write`, `net-heartbeat`) with the
//! usual discipline — each hook is a single relaxed atomic load until a
//! fault table is armed — so the network fault matrix can sever connections
//! mid-record, delay heartbeats past the deadline, and corrupt frames at
//! exact byte offsets.

use crate::faultpoint;
use crate::plan::{fnv1a, SweepPlan};
use crate::shard::{merge_shard_journals, shard_chunk_keys, MergedSweep, ShardSpec};
use crate::supervisor::backoff_with_jitter;
use crate::telemetry::TelemetryWriter;
use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Frame magic: `NCGL`. A reader hunting for a frame boundary scans for
/// these four bytes.
pub const MAGIC: [u8; 4] = *b"NCGL";

/// Upper bound on a frame payload. A corrupted length field must never make
/// the reader wait on (or allocate) gigabytes; anything larger is treated as
/// corruption and resynced past.
pub const MAX_FRAME: usize = 1 << 20;

/// `magic | kind | len` — the fixed prelude of every frame.
const HEADER_LEN: usize = 4 + 1 + 4;

/// Payload bytes per `Data` frame when streaming a journal.
const DATA_CHUNK: usize = 64 * 1024;

const KIND_ASSIGN: u8 = 1;
const KIND_REFUSE: u8 = 2;
const KIND_DATA: u8 = 3;
const KIND_HEARTBEAT: u8 = 4;
const KIND_DONE: u8 = 5;

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Coordinator → worker: run this shard of this plan.
    Assign {
        /// The plan hash the worker must re-derive from `spec` (a mismatch —
        /// e.g. a core count flipping a scan mode — is refused, not run).
        plan_hash: u64,
        /// Shard index, `0 ..= shard_count - 1`.
        shard_index: u32,
        /// Total shards of the sweep.
        shard_count: u32,
        /// Worker threads for the shard (`0` = the worker decides).
        threads: u32,
        /// The plan as a [`SweepPlan::to_spec_string`] spec.
        spec: String,
    },
    /// Worker → coordinator: the assignment is rejected (bad spec, hash
    /// mismatch, invalid shard identity).
    Refuse {
        /// Human-readable reason, logged by the coordinator.
        reason: String,
    },
    /// Worker → coordinator: raw bytes appended to the shard journal.
    Data {
        /// The journal bytes, in file order.
        bytes: Vec<u8>,
    },
    /// Worker → coordinator: liveness, carrying the cumulative journal bytes
    /// streamed so far (the byte-growth progress signal).
    Heartbeat {
        /// Total journal bytes the worker has sent.
        journal_bytes: u64,
    },
    /// Worker → coordinator: the assignment finished with this exit code
    /// (`0` = shard complete; the coordinator still audits the journal).
    Done {
        /// Worker exit code for the assignment.
        code: u32,
    },
}

fn encode_frame(frame: &Frame) -> Vec<u8> {
    let (kind, payload): (u8, Vec<u8>) = match frame {
        Frame::Assign {
            plan_hash,
            shard_index,
            shard_count,
            threads,
            spec,
        } => {
            let mut p = Vec::with_capacity(20 + spec.len());
            p.extend_from_slice(&plan_hash.to_le_bytes());
            p.extend_from_slice(&shard_index.to_le_bytes());
            p.extend_from_slice(&shard_count.to_le_bytes());
            p.extend_from_slice(&threads.to_le_bytes());
            p.extend_from_slice(spec.as_bytes());
            (KIND_ASSIGN, p)
        }
        Frame::Refuse { reason } => (KIND_REFUSE, reason.as_bytes().to_vec()),
        Frame::Data { bytes } => (KIND_DATA, bytes.clone()),
        Frame::Heartbeat { journal_bytes } => {
            (KIND_HEARTBEAT, journal_bytes.to_le_bytes().to_vec())
        }
        Frame::Done { code } => (KIND_DONE, code.to_le_bytes().to_vec()),
    };
    debug_assert!(payload.len() <= MAX_FRAME);
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + 8);
    buf.extend_from_slice(&MAGIC);
    buf.push(kind);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&payload);
    let ck = fnv1a(&buf[4..]);
    buf.extend_from_slice(&ck.to_le_bytes());
    buf
}

fn decode_frame(kind: u8, payload: &[u8]) -> Option<Frame> {
    let u32_at = |at: usize| -> Option<u32> {
        Some(u32::from_le_bytes(
            payload.get(at..at + 4)?.try_into().ok()?,
        ))
    };
    match kind {
        KIND_ASSIGN => {
            let plan_hash = u64::from_le_bytes(payload.get(..8)?.try_into().ok()?);
            Some(Frame::Assign {
                plan_hash,
                shard_index: u32_at(8)?,
                shard_count: u32_at(12)?,
                threads: u32_at(16)?,
                spec: String::from_utf8(payload.get(20..)?.to_vec()).ok()?,
            })
        }
        KIND_REFUSE => Some(Frame::Refuse {
            reason: String::from_utf8(payload.to_vec()).ok()?,
        }),
        KIND_DATA => Some(Frame::Data {
            bytes: payload.to_vec(),
        }),
        KIND_HEARTBEAT => Some(Frame::Heartbeat {
            journal_bytes: u64::from_le_bytes(payload.try_into().ok()?),
        }),
        KIND_DONE => Some(Frame::Done {
            code: u32::from_le_bytes(payload.try_into().ok()?),
        }),
        _ => None,
    }
}

/// Writes one frame through the `net-write` fault point (injectable I/O
/// errors, in-flight corruption, and kill-at-an-exact-byte-offset — a sever
/// mid-record) and flushes it.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    faultpoint::io_check("net-write")?;
    let mut buf = encode_frame(frame);
    faultpoint::mangle("net-write", &mut buf);
    faultpoint::write_all("net-write", w, &buf)?;
    w.flush()
}

/// Buffered frame reader with **reject-and-resync**: a frame that fails its
/// checksum, carries an unknown kind, an oversize length, or an undecodable
/// payload is counted in [`FrameReader::corrupt_frames`] and skipped by
/// hunting for the next magic — corruption costs frames, never the
/// connection. `WouldBlock`/`TimedOut` errors from a read timeout pass
/// through so the caller can run its liveness deadline between polls.
pub struct FrameReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
    /// Frames rejected by checksum/kind/length/decode validation.
    pub corrupt_frames: usize,
    /// Bytes discarded while hunting for a frame boundary (including a torn
    /// trailing frame at EOF — a connection severed mid-record).
    pub resync_bytes: u64,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a byte stream.
    pub fn new(inner: R) -> FrameReader<R> {
        FrameReader {
            inner,
            buf: Vec::new(),
            corrupt_frames: 0,
            resync_bytes: 0,
        }
    }

    /// Reads the next intact frame. `Ok(None)` is end-of-stream (a torn
    /// trailing frame is counted into `resync_bytes`, never returned).
    pub fn read_frame(&mut self) -> io::Result<Option<Frame>> {
        loop {
            // Hunt for the frame boundary: discard garbage before the magic.
            match self.buf.windows(4).position(|w| w == MAGIC) {
                Some(0) => {}
                Some(at) => {
                    self.resync_bytes += at as u64;
                    self.buf.drain(..at);
                }
                None => {
                    // Keep up to 3 trailing bytes — a magic prefix may
                    // straddle the next read.
                    if self.buf.len() > 3 {
                        let drop = self.buf.len() - 3;
                        self.resync_bytes += drop as u64;
                        self.buf.drain(..drop);
                    }
                    if !self.fill()? {
                        return Ok(self.torn_tail());
                    }
                    continue;
                }
            }
            if self.buf.len() < HEADER_LEN {
                if !self.fill()? {
                    return Ok(self.torn_tail());
                }
                continue;
            }
            let kind = self.buf[4];
            let len = u32::from_le_bytes(self.buf[5..9].try_into().expect("4 bytes")) as usize;
            if !(KIND_ASSIGN..=KIND_DONE).contains(&kind) || len > MAX_FRAME {
                self.reject();
                continue;
            }
            let total = HEADER_LEN + len + 8;
            if self.buf.len() < total {
                if !self.fill()? {
                    return Ok(self.torn_tail());
                }
                continue;
            }
            let expected =
                u64::from_le_bytes(self.buf[total - 8..total].try_into().expect("8 bytes"));
            if fnv1a(&self.buf[4..HEADER_LEN + len]) != expected {
                self.reject();
                continue;
            }
            match decode_frame(kind, &self.buf[HEADER_LEN..HEADER_LEN + len]) {
                Some(frame) => {
                    self.buf.drain(..total);
                    return Ok(Some(frame));
                }
                None => self.reject(),
            }
        }
    }

    /// Rejects the bytes at the head of the buffer as a corrupt frame: drop
    /// one byte so the boundary hunt moves past this magic, and recount.
    fn reject(&mut self) {
        self.corrupt_frames += 1;
        self.resync_bytes += 1;
        self.buf.drain(..1);
    }

    fn torn_tail(&mut self) -> Option<Frame> {
        if !self.buf.is_empty() {
            self.resync_bytes += self.buf.len() as u64;
            self.buf.clear();
        }
        None
    }

    /// Pulls more bytes from the stream; `Ok(false)` at EOF. Goes through
    /// the `net-read` fault point.
    fn fill(&mut self) -> io::Result<bool> {
        faultpoint::io_check("net-read")?;
        let mut chunk = [0u8; 16 * 1024];
        let n = self.inner.read(&mut chunk)?;
        if n == 0 {
            return Ok(false);
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(true)
    }
}

// ---------------------------------------------------------------------------
// Worker side: the accept loop.
// ---------------------------------------------------------------------------

/// Knobs of a shard server ([`serve`]).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Pump tick: how often the worker streams new journal bytes and a
    /// heartbeat back to the coordinator.
    pub heartbeat_ms: u64,
    /// Directory the worker's local shard journals are written to.
    pub workdir: PathBuf,
    /// Stop after this many accepted connections (`None` = serve forever);
    /// used by in-process tests.
    pub max_assignments: Option<usize>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            heartbeat_ms: 25,
            workdir: std::env::temp_dir().join(format!("ncg-shard-server-{}", std::process::id())),
            max_assignments: None,
        }
    }
}

/// Runs the shard-server accept loop on an already-bound listener: one
/// assignment per connection, handled to completion before the next accept.
/// A failed assignment (severed connection, refused plan) is logged and the
/// loop continues — a worker survives its coordinator.
///
/// The `net-accept` fault point fires before and after each accept, so the
/// matrix can kill a worker pre-assignment or make it drop fresh
/// connections.
pub fn serve(listener: &TcpListener, opts: &ServeOptions) -> io::Result<()> {
    std::fs::create_dir_all(&opts.workdir)?;
    let mut served = 0usize;
    loop {
        if let Some(max) = opts.max_assignments {
            if served >= max {
                return Ok(());
            }
        }
        faultpoint::trip("net-accept");
        let (stream, peer) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(e) => {
                eprintln!("shard server: accept failed: {e}");
                continue;
            }
        };
        served += 1;
        if let Err(e) = faultpoint::io_check("net-accept") {
            eprintln!("shard server: dropping connection from {peer}: {e}");
            continue;
        }
        if let Err(e) = handle_assignment(stream, opts) {
            eprintln!("shard server: assignment from {peer} failed: {e}");
        }
    }
}

fn refuse<W: Write>(writer: &mut W, reason: String) -> io::Result<()> {
    eprintln!("shard server: refusing assignment: {reason}");
    write_frame(writer, &Frame::Refuse { reason })
}

/// Handles one connection: read the `Assign`, validate it (plan spec, plan
/// hash, shard identity — each failure is a `Refuse`, not a dead socket),
/// run the shard locally through the ordinary orchestrator, and pump journal
/// bytes + heartbeats back until the run finishes, ending with `Done`.
fn handle_assignment(stream: TcpStream, opts: &ServeOptions) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = FrameReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let Some(frame) = reader.read_frame()? else {
        return Ok(()); // peer connected and went away
    };
    let Frame::Assign {
        plan_hash,
        shard_index,
        shard_count,
        threads,
        spec,
    } = frame
    else {
        return refuse(&mut writer, "first frame must be an assignment".into());
    };
    let plan = match SweepPlan::parse_spec(&spec) {
        Ok(plan) => plan,
        Err(e) => return refuse(&mut writer, format!("plan spec unreadable: {e}")),
    };
    let derived = plan.plan_hash();
    if derived != plan_hash {
        return refuse(
            &mut writer,
            format!(
                "plan hash mismatch — coordinator expects {plan_hash:016x}, this machine \
                 derives {derived:016x} (core count flipped a scan mode?)"
            ),
        );
    }
    if shard_count == 0 || shard_index >= shard_count {
        return refuse(
            &mut writer,
            format!("bad shard identity {shard_index} of {shard_count}"),
        );
    }
    let shard = ShardSpec::new(shard_index as usize, shard_count as usize);
    let journal = opts.workdir.join(shard.journal_name());
    // Each assignment starts fresh: the coordinator owns durability (it
    // persists every streamed attempt); resuming a stale local journal would
    // stream records the coordinator may already hold from a dead attempt.
    let _ = std::fs::remove_file(&journal);
    let run_opts = crate::orchestrator::RunOptions {
        threads: if threads == 0 {
            None
        } else {
            Some(threads as usize)
        },
        journal: Some(journal.clone()),
        resume: false,
        stop_after_chunks: None,
        telemetry: None,
        heartbeat: false,
        shard: Some(shard),
    };
    let runner = std::thread::spawn(move || crate::orchestrator::run_sweep(&plan, &run_opts));
    let pumped = pump_journal(&mut writer, &journal, &runner, opts.heartbeat_ms);
    // Always join before returning: the next assignment for this shard
    // truncates the same journal path, and a still-running orphan writer
    // would corrupt it.
    let outcome = runner.join();
    pumped?;
    let code = match outcome {
        Ok(Ok(out)) if out.completed => 0u32,
        Ok(_) => 1,
        Err(_) => 1,
    };
    write_frame(&mut writer, &Frame::Done { code })
}

/// Streams new journal bytes (and a heartbeat) every tick until the runner
/// thread finishes, then drains the remainder so `Done` is only ever sent
/// after every journal byte. The `net-heartbeat` fault point fires at the
/// top of each tick — a `delay` there stalls *all* progress, which is
/// exactly what the coordinator's no-progress deadline must catch.
fn pump_journal<W: Write, T>(
    writer: &mut W,
    journal: &Path,
    runner: &std::thread::JoinHandle<T>,
    heartbeat_ms: u64,
) -> io::Result<()> {
    let mut src: Option<File> = None;
    let mut sent = 0u64;
    loop {
        faultpoint::trip("net-heartbeat");
        // Read `finished` before draining: everything the run wrote is then
        // guaranteed to be streamed before this iteration ends.
        let finished = runner.is_finished();
        if src.is_none() {
            src = File::open(journal).ok(); // appears once the run starts
        }
        if let Some(f) = src.as_mut() {
            loop {
                let mut chunk = vec![0u8; DATA_CHUNK];
                let n = f.read(&mut chunk)?;
                if n == 0 {
                    break;
                }
                chunk.truncate(n);
                sent += n as u64;
                write_frame(writer, &Frame::Data { bytes: chunk })?;
            }
        }
        write_frame(
            writer,
            &Frame::Heartbeat {
                journal_bytes: sent,
            },
        )?;
        if finished {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(heartbeat_ms.max(1)));
    }
}

// ---------------------------------------------------------------------------
// Coordinator side.
// ---------------------------------------------------------------------------

/// Knobs of the distributed coordinator ([`run_distributed`]).
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Number of shards the plan is split into (independent of the worker
    /// count — shards queue for workers).
    pub shards: usize,
    /// Assignment attempts per shard (across workers) before it degrades to
    /// incomplete points.
    pub assign_attempts: usize,
    /// TCP connect attempts per assignment before the worker is charged a
    /// failure.
    pub connect_attempts: usize,
    /// Base of the exponential retry backoff (jittered, see
    /// [`backoff_with_jitter`]).
    pub backoff_base_ms: u64,
    /// Cap of the exponential retry backoff.
    pub backoff_cap_ms: u64,
    /// An assignment delivering no *new* journal bytes for this long is
    /// killed and the shard reassigned (the byte-growth liveness deadline).
    pub no_progress_ms: u64,
    /// Socket read-timeout granularity of the liveness poll, and the pool's
    /// wait-for-a-free-worker poll.
    pub poll_ms: u64,
    /// Consecutive failed assignments after which a worker is dropped from
    /// the pool (survivors absorb its shards).
    pub worker_failure_limit: usize,
    /// Worker threads per shard (`None` = each worker decides).
    pub threads_per_shard: Option<usize>,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            shards: 2,
            assign_attempts: 4,
            connect_attempts: 3,
            backoff_base_ms: 100,
            backoff_cap_ms: 2_000,
            no_progress_ms: 30_000,
            poll_ms: 25,
            worker_failure_limit: 3,
            threads_per_shard: None,
        }
    }
}

/// Post-mortem of one shard's journey through the transport.
#[derive(Debug, Clone)]
pub struct ShardTransportReport {
    /// The shard.
    pub shard: usize,
    /// Assignments dispatched (1 = clean first try).
    pub attempts: usize,
    /// True once an audited `Done(0)` covered every expected chunk key.
    pub completed: bool,
    /// Retries that moved the shard to a *different* worker.
    pub reassignments: usize,
    /// Assignments killed by the no-progress deadline.
    pub stall_kills: usize,
    /// Assignments that ended in a severed connection (mid-record EOF,
    /// write/read error).
    pub severed: usize,
    /// Frames rejected by checksum/validation across all attempts.
    pub corrupt_frames: usize,
    /// Bytes discarded while resyncing to frame boundaries.
    pub resync_bytes: u64,
}

/// The merged result of a distributed sweep.
#[derive(Debug)]
pub struct TransportOutcome {
    /// Chunk-ordered merged aggregates — bit-identical to a fault-free
    /// single-process run when `merged.completed`.
    pub merged: MergedSweep,
    /// Per-shard transport reports, in shard order.
    pub shards: Vec<ShardTransportReport>,
    /// True if any shard exhausted its assignment budget (its unfinished
    /// points are named in `merged.incomplete_points`).
    pub degraded: bool,
    /// Addresses dropped from the pool for consecutive failures or a
    /// plan-hash refusal.
    pub dead_workers: Vec<String>,
}

struct WorkerSlot {
    addr: String,
    busy: bool,
    failures: usize,
    dead: bool,
}

/// How an assignment reflects on the worker that ran it.
enum SlotOutcome {
    /// Clean completion: the failure streak resets.
    Ok,
    /// Connection-level failure (connect, sever, stall): one strike.
    Failed,
    /// Plan-hash refusal: this worker can never run this plan.
    Fatal,
    /// Workload-level incompleteness — not the worker's fault.
    Neutral,
}

struct Pool {
    slots: Mutex<Vec<WorkerSlot>>,
}

impl Pool {
    fn new(addrs: &[String]) -> Pool {
        Pool {
            slots: Mutex::new(
                addrs
                    .iter()
                    .map(|addr| WorkerSlot {
                        addr: addr.clone(),
                        busy: false,
                        failures: 0,
                        dead: false,
                    })
                    .collect(),
            ),
        }
    }

    /// Claims a live idle worker, preferring one other than `avoid` (a
    /// reassignment should move to a different box when one exists). Blocks
    /// while all live workers are busy; `None` once every worker is dead.
    fn acquire(&self, avoid: Option<usize>, poll_ms: u64) -> Option<usize> {
        loop {
            {
                let mut slots = self.slots.lock().expect("worker pool poisoned");
                if slots.iter().all(|s| s.dead) {
                    return None;
                }
                let mut pick = None;
                for (i, s) in slots.iter().enumerate() {
                    if s.busy || s.dead {
                        continue;
                    }
                    if Some(i) != avoid {
                        pick = Some(i);
                        break;
                    }
                    if pick.is_none() {
                        pick = Some(i);
                    }
                }
                if let Some(i) = pick {
                    slots[i].busy = true;
                    return Some(i);
                }
            }
            std::thread::sleep(Duration::from_millis(poll_ms.max(1)));
        }
    }

    fn addr(&self, i: usize) -> String {
        self.slots.lock().expect("worker pool poisoned")[i]
            .addr
            .clone()
    }

    fn release(&self, i: usize, outcome: SlotOutcome, failure_limit: usize) {
        let mut slots = self.slots.lock().expect("worker pool poisoned");
        let slot = &mut slots[i];
        slot.busy = false;
        match outcome {
            SlotOutcome::Ok => slot.failures = 0,
            SlotOutcome::Failed => {
                slot.failures += 1;
                if slot.failures >= failure_limit.max(1) {
                    slot.dead = true;
                    eprintln!(
                        "transport: worker {} dropped after {} consecutive failures",
                        slot.addr, slot.failures
                    );
                }
            }
            SlotOutcome::Fatal => slot.dead = true,
            SlotOutcome::Neutral => {}
        }
    }

    fn dead_addrs(&self) -> Vec<String> {
        self.slots
            .lock()
            .expect("worker pool poisoned")
            .iter()
            .filter(|s| s.dead)
            .map(|s| s.addr.clone())
            .collect()
    }
}

/// How one assignment ended, from the coordinator's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Assignment {
    Complete,
    Incomplete,
    Refused,
    Stalled,
    Severed,
    ConnectFailed,
}

struct Coordinator<'a> {
    plan: &'a SweepPlan,
    dir: &'a Path,
    cfg: &'a TransportConfig,
    plan_hash: u64,
    spec: String,
    pool: Pool,
    journals: Mutex<Vec<PathBuf>>,
    telemetry: Option<TelemetryWriter>,
}

/// Runs `plan` as `cfg.shards` shard assignments dispatched over TCP to the
/// `workers` pool, persisting every streamed attempt into its own per-shard
/// journal file in `dir` and merging them all through the existing
/// [`merge_shard_journals`] fold.
///
/// Never fails because a worker failed: severed connections, stalls,
/// refusals and dead workers retry, reassign and finally degrade to named
/// incomplete points. Errors are reserved for the coordinator's own I/O and
/// merge integrity violations.
pub fn run_distributed(
    plan: &SweepPlan,
    dir: &Path,
    cfg: &TransportConfig,
    workers: &[String],
) -> io::Result<TransportOutcome> {
    assert!(!workers.is_empty(), "a distributed sweep needs workers");
    assert!(
        cfg.shards > 0,
        "a distributed sweep needs at least one shard"
    );
    std::fs::create_dir_all(dir)?;
    let coordinator = Coordinator {
        plan,
        dir,
        cfg,
        plan_hash: plan.plan_hash(),
        spec: plan.to_spec_string(),
        pool: Pool::new(workers),
        journals: Mutex::new(Vec::new()),
        // Best-effort, like all telemetry: a coordinator that can't journal
        // its reassignment log still runs the sweep.
        telemetry: TelemetryWriter::create(
            &dir.join("coordinator.telemetry.jsonl"),
            plan.plan_hash(),
        )
        .ok(),
    };
    let reports: Vec<ShardTransportReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.shards)
            .map(|index| {
                let coordinator = &coordinator;
                scope.spawn(move || coordinator.run_shard(index))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard transport task panicked"))
            .collect()
    });
    let journals = coordinator
        .journals
        .into_inner()
        .expect("journal list poisoned");
    let merged = merge_shard_journals(plan, cfg.shards, &journals)?;
    let degraded = reports.iter().any(|r| !r.completed);
    Ok(TransportOutcome {
        merged,
        shards: reports,
        degraded,
        dead_workers: coordinator.pool.dead_addrs(),
    })
}

impl Coordinator<'_> {
    fn tel(&self, shard: usize, attempt: usize, worker: &str, what: &str) {
        if let Some(t) = &self.telemetry {
            t.transport(shard, attempt, worker, what);
        }
    }

    fn run_shard(&self, index: usize) -> ShardTransportReport {
        let cfg = self.cfg;
        let shard = ShardSpec::new(index, cfg.shards);
        let expected = shard_chunk_keys(self.plan, shard);
        let mut report = ShardTransportReport {
            shard: index,
            attempts: 0,
            completed: false,
            reassignments: 0,
            stall_kills: 0,
            severed: 0,
            corrupt_frames: 0,
            resync_bytes: 0,
        };
        if expected.is_empty() {
            report.completed = true; // owns nothing: nothing to dispatch
            return report;
        }
        let mut last_worker: Option<usize> = None;
        while report.attempts < cfg.assign_attempts.max(1) {
            let Some(w) = self.pool.acquire(last_worker, cfg.poll_ms) else {
                self.tel(index, report.attempts, "-", "gave-up");
                eprintln!(
                    "transport: shard {index}: every worker is dead; giving up after \
                     {} attempts",
                    report.attempts
                );
                return report;
            };
            let attempt = report.attempts;
            report.attempts += 1;
            let addr = self.pool.addr(w);
            let what = match last_worker {
                None => "assign",
                Some(prev) if prev != w => {
                    report.reassignments += 1;
                    "reassign"
                }
                Some(_) => "retry",
            };
            self.tel(index, attempt, &addr, what);
            let path = self.dir.join(shard.attempt_journal_name(attempt));
            let result = self.run_assignment(&addr, shard, &expected, &path, &mut report);
            if path.exists() {
                self.journals
                    .lock()
                    .expect("journal list poisoned")
                    .push(path);
            }
            let slot_outcome = match result {
                Assignment::Complete => SlotOutcome::Ok,
                Assignment::ConnectFailed | Assignment::Severed | Assignment::Stalled => {
                    SlotOutcome::Failed
                }
                Assignment::Refused => SlotOutcome::Fatal,
                Assignment::Incomplete => SlotOutcome::Neutral,
            };
            self.pool.release(w, slot_outcome, cfg.worker_failure_limit);
            last_worker = Some(w);
            match result {
                Assignment::Complete => {
                    report.completed = true;
                    self.tel(index, attempt, &addr, "complete");
                    return report;
                }
                Assignment::Stalled => self.tel(index, attempt, &addr, "stall"),
                Assignment::Severed => self.tel(index, attempt, &addr, "sever"),
                Assignment::Refused => self.tel(index, attempt, &addr, "refused"),
                Assignment::ConnectFailed => self.tel(index, attempt, &addr, "connect-failed"),
                Assignment::Incomplete => self.tel(index, attempt, &addr, "incomplete"),
            }
            if report.attempts < cfg.assign_attempts {
                std::thread::sleep(Duration::from_millis(backoff_with_jitter(
                    cfg.backoff_base_ms,
                    cfg.backoff_cap_ms,
                    report.attempts,
                    index as u64,
                )));
            }
        }
        self.tel(index, report.attempts, "-", "gave-up");
        report
    }

    /// Dispatches one assignment and receives its stream into `out_path`.
    /// Liveness is new-byte growth: `Data` bytes received, or a `Heartbeat`
    /// raising the worker's high-water mark above what we've seen (a
    /// corrupt-dropped frame still proves the worker alive; the audit at
    /// `Done` catches the missing bytes).
    fn run_assignment(
        &self,
        addr: &str,
        shard: ShardSpec,
        expected: &[(u64, usize)],
        out_path: &Path,
        report: &mut ShardTransportReport,
    ) -> Assignment {
        let cfg = self.cfg;
        let Some(stream) = connect_with_retry(addr, cfg, shard.index as u64) else {
            return Assignment::ConnectFailed;
        };
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(Duration::from_millis(cfg.poll_ms.max(1))))
            .ok();
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => {
                report.severed += 1;
                return Assignment::Severed;
            }
        };
        let assign = Frame::Assign {
            plan_hash: self.plan_hash,
            shard_index: shard.index as u32,
            shard_count: shard.count as u32,
            threads: cfg.threads_per_shard.unwrap_or(0) as u32,
            spec: self.spec.clone(),
        };
        if write_frame(&mut writer, &assign).is_err() {
            report.severed += 1;
            return Assignment::Severed;
        }
        let mut out = match File::create(out_path) {
            Ok(f) => BufWriter::new(f),
            Err(e) => {
                eprintln!("transport: cannot create {}: {e}", out_path.display());
                report.severed += 1;
                return Assignment::Severed;
            }
        };
        let mut reader = FrameReader::new(stream);
        let deadline = Duration::from_millis(cfg.no_progress_ms.max(1));
        let mut last_progress = Instant::now();
        let mut high_water = 0u64;
        let result = loop {
            if last_progress.elapsed() >= deadline {
                report.stall_kills += 1;
                eprintln!(
                    "transport: shard {} on {addr}: no progress for {}ms; killing the \
                     assignment",
                    shard.index, cfg.no_progress_ms
                );
                break Assignment::Stalled;
            }
            match reader.read_frame() {
                Ok(Some(Frame::Data { bytes })) => {
                    if out.write_all(&bytes).and_then(|()| out.flush()).is_err() {
                        break Assignment::Severed;
                    }
                    high_water += bytes.len() as u64;
                    last_progress = Instant::now();
                }
                Ok(Some(Frame::Heartbeat { journal_bytes })) => {
                    if journal_bytes > high_water {
                        high_water = journal_bytes;
                        last_progress = Instant::now();
                    }
                }
                Ok(Some(Frame::Done { code })) => {
                    let _ = out.flush();
                    break if code == 0 && self.journal_covers(out_path, expected) {
                        Assignment::Complete
                    } else {
                        Assignment::Incomplete
                    };
                }
                Ok(Some(Frame::Refuse { reason })) => {
                    eprintln!("transport: {addr} refused shard {}: {reason}", shard.index);
                    break Assignment::Refused;
                }
                Ok(Some(Frame::Assign { .. })) => {} // nonsensical from a worker
                Ok(None) => break Assignment::Severed, // EOF mid-assignment
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) => {}
                Err(_) => break Assignment::Severed,
            }
        };
        report.corrupt_frames += reader.corrupt_frames;
        report.resync_bytes += reader.resync_bytes;
        if result == Assignment::Severed {
            report.severed += 1;
        }
        result
    }

    fn journal_covers(&self, path: &Path, expected: &[(u64, usize)]) -> bool {
        match crate::journal::load_journal(path, self.plan_hash) {
            Ok(contents) => contents.covers(expected),
            Err(_) => false,
        }
    }
}

/// TCP connect with a bounded retry budget and jittered exponential backoff.
fn connect_with_retry(addr: &str, cfg: &TransportConfig, salt: u64) -> Option<TcpStream> {
    let budget = cfg.connect_attempts.max(1);
    for attempt in 1..=budget {
        match TcpStream::connect(addr) {
            Ok(stream) => return Some(stream),
            Err(e) if attempt == budget => {
                eprintln!(
                    "transport: cannot connect to {addr}: {e} (giving up after {budget} \
                     attempts)"
                );
            }
            Err(_) => std::thread::sleep(Duration::from_millis(backoff_with_jitter(
                cfg.backoff_base_ms,
                cfg.backoff_cap_ms,
                attempt,
                // Decorrelate the connect storm from the assignment backoff.
                salt ^ 0x9e37_79b9_7f4a_7c15,
            ))),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::AutoSplit;
    use crate::scenario::Scenario;
    use ncg_core::policy::Policy;
    use ncg_sim::GameFamily;

    fn tiny_plan() -> SweepPlan {
        let mut plan = SweepPlan::new("transporttest");
        plan.scenarios = vec![Scenario::RingLattice { k: 2 }, Scenario::TorusGrid];
        plan.families = vec![GameFamily::AsgSum];
        plan.policies = vec![Policy::MaxCost];
        plan.ns = vec![8, 10];
        plan.trials = 4;
        plan.chunk_size = 2;
        plan.split = AutoSplit::never();
        plan
    }

    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::Assign {
                plan_hash: 0xdead_beef_1234_5678,
                shard_index: 1,
                shard_count: 3,
                threads: 2,
                spec: "ncg_sweep_plan=1\nname=x\n".into(),
            },
            Frame::Refuse {
                reason: "plan hash mismatch".into(),
            },
            Frame::Data {
                bytes: b"{\"point\":\"00ff\"}\n".to_vec(),
            },
            Frame::Heartbeat {
                journal_bytes: 9_876_543_210,
            },
            Frame::Done { code: 3 },
        ]
    }

    #[test]
    fn frame_codec_round_trips_every_kind() {
        let mut wire = Vec::new();
        for frame in all_frames() {
            write_frame(&mut wire, &frame).unwrap();
        }
        let mut reader = FrameReader::new(&wire[..]);
        for frame in all_frames() {
            assert_eq!(reader.read_frame().unwrap(), Some(frame));
        }
        assert_eq!(reader.read_frame().unwrap(), None, "clean EOF");
        assert_eq!(reader.corrupt_frames, 0);
        assert_eq!(reader.resync_bytes, 0);
    }

    #[test]
    fn reader_resyncs_past_a_corrupted_frame() {
        let frames = all_frames();
        let mut wire = Vec::new();
        write_frame(&mut wire, &frames[2]).unwrap();
        let second_start = wire.len();
        write_frame(&mut wire, &frames[3]).unwrap();
        write_frame(&mut wire, &frames[4]).unwrap();
        // Flip a payload byte of the middle frame: its checksum must reject
        // it, and the reader must still deliver the surrounding frames.
        wire[second_start + HEADER_LEN + 2] ^= 0x40;
        let mut reader = FrameReader::new(&wire[..]);
        assert_eq!(reader.read_frame().unwrap(), Some(frames[2].clone()));
        assert_eq!(
            reader.read_frame().unwrap(),
            Some(frames[4].clone()),
            "the corrupted heartbeat is skipped, the Done survives"
        );
        assert_eq!(reader.read_frame().unwrap(), None);
        assert!(reader.corrupt_frames >= 1, "rejection counted");
        assert!(reader.resync_bytes > 0, "resync cost counted");
    }

    #[test]
    fn reader_resyncs_past_leading_garbage() {
        let mut wire = b"not a frame at all".to_vec();
        write_frame(&mut wire, &Frame::Done { code: 0 }).unwrap();
        let mut reader = FrameReader::new(&wire[..]);
        assert_eq!(reader.read_frame().unwrap(), Some(Frame::Done { code: 0 }));
        assert_eq!(reader.resync_bytes, 18);
    }

    #[test]
    fn torn_trailing_frame_is_a_clean_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Done { code: 0 }).unwrap();
        let whole = wire.len();
        write_frame(&mut wire, &Frame::Heartbeat { journal_bytes: 7 }).unwrap();
        wire.truncate(whole + 6); // sever mid-record
        let mut reader = FrameReader::new(&wire[..]);
        assert_eq!(reader.read_frame().unwrap(), Some(Frame::Done { code: 0 }));
        assert_eq!(reader.read_frame().unwrap(), None, "torn tail is EOF");
        assert_eq!(reader.resync_bytes, 6, "the torn bytes are accounted for");
    }

    #[test]
    fn oversize_or_unknown_frames_are_rejected_without_allocation() {
        // A "frame" whose length field claims 4 GiB: must be rejected by the
        // MAX_FRAME guard, not awaited or allocated.
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC);
        wire.push(KIND_DATA);
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(&[0u8; 32]);
        let mut tail = Vec::new();
        write_frame(&mut tail, &Frame::Done { code: 9 }).unwrap();
        wire.extend_from_slice(&tail);
        let mut reader = FrameReader::new(&wire[..]);
        assert_eq!(reader.read_frame().unwrap(), Some(Frame::Done { code: 9 }));
        assert!(reader.corrupt_frames >= 1);
        // Unknown kind byte.
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC);
        wire.push(99);
        wire.extend_from_slice(&4u32.to_le_bytes());
        wire.extend_from_slice(b"abcd");
        wire.extend_from_slice(&fnv1a(b"nonsense").to_le_bytes());
        let mut reader = FrameReader::new(&wire[..]);
        assert_eq!(reader.read_frame().unwrap(), None);
        assert!(reader.corrupt_frames >= 1);
    }

    #[test]
    fn corrupt_fault_point_is_caught_by_frame_checksums() {
        let _guard = faultpoint::test_lock();
        // Frames large enough that `mangle`'s bit flips (at len/2 and len/4
        // of the whole frame) land in the payload: the checksum rejects the
        // frame outright. (A flip landing in the *length* field instead makes
        // the reader wait for phantom bytes — on a live stream later traffic
        // triggers the same checksum rejection; at EOF it degrades to a torn
        // tail, i.e. a sever, which the coordinator already retries.)
        let data = |tag: u8| Frame::Data {
            bytes: vec![tag; 48],
        };
        faultpoint::arm("net-write:corrupt:hits=2");
        let mut wire = Vec::new();
        write_frame(&mut wire, &data(1)).unwrap();
        write_frame(&mut wire, &data(2)).unwrap(); // mangled
        write_frame(&mut wire, &data(3)).unwrap();
        faultpoint::disarm();
        let mut reader = FrameReader::new(&wire[..]);
        assert_eq!(reader.read_frame().unwrap(), Some(data(1)));
        assert_eq!(
            reader.read_frame().unwrap(),
            Some(data(3)),
            "the in-flight-corrupted frame is dropped, not half-believed"
        );
        assert_eq!(reader.read_frame().unwrap(), None);
        assert_eq!(reader.corrupt_frames, 1);
    }

    /// The in-process identity assertion: a distributed run over a loopback
    /// worker produces per-point aggregates bit-identical to the local
    /// single-thread fold. (The multi-process, fault-injected matrix lives
    /// in `tests/transport.rs`.)
    #[test]
    fn in_process_distributed_run_matches_the_local_fold() {
        let plan = tiny_plan();
        let dir =
            std::env::temp_dir().join(format!("ncg-lab-transport-inproc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        let baseline = crate::orchestrator::run_sweep(
            &plan,
            &crate::orchestrator::RunOptions {
                threads: Some(1),
                journal: Some(dir.join("baseline.jsonl")),
                resume: false,
                stop_after_chunks: None,
                telemetry: None,
                heartbeat: false,
                shard: None,
            },
        )
        .unwrap();

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let workdir = dir.join("worker");
        let server = std::thread::spawn(move || {
            serve(
                &listener,
                &ServeOptions {
                    heartbeat_ms: 5,
                    workdir,
                    max_assignments: Some(2),
                },
            )
        });

        let cfg = TransportConfig {
            shards: 2,
            poll_ms: 5,
            threads_per_shard: Some(1),
            ..TransportConfig::default()
        };
        let outcome = run_distributed(&plan, &dir.join("coord"), &cfg, &[addr]).unwrap();
        server.join().unwrap().unwrap();

        assert!(outcome.merged.completed, "{:?}", outcome.shards);
        assert!(!outcome.degraded);
        assert!(outcome.dead_workers.is_empty());
        assert_eq!(outcome.merged.points.len(), baseline.points.len());
        for (merged, local) in outcome.merged.points.iter().zip(&baseline.points) {
            assert_eq!(merged.point.hash, local.point.hash);
            assert_eq!(merged.stats.count, local.stats.count);
            assert_eq!(merged.stats.total_steps, local.stats.total_steps);
            assert_eq!(
                merged.stats.mean.to_bits(),
                local.stats.mean.to_bits(),
                "transport-mode mean must be bit-identical to local mode"
            );
            assert_eq!(
                merged.stats.m2.to_bits(),
                local.stats.m2.to_bits(),
                "transport-mode m2 must be bit-identical to local mode"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_plan_hash_is_refused() {
        let plan = tiny_plan();
        let dir =
            std::env::temp_dir().join(format!("ncg-lab-transport-refuse-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let workdir = dir.join("worker");
        let server = std::thread::spawn(move || {
            serve(
                &listener,
                &ServeOptions {
                    heartbeat_ms: 5,
                    workdir,
                    max_assignments: Some(1),
                },
            )
        });
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        write_frame(
            &mut writer,
            &Frame::Assign {
                plan_hash: plan.plan_hash() ^ 1, // deliberately wrong
                shard_index: 0,
                shard_count: 1,
                threads: 1,
                spec: plan.to_spec_string(),
            },
        )
        .unwrap();
        let mut reader = FrameReader::new(stream);
        match reader.read_frame().unwrap() {
            Some(Frame::Refuse { reason }) => {
                assert!(reason.contains("plan hash mismatch"), "{reason}");
            }
            other => panic!("expected a Refuse, got {other:?}"),
        }
        server.join().unwrap().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = TransportConfig::default();
        assert!(cfg.shards >= 1);
        assert!(cfg.assign_attempts >= 1);
        assert!(cfg.connect_attempts >= 1);
        assert!(cfg.backoff_base_ms <= cfg.backoff_cap_ms);
        assert!(cfg.poll_ms < cfg.no_progress_ms);
    }
}
