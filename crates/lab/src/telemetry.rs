//! Live JSONL telemetry stream of a sweep run.
//!
//! Written *next to* the chunk journal, one line per event, so a dashboard
//! (or `tail -f`) can watch a long sweep without touching the checkpoint
//! machinery. Unlike the journal, telemetry is **best-effort**: a full disk
//! or yanked volume never aborts the sweep — the writer goes quiet after the
//! first failure and the run continues.
//!
//! Line format (hand-rolled JSON, one object per line):
//!
//! * header — `{"ncg_sweep_telemetry":1,"plan":"<hash>"}`
//! * chunk  — `{"event":"chunk","point":"<hash>","chunk":i,"start":s,
//!   "len":l,"trials":t,"steps":σ,"busy_ns":b,"done":d,"total":T}`
//!   appended when a worker completes a chunk (`done`/`total` count this
//!   run's chunk progress);
//! * worker — `{"event":"worker","worker":w,"claims":c,"busy_ns":b}`
//!   one per worker at shutdown: utilization is `busy_ns / wall_ns`;
//! * run    — `{"event":"run","executed":e,"resumed":r,"wall_ns":w}`
//!   the final line of a completed (or capped) run.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// One completed-chunk telemetry event.
#[derive(Debug, Clone, Copy)]
pub struct ChunkEvent {
    /// Stable hash of the owning sweep point.
    pub point_hash: u64,
    /// Chunk index within the point.
    pub chunk_index: usize,
    /// First trial of the chunk.
    pub start: usize,
    /// Trials in the chunk.
    pub len: usize,
    /// Trials aggregated (== `len`).
    pub trials: u64,
    /// Total dynamics steps across the chunk's trials.
    pub steps: u64,
    /// Wall-clock nanoseconds the worker spent executing the chunk.
    pub busy_ns: u64,
    /// Chunks completed by this run so far (including this one).
    pub done: usize,
    /// Chunks this run set out to execute.
    pub total: usize,
}

/// Renders one chunk event (no trailing newline).
fn render_chunk(ev: &ChunkEvent) -> String {
    let mut line = String::with_capacity(160);
    let _ = write!(
        line,
        "{{\"event\":\"chunk\",\"point\":\"{:016x}\",\"chunk\":{},\"start\":{},\"len\":{},\"trials\":{},\"steps\":{},\"busy_ns\":{},\"done\":{},\"total\":{}}}",
        ev.point_hash,
        ev.chunk_index,
        ev.start,
        ev.len,
        ev.trials,
        ev.steps,
        ev.busy_ns,
        ev.done,
        ev.total,
    );
    line
}

/// Best-effort append-only telemetry writer shared across worker threads.
pub struct TelemetryWriter {
    file: Mutex<TelemetryFile>,
    failed: AtomicBool,
}

/// The stream plus its running byte offset — reported in the degradation
/// warning so a post-mortem can line the failure up with the file on disk.
struct TelemetryFile {
    file: BufWriter<File>,
    written: u64,
}

impl TelemetryWriter {
    /// Creates a fresh telemetry stream at `path` (truncating any previous
    /// file) and writes the plan-hash header. Creation errors *are* surfaced
    /// — a path that never worked is a configuration mistake, not a mid-run
    /// hiccup.
    pub fn create(path: &Path, plan_hash: u64) -> std::io::Result<TelemetryWriter> {
        let mut file = BufWriter::new(File::create(path)?);
        let header = format!("{{\"ncg_sweep_telemetry\":1,\"plan\":\"{plan_hash:016x}\"}}\n");
        file.write_all(header.as_bytes())?;
        file.flush()?;
        Ok(TelemetryWriter {
            file: Mutex::new(TelemetryFile {
                file,
                written: header.len() as u64,
            }),
            failed: AtomicBool::new(false),
        })
    }

    /// True once a mid-run append has failed and the stream went dark. The
    /// run summary surfaces this, so a silent telemetry gap is visible after
    /// the fact.
    pub fn degraded(&self) -> bool {
        self.failed.load(Ordering::Relaxed)
    }

    fn append(&self, line: &str) {
        if self.failed.load(Ordering::Relaxed) {
            return;
        }
        let mut inner = self.file.lock().expect("telemetry mutex poisoned");
        // The `telemetry-append` fault point injects the failure modes a
        // best-effort stream must shrug off: I/O errors (stream degrades,
        // sweep continues), delays (a stalled heartbeat the supervisor must
        // not mistake for progress) and kills.
        let result = crate::faultpoint::io_check("telemetry-append")
            .and_then(|()| writeln!(inner.file, "{line}"))
            .and_then(|()| inner.file.flush());
        match result {
            Ok(()) => inner.written += line.len() as u64 + 1,
            Err(e) => {
                if !self.failed.swap(true, Ordering::Relaxed) {
                    eprintln!(
                        "sweep telemetry: append failed at byte offset {} ({:?}: {e}); \
                         stream disabled for the rest of the run",
                        inner.written,
                        e.kind()
                    );
                }
            }
        }
    }

    /// Records a completed chunk.
    pub fn chunk(&self, ev: &ChunkEvent) {
        self.append(&render_chunk(ev));
    }

    /// Records one worker's end-of-run utilization summary.
    pub fn worker(&self, worker: usize, claims: u64, busy_ns: u64) {
        self.append(&format!(
            "{{\"event\":\"worker\",\"worker\":{worker},\"claims\":{claims},\"busy_ns\":{busy_ns}}}"
        ));
    }

    /// Records the run's final summary line.
    pub fn run(&self, executed: usize, resumed: usize, wall_ns: u64) {
        self.append(&format!(
            "{{\"event\":\"run\",\"executed\":{executed},\"resumed\":{resumed},\"wall_ns\":{wall_ns}}}"
        ));
    }

    /// Records one step of a distributed-shard assignment's lifecycle
    /// (`what` is a short verb: `assign`, `complete`, `reassign`, `stall`,
    /// `sever`, `refused`, `gave-up`) so a dashboard tailing the
    /// coordinator's stream sees reassignments as they happen.
    pub fn transport(&self, shard: usize, attempt: usize, worker: &str, what: &str) {
        // Worker addresses are host:port strings; strip anything that could
        // break the hand-rolled JSON rather than pulling in an escaper.
        let worker: String = worker
            .chars()
            .filter(|c| *c != '"' && *c != '\\' && !c.is_control())
            .collect();
        self.append(&format!(
            "{{\"event\":\"transport\",\"shard\":{shard},\"attempt\":{attempt},\"worker\":\"{worker}\",\"what\":\"{what}\"}}"
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_stream_renders_every_event_kind() {
        let dir = std::env::temp_dir().join(format!("ncg-lab-telemetry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t1.jsonl");
        let writer = TelemetryWriter::create(&path, 0xabcd).unwrap();
        writer.chunk(&ChunkEvent {
            point_hash: 0x1234,
            chunk_index: 2,
            start: 8,
            len: 4,
            trials: 4,
            steps: 57,
            busy_ns: 1_000_000,
            done: 1,
            total: 6,
        });
        writer.worker(0, 3, 2_000_000);
        writer.run(6, 0, 9_000_000);
        writer.transport(1, 2, "127.0.0.1:9000\"\\", "reassign");
        drop(writer);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(
            lines[0],
            "{\"ncg_sweep_telemetry\":1,\"plan\":\"000000000000abcd\"}"
        );
        assert_eq!(
            lines[1],
            "{\"event\":\"chunk\",\"point\":\"0000000000001234\",\"chunk\":2,\"start\":8,\"len\":4,\"trials\":4,\"steps\":57,\"busy_ns\":1000000,\"done\":1,\"total\":6}"
        );
        assert_eq!(
            lines[2],
            "{\"event\":\"worker\",\"worker\":0,\"claims\":3,\"busy_ns\":2000000}"
        );
        assert_eq!(
            lines[3],
            "{\"event\":\"run\",\"executed\":6,\"resumed\":0,\"wall_ns\":9000000}"
        );
        assert_eq!(
            lines[4],
            "{\"event\":\"transport\",\"shard\":1,\"attempt\":2,\"worker\":\"127.0.0.1:9000\",\"what\":\"reassign\"}",
            "JSON-breaking bytes in a worker address are stripped"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_failure_degrades_the_stream_without_aborting() {
        let _guard = crate::faultpoint::test_lock();
        let dir = std::env::temp_dir().join(format!("ncg-lab-telemetry2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t2.jsonl");
        let writer = TelemetryWriter::create(&path, 0x77).unwrap();
        writer.worker(0, 1, 10);
        assert!(!writer.degraded());
        crate::faultpoint::arm("telemetry-append:err");
        writer.worker(1, 2, 20); // injected failure: stream goes dark
        crate::faultpoint::disarm();
        assert!(writer.degraded());
        writer.worker(2, 3, 30); // silently dropped
        writer.run(5, 0, 99);
        drop(writer);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"worker\":0"));
        assert!(!text.contains("\"worker\":1"), "failed line never landed");
        assert!(!text.contains("\"worker\":2"), "stream stayed dark");
        assert!(!text.contains("\"event\":\"run\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
