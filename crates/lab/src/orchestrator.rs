//! The adaptive batch orchestrator: executes a [`SweepPlan`] as a shared
//! work queue of `(point, trial-chunk)` jobs.
//!
//! Workers steal jobs across *points* as well as trials: the queue is ordered
//! round-robin by chunk index (every point's first chunk before any point's
//! second), so progress — and therefore checkpoint coverage — spreads evenly
//! over the grid instead of draining one point at a time. Memory stays
//! `O(points × chunks)` small aggregates; no `TrialResult` is ever retained.
//!
//! Reproducibility contract: the aggregates of a completed sweep are
//! **bit-identical** regardless of worker count, scan width, and kill/resume
//! splits — chunk contents are pure functions of `(point, start, len)` and
//! per-point aggregates merge chunk-ordered. The machine's core count enters
//! only through the plan's scan-mode decision, which is baked into the point
//! hashes; the journal's plan-hash guard turns any cross-machine flip of
//! that decision into a hard error instead of a silent mix.

use crate::journal::{header_is_damaged, load_journal, ChunkRecord, JournalWriter};
use crate::plan::{SweepPlan, SweepPoint};
use crate::shard::ShardSpec;
use crate::telemetry::{ChunkEvent, TelemetryWriter};
use ncg_sim::{run_seeded_trial, StreamingStats};
use ncg_trace as trace;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Execution options of one sweep run.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Worker threads (`None` = available CPUs).
    pub threads: Option<usize>,
    /// Checkpoint journal path (`None` = no checkpointing).
    pub journal: Option<PathBuf>,
    /// Load completed chunks from an existing journal before running.
    pub resume: bool,
    /// Execute at most this many chunks in *this* run — a simulated
    /// mid-sweep kill, used by the smoke test and the CI resume check. The
    /// cap is enforced on job *claims*, so it holds for any worker count.
    pub stop_after_chunks: Option<usize>,
    /// Live telemetry JSONL stream path (`None` = no telemetry), written
    /// next to the chunk journal — see [`crate::telemetry`]. Best-effort:
    /// mid-run write failures never abort the sweep.
    pub telemetry: Option<PathBuf>,
    /// Print a heartbeat line to stderr after every completed chunk:
    /// chunks done, points done, elapsed and ETA.
    pub heartbeat: bool,
    /// Execute only the chunks this shard owns (see [`crate::shard`]); the
    /// journal is created with the shard id folded into its header. `None`
    /// runs the whole plan unsharded.
    pub shard: Option<ShardSpec>,
}

/// Aggregated outcome of one point.
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// The executed point.
    pub point: SweepPoint,
    /// Chunks completed so far (== chunk count when the sweep finished).
    pub completed_chunks: usize,
    /// Total chunks of the point.
    pub total_chunks: usize,
    /// The chunk-ordered merge of all completed chunk aggregates.
    pub stats: StreamingStats,
}

impl PointOutcome {
    /// True once every chunk of the point completed.
    pub fn complete(&self) -> bool {
        self.completed_chunks == self.total_chunks
    }
}

/// Outcome of a sweep run.
#[derive(Debug)]
pub struct SweepOutcome {
    /// True if this run finished every chunk it set out to execute (for a
    /// sharded run: every chunk the shard *owns*; chunks of other shards are
    /// not this run's business).
    pub completed: bool,
    /// Per-point aggregates, in plan (flatten) order.
    pub points: Vec<PointOutcome>,
    /// Chunks executed by this run.
    pub executed_chunks: usize,
    /// Chunks restored from the journal instead of re-running.
    pub resumed_chunks: usize,
    /// Torn or checksum-rejected journal lines discarded on resume (0 when
    /// not resuming).
    pub journal_skipped_lines: usize,
    /// Journal records superseded by a later rewrite of the same chunk key
    /// (keep-last semantics; see [`crate::journal::JournalContents`]).
    pub journal_superseded: usize,
    /// True if the best-effort telemetry stream went dark mid-run (a failed
    /// append disables it; the sweep itself continues).
    pub telemetry_degraded: bool,
    /// Merged per-worker trace reports — `None` unless tracing was enabled
    /// ([`ncg_trace::set_enabled`]) while the sweep ran. Purely
    /// observational: aggregates are bit-identical either way.
    pub trace: Option<trace::TraceReport>,
}

struct Job {
    point_index: usize,
    chunk_index: usize,
    start: usize,
    len: usize,
}

/// Runs one chunk of one point: trials `start .. start + len`, each derived
/// by the shared [`run_seeded_trial`] convention (the same one the figure
/// runner uses, so chunk contents stay a pure function of the point), and
/// streamed into a fresh [`StreamingStats`].
fn run_chunk(point: &SweepPoint, start: usize, len: usize, scan_width: usize) -> StreamingStats {
    let game = point.make_game();
    let mut engine = point.engine;
    if engine.parallel_scan.is_some() {
        // The plan only fixes the *mode*; the width is machine-local and
        // cannot influence trajectories (workers consume no randomness).
        engine.parallel_scan = Some(scan_width.max(1));
    }
    let mut stats = StreamingStats::new();
    for t in start..start + len {
        let result = run_seeded_trial(
            game.as_ref(),
            point.policy,
            engine,
            point.max_steps(),
            point.base_seed,
            t,
            |rng| point.scenario.generate(point.n, rng),
        );
        stats.push(&result, point.n);
    }
    stats
}

/// Executes `plan` and returns the per-point aggregates.
///
/// With a journal configured, every completed chunk is durably recorded
/// before the worker moves on; with `resume`, previously recorded chunks are
/// loaded instead of re-run. Errors surface only from journal I/O.
pub fn run_sweep(plan: &SweepPlan, opts: &RunOptions) -> std::io::Result<SweepOutcome> {
    let points = plan.flatten();
    let plan_hash = plan.plan_hash();
    let layouts: Vec<Vec<(usize, usize)>> = points.iter().map(|p| plan.chunks(p)).collect();

    // Per-point chunk slots, prefilled from the journal on resume.
    let mut slots: Vec<Vec<Option<StreamingStats>>> = layouts
        .iter()
        .map(|chunks| vec![None; chunks.len()])
        .collect();
    let mut resumed_chunks = 0usize;
    let mut journal_skipped_lines = 0usize;
    let mut journal_superseded = 0usize;
    // Set when the existing journal's header never reached disk intact (the
    // creating process died mid-header-write): nothing in the file can be
    // trusted, so resume starts the journal over instead of failing forever.
    let mut reset_journal = false;
    if opts.resume {
        if let Some(path) = &opts.journal {
            if path.exists() {
                match load_journal(path, plan_hash) {
                    Ok(contents) => {
                        if contents.shard != opts.shard {
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::InvalidData,
                                format!(
                                    "journal {} carries shard header {:?}, expected {:?}",
                                    path.display(),
                                    contents.shard,
                                    opts.shard
                                ),
                            ));
                        }
                        if contents.skipped_lines > 0 {
                            eprintln!(
                                "sweep journal {}: ignoring {} torn or corrupted line(s) \
                                 from an interrupted run",
                                path.display(),
                                contents.skipped_lines
                            );
                        }
                        journal_skipped_lines = contents.skipped_lines;
                        journal_superseded = contents.superseded_chunks;
                        for (pi, point) in points.iter().enumerate() {
                            for (ci, &(start, len)) in layouts[pi].iter().enumerate() {
                                if let Some(rec) = contents.chunks.get(&(point.hash, ci)) {
                                    if rec.start == start && rec.len == len {
                                        slots[pi][ci] = Some(rec.stats.clone());
                                        resumed_chunks += 1;
                                    }
                                }
                            }
                        }
                    }
                    Err(e) if header_is_damaged(&e) => {
                        eprintln!(
                            "sweep journal {}: header never reached disk intact; \
                             starting the journal over",
                            path.display()
                        );
                        reset_journal = true;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
    }

    let writer = match &opts.journal {
        Some(path) => Some(if opts.resume && path.exists() && !reset_journal {
            JournalWriter::append(path)?
        } else {
            JournalWriter::create_sharded(path, plan_hash, opts.shard)?
        }),
        None => None,
    };

    // Pending jobs, round-robin by chunk index across points; a shard run
    // claims only the chunks its deterministic partition owns.
    let mut jobs: Vec<Job> = Vec::new();
    let max_chunks = layouts.iter().map(Vec::len).max().unwrap_or(0);
    for ci in 0..max_chunks {
        for (pi, layout) in layouts.iter().enumerate() {
            if ci < layout.len()
                && slots[pi][ci].is_none()
                && opts.shard.is_none_or(|s| s.owns(points[pi].hash, ci))
            {
                let (start, len) = layout[ci];
                jobs.push(Job {
                    point_index: pi,
                    chunk_index: ci,
                    start,
                    len,
                });
            }
        }
    }

    let telemetry = match &opts.telemetry {
        Some(path) => Some(TelemetryWriter::create(path, plan_hash)?),
        None => None,
    };

    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let workers = opts.threads.unwrap_or(cores).max(1).min(jobs.len().max(1));
    // Cores left over per worker feed the parallel scan of scan-mode points.
    let scan_width = (cores / workers).max(1);

    // This run's chunk target (the claim cap may trim the job list) and the
    // per-point pending counters feeding the heartbeat's points-done count.
    let target_chunks = opts
        .stop_after_chunks
        .map_or(jobs.len(), |limit| limit.min(jobs.len()));
    let pending_per_point: Vec<AtomicUsize> = {
        let mut pending = vec![0usize; points.len()];
        for job in &jobs {
            pending[job.point_index] += 1;
        }
        pending.into_iter().map(AtomicUsize::new).collect()
    };
    let points_done = AtomicUsize::new(
        pending_per_point
            .iter()
            .filter(|p| p.load(Ordering::Relaxed) == 0)
            .count(),
    );

    let clock = trace::Stopwatch::start();
    let next = AtomicUsize::new(0);
    let done_this_run = AtomicUsize::new(0);
    let io_failed = AtomicBool::new(false);
    let slots_mutex = Mutex::new(std::mem::take(&mut slots));
    let io_error: Mutex<Option<std::io::Error>> = Mutex::new(None);
    let trace_acc: Mutex<Option<trace::TraceReport>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for worker_id in 0..workers {
            let (next, jobs, points, writer, telemetry, slots_mutex, io_error) = (
                &next,
                &jobs,
                &points,
                &writer,
                &telemetry,
                &slots_mutex,
                &io_error,
            );
            let (io_failed, done_this_run, pending_per_point, points_done, trace_acc, clock) = (
                &io_failed,
                &done_this_run,
                &pending_per_point,
                &points_done,
                &trace_acc,
                &clock,
            );
            scope.spawn(move || {
                let mut claims = 0u64;
                let mut busy_ns = 0u64;
                loop {
                    if io_failed.load(Ordering::Relaxed) {
                        break;
                    }
                    let j = next.fetch_add(1, Ordering::Relaxed);
                    if j >= jobs.len() {
                        break;
                    }
                    // The claim counter itself enforces the simulated kill: at
                    // most `limit` jobs are ever claimed, no matter how many
                    // workers race here (completed-count checks would let up to
                    // `workers - 1` extra chunks through).
                    if opts.stop_after_chunks.is_some_and(|limit| j >= limit) {
                        break;
                    }
                    let job = &jobs[j];
                    let point = &points[job.point_index];
                    claims += 1;
                    trace::add(trace::Counter::ChunkClaims, 1);
                    // Kill/hang injection site of the fault matrix: dying
                    // here loses exactly the claimed-but-unjournaled chunk,
                    // the worst case resume has to cover.
                    crate::faultpoint::trip("chunk-run");
                    let chunk_clock = trace::Stopwatch::start();
                    let stats = {
                        let _sp = trace::span(trace::Phase::ChunkRun);
                        run_chunk(point, job.start, job.len, scan_width)
                    };
                    let chunk_ns = chunk_clock.elapsed_ns();
                    busy_ns += chunk_ns;
                    if let Some(writer) = writer {
                        let _sp = trace::span(trace::Phase::JournalAppend);
                        trace::add(trace::Counter::JournalAppends, 1);
                        let rec = ChunkRecord {
                            point_hash: point.hash,
                            chunk_index: job.chunk_index,
                            start: job.start,
                            len: job.len,
                            stats: stats.clone(),
                        };
                        if let Err(e) = writer.record(&rec) {
                            *io_error.lock().expect("error mutex poisoned") = Some(e);
                            io_failed.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                    slots_mutex.lock().expect("slots mutex poisoned")[job.point_index]
                        [job.chunk_index] = Some(stats.clone());
                    let done = done_this_run.fetch_add(1, Ordering::Relaxed) + 1;
                    if pending_per_point[job.point_index].fetch_sub(1, Ordering::Relaxed) == 1 {
                        points_done.fetch_add(1, Ordering::Relaxed);
                    }
                    if let Some(telemetry) = telemetry {
                        telemetry.chunk(&ChunkEvent {
                            point_hash: point.hash,
                            chunk_index: job.chunk_index,
                            start: job.start,
                            len: job.len,
                            trials: stats.count,
                            steps: stats.total_steps,
                            busy_ns: chunk_ns,
                            done,
                            total: target_chunks,
                        });
                    }
                    if opts.heartbeat {
                        let elapsed = clock.elapsed_secs();
                        let eta = elapsed / done as f64 * (target_chunks - done) as f64;
                        eprintln!(
                            "sweep: {done}/{target_chunks} chunks, {}/{} points, {elapsed:.1}s elapsed, ETA {eta:.1}s",
                            points_done.load(Ordering::Relaxed),
                            points.len(),
                        );
                    }
                }
                if let Some(telemetry) = telemetry {
                    telemetry.worker(worker_id, claims, busy_ns);
                }
                if trace::enabled() {
                    let report = trace::take_report();
                    let mut acc = trace_acc.lock().expect("trace mutex poisoned");
                    match acc.as_mut() {
                        Some(merged) => merged.merge(&report),
                        None => *acc = Some(report),
                    }
                }
            });
        }
    });

    slots = slots_mutex.into_inner().expect("slots mutex poisoned");
    if let Some(e) = io_error.into_inner().expect("error mutex poisoned") {
        return Err(e);
    }
    let executed_chunks = done_this_run.into_inner();
    if let Some(telemetry) = &telemetry {
        telemetry.run(executed_chunks, resumed_chunks, clock.elapsed_ns());
    }
    let telemetry_degraded = telemetry.as_ref().is_some_and(TelemetryWriter::degraded);
    let trace_report = trace_acc.into_inner().expect("trace mutex poisoned");

    // This run completed iff it executed every job it set out to claim — for
    // a sharded run that is the shard's own partition, not the whole grid.
    let completed = executed_chunks == jobs.len();

    // Merge per point, strictly in chunk order — the reproducibility anchor.
    let mut outcomes = Vec::with_capacity(points.len());
    for (pi, point) in points.into_iter().enumerate() {
        let mut stats = StreamingStats::new();
        let mut done = 0usize;
        for chunk in slots[pi].iter().flatten() {
            stats.merge(chunk);
            done += 1;
        }
        outcomes.push(PointOutcome {
            point,
            completed_chunks: done,
            total_chunks: layouts[pi].len(),
            stats,
        });
    }
    Ok(SweepOutcome {
        completed,
        points: outcomes,
        executed_chunks,
        resumed_chunks,
        journal_skipped_lines,
        journal_superseded,
        telemetry_degraded,
        trace: trace_report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::AutoSplit;
    use crate::scenario::Scenario;
    use ncg_core::policy::Policy;
    use ncg_sim::{GameFamily, InitialTopology};

    fn tiny_plan() -> SweepPlan {
        let mut plan = SweepPlan::new("tiny");
        plan.scenarios = vec![
            Scenario::Paper(InitialTopology::Budgeted { k: 2 }),
            Scenario::RingLattice { k: 2 },
        ];
        plan.families = vec![GameFamily::AsgSum];
        plan.policies = vec![Policy::MaxCost];
        plan.ns = vec![10, 13];
        plan.trials = 6;
        plan.chunk_size = 2;
        plan.split = AutoSplit::never();
        plan
    }

    #[test]
    fn sweep_completes_and_counts_chunks() {
        let plan = tiny_plan();
        let out = run_sweep(&plan, &RunOptions::default()).unwrap();
        assert!(out.completed);
        assert_eq!(out.points.len(), 4);
        assert_eq!(out.executed_chunks, 4 * 3, "4 points × 3 chunks");
        assert_eq!(out.resumed_chunks, 0);
        for p in &out.points {
            assert!(p.complete());
            assert_eq!(p.stats.count, 6, "{}", p.point.label());
            assert_eq!(p.stats.non_converged, 0, "{}", p.point.label());
            assert_eq!(
                p.stats.hist.iter().sum::<u64>(),
                6,
                "histogram covers every trial"
            );
        }
    }

    #[test]
    fn stop_after_chunks_leaves_the_sweep_incomplete() {
        let plan = tiny_plan();
        // The claim-based cap must hold exactly for ANY worker count — a
        // completed-count check would let extra in-flight chunks through
        // (and on a many-core box could even finish the whole sweep,
        // defeating the simulated kill).
        for threads in [1usize, 8] {
            let out = run_sweep(
                &plan,
                &RunOptions {
                    threads: Some(threads),
                    stop_after_chunks: Some(5),
                    ..RunOptions::default()
                },
            )
            .unwrap();
            assert!(!out.completed, "threads={threads}");
            assert_eq!(out.executed_chunks, 5, "threads={threads}");
            assert!(out.points.iter().any(|p| !p.complete()));
        }
    }

    #[test]
    fn telemetry_and_trace_capture_the_run() {
        let dir = std::env::temp_dir().join(format!("ncg-lab-sweep-tel-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("telemetry.jsonl");
        let plan = tiny_plan();
        trace::set_enabled(true);
        let out = run_sweep(
            &plan,
            &RunOptions {
                threads: Some(2),
                telemetry: Some(path.clone()),
                ..RunOptions::default()
            },
        )
        .unwrap();
        trace::set_enabled(false);
        assert!(out.completed);
        let report = out.trace.expect("tracing was enabled");
        assert_eq!(
            report.counter(trace::Counter::ChunkClaims),
            out.executed_chunks as u64,
            "every executed chunk was claimed exactly once"
        );
        assert!(report.total_ns() > 0, "chunk-run spans recorded time");
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("{\"ncg_sweep_telemetry\":1,"));
        let chunk_lines = lines
            .iter()
            .filter(|l| l.contains("\"event\":\"chunk\""))
            .count();
        assert_eq!(chunk_lines, out.executed_chunks);
        assert!(lines.iter().any(|l| l.contains("\"event\":\"worker\"")));
        assert!(
            lines.last().unwrap().contains("\"event\":\"run\""),
            "run summary is the final line"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_runs_merge_bit_identical_to_a_single_process_run() {
        let plan = tiny_plan();
        let baseline = run_sweep(&plan, &RunOptions::default()).unwrap();
        let dir = std::env::temp_dir().join(format!("ncg-lab-shardrun-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for count in [1usize, 3] {
            let mut paths = Vec::new();
            for index in 0..count {
                let spec = crate::shard::ShardSpec::new(index, count);
                let path = dir.join(spec.journal_name());
                let out = run_sweep(
                    &plan,
                    &RunOptions {
                        threads: Some(2),
                        journal: Some(path.clone()),
                        shard: Some(spec),
                        ..RunOptions::default()
                    },
                )
                .unwrap();
                assert!(out.completed, "shard {index}/{count} finished its part");
                paths.push(path);
            }
            let merged = crate::shard::merge_shard_journals(&plan, count, &paths).unwrap();
            assert!(merged.completed, "count={count}");
            for (a, b) in baseline.points.iter().zip(&merged.points) {
                assert_eq!(a.stats, b.stats, "count={count}: {}", a.point.label());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_resume_extends_its_own_journal_and_refuses_foreign_shards() {
        let plan = tiny_plan();
        let dir = std::env::temp_dir().join(format!("ncg-lab-shardres-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec = crate::shard::ShardSpec::new(0, 2);
        let path = dir.join(spec.journal_name());
        let opts = |stop| RunOptions {
            threads: Some(1),
            journal: Some(path.clone()),
            resume: true,
            stop_after_chunks: stop,
            shard: Some(spec),
            ..RunOptions::default()
        };
        let first = run_sweep(&plan, &opts(Some(2))).unwrap();
        assert!(!first.completed);
        assert_eq!(first.executed_chunks, 2);
        let second = run_sweep(&plan, &opts(None)).unwrap();
        assert!(second.completed);
        assert_eq!(second.resumed_chunks, 2, "the first run's chunks resumed");
        // The same journal refuses to resume as a different shard (or
        // unsharded): its header pins the shard identity.
        let mut foreign = opts(None);
        foreign.shard = Some(crate::shard::ShardSpec::new(1, 2));
        assert!(run_sweep(&plan, &foreign).is_err());
        foreign.shard = None;
        assert!(run_sweep(&plan, &foreign).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_resets_a_journal_whose_header_was_destroyed() {
        let plan = tiny_plan();
        let dir = std::env::temp_dir().join(format!("ncg-lab-reset-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("damaged.jsonl");
        // The previous process died mid-header-write: a torn header fragment.
        std::fs::write(&path, "{\"ncg_sw").unwrap();
        let out = run_sweep(
            &plan,
            &RunOptions {
                threads: Some(1),
                journal: Some(path.clone()),
                resume: true,
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert!(out.completed);
        assert_eq!(out.resumed_chunks, 0, "nothing trustworthy to resume");
        let reloaded = load_journal(&path, plan.plan_hash()).unwrap();
        assert_eq!(reloaded.chunks.len(), out.executed_chunks, "journal reset");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_surfaces_skipped_lines_in_the_outcome() {
        let plan = tiny_plan();
        let dir = std::env::temp_dir().join(format!("ncg-lab-skipped-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.jsonl");
        let first = run_sweep(
            &plan,
            &RunOptions {
                threads: Some(1),
                journal: Some(path.clone()),
                stop_after_chunks: Some(3),
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert!(!first.completed);
        assert_eq!(first.journal_skipped_lines, 0, "fresh journal, no resume");
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            write!(f, "{{\"point\":\"00aa\",\"chunk\":1").unwrap();
        }
        let second = run_sweep(
            &plan,
            &RunOptions {
                threads: Some(1),
                journal: Some(path.clone()),
                resume: true,
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert!(second.completed);
        assert_eq!(second.journal_skipped_lines, 1, "the torn tail is reported");
        assert_eq!(second.resumed_chunks, 3);
        assert!(!second.telemetry_degraded, "no telemetry configured");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn worker_count_does_not_change_aggregates() {
        let plan = tiny_plan();
        let one = run_sweep(
            &plan,
            &RunOptions {
                threads: Some(1),
                ..RunOptions::default()
            },
        )
        .unwrap();
        let many = run_sweep(
            &plan,
            &RunOptions {
                threads: Some(4),
                ..RunOptions::default()
            },
        )
        .unwrap();
        for (a, b) in one.points.iter().zip(&many.points) {
            assert_eq!(a.stats, b.stats, "{}", a.point.label());
        }
    }
}
