//! The JSON-lines chunk journal behind checkpoint/resume.
//!
//! One line per *completed trial chunk*, keyed by the stable point hash and
//! the chunk index, carrying the chunk's full [`StreamingStats`] payload. A
//! killed sweep is resumed by replaying the journal: completed chunks are
//! loaded as finished aggregates (never re-run), pending chunks re-execute,
//! and because chunk contents are pure functions of `(point, start, len)` the
//! resumed sweep produces **bit-identical** aggregates.
//!
//! Floating-point moments (`mean`, `m2`) are serialized as their exact IEEE
//! bit patterns — a decimal round-trip would silently break the bit-identity
//! guarantee. A header line pins the plan hash — and, for a **shard
//! journal**, the shard id next to it — so a journal can never be resumed
//! into a different grid nor merged into the wrong shard; a torn final line
//! (the process died mid-write) is detected and ignored. Every chunk line
//! carries an FNV-1a checksum of its payload, so a corrupted record (bit
//! rot, a fault-injected flip, an overwritten block) is rejected exactly
//! like a torn one instead of being half-believed. If the same chunk key
//! appears twice — a crash between the durable append and the resume
//! bookkeeping, followed by a clean rewrite — the **last complete record
//! wins** and the superseded one is counted, never silently shadowed.

use crate::faultpoint;
use crate::shard::ShardSpec;
use ncg_sim::{MoveKindCounts, StreamingStats, STEP_HIST_BUCKETS};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// One journal entry: a completed trial chunk of one point.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkRecord {
    /// Stable hash of the owning sweep point.
    pub point_hash: u64,
    /// Index of the chunk within the point's chunk layout.
    pub chunk_index: usize,
    /// First trial of the chunk.
    pub start: usize,
    /// Number of trials in the chunk.
    pub len: usize,
    /// The chunk's aggregate.
    pub stats: StreamingStats,
}

/// Renders one journal line (no trailing newline).
fn render_line(rec: &ChunkRecord) -> String {
    let s = &rec.stats;
    let mut line = format!(
        "{{\"point\":\"{:016x}\",\"chunk\":{},\"start\":{},\"len\":{},\"count\":{},\"total\":{},\"min\":{},\"max\":{},\"nonconv\":{},\"del\":{},\"swap\":{},\"buy\":{},\"rewrite\":{},\"mean_bits\":{},\"m2_bits\":{},\"hist\":[",
        rec.point_hash,
        rec.chunk_index,
        rec.start,
        rec.len,
        s.count,
        s.total_steps,
        s.min_steps,
        s.max_steps,
        s.non_converged,
        s.kinds.deletions,
        s.kinds.swaps,
        s.kinds.purchases,
        s.kinds.strategy_rewrites,
        s.mean.to_bits(),
        s.m2.to_bits(),
    );
    for (i, h) in s.hist.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let _ = write!(line, "{h}");
    }
    line.push(']');
    // Integrity checksum over everything before the "ck" field itself.
    let ck = crate::plan::fnv1a(line.as_bytes());
    let _ = write!(line, ",\"ck\":\"{ck:016x}\"}}");
    line
}

/// Extracts the integer value of `"key":<digits>` from a flat journal line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

/// Extracts the hex-string value of `"key":"<hex>"`.
fn field_hex(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":\"");
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    let end = rest.find('"')?;
    u64::from_str_radix(&rest[..end], 16).ok()
}

/// Parses one chunk line; `None` for torn, corrupted or foreign lines.
fn parse_line(line: &str) -> Option<ChunkRecord> {
    if !line.ends_with("\"}") {
        return None; // torn write
    }
    // Checksum first: a record whose bytes don't match their own FNV tag is
    // corrupted (or torn mid-line) and must not be half-believed.
    let ck_at = line.rfind(",\"ck\":\"")?;
    let expected = u64::from_str_radix(line.get(ck_at + 7..ck_at + 23)?, 16).ok()?;
    if crate::plan::fnv1a(&line.as_bytes()[..ck_at]) != expected {
        return None;
    }
    let mut hist = [0u64; STEP_HIST_BUCKETS];
    let open = line.find("\"hist\":[")? + "\"hist\":[".len();
    let close = line[open..].find(']')? + open;
    let mut buckets = 0usize;
    for (i, tok) in line[open..close].split(',').enumerate() {
        if i >= STEP_HIST_BUCKETS {
            return None;
        }
        hist[i] = tok.trim().parse().ok()?;
        buckets = i + 1;
    }
    if buckets != STEP_HIST_BUCKETS {
        return None;
    }
    Some(ChunkRecord {
        point_hash: field_hex(line, "point")?,
        chunk_index: field_u64(line, "chunk")? as usize,
        start: field_u64(line, "start")? as usize,
        len: field_u64(line, "len")? as usize,
        stats: StreamingStats {
            count: field_u64(line, "count")?,
            total_steps: field_u64(line, "total")?,
            min_steps: field_u64(line, "min")?,
            max_steps: field_u64(line, "max")?,
            non_converged: field_u64(line, "nonconv")?,
            kinds: MoveKindCounts {
                deletions: field_u64(line, "del")? as usize,
                swaps: field_u64(line, "swap")? as usize,
                purchases: field_u64(line, "buy")? as usize,
                strategy_rewrites: field_u64(line, "rewrite")? as usize,
            },
            mean: f64::from_bits(field_u64(line, "mean_bits")?),
            m2: f64::from_bits(field_u64(line, "m2_bits")?),
            hist,
        },
    })
}

/// Append-only journal writer shared across worker threads.
pub struct JournalWriter {
    file: Mutex<BufWriter<File>>,
}

impl JournalWriter {
    /// Creates a fresh journal at `path` (truncating any previous file) and
    /// writes the plan-hash header.
    pub fn create(path: &Path, plan_hash: u64) -> std::io::Result<JournalWriter> {
        JournalWriter::create_sharded(path, plan_hash, None)
    }

    /// Creates a fresh **shard** journal: the shard id is folded into the
    /// header next to the plan hash, so the file can never be merged into
    /// the wrong shard or grid. `None` writes the unsharded header.
    ///
    /// The header bytes go through the same `journal-append` fault point as
    /// every record, so the kill-at-any-byte-offset matrix also covers a
    /// death mid-header.
    pub fn create_sharded(
        path: &Path,
        plan_hash: u64,
        shard: Option<ShardSpec>,
    ) -> std::io::Result<JournalWriter> {
        let mut file = BufWriter::new(File::create(path)?);
        let header = match shard {
            Some(s) => format!(
                "{{\"ncg_sweep_journal\":1,\"plan\":\"{plan_hash:016x}\",\"shard\":{},\"of\":{}}}\n",
                s.index, s.count
            ),
            None => format!("{{\"ncg_sweep_journal\":1,\"plan\":\"{plan_hash:016x}\"}}\n"),
        };
        faultpoint::write_all("journal-append", &mut file, header.as_bytes())?;
        file.flush()?;
        Ok(JournalWriter {
            file: Mutex::new(file),
        })
    }

    /// Opens an existing journal for appending (resume). If the previous run
    /// died mid-write, the file ends in a torn fragment without a newline;
    /// a newline is inserted first so the next record starts on its own line
    /// (otherwise it would fuse with the fragment and misparse on the *next*
    /// resume as a line whose leading fields come from the torn record).
    pub fn append(path: &Path) -> std::io::Result<JournalWriter> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = OpenOptions::new().read(true).append(true).open(path)?;
        let len = file.seek(SeekFrom::End(0))?;
        if len > 0 {
            file.seek(SeekFrom::End(-1))?;
            let mut last = [0u8; 1];
            file.read_exact(&mut last)?;
            if last != [b'\n'] {
                use std::io::Write as _;
                file.write_all(b"\n")?;
            }
        }
        Ok(JournalWriter {
            file: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Durably records one completed chunk (flushed before returning, so a
    /// kill right after the call never loses the chunk).
    ///
    /// The whole write path is threaded through the `journal-append` fault
    /// point: an armed fault can fail the append with an I/O error, corrupt
    /// the record bytes, or kill the process at an arbitrary byte offset of
    /// the line — the scenarios the recovery matrix proves harmless.
    pub fn record(&self, rec: &ChunkRecord) -> std::io::Result<()> {
        let mut line = render_line(rec).into_bytes();
        line.push(b'\n');
        faultpoint::io_check("journal-append")?;
        faultpoint::mangle("journal-append", &mut line);
        let mut file = self.file.lock().expect("journal mutex poisoned");
        faultpoint::write_all("journal-append", &mut *file, &line)?;
        file.flush()
    }
}

/// The replayed content of a journal file.
#[derive(Debug, Default)]
pub struct JournalContents {
    /// Completed chunks, keyed by `(point_hash, chunk_index)`.
    pub chunks: HashMap<(u64, usize), ChunkRecord>,
    /// Lines that failed to parse — torn tail writes or checksum-rejected
    /// corrupted records; surfaced as an explicit warning on resume.
    pub skipped_lines: usize,
    /// Earlier records replaced by a later record with a **different**
    /// payload for the same chunk key (a torn-then-rewritten chunk after a
    /// crash-resume); the last complete record wins.
    pub superseded_chunks: usize,
    /// Records whose chunk key appeared again with a bit-identical payload.
    pub duplicate_chunks: usize,
    /// The shard id from the header of a shard journal (`None` for an
    /// unsharded journal).
    pub shard: Option<ShardSpec>,
}

impl JournalContents {
    /// True once every `(point_hash, chunk_index)` key in `expected` has a
    /// complete record — the audit applied to a worker that *claims* success
    /// (a clean exit code or a `Done` frame proves nothing by itself: a
    /// corrupted or lost record leaves a hole only the journal can reveal).
    pub fn covers(&self, expected: &[(u64, usize)]) -> bool {
        expected.iter().all(|key| self.chunks.contains_key(key))
    }
}

/// True for [`load_journal`] errors meaning the header itself never made it
/// to disk intact (empty file or torn header) — the one corruption class a
/// resume can only repair by starting the journal over. A *valid* header for
/// the wrong plan or shard is never "damaged": that is a hard refusal.
pub fn header_is_damaged(err: &std::io::Error) -> bool {
    err.kind() == std::io::ErrorKind::InvalidData && {
        let msg = err.to_string();
        msg.contains("empty journal") || msg.contains("journal header unreadable")
    }
}

/// Loads a journal, validating its header against `expected_plan_hash`.
pub fn load_journal(path: &Path, expected_plan_hash: u64) -> std::io::Result<JournalContents> {
    let reader = BufReader::new(File::open(path)?);
    let mut lines = reader.lines();
    let header = lines
        .next()
        .transpose()?
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "empty journal"))?;
    let plan = field_hex(&header, "plan").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "journal header unreadable")
    })?;
    if plan != expected_plan_hash {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "journal belongs to plan {plan:016x}, expected {expected_plan_hash:016x} \
                 (grid, chunk size, seeds or engine changed)"
            ),
        ));
    }
    let mut contents = JournalContents::default();
    if let (Some(index), Some(count)) = (field_u64(&header, "shard"), field_u64(&header, "of")) {
        contents.shard = Some(ShardSpec {
            index: index as usize,
            count: (count as usize).max(1),
        });
    }
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(&line) {
            Some(rec) => {
                let key = (rec.point_hash, rec.chunk_index);
                match contents.chunks.insert(key, rec) {
                    Some(old) if old == contents.chunks[&key] => contents.duplicate_chunks += 1,
                    Some(_) => contents.superseded_chunks += 1,
                    None => {}
                }
            }
            None => contents.skipped_lines += 1,
        }
    }
    Ok(contents)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(seed: u64) -> ChunkRecord {
        let mut stats = StreamingStats::new();
        for i in 0..5 {
            stats.push(
                &ncg_sim::TrialResult {
                    steps: (seed as usize + i * 3) % 40,
                    converged: i != 3,
                    kinds: MoveKindCounts {
                        deletions: i,
                        swaps: 2 * i,
                        purchases: 1,
                        strategy_rewrites: i % 2,
                    },
                },
                10,
            );
        }
        ChunkRecord {
            point_hash: 0xdead_beef_0bad_cafe ^ seed,
            chunk_index: seed as usize % 7,
            start: 4,
            len: 5,
            stats,
        }
    }

    #[test]
    fn chunk_lines_round_trip_bit_exactly() {
        for seed in [0u64, 1, 17, 255] {
            let rec = sample_record(seed);
            let line = render_line(&rec);
            let back = parse_line(&line).expect("parses");
            assert_eq!(back, rec);
            assert_eq!(back.stats.mean.to_bits(), rec.stats.mean.to_bits());
            assert_eq!(back.stats.m2.to_bits(), rec.stats.m2.to_bits());
        }
    }

    #[test]
    fn torn_lines_are_rejected_not_misparsed() {
        let line = render_line(&sample_record(3));
        for cut in [1, line.len() / 2, line.len() - 1] {
            assert_eq!(parse_line(&line[..cut]), None, "cut at {cut}");
        }
    }

    #[test]
    fn journal_file_round_trip_and_plan_guard() {
        let dir = std::env::temp_dir().join(format!("ncg-lab-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j1.jsonl");
        let writer = JournalWriter::create(&path, 0x1234).unwrap();
        let (a, b) = (sample_record(1), sample_record(2));
        writer.record(&a).unwrap();
        writer.record(&b).unwrap();
        drop(writer);
        // Simulate a kill mid-write: append a torn half line.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"point\":\"00ff\",\"chunk\":9").unwrap();
        }
        let contents = load_journal(&path, 0x1234).unwrap();
        assert_eq!(contents.chunks.len(), 2);
        assert_eq!(contents.skipped_lines, 1, "torn tail detected");
        assert_eq!(contents.chunks[&(a.point_hash, a.chunk_index)], a);
        let err = load_journal(&path, 0x9999).unwrap_err();
        assert!(err.to_string().contains("belongs to plan"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_after_a_torn_tail_starts_a_fresh_line() {
        // A mid-write kill leaves a fragment without a trailing newline; the
        // resumed writer must not fuse its first record onto that fragment
        // (the fused line would end in "]}" and misparse with the torn
        // record's leading fields on the *next* resume).
        let dir = std::env::temp_dir().join(format!("ncg-lab-journal3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j3.jsonl");
        let (a, b) = (sample_record(8), sample_record(9));
        JournalWriter::create(&path, 3).unwrap().record(&a).unwrap();
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(
                f,
                "{{\"point\":\"{:016x}\",\"chunk\":2,\"start\":4",
                a.point_hash
            )
            .unwrap();
        }
        JournalWriter::append(&path).unwrap().record(&b).unwrap();
        let contents = load_journal(&path, 3).unwrap();
        assert_eq!(contents.chunks.len(), 2, "both real records survive");
        assert_eq!(contents.skipped_lines, 1, "the fragment alone is skipped");
        assert_eq!(contents.chunks[&(b.point_hash, b.chunk_index)], b);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_records_fail_their_checksum() {
        let line = render_line(&sample_record(11));
        assert!(parse_line(&line).is_some(), "clean line parses");
        // Flip any single payload byte: the record must be rejected, not
        // half-believed — including flips inside the checksum field itself.
        let bytes = line.as_bytes();
        for at in [9, bytes.len() / 3, bytes.len() / 2, bytes.len() - 4] {
            let mut bad = bytes.to_vec();
            bad[at] ^= 0x10;
            let bad = String::from_utf8_lossy(&bad).into_owned();
            assert_eq!(parse_line(&bad), None, "flip at {at} must be rejected");
        }
    }

    #[test]
    fn duplicate_chunk_keys_keep_the_last_complete_record() {
        let dir = std::env::temp_dir().join(format!("ncg-lab-journal4-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j4.jsonl");
        let a = sample_record(1);
        // Same chunk key as `a`, different payload: a rewrite after a crash.
        let mut a2 = a.clone();
        a2.stats.total_steps += 3;
        a2.stats.count += 1;
        let b = sample_record(2);
        let writer = JournalWriter::create(&path, 5).unwrap();
        for rec in [&a, &b, &a2, &b] {
            writer.record(rec).unwrap();
        }
        drop(writer);
        let contents = load_journal(&path, 5).unwrap();
        assert_eq!(contents.chunks.len(), 2);
        assert_eq!(
            contents.chunks[&(a.point_hash, a.chunk_index)],
            a2,
            "the last complete record wins"
        );
        assert_eq!(contents.superseded_chunks, 1, "a -> a2 counted");
        assert_eq!(contents.duplicate_chunks, 1, "identical b repeat counted");
        assert_eq!(contents.skipped_lines, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_headers_round_trip_and_unsharded_stays_bare() {
        let dir = std::env::temp_dir().join(format!("ncg-lab-journal5-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sharded = dir.join("s.jsonl");
        let spec = ShardSpec { index: 1, count: 3 };
        JournalWriter::create_sharded(&sharded, 9, Some(spec))
            .unwrap()
            .record(&sample_record(0))
            .unwrap();
        let contents = load_journal(&sharded, 9).unwrap();
        assert_eq!(contents.shard, Some(spec));
        assert_eq!(contents.chunks.len(), 1);
        let plain = dir.join("p.jsonl");
        JournalWriter::create(&plain, 9).unwrap();
        assert_eq!(load_journal(&plain, 9).unwrap().shard, None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn damaged_headers_are_distinguished_from_foreign_plans() {
        let dir = std::env::temp_dir().join(format!("ncg-lab-journal6-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let empty = dir.join("empty.jsonl");
        std::fs::write(&empty, "").unwrap();
        assert!(header_is_damaged(&load_journal(&empty, 1).unwrap_err()));
        let torn = dir.join("torn.jsonl");
        std::fs::write(&torn, "{\"ncg_sweep_journal\":1,\"pla").unwrap();
        assert!(header_is_damaged(&load_journal(&torn, 1).unwrap_err()));
        let foreign = dir.join("foreign.jsonl");
        JournalWriter::create(&foreign, 2).unwrap();
        let err = load_journal(&foreign, 1).unwrap_err();
        assert!(!header_is_damaged(&err), "a foreign plan is a hard refusal");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_mode_extends_an_existing_journal() {
        let dir = std::env::temp_dir().join(format!("ncg-lab-journal2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j2.jsonl");
        let (a, b) = (sample_record(5), sample_record(6));
        JournalWriter::create(&path, 7).unwrap().record(&a).unwrap();
        JournalWriter::append(&path).unwrap().record(&b).unwrap();
        let contents = load_journal(&path, 7).unwrap();
        assert_eq!(contents.chunks.len(), 2);
        assert_eq!(contents.skipped_lines, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
