//! Named fault points: the kill-anywhere fault-injection harness behind the
//! fault-tolerance test matrix.
//!
//! Zero overhead when off, exactly like `ncg-trace`: every fault point is a
//! single relaxed [`AtomicBool`] load until a fault table is armed, so the
//! hooks stay in the production journal/telemetry/orchestrator paths
//! permanently. Faults are armed either programmatically ([`arm`], used by
//! in-process tests) or from the `NCG_FAULT` environment variable
//! ([`arm_from_env`], used by supervised shard workers — the supervisor's
//! launcher decides per attempt whether the child inherits a fault).
//!
//! # Spec grammar
//!
//! `NCG_FAULT` holds one or more specs separated by `;`:
//!
//! ```text
//! <point>:<action>[@<arg>][:hits=<N>]
//! ```
//!
//! * `point` — the fault-point name (`journal-append`, `telemetry-append`,
//!   `chunk-run`, …).
//! * `action` —
//!   * `kill` — abort the process on the spot (no flush, no cleanup);
//!   * `killbyte@B` — let the first `B` bytes pass through the point's write
//!     path, then write the torn prefix of the crossing write, flush, and
//!     abort: a kill at an **arbitrary journal byte offset**;
//!   * `err` — fail the operation with an injected `io::Error`
//!     (ENOSPC-style: the disk-full / yanked-volume class);
//!   * `corrupt` — flip bits in the buffer about to be written (a corrupted
//!     record that only integrity checks can catch);
//!   * `delay@MS` — sleep `MS` milliseconds (heartbeat stall);
//!   * `hang` — sleep effectively forever, forcing the supervisor's
//!     no-progress deadline to fire.
//! * `hits=N` — trigger on the `N`-th hit of the point (1-based, default 1);
//!   the spec fires exactly once. A spec only counts hits at call sites able
//!   to apply its action — `corrupt` counts buffer-mangling writes (so
//!   `hits=N` is the `N`-th record), `err` counts fallible operations —
//!   which keeps hit numbers meaningful at points with several hook kinds.
//!   `killbyte` ignores `hits` — its trigger is the cumulative byte count.
//!
//! Example: `NCG_FAULT=chunk-run:kill:hits=2;telemetry-append:err`.

use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Every fault point compiled into the production paths. Spec parsing
/// rejects any other name: a typo in an `NCG_FAULT` spec must be a loud
/// startup error, not a harness that silently tests nothing.
pub const KNOWN_POINTS: &[&str] = &[
    "journal-append",
    "telemetry-append",
    "chunk-run",
    "net-accept",
    "net-read",
    "net-write",
    "net-heartbeat",
];

/// Exit/abort is deliberately `process::abort()`: no atexit handlers, no
/// buffer flushes — the closest portable stand-in for SIGKILL.
fn die() -> ! {
    std::process::abort();
}

/// What a fault spec does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    Kill,
    KillAtByte(u64),
    Error,
    Corrupt,
    Delay(u64),
}

#[derive(Debug)]
struct Spec {
    point: String,
    action: Action,
    /// Fire on this hit (1-based). Unused by `KillAtByte`.
    at_hit: u64,
    /// Hits seen so far.
    hits: u64,
    /// Bytes already passed through (for `KillAtByte`).
    bytes: u64,
    /// A non-`killbyte` spec fires at most once.
    spent: bool,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static TABLE: Mutex<Vec<Spec>> = Mutex::new(Vec::new());

/// Effectively-forever sleep used by `hang` (the supervisor's deadline kill
/// is expected to arrive first).
const HANG_MS: u64 = 3_600_000;

/// True once a fault table is armed. The off-path of every fault point is
/// exactly this relaxed load.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Parses one `<point>:<action>[@arg][:hits=N]` spec. Every rejection names
/// the offending token: a typo'd fault spec must fail loudly at startup, not
/// run the matrix with a harness that injects nothing.
fn parse_spec(s: &str) -> Result<Spec, String> {
    let mut parts = s.split(':');
    let point = parts.next().unwrap_or("").trim();
    if point.is_empty() {
        return Err(format!("bad fault spec {s:?}: empty fault-point name"));
    }
    if !KNOWN_POINTS.contains(&point) {
        return Err(format!(
            "bad fault spec {s:?}: unknown fault point {point:?} (known points: {})",
            KNOWN_POINTS.join(", ")
        ));
    }
    let action_str = match parts.next() {
        Some(a) => a.trim(),
        None => {
            return Err(format!(
                "bad fault spec {s:?}: missing action after {point:?}"
            ))
        }
    };
    let (action_name, arg) = match action_str.split_once('@') {
        Some((a, v)) => (a, Some(v)),
        None => (action_str, None),
    };
    let need_arg = |what: &str| -> Result<u64, String> {
        match arg {
            Some(v) => v.parse().map_err(|_| {
                format!("bad fault spec {s:?}: {action_name} needs a numeric {what}, got {v:?}")
            }),
            None => Err(format!(
                "bad fault spec {s:?}: {action_name} needs @<{what}>"
            )),
        }
    };
    let action = match action_name {
        "kill" => Action::Kill,
        "killbyte" => Action::KillAtByte(need_arg("byte offset")?),
        "err" => Action::Error,
        "corrupt" => Action::Corrupt,
        "delay" => Action::Delay(need_arg("milliseconds")?),
        "hang" => Action::Delay(HANG_MS),
        other => return Err(format!("bad fault spec {s:?}: unknown action {other:?}")),
    };
    if arg.is_some() && matches!(action_name, "kill" | "err" | "corrupt" | "hang") {
        return Err(format!(
            "bad fault spec {s:?}: {action_name} takes no @argument"
        ));
    }
    let mut at_hit = 1u64;
    for extra in parts {
        let extra = extra.trim();
        if let Some(n) = extra.strip_prefix("hits=") {
            at_hit = n
                .parse()
                .map_err(|_| format!("bad fault spec {s:?}: bad hits= value {n:?}"))?;
        } else {
            return Err(format!(
                "bad fault spec {s:?}: unknown attribute {extra:?} (only hits=N)"
            ));
        }
    }
    Ok(Spec {
        point: point.to_string(),
        action,
        at_hit: at_hit.max(1),
        hits: 0,
        bytes: 0,
        spent: false,
    })
}

/// Arms the fault table from a spec string (see the module docs for the
/// grammar), replacing any previously armed table. Returns a startup error
/// naming the bad token on a malformed spec — callers that take specs from
/// the environment ([`arm_from_env`]) surface this and refuse to run.
pub fn try_arm(specs: &str) -> Result<(), String> {
    let mut table = Vec::new();
    for part in specs.split(';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        table.push(parse_spec(part)?);
    }
    let has_any = !table.is_empty();
    *TABLE.lock().expect("fault table poisoned") = table;
    ARMED.store(has_any, Ordering::Relaxed);
    Ok(())
}

/// [`try_arm`] for in-process tests: panics on a malformed spec — a fault
/// harness that silently ignores a typo would pass every test.
pub fn arm(specs: &str) {
    try_arm(specs).unwrap_or_else(|e| panic!("{e}"));
}

/// Arms from `NCG_FAULT` if set (shard workers and shard servers call this
/// at startup, so the launcher controls fault inheritance per attempt). A
/// malformed spec is a startup error the caller must surface — never a
/// silent no-op, never a panic.
pub fn arm_from_env() -> Result<(), String> {
    match std::env::var("NCG_FAULT") {
        Ok(spec) => try_arm(&spec).map_err(|e| format!("$NCG_FAULT: {e}")),
        Err(_) => Ok(()),
    }
}

/// Disarms every fault point (tests).
pub fn disarm() {
    TABLE.lock().expect("fault table poisoned").clear();
    ARMED.store(false, Ordering::Relaxed);
}

/// Serializes tests that arm the process-global fault table — every
/// in-process test using [`arm`] must hold this guard for its whole scope,
/// or a concurrently running test could clobber its specs.
#[doc(hidden)]
pub fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Counts a hit of `point` against every armed spec whose action the caller
/// can apply (`wants`), and returns the action if one fired. Filtering by
/// capability keeps a `corrupt` spec from being consumed — and wasted — by a
/// neighbouring `io_check` hook, and makes `hits=N` count only meaningful
/// events. `Delay` is slept here; `Kill` aborts here; `Error`/`Corrupt` are
/// returned for the caller to apply (they need the caller's buffer or
/// result type).
fn fire(point: &str, wants: impl Fn(Action) -> bool) -> Option<Action> {
    let mut table = TABLE.lock().expect("fault table poisoned");
    for spec in table.iter_mut() {
        if spec.spent || spec.point != point || !wants(spec.action) {
            continue;
        }
        if let Action::KillAtByte(_) = spec.action {
            continue; // byte-triggered, not hit-triggered
        }
        spec.hits += 1;
        if spec.hits != spec.at_hit {
            continue;
        }
        spec.spent = true;
        let action = spec.action;
        drop(table);
        match action {
            Action::Kill => die(),
            Action::Delay(ms) => std::thread::sleep(std::time::Duration::from_millis(ms)),
            _ => {}
        }
        return Some(action);
    }
    None
}

/// Hit a fault point that performs no I/O (kill / hang injection sites).
#[inline]
pub fn trip(point: &str) {
    if !armed() {
        return;
    }
    let _ = fire(point, |a| matches!(a, Action::Kill | Action::Delay(_)));
}

/// Hit a fault point guarding a fallible operation: returns the injected
/// error when an `err` spec fires (kill/delay are applied on the spot).
#[inline]
pub fn io_check(point: &str) -> io::Result<()> {
    if !armed() {
        return Ok(());
    }
    match fire(point, |a| {
        matches!(a, Action::Kill | Action::Delay(_) | Action::Error)
    }) {
        Some(Action::Error) => Err(io::Error::other(format!(
            "injected fault: no space left on device ({point})"
        ))),
        _ => Ok(()),
    }
}

/// Corrupts `buf` in place when a `corrupt` spec fires at this point: flips
/// bits in the middle of the buffer (never the trailing newline, so the
/// damage stays inside one record and must be caught by checksums, not by
/// accidental line splits).
#[inline]
pub fn mangle(point: &str, buf: &mut [u8]) {
    if !armed() {
        return;
    }
    if fire(point, |a| a == Action::Corrupt) == Some(Action::Corrupt) && buf.len() > 2 {
        let mid = buf.len() / 2;
        buf[mid] ^= 0x55;
        buf[mid / 2] ^= 0x2a;
    }
}

/// Writes `buf` through the point's byte-budget guard: when an armed
/// `killbyte@B` spec would be crossed by this write, only the prefix up to
/// byte `B` is written, the writer is flushed, and the process aborts —
/// leaving a torn record at exactly that byte offset. Without a matching
/// spec this is a plain `write_all`.
pub fn write_all<W: Write>(point: &str, w: &mut W, buf: &[u8]) -> io::Result<()> {
    if !armed() {
        return w.write_all(buf);
    }
    let cut = {
        let mut table = TABLE.lock().expect("fault table poisoned");
        let mut cut = None;
        for spec in table.iter_mut() {
            if spec.spent || spec.point != point {
                continue;
            }
            if let Action::KillAtByte(limit) = spec.action {
                if spec.bytes + buf.len() as u64 > limit {
                    spec.spent = true;
                    cut = Some((limit - spec.bytes) as usize);
                } else {
                    spec.bytes += buf.len() as u64;
                }
                break;
            }
        }
        cut
    };
    match cut {
        Some(prefix) => {
            w.write_all(&buf[..prefix])?;
            w.flush()?;
            die();
        }
        None => w.write_all(buf),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_path_is_inert() {
        let _g = test_lock();
        disarm();
        assert!(!armed());
        trip("anything");
        assert!(io_check("anything").is_ok());
        let mut buf = vec![1u8, 2, 3, 4];
        mangle("anything", &mut buf);
        assert_eq!(buf, vec![1, 2, 3, 4]);
        let mut out = Vec::new();
        write_all("anything", &mut out, b"abc").unwrap();
        assert_eq!(out, b"abc");
    }

    #[test]
    fn err_fires_on_the_configured_hit_then_disarms() {
        let _g = test_lock();
        arm("net-read:err:hits=3");
        assert!(io_check("net-read").is_ok());
        assert!(io_check("net-write").is_ok(), "foreign points never fire");
        assert!(io_check("net-read").is_ok());
        let e = io_check("net-read").unwrap_err();
        assert!(e.to_string().contains("injected fault"));
        assert!(io_check("net-read").is_ok(), "a spec fires exactly once");
        disarm();
    }

    #[test]
    fn corrupt_mangles_exactly_once() {
        let _g = test_lock();
        arm("net-write:corrupt");
        let clean = b"0123456789".to_vec();
        let mut buf = clean.clone();
        mangle("net-write", &mut buf);
        assert_ne!(buf, clean);
        let mut again = clean.clone();
        mangle("net-write", &mut again);
        assert_eq!(again, clean);
        disarm();
    }

    #[test]
    fn killbyte_budget_tracks_cumulative_bytes() {
        let _g = test_lock();
        // Budget of 10 bytes: two 4-byte writes pass, the third would cross.
        // We can't abort in-process, so only exercise the pass-through side.
        arm("journal-append:killbyte@10");
        let mut out = Vec::new();
        write_all("journal-append", &mut out, b"aaaa").unwrap();
        write_all("journal-append", &mut out, b"bbbb").unwrap();
        assert_eq!(out.len(), 8);
        disarm();
    }

    #[test]
    fn delay_spec_sleeps() {
        let _g = test_lock();
        arm("net-heartbeat:delay@30");
        let t0 = std::time::Instant::now();
        trip("net-heartbeat");
        assert!(t0.elapsed() >= std::time::Duration::from_millis(25));
        disarm();
    }

    #[test]
    fn specs_only_count_hits_at_capable_call_sites() {
        let _g = test_lock();
        arm("net-write:corrupt:hits=2;net-write:err:hits=2");
        // io_check cannot apply `corrupt`, so only the err spec counts here —
        // and a corrupt spec is never consumed (wasted) by a fallible-op hook.
        assert!(io_check("net-write").is_ok());
        let clean = b"0123456789".to_vec();
        let mut buf = clean.clone();
        mangle("net-write", &mut buf); // corrupt hit 1 of 2 — not yet
        assert_eq!(buf, clean);
        assert!(
            io_check("net-write").is_err(),
            "err fires on its 2nd fallible op"
        );
        mangle("net-write", &mut buf); // corrupt hit 2 of 2 — fires
        assert_ne!(buf, clean);
        disarm();
    }

    #[test]
    #[should_panic(expected = "bad fault spec")]
    fn bad_specs_panic_instead_of_silently_passing() {
        // Deliberately NOT taking the lock: panicking while holding it would
        // poison every other test. `arm` only mutates the table at the end.
        arm("chunk-run:explode");
    }

    #[test]
    fn spec_grammar_round_trips() {
        let s = parse_spec("journal-append:killbyte@1234").unwrap();
        assert_eq!(s.action, Action::KillAtByte(1234));
        let s = parse_spec("net-heartbeat:delay@250:hits=7").unwrap();
        assert_eq!(s.action, Action::Delay(250));
        assert_eq!(s.at_hit, 7);
        let s = parse_spec("net-heartbeat:hang").unwrap();
        assert_eq!(s.action, Action::Delay(HANG_MS));
    }

    #[test]
    fn malformed_specs_name_the_bad_token() {
        let err = |s: &str| parse_spec(s).unwrap_err();
        // Unknown point: named, with the known list for the fix.
        let e = err("journal-apend:kill");
        assert!(e.contains("unknown fault point"), "{e}");
        assert!(e.contains("journal-apend"), "{e}");
        assert!(e.contains("journal-append"), "suggests the known list: {e}");
        // Unknown action.
        let e = err("chunk-run:explode");
        assert!(e.contains("unknown action") && e.contains("explode"), "{e}");
        // Bad / missing numeric arguments.
        let e = err("journal-append:killbyte");
        assert!(e.contains("killbyte") && e.contains("byte offset"), "{e}");
        let e = err("journal-append:killbyte@twelve");
        assert!(e.contains("twelve"), "{e}");
        let e = err("net-heartbeat:delay@");
        assert!(e.contains("delay"), "{e}");
        // Bad hits= value and unknown attribute.
        let e = err("chunk-run:kill:hits=many");
        assert!(e.contains("hits=") && e.contains("many"), "{e}");
        let e = err("chunk-run:kill:whatever=1");
        assert!(
            e.contains("unknown attribute") && e.contains("whatever"),
            "{e}"
        );
        // Structural rejects.
        assert!(err(":err").contains("empty fault-point name"));
        let e = err("chunk-run");
        assert!(e.contains("missing action"), "{e}");
        let e = err("chunk-run:kill@5");
        assert!(e.contains("takes no @argument"), "{e}");
        // try_arm surfaces the same error without touching the armed table.
        let _g = test_lock();
        disarm();
        assert!(try_arm("chunk-run:kill;bogus:kill").is_err());
        assert!(!armed(), "a failed arm never half-arms");
    }
}
