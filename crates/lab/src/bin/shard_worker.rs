//! Dedicated shard-worker binary for supervised sweeps: the integration
//! test matrix (and any embedder that prefers a separate executable over
//! re-entering its own `main`) points the supervisor's launcher here.
//!
//! Two modes:
//!
//! * default — one supervised shard attempt driven by `NCG_SHARD_*` env
//!   vars; all behaviour lives in [`ncg_lab::supervisor::worker_main`] and
//!   this wrapper only translates its return value into an exit code.
//! * `NCG_SERVE=ADDR` — a long-lived shard *server*: bind `ADDR`, announce
//!   the bound address on stdout (`ncg-shard-server listening on <addr>`,
//!   so `ADDR` may use port 0), then run the
//!   [`ncg_lab::transport::serve`] accept loop forever, taking assignments
//!   from a remote coordinator. `NCG_SERVE_HEARTBEAT_MS` overrides the
//!   journal-pump tick; `NCG_FAULT` arms the fault table as usual.

use std::io::Write;

fn main() {
    let Ok(bind) = std::env::var("NCG_SERVE") else {
        std::process::exit(ncg_lab::supervisor::worker_main());
    };
    if let Err(e) = ncg_lab::faultpoint::arm_from_env() {
        eprintln!("shard server: {e}");
        std::process::exit(2);
    }
    let listener = match std::net::TcpListener::bind(&bind) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("shard server: cannot bind {bind}: {e}");
            std::process::exit(2);
        }
    };
    let addr = listener.local_addr().map(|a| a.to_string()).unwrap_or(bind);
    // The announce line is the contract with whoever spawned us: it carries
    // the real port when binding port 0. Flush it — the accept loop below
    // never returns.
    println!("ncg-shard-server listening on {addr}");
    let _ = std::io::stdout().flush();
    let mut opts = ncg_lab::ServeOptions::default();
    if let Ok(ms) = std::env::var("NCG_SERVE_HEARTBEAT_MS") {
        match ms.parse::<u64>() {
            Ok(ms) => opts.heartbeat_ms = ms.max(1),
            Err(_) => {
                eprintln!("shard server: $NCG_SERVE_HEARTBEAT_MS: not a number: {ms:?}");
                std::process::exit(2);
            }
        }
    }
    if let Err(e) = ncg_lab::serve(&listener, &opts) {
        eprintln!("shard server: {e}");
        std::process::exit(1);
    }
}
