//! Dedicated shard-worker binary for supervised sweeps: the integration
//! test matrix (and any embedder that prefers a separate executable over
//! re-entering its own `main`) points the supervisor's launcher here. All
//! behaviour lives in [`ncg_lab::supervisor::worker_main`]; this wrapper
//! only translates its return value into a process exit code.

fn main() {
    std::process::exit(ncg_lab::supervisor::worker_main());
}
