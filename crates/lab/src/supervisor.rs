//! The fault-tolerant shard runner: spawns one child process per shard,
//! watches liveness through journal/telemetry growth, and applies
//! retry-with-exponential-backoff on crash, timeout-and-kill on hang, and a
//! bounded retry budget with graceful degradation — a shard that exhausts
//! its budget is reported (its incomplete points named in the merged
//! outcome), never allowed to abort the surviving shards.
//!
//! The worker protocol is environment-based: the supervisor writes the plan
//! as a [`SweepPlan::to_spec_string`] file and hands each child its shard
//! identity, journal/telemetry paths and the expected plan hash via
//! `NCG_SHARD_*` variables (see [`ShardRuntime::configure`]); the child
//! calls [`worker_main`], which re-derives the plan, *verifies the plan
//! hash* (a cross-machine scan-mode flip dies here instead of corrupting the
//! merge), arms any `NCG_FAULT` specs, and runs its shard of the sweep
//! through the ordinary orchestrator. Crash recovery is nothing special:
//! a retried worker simply resumes its own shard journal, exactly like a
//! single-process kill/resume.
//!
//! Liveness is byte growth of the shard's journal + telemetry files —
//! observable from outside with no extra channel, and it cannot be faked by
//! a worker stuck in a loop that produces no durable progress. A worker that
//! exits 0 is still verified against its expected chunk keys before being
//! believed (a fault-corrupted record leaves a hole an exit code would
//! hide).

use crate::plan::SweepPlan;
use crate::shard::{merge_shard_journals, shard_chunk_keys, MergedSweep, ShardSpec};
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::{Duration, Instant};

/// Knobs of the supervision loop.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Number of shard worker processes.
    pub shards: usize,
    /// Attempts per shard (first launch + retries) before giving up on it.
    pub max_attempts: usize,
    /// Backoff before retry attempt `k` is `base · 2^(k-1)` capped below,
    /// then jittered into the upper half of the window by
    /// [`backoff_with_jitter`] so crashed shards don't retry in lockstep.
    pub backoff_base_ms: u64,
    /// Upper bound of the exponential backoff.
    pub backoff_cap_ms: u64,
    /// A running worker whose journal + telemetry files stop growing for
    /// this long is declared hung, killed, and retried.
    pub stall_timeout_ms: u64,
    /// Poll interval of the supervision loop.
    pub poll_ms: u64,
    /// Worker threads per shard process (`None` = each worker decides from
    /// its own core count).
    pub threads_per_shard: Option<usize>,
}

/// Retry backoff for 1-based `attempt`: exponential `base·2^(a−1)` capped at
/// `cap_ms`, with deterministic decorrelating jitter drawn from an FNV-1a
/// hash of `(salt, attempt)` into `[exp/2, exp]`. Without the jitter, k
/// shards crashed by the same cause (a yanked volume, a killed worker box)
/// retry in lockstep and hammer the recovering resource together; salting by
/// shard index spreads them across half the exponential window while staying
/// reproducible run-to-run.
pub fn backoff_with_jitter(base_ms: u64, cap_ms: u64, attempt: usize, salt: u64) -> u64 {
    let exp = base_ms
        .saturating_mul(1u64 << attempt.saturating_sub(1).min(20))
        .min(cap_ms);
    if exp <= 1 {
        return exp;
    }
    let mut seed = [0u8; 16];
    seed[..8].copy_from_slice(&salt.to_le_bytes());
    seed[8..].copy_from_slice(&(attempt as u64).to_le_bytes());
    let lo = exp / 2;
    lo + crate::plan::fnv1a(&seed) % (exp - lo + 1)
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            shards: 2,
            max_attempts: 3,
            backoff_base_ms: 100,
            backoff_cap_ms: 2_000,
            stall_timeout_ms: 30_000,
            poll_ms: 25,
            threads_per_shard: None,
        }
    }
}

/// Everything a shard worker process needs to run one attempt, handed to the
/// launcher so it can decorate the [`Command`] (e.g. inject an `NCG_FAULT`
/// spec on a chosen attempt) before the supervisor spawns it.
#[derive(Debug, Clone)]
pub struct ShardRuntime {
    /// The shard this attempt executes.
    pub shard: ShardSpec,
    /// Zero-based attempt number (0 = first launch).
    pub attempt: usize,
    /// Path of the plan spec file.
    pub plan_path: PathBuf,
    /// Expected plan hash — the worker refuses a plan that re-derives
    /// differently on its machine.
    pub plan_hash: u64,
    /// The shard's journal path.
    pub journal: PathBuf,
    /// The shard's telemetry path (liveness heartbeat).
    pub telemetry: PathBuf,
    /// Worker threads (`None` = worker decides).
    pub threads: Option<usize>,
}

impl ShardRuntime {
    /// Folds the worker protocol into `cmd`'s environment. The launcher may
    /// add more (fault specs); these keys always win.
    pub fn configure(&self, cmd: &mut Command) {
        cmd.env("NCG_SHARD_WORKER", "1")
            .env("NCG_SHARD_PLAN", &self.plan_path)
            .env("NCG_SHARD_PLAN_HASH", format!("{:016x}", self.plan_hash))
            .env("NCG_SHARD_INDEX", self.shard.index.to_string())
            .env("NCG_SHARD_COUNT", self.shard.count.to_string())
            .env("NCG_SHARD_JOURNAL", &self.journal)
            .env("NCG_SHARD_TELEMETRY", &self.telemetry);
        match self.threads {
            Some(t) => {
                cmd.env("NCG_SHARD_THREADS", t.to_string());
            }
            None => {
                cmd.env_remove("NCG_SHARD_THREADS");
            }
        }
    }
}

/// Post-mortem of one shard's supervision.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// The shard.
    pub shard: usize,
    /// Attempts launched (1 = clean first run).
    pub attempts: usize,
    /// True once the shard's journal holds every chunk it owns.
    pub completed: bool,
    /// Worker exits that were not clean completions (crashes, injected
    /// kills, exit-0-but-incomplete).
    pub crashes: usize,
    /// Workers killed by the no-progress deadline.
    pub hang_kills: usize,
}

/// The merged result of a supervised sharded sweep.
#[derive(Debug)]
pub struct SupervisedOutcome {
    /// Chunk-ordered merged aggregates — bit-identical to a fault-free
    /// single-process run when `merged.completed`.
    pub merged: MergedSweep,
    /// Per-shard supervision reports.
    pub shards: Vec<ShardReport>,
    /// True if any shard exhausted its retry budget (its unfinished points
    /// are listed in `merged.incomplete_points`).
    pub degraded: bool,
}

/// Per-shard supervision state.
struct ShardState {
    rt: ShardRuntime,
    expected: Vec<(u64, usize)>,
    child: Option<Child>,
    /// Journal + telemetry bytes at the last observed progress.
    last_bytes: u64,
    last_progress: Instant,
    /// Earliest instant the next attempt may launch (backoff).
    gate: Instant,
    attempts: usize,
    crashes: usize,
    hang_kills: usize,
    completed: bool,
    gave_up: bool,
}

fn file_len(path: &Path) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

/// True once the shard's journal holds every chunk key the partition assigns
/// it — the completeness check applied to every clean worker exit (and to a
/// shard's final state). An unreadable or foreign journal is simply
/// incomplete, never a supervisor error: the retry path owns repair.
fn shard_journal_complete(state: &ShardState) -> bool {
    match crate::journal::load_journal(&state.rt.journal, state.rt.plan_hash) {
        Ok(contents) => contents.covers(&state.expected),
        Err(_) => state.expected.is_empty() && !state.rt.journal.exists(),
    }
}

/// Runs `plan` as `cfg.shards` supervised worker processes in `dir`, merging
/// the shard journals into single-process-identical aggregates at the end.
///
/// `launch` builds the [`Command`] for one attempt — typically the current
/// executable re-entered in worker mode, or a dedicated worker binary; the
/// fault matrix uses it to inject `NCG_FAULT` on chosen attempts. The
/// supervisor applies [`ShardRuntime::configure`] after `launch` returns, so
/// the protocol environment always wins.
///
/// Never fails because a shard failed: a shard that exhausts its retry
/// budget degrades the outcome (`degraded`, `merged.incomplete_points`)
/// instead of erroring. Errors are reserved for the supervisor's own I/O
/// (plan spec unwritable, merge integrity violations).
pub fn supervise(
    plan: &SweepPlan,
    dir: &Path,
    cfg: &SupervisorConfig,
    launch: impl Fn(&ShardRuntime) -> Command,
) -> io::Result<SupervisedOutcome> {
    assert!(
        cfg.shards > 0,
        "a supervised sweep needs at least one shard"
    );
    assert!(cfg.max_attempts > 0, "at least one attempt per shard");
    std::fs::create_dir_all(dir)?;
    let plan_path = dir.join("plan.spec");
    std::fs::write(&plan_path, plan.to_spec_string())?;
    let plan_hash = plan.plan_hash();

    let now = Instant::now();
    let mut states: Vec<ShardState> = (0..cfg.shards)
        .map(|index| {
            let shard = ShardSpec::new(index, cfg.shards);
            ShardState {
                expected: shard_chunk_keys(plan, shard),
                rt: ShardRuntime {
                    shard,
                    attempt: 0,
                    plan_path: plan_path.clone(),
                    plan_hash,
                    journal: dir.join(shard.journal_name()),
                    telemetry: dir.join(shard.telemetry_name()),
                    threads: cfg.threads_per_shard,
                },
                child: None,
                last_bytes: 0,
                last_progress: now,
                gate: now,
                attempts: 0,
                crashes: 0,
                hang_kills: 0,
                completed: false,
                gave_up: false,
            }
        })
        .collect();

    let stall = Duration::from_millis(cfg.stall_timeout_ms);
    loop {
        let mut settled = true;
        for state in states.iter_mut() {
            if state.completed || state.gave_up {
                continue;
            }
            settled = false;

            // Reap or health-check a running worker.
            if let Some(child) = state.child.as_mut() {
                match child.try_wait()? {
                    Some(status) => {
                        state.child = None;
                        // An exit code proves nothing by itself: believe the
                        // journal. (A fault-corrupted record makes a worker
                        // exit 0 with a hole in its shard.)
                        if status.success() && shard_journal_complete(state) {
                            state.completed = true;
                        } else {
                            state.crashes += 1;
                            eprintln!(
                                "supervisor: shard {} attempt {} died ({status}); {}",
                                state.rt.shard.index,
                                state.attempts,
                                if state.attempts < cfg.max_attempts {
                                    "will retry"
                                } else {
                                    "retry budget exhausted"
                                },
                            );
                            if state.attempts >= cfg.max_attempts {
                                state.gave_up = true;
                            } else {
                                let backoff = backoff_with_jitter(
                                    cfg.backoff_base_ms,
                                    cfg.backoff_cap_ms,
                                    state.attempts,
                                    state.rt.shard.index as u64,
                                );
                                state.gate = Instant::now() + Duration::from_millis(backoff);
                            }
                        }
                    }
                    None => {
                        let bytes = file_len(&state.rt.journal) + file_len(&state.rt.telemetry);
                        if bytes > state.last_bytes {
                            state.last_bytes = bytes;
                            state.last_progress = Instant::now();
                        } else if state.last_progress.elapsed() >= stall {
                            // Hung: no durable progress within the deadline.
                            eprintln!(
                                "supervisor: shard {} attempt {} made no progress for \
                                 {}ms; killing",
                                state.rt.shard.index, state.attempts, cfg.stall_timeout_ms,
                            );
                            child.kill()?;
                            child.wait()?;
                            state.child = None;
                            state.hang_kills += 1;
                            state.crashes += 1;
                            if state.attempts >= cfg.max_attempts {
                                state.gave_up = true;
                            } else {
                                let backoff = backoff_with_jitter(
                                    cfg.backoff_base_ms,
                                    cfg.backoff_cap_ms,
                                    state.attempts,
                                    state.rt.shard.index as u64,
                                );
                                state.gate = Instant::now() + Duration::from_millis(backoff);
                            }
                        }
                    }
                }
                continue;
            }

            // Launch the next attempt once the backoff gate opens.
            if Instant::now() >= state.gate {
                state.rt.attempt = state.attempts;
                state.attempts += 1;
                let mut cmd = launch(&state.rt);
                state.rt.configure(&mut cmd);
                state.child = Some(cmd.spawn()?);
                state.last_bytes = file_len(&state.rt.journal) + file_len(&state.rt.telemetry);
                state.last_progress = Instant::now();
            }
        }
        if settled {
            break;
        }
        std::thread::sleep(Duration::from_millis(cfg.poll_ms));
    }

    let journals: Vec<PathBuf> = states.iter().map(|s| s.rt.journal.clone()).collect();
    let merged = merge_shard_journals(plan, cfg.shards, &journals)?;
    let degraded = states.iter().any(|s| s.gave_up);
    let shards = states
        .into_iter()
        .map(|s| ShardReport {
            shard: s.rt.shard.index,
            attempts: s.attempts,
            completed: s.completed,
            crashes: s.crashes,
            hang_kills: s.hang_kills,
        })
        .collect();
    Ok(SupervisedOutcome {
        merged,
        shards,
        degraded,
    })
}

/// Entry point of a shard worker process: reads the `NCG_SHARD_*` protocol
/// environment, re-derives the plan from the spec file, verifies the plan
/// hash, arms `NCG_FAULT` specs if present, and runs its shard through the
/// ordinary orchestrator (resuming its own journal if one exists). Returns
/// the process exit code.
///
/// Exit codes: `0` — shard complete; `1` — sweep I/O error (retryable);
/// `2` — protocol/configuration error; `3` — plan-hash mismatch (this
/// machine re-derives a different grid: *not* retryable on this host).
pub fn worker_main() -> i32 {
    if let Err(e) = crate::faultpoint::arm_from_env() {
        eprintln!("shard worker: {e}");
        return 2;
    }
    let var = |key: &str| {
        std::env::var(key).map_err(|_| format!("shard worker: missing or invalid ${key}"))
    };
    let parse_usize = |key: &str| {
        var(key).and_then(|v| {
            v.parse::<usize>()
                .map_err(|_| format!("shard worker: bad ${key}: {v:?}"))
        })
    };
    let run = || -> Result<i32, String> {
        let plan_path = var("NCG_SHARD_PLAN")?;
        let spec = std::fs::read_to_string(&plan_path)
            .map_err(|e| format!("shard worker: cannot read plan spec {plan_path}: {e}"))?;
        let plan = SweepPlan::parse_spec(&spec).map_err(|e| format!("shard worker: {e}"))?;
        let expected_hash = var("NCG_SHARD_PLAN_HASH")?;
        let index = parse_usize("NCG_SHARD_INDEX")?;
        let count = parse_usize("NCG_SHARD_COUNT")?;
        if index >= count || count == 0 {
            return Err(format!("shard worker: bad shard {index} of {count}"));
        }
        let journal = PathBuf::from(var("NCG_SHARD_JOURNAL")?);
        let telemetry = PathBuf::from(var("NCG_SHARD_TELEMETRY")?);
        let threads = match std::env::var("NCG_SHARD_THREADS") {
            Ok(v) => Some(
                v.parse::<usize>()
                    .map_err(|_| format!("shard worker: bad $NCG_SHARD_THREADS: {v:?}"))?,
            ),
            Err(_) => None,
        };
        let actual_hash = format!("{:016x}", plan.plan_hash());
        if actual_hash != expected_hash {
            eprintln!(
                "shard worker: plan hash mismatch — supervisor expects {expected_hash}, this \
                 machine derives {actual_hash} (core count flipped a scan mode?); refusing"
            );
            return Ok(3);
        }
        let opts = crate::orchestrator::RunOptions {
            threads,
            journal: Some(journal.clone()),
            resume: journal.exists(),
            stop_after_chunks: None,
            telemetry: Some(telemetry),
            heartbeat: false,
            shard: Some(ShardSpec::new(index, count)),
        };
        match crate::orchestrator::run_sweep(&plan, &opts) {
            Ok(out) if out.completed => Ok(0),
            Ok(_) => {
                eprintln!("shard worker: shard {index} of {count} finished incomplete");
                Ok(1)
            }
            Err(e) => {
                eprintln!("shard worker: sweep failed: {e}");
                Ok(1)
            }
        }
    };
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_configures_the_worker_protocol_env() {
        let rt = ShardRuntime {
            shard: ShardSpec::new(1, 3),
            attempt: 2,
            plan_path: PathBuf::from("/tmp/plan.spec"),
            plan_hash: 0xabcd,
            journal: PathBuf::from("/tmp/j.jsonl"),
            telemetry: PathBuf::from("/tmp/t.jsonl"),
            threads: Some(2),
        };
        let mut cmd = Command::new("true");
        rt.configure(&mut cmd);
        let env: std::collections::HashMap<_, _> = cmd
            .get_envs()
            .filter_map(|(k, v)| Some((k.to_os_string(), v?.to_os_string())))
            .collect();
        assert_eq!(env["NCG_SHARD_WORKER".as_ref() as &std::ffi::OsStr], "1");
        assert_eq!(env["NCG_SHARD_INDEX".as_ref() as &std::ffi::OsStr], "1");
        assert_eq!(env["NCG_SHARD_COUNT".as_ref() as &std::ffi::OsStr], "3");
        assert_eq!(
            env["NCG_SHARD_PLAN_HASH".as_ref() as &std::ffi::OsStr],
            "000000000000abcd"
        );
        assert_eq!(env["NCG_SHARD_THREADS".as_ref() as &std::ffi::OsStr], "2");
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = SupervisorConfig::default();
        assert!(cfg.shards >= 1);
        assert!(cfg.max_attempts >= 1);
        assert!(cfg.backoff_base_ms <= cfg.backoff_cap_ms);
    }

    #[test]
    fn backoff_jitter_stays_inside_the_exponential_window() {
        for attempt in 1..=10 {
            let exp = 100u64.saturating_mul(1 << (attempt - 1).min(20)).min(2_000);
            for salt in 0..32 {
                let b = backoff_with_jitter(100, 2_000, attempt, salt);
                assert!(
                    b >= exp / 2 && b <= exp,
                    "attempt {attempt} salt {salt}: {b} outside [{}, {exp}]",
                    exp / 2
                );
            }
        }
        // Degenerate knobs stay safe.
        assert_eq!(backoff_with_jitter(0, 2_000, 3, 7), 0);
        assert!(backoff_with_jitter(100, 50, 10, 1) <= 50, "cap holds");
        assert!(
            backoff_with_jitter(100, 2_000, 10_000, 1) <= 2_000,
            "huge attempt"
        );
    }

    #[test]
    fn backoff_jitter_decorrelates_salts_deterministically() {
        let spread: std::collections::HashSet<u64> = (0..16)
            .map(|salt| backoff_with_jitter(100, 2_000, 4, salt))
            .collect();
        assert!(
            spread.len() > 4,
            "16 shards must not retry in lockstep: {spread:?}"
        );
        assert_eq!(
            backoff_with_jitter(100, 2_000, 4, 9),
            backoff_with_jitter(100, 2_000, 4, 9),
            "same inputs, same gate — reproducible supervision"
        );
    }
}
