//! The network fault matrix: distributed sweeps over real loopback TCP
//! workers (the `shard_worker` binary in `NCG_SERVE` mode) under injected
//! connection kills, heartbeat stalls and frame corruption must merge to
//! aggregates **bit-identical** to a fault-free single-process run — and a
//! coordinator that outlives its whole worker pool must degrade to named
//! incomplete points instead of erroring.
//!
//! Faults are armed in the *worker* processes via `NCG_FAULT`; this process
//! keeps its own fault table empty, so the tests parallelize freely.

use ncg_lab::orchestrator::{run_sweep, PointOutcome, RunOptions};
use ncg_lab::plan::{AutoSplit, SweepPlan};
use ncg_lab::scenario::Scenario;
use ncg_lab::transport::{run_distributed, TransportConfig, TransportOutcome};
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

fn tiny_plan() -> SweepPlan {
    let mut plan = SweepPlan::new("transport-matrix");
    plan.scenarios = vec![Scenario::RingLattice { k: 2 }, Scenario::TorusGrid];
    plan.families = vec![ncg_sim::GameFamily::AsgSum];
    plan.policies = vec![ncg_core::policy::Policy::MaxCost];
    plan.ns = vec![8, 10];
    plan.trials = 4;
    plan.chunk_size = 2;
    plan.split = AutoSplit::never();
    plan // 4 points × 2 chunks = 8 jobs
}

fn baseline(plan: &SweepPlan) -> Vec<PointOutcome> {
    let opts = RunOptions {
        threads: Some(1),
        ..RunOptions::default()
    };
    let out = run_sweep(plan, &opts).expect("baseline sweep");
    assert!(out.completed);
    out.points
}

/// The identity assertion of the whole transport: per-point aggregates from
/// a distributed run carry the same IEEE bit patterns as the local fold.
fn assert_bit_identical(expected: &[PointOutcome], actual: &[PointOutcome]) {
    assert_eq!(expected.len(), actual.len(), "point count");
    for (e, a) in expected.iter().zip(actual) {
        let label = e.point.label();
        assert_eq!(label, a.point.label(), "plan order");
        assert_eq!(e.stats.count, a.stats.count, "{label}: count");
        assert_eq!(e.stats.total_steps, a.stats.total_steps, "{label}: steps");
        assert_eq!(e.stats.min_steps, a.stats.min_steps, "{label}: min");
        assert_eq!(e.stats.max_steps, a.stats.max_steps, "{label}: max");
        assert_eq!(
            e.stats.non_converged, a.stats.non_converged,
            "{label}: non_converged"
        );
        assert_eq!(e.stats.kinds, a.stats.kinds, "{label}: move kinds");
        assert_eq!(
            e.stats.mean.to_bits(),
            a.stats.mean.to_bits(),
            "{label}: mean bits"
        );
        assert_eq!(
            e.stats.m2.to_bits(),
            a.stats.m2.to_bits(),
            "{label}: m2 bits"
        );
        assert_eq!(e.stats.hist, a.stats.hist, "{label}: histogram");
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ncg-transport-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A real `shard_worker` process in `NCG_SERVE` mode, bound to an ephemeral
/// loopback port announced on its stdout. Killed on drop.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn spawn(tag: &str, fault: Option<&str>) -> Server {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_shard_worker"));
        cmd.env_remove("NCG_FAULT")
            .env("NCG_SERVE", "127.0.0.1:0")
            .env("NCG_SERVE_HEARTBEAT_MS", "10")
            .env(
                "TMPDIR",
                tmp_dir(&format!("srv-{tag}")).display().to_string(),
            )
            .stdout(Stdio::piped());
        if let Some(fault) = fault {
            cmd.env("NCG_FAULT", fault);
        }
        let mut child = cmd.spawn().expect("spawn shard server");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("announce line");
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .expect("announce carries the bound address")
            .to_string();
        assert!(
            line.contains("ncg-shard-server listening on"),
            "unexpected announce: {line:?}"
        );
        Server { child, addr }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_pool(tag: &str, faults: [Option<&str>; 3]) -> (Vec<Server>, Vec<String>) {
    let servers: Vec<Server> = faults
        .iter()
        .enumerate()
        .map(|(i, fault)| Server::spawn(&format!("{tag}{i}"), *fault))
        .collect();
    let addrs = servers.iter().map(|s| s.addr.clone()).collect();
    (servers, addrs)
}

fn fast_cfg() -> TransportConfig {
    TransportConfig {
        shards: 3,
        assign_attempts: 5,
        connect_attempts: 3,
        backoff_base_ms: 10,
        backoff_cap_ms: 80,
        no_progress_ms: 20_000,
        poll_ms: 5,
        worker_failure_limit: 2,
        threads_per_shard: Some(1),
    }
}

fn assert_recovered(expected: &[PointOutcome], outcome: &TransportOutcome) {
    assert!(
        outcome.merged.completed,
        "merged sweep complete: {:?}",
        outcome.shards
    );
    assert!(!outcome.degraded, "no shard gave up: {:?}", outcome.shards);
    assert!(outcome.merged.incomplete_points.is_empty());
    assert_bit_identical(expected, &outcome.merged.points);
}

#[test]
fn clean_three_worker_run_is_bit_identical_to_local() {
    let plan = tiny_plan();
    let expected = baseline(&plan);
    let (_servers, addrs) = spawn_pool("clean", [None, None, None]);
    let outcome = run_distributed(&plan, &tmp_dir("clean"), &fast_cfg(), &addrs).unwrap();
    assert_recovered(&expected, &outcome);
    assert!(outcome.dead_workers.is_empty());
    for report in &outcome.shards {
        assert!(report.completed, "{report:?}");
        assert!(
            report.attempts <= 1,
            "clean run needs no retries: {report:?}"
        );
        assert_eq!(report.reassignments, 0, "{report:?}");
        assert_eq!(report.stall_kills, 0, "{report:?}");
        assert_eq!(report.severed, 0, "{report:?}");
        assert_eq!(report.corrupt_frames, 0, "{report:?}");
    }
}

#[test]
fn connection_killed_mid_record_is_reassigned() {
    let plan = tiny_plan();
    let expected = baseline(&plan);
    // Worker 0 aborts at exactly byte 137 of its frame stream — a severed
    // connection in the middle of a Data record. The coordinator must see a
    // torn tail, retry on a surviving worker, and merge bit-identically.
    let (_servers, addrs) = spawn_pool("sever", [Some("net-write:killbyte@137"), None, None]);
    let outcome = run_distributed(&plan, &tmp_dir("sever"), &fast_cfg(), &addrs).unwrap();
    assert_recovered(&expected, &outcome);
    assert!(
        outcome
            .shards
            .iter()
            .any(|r| r.severed >= 1 && r.attempts >= 2),
        "the kill must surface as a severed attempt: {:?}",
        outcome.shards
    );
}

#[test]
fn stalled_heartbeat_is_killed_and_reassigned() {
    let plan = tiny_plan();
    let expected = baseline(&plan);
    // Worker 0's first pump tick sleeps 3000ms — no journal bytes, no
    // heartbeat — while the coordinator's no-progress deadline is 400ms: the
    // assignment must be killed and the shard handed to another worker.
    let (_servers, addrs) = spawn_pool("stall", [Some("net-heartbeat:delay@3000"), None, None]);
    let cfg = TransportConfig {
        no_progress_ms: 400,
        ..fast_cfg()
    };
    let outcome = run_distributed(&plan, &tmp_dir("stall"), &cfg, &addrs).unwrap();
    assert_recovered(&expected, &outcome);
    assert!(
        outcome.shards.iter().any(|r| r.stall_kills >= 1),
        "the stall must trip the no-progress deadline: {:?}",
        outcome.shards
    );
    assert!(
        outcome.shards.iter().any(|r| r.reassignments >= 1),
        "the stalled shard must move to a different worker: {:?}",
        outcome.shards
    );
}

#[test]
fn corrupted_frame_is_dropped_and_the_shard_still_completes() {
    let plan = tiny_plan();
    let expected = baseline(&plan);
    // Worker 0's first frame is bit-flipped in flight. Depending on which
    // bytes the flip lands on, the coordinator sees a checksum-rejected
    // frame (resync, incomplete audit) or a torn tail (sever) — both must
    // end in a clean retry and a bit-identical merge.
    let (_servers, addrs) = spawn_pool("corrupt", [Some("net-write:corrupt"), None, None]);
    let outcome = run_distributed(&plan, &tmp_dir("corrupt"), &fast_cfg(), &addrs).unwrap();
    assert_recovered(&expected, &outcome);
    assert!(
        outcome
            .shards
            .iter()
            .any(|r| r.corrupt_frames >= 1 || r.severed >= 1 || r.attempts >= 2),
        "the corruption must leave a visible mark: {:?}",
        outcome.shards
    );
}

#[test]
fn dead_on_arrival_worker_shrinks_the_pool() {
    let plan = tiny_plan();
    let expected = baseline(&plan);
    // Worker 0 aborts before its first accept: every connection to it is
    // refused (or severed in the handshake race). The two survivors absorb
    // all three shards.
    let (_servers, addrs) = spawn_pool("doa", [Some("net-accept:kill"), None, None]);
    let outcome = run_distributed(&plan, &tmp_dir("doa"), &fast_cfg(), &addrs).unwrap();
    assert_recovered(&expected, &outcome);
    assert!(
        outcome
            .shards
            .iter()
            .any(|r| r.attempts >= 2 || r.severed >= 1),
        "someone must have tripped over the dead worker: {:?}",
        outcome.shards
    );
}

#[test]
fn exhausted_pool_degrades_to_named_incomplete_points() {
    let plan = tiny_plan();
    // The *only* worker dies before its first accept and the failure limit
    // is 1: every shard must give up without an Err, and the outcome must
    // name the unfinished points instead of silently dropping them.
    let (_servers, addrs) = spawn_pool("exhaust", [Some("net-accept:kill"), None, None]);
    let cfg = TransportConfig {
        connect_attempts: 2,
        assign_attempts: 3,
        worker_failure_limit: 1,
        ..fast_cfg()
    };
    let outcome = run_distributed(&plan, &tmp_dir("exhaust"), &cfg, &addrs[..1]).unwrap();
    assert!(!outcome.merged.completed);
    assert!(outcome.degraded, "{:?}", outcome.shards);
    assert!(
        !outcome.merged.incomplete_points.is_empty(),
        "unfinished work must be named"
    );
    assert_eq!(outcome.dead_workers, vec![addrs[0].clone()]);
    assert!(outcome.shards.iter().all(|r| !r.completed));
}
