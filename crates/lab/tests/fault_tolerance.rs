//! The fault-tolerance matrix: supervised sharded sweeps under injected
//! crashes, hangs, I/O errors and corruption must merge to aggregates
//! **bit-identical** to a fault-free single-process run — and a shard that
//! exhausts its retry budget must degrade the outcome gracefully instead of
//! killing the survivors.
//!
//! Worker processes are the real `shard_worker` binary
//! (`CARGO_BIN_EXE_shard_worker`); faults are injected per attempt through
//! the supervisor's launcher via `NCG_FAULT`, so a retry of a faulted
//! attempt runs clean — exactly the transient-fault model the supervisor is
//! built for. Tests that arm no in-process faults run freely in parallel;
//! everything here keeps the fault table of *this* process empty (faults
//! live in the children's environments).

use ncg_lab::orchestrator::{run_sweep, PointOutcome, RunOptions};
use ncg_lab::plan::{AutoSplit, SweepPlan};
use ncg_lab::scenario::Scenario;
use ncg_lab::supervisor::{supervise, ShardRuntime, SupervisedOutcome, SupervisorConfig};
use ncg_lab::{load_journal, ShardSpec};
use std::path::PathBuf;
use std::process::Command;

fn tiny_plan() -> SweepPlan {
    let mut plan = SweepPlan::new("fault-matrix");
    plan.scenarios = vec![Scenario::RingLattice { k: 2 }, Scenario::TorusGrid];
    plan.families = vec![ncg_sim::GameFamily::AsgSum];
    plan.policies = vec![ncg_core::policy::Policy::MaxCost];
    plan.ns = vec![8, 10];
    plan.trials = 4;
    plan.chunk_size = 2;
    plan.split = AutoSplit::never();
    plan // 4 points × 2 chunks = 8 jobs
}

fn baseline(plan: &SweepPlan) -> Vec<PointOutcome> {
    let opts = RunOptions {
        threads: Some(1),
        ..RunOptions::default()
    };
    let out = run_sweep(plan, &opts).expect("baseline sweep");
    assert!(out.completed);
    out.points
}

/// Asserts two point sets carry *bit-identical* aggregates — IEEE bit
/// patterns of the Welford accumulators included, the reproducibility bar of
/// the whole journal/shard/merge stack.
fn assert_bit_identical(expected: &[PointOutcome], actual: &[PointOutcome]) {
    assert_eq!(expected.len(), actual.len(), "point count");
    for (e, a) in expected.iter().zip(actual) {
        let label = e.point.label();
        assert_eq!(label, a.point.label(), "plan order");
        assert_eq!(e.stats.count, a.stats.count, "{label}: count");
        assert_eq!(e.stats.total_steps, a.stats.total_steps, "{label}: steps");
        assert_eq!(e.stats.min_steps, a.stats.min_steps, "{label}: min");
        assert_eq!(e.stats.max_steps, a.stats.max_steps, "{label}: max");
        assert_eq!(
            e.stats.non_converged, a.stats.non_converged,
            "{label}: non_converged"
        );
        assert_eq!(e.stats.kinds, a.stats.kinds, "{label}: move kinds");
        assert_eq!(
            e.stats.mean.to_bits(),
            a.stats.mean.to_bits(),
            "{label}: mean bits"
        );
        assert_eq!(
            e.stats.m2.to_bits(),
            a.stats.m2.to_bits(),
            "{label}: m2 bits"
        );
        assert_eq!(e.stats.hist, a.stats.hist, "{label}: histogram");
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ncg-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fast_cfg(shards: usize) -> SupervisorConfig {
    SupervisorConfig {
        shards,
        max_attempts: 4,
        backoff_base_ms: 10,
        backoff_cap_ms: 80,
        stall_timeout_ms: 20_000,
        poll_ms: 5,
        threads_per_shard: Some(1),
    }
}

fn worker_cmd() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_shard_worker"));
    cmd.env_remove("NCG_FAULT");
    cmd
}

/// Launcher injecting `fault` into `shard`'s environment on its first
/// attempt only — the transient-fault model: the retry runs clean.
fn fault_on_first_attempt(shard: usize, fault: &'static str) -> impl Fn(&ShardRuntime) -> Command {
    move |rt: &ShardRuntime| {
        let mut cmd = worker_cmd();
        if rt.shard.index == shard && rt.attempt == 0 {
            cmd.env("NCG_FAULT", fault);
        }
        cmd
    }
}

fn assert_outcome_matches(expected: &[PointOutcome], outcome: &SupervisedOutcome) {
    assert!(outcome.merged.completed, "merged sweep complete");
    assert!(!outcome.degraded, "no shard gave up");
    assert!(outcome.merged.incomplete_points.is_empty());
    assert_bit_identical(expected, &outcome.merged.points);
}

#[test]
fn supervised_fault_free_runs_match_the_single_process_baseline() {
    let plan = tiny_plan();
    let expected = baseline(&plan);
    for shards in [1, 2, 3] {
        let dir = tmp_dir(&format!("clean-{shards}"));
        let outcome =
            supervise(&plan, &dir, &fast_cfg(shards), |_| worker_cmd()).expect("supervise");
        assert_outcome_matches(&expected, &outcome);
        for report in &outcome.shards {
            assert!(report.completed);
            assert_eq!(report.attempts, 1, "clean shard needs one attempt");
            assert_eq!(report.crashes, 0);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn worker_killed_at_sampled_journal_byte_offsets_recovers_bit_identical() {
    let plan = tiny_plan();
    let expected = baseline(&plan);

    // Measure how many journal bytes a clean shard-0 run writes, so the
    // sampled kill offsets span header, record interiors and boundaries.
    let probe = tmp_dir("killbyte-probe");
    let clean = supervise(&plan, &probe, &fast_cfg(2), |_| worker_cmd()).expect("probe");
    assert!(clean.merged.completed);
    let journal_len = std::fs::metadata(probe.join(ShardSpec::new(0, 2).journal_name()))
        .expect("shard 0 journal")
        .len();
    std::fs::remove_dir_all(&probe).ok();
    assert!(journal_len > 64, "probe journal implausibly small");

    // Every-byte coverage is the harness's contract; CI time is not infinite,
    // so sample offsets densely enough to land in the header, at record
    // boundaries and mid-record. Release mode samples twice as hard.
    let samples: u64 = if cfg!(debug_assertions) { 8 } else { 16 };
    for i in 0..samples {
        let offset = i * (journal_len - 1) / (samples - 1);
        let spec: &'static str =
            Box::leak(format!("journal-append:killbyte@{offset}").into_boxed_str());
        let dir = tmp_dir(&format!("killbyte-{offset}"));
        let outcome = supervise(&plan, &dir, &fast_cfg(2), fault_on_first_attempt(0, spec))
            .unwrap_or_else(|e| panic!("supervise with kill at byte {offset}: {e}"));
        assert_outcome_matches(&expected, &outcome);
        assert!(
            outcome.shards[0].crashes >= 1,
            "kill at byte {offset} must have crashed shard 0"
        );
        assert_eq!(outcome.shards[1].attempts, 1, "shard 1 untouched");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn hung_worker_is_killed_and_retried_to_a_bit_identical_result() {
    let plan = tiny_plan();
    let expected = baseline(&plan);
    let dir = tmp_dir("hang");
    let cfg = SupervisorConfig {
        stall_timeout_ms: 600,
        ..fast_cfg(2)
    };
    let outcome = supervise(
        &plan,
        &dir,
        &cfg,
        fault_on_first_attempt(0, "chunk-run:hang"),
    )
    .expect("supervise");
    assert_outcome_matches(&expected, &outcome);
    assert_eq!(
        outcome.shards[0].hang_kills, 1,
        "the hang must be detected by the no-progress deadline"
    );
    assert_eq!(outcome.shards[0].attempts, 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_journal_io_error_crashes_the_worker_and_retry_recovers() {
    let plan = tiny_plan();
    let expected = baseline(&plan);
    let dir = tmp_dir("journal-err");
    let outcome = supervise(
        &plan,
        &dir,
        &fast_cfg(2),
        fault_on_first_attempt(0, "journal-append:err:hits=2"),
    )
    .expect("supervise");
    assert_outcome_matches(&expected, &outcome);
    assert_eq!(
        outcome.shards[0].crashes, 1,
        "worker exits on journal error"
    );
    assert_eq!(outcome.shards[0].attempts, 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_journal_record_leaves_a_hole_the_supervisor_repairs() {
    let plan = tiny_plan();
    let expected = baseline(&plan);
    let dir = tmp_dir("corrupt");
    // The worker mangles one record's bytes, finishes, and exits 0 — the
    // exit code lies. Only the supervisor's journal-completeness audit (the
    // checksum rejects the mangled line, leaving a hole) catches it.
    let outcome = supervise(
        &plan,
        &dir,
        &fast_cfg(2),
        fault_on_first_attempt(0, "journal-append:corrupt"),
    )
    .expect("supervise");
    assert_outcome_matches(&expected, &outcome);
    assert_eq!(
        outcome.shards[0].crashes, 1,
        "exit-0-but-incomplete must count as a failed attempt"
    );
    assert_eq!(outcome.shards[0].attempts, 2);
    assert!(
        outcome.merged.skipped_lines >= 1,
        "the mangled record must have been checksum-rejected"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn telemetry_io_error_degrades_but_never_costs_data_or_retries() {
    let plan = tiny_plan();
    let expected = baseline(&plan);
    let dir = tmp_dir("telemetry-err");
    let outcome = supervise(
        &plan,
        &dir,
        &fast_cfg(2),
        fault_on_first_attempt(0, "telemetry-append:err"),
    )
    .expect("supervise");
    assert_outcome_matches(&expected, &outcome);
    assert_eq!(
        outcome.shards[0].attempts, 1,
        "telemetry is best-effort: its failure must not fail the shard"
    );
    assert_eq!(outcome.shards[0].crashes, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn retry_budget_exhaustion_degrades_gracefully_without_killing_survivors() {
    let plan = tiny_plan();
    let expected = baseline(&plan);
    let dir = tmp_dir("budget");
    let cfg = SupervisorConfig {
        max_attempts: 2,
        ..fast_cfg(2)
    };
    // A *persistent* fault: every attempt of shard 0 dies at its first chunk
    // claim, so the retry budget runs out with the shard's work undone.
    let outcome = supervise(&plan, &dir, &cfg, |rt: &ShardRuntime| {
        let mut cmd = worker_cmd();
        if rt.shard.index == 0 {
            cmd.env("NCG_FAULT", "chunk-run:kill");
        }
        cmd
    })
    .expect("supervise must not error on a dead shard");
    assert!(outcome.degraded, "a shard gave up");
    assert!(!outcome.merged.completed);
    assert!(
        !outcome.merged.incomplete_points.is_empty(),
        "the dead shard's unfinished points must be named"
    );
    assert_eq!(outcome.shards[0].attempts, 2, "budget spent");
    assert_eq!(outcome.shards[0].crashes, 2);
    assert!(!outcome.shards[0].completed);
    assert!(outcome.shards[1].completed, "survivor finished its shard");
    assert_eq!(outcome.shards[1].crashes, 0);

    // Whatever *is* complete must still be bit-identical to the baseline.
    let incomplete = &outcome.merged.incomplete_points;
    let mut checked = 0;
    for (e, a) in expected.iter().zip(&outcome.merged.points) {
        if incomplete.contains(&e.point.label()) {
            continue;
        }
        assert_bit_identical(std::slice::from_ref(e), std::slice::from_ref(a));
        checked += 1;
    }
    assert!(
        checked < expected.len(),
        "shard 0 owned at least one chunk, so at least one point is short"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite S3 — the journal itself survives truncation at *every* byte
/// offset: load never misparses, resume never double-counts, and the resumed
/// sweep is bit-identical to the baseline. Every offset is exercised in
/// release mode; debug strides to keep the suite fast.
#[test]
fn journal_recovery_is_bit_identical_at_every_truncation_offset() {
    let plan = tiny_plan();
    let plan_hash = plan.plan_hash();
    let expected = baseline(&plan);

    let dir = tmp_dir("truncate");
    let full_path = dir.join("full.jsonl");
    let opts = RunOptions {
        threads: Some(1),
        journal: Some(full_path.clone()),
        ..RunOptions::default()
    };
    let full_run = run_sweep(&plan, &opts).expect("journaled run");
    assert!(full_run.completed);
    let bytes = std::fs::read(&full_path).expect("journal bytes");
    let full = load_journal(&full_path, plan_hash).expect("full journal parses");
    let total_chunks = full.chunks.len();
    assert_eq!(total_chunks, 8);

    let stride = if cfg!(debug_assertions) { 7 } else { 1 };
    let mut cut = 0usize;
    while cut <= bytes.len() {
        let path = dir.join("cut.jsonl");
        std::fs::write(&path, &bytes[..cut]).unwrap();

        // Never misparse: every record that survives the cut must equal its
        // counterpart in the intact journal, bit for bit.
        match load_journal(&path, plan_hash) {
            Ok(contents) => {
                for (key, rec) in &contents.chunks {
                    assert_eq!(
                        Some(rec),
                        full.chunks.get(key),
                        "cut at byte {cut}: record {key:?} must match the intact journal"
                    );
                }
            }
            Err(e) => {
                // Only a destroyed header is allowed to fail the load — and
                // resume must then start the journal over, not abort.
                assert!(
                    ncg_lab::journal::header_is_damaged(&e),
                    "cut at byte {cut}: unexpected load error: {e}"
                );
            }
        }

        // Never double-count, always bit-identical: a resume from the
        // truncated journal re-executes exactly the missing chunks.
        let opts = RunOptions {
            threads: Some(1),
            journal: Some(path.clone()),
            resume: true,
            ..RunOptions::default()
        };
        let resumed = run_sweep(&plan, &opts)
            .unwrap_or_else(|e| panic!("resume from cut at byte {cut}: {e}"));
        assert!(resumed.completed, "cut at byte {cut}");
        assert_eq!(
            resumed.resumed_chunks + resumed.executed_chunks,
            total_chunks,
            "cut at byte {cut}: resumed + executed must cover the plan exactly"
        );
        assert_bit_identical(&expected, &resumed.points);

        if cut == bytes.len() {
            break;
        }
        cut = (cut + stride).min(bytes.len());
    }
    std::fs::remove_dir_all(&dir).ok();
}
