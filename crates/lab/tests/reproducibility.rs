//! The orchestrator's headline guarantee: a `SweepPlan` produces
//! **bit-identical** per-point aggregates when run with 1 worker, with many
//! workers, and when killed mid-sweep and resumed from its journal.

use ncg_core::policy::Policy;
use ncg_lab::{run_sweep, AutoSplit, RunOptions, Scenario, SweepPlan};
use ncg_sim::{GameFamily, InitialTopology, StreamingStats};
use std::path::PathBuf;

fn plan() -> SweepPlan {
    let mut plan = SweepPlan::new("repro");
    plan.scenarios = vec![
        Scenario::Paper(InitialTopology::Budgeted { k: 2 }),
        Scenario::ErdosRenyi { m_per_n: 2 },
        Scenario::TorusGrid,
    ];
    plan.families = vec![GameFamily::AsgSum, GameFamily::GbgSum];
    plan.policies = vec![Policy::MaxCost];
    plan.ns = vec![10, 12];
    plan.trials = 6;
    plan.chunk_size = 2;
    plan.base_seed = 2024;
    plan.split = AutoSplit::never();
    plan
}

fn tmp_journal(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ncg-lab-repro-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{tag}.jsonl"))
}

fn aggregates(points: &[ncg_lab::PointOutcome]) -> Vec<(String, StreamingStats)> {
    points
        .iter()
        .map(|p| (p.point.label(), p.stats.clone()))
        .collect()
}

/// Bitwise equality, including the floating-point moments.
fn assert_identical(a: &[(String, StreamingStats)], b: &[(String, StreamingStats)], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: point count");
    for ((la, sa), (lb, sb)) in a.iter().zip(b) {
        assert_eq!(la, lb, "{what}: point order");
        assert_eq!(sa.count, sb.count, "{what}: {la}");
        assert_eq!(sa.total_steps, sb.total_steps, "{what}: {la}");
        assert_eq!(sa.hist, sb.hist, "{what}: {la}");
        assert_eq!(sa.kinds, sb.kinds, "{what}: {la}");
        assert_eq!(
            sa.mean.to_bits(),
            sb.mean.to_bits(),
            "{what}: {la} mean must be bit-identical"
        );
        assert_eq!(
            sa.m2.to_bits(),
            sb.m2.to_bits(),
            "{what}: {la} m2 must be bit-identical"
        );
    }
}

#[test]
fn thread_count_and_kill_resume_are_bit_identical() {
    let plan = plan();

    // Reference: single worker, no journal.
    let single = run_sweep(
        &plan,
        &RunOptions {
            threads: Some(1),
            ..RunOptions::default()
        },
    )
    .expect("single-threaded sweep");
    assert!(single.completed);
    let reference = aggregates(&single.points);
    assert!(
        reference.iter().all(|(_, s)| s.count == 6),
        "every point aggregated all trials"
    );

    // Many workers (more than this machine has cores).
    let many = run_sweep(
        &plan,
        &RunOptions {
            threads: Some(5),
            ..RunOptions::default()
        },
    )
    .expect("multi-threaded sweep");
    assert!(many.completed);
    assert_identical(&reference, &aggregates(&many.points), "1 vs 5 workers");

    // Kill mid-sweep (after 7 of the 36 chunks), then resume from the journal.
    let journal = tmp_journal("kill-resume");
    let killed = run_sweep(
        &plan,
        &RunOptions {
            threads: Some(2),
            journal: Some(journal.clone()),
            resume: false,
            stop_after_chunks: Some(7),
            ..RunOptions::default()
        },
    )
    .expect("interrupted sweep");
    assert!(!killed.completed, "the simulated kill must interrupt");
    assert!(killed.executed_chunks >= 7);

    let resumed = run_sweep(
        &plan,
        &RunOptions {
            threads: Some(3),
            journal: Some(journal.clone()),
            resume: true,
            stop_after_chunks: None,
            ..RunOptions::default()
        },
    )
    .expect("resumed sweep");
    assert!(resumed.completed);
    assert_eq!(
        resumed.resumed_chunks, killed.executed_chunks,
        "every journaled chunk is restored, none re-run"
    );
    assert_eq!(
        resumed.resumed_chunks + resumed.executed_chunks,
        36,
        "3 scenarios × 2 families × 2 n × 3 chunks"
    );
    assert_identical(&reference, &aggregates(&resumed.points), "kill/resume");

    std::fs::remove_file(&journal).ok();
}

#[test]
fn resume_rejects_a_changed_plan() {
    let journal = tmp_journal("plan-guard");
    let original = plan();
    run_sweep(
        &original,
        &RunOptions {
            threads: Some(1),
            journal: Some(journal.clone()),
            resume: false,
            stop_after_chunks: Some(2),
            ..RunOptions::default()
        },
    )
    .expect("seed journal");

    let mut changed = plan();
    changed.base_seed ^= 0xff;
    let err = run_sweep(
        &changed,
        &RunOptions {
            threads: Some(1),
            journal: Some(journal.clone()),
            resume: true,
            stop_after_chunks: None,
            ..RunOptions::default()
        },
    )
    .expect_err("foreign journal must be rejected");
    assert!(err.to_string().contains("belongs to plan"));
    std::fs::remove_file(&journal).ok();
}
