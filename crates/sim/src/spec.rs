//! Declarative experiment descriptions.

use ncg_core::policy::Policy;
use ncg_core::{
    AsymSwapGame, BilateralBuyGame, BuyGame, DistanceMetric, Game, GreedyBuyGame, OracleKind,
};
use ncg_graph::{generators, OwnedGraph};
use rand::Rng;

/// Execution-engine options of a trial: which distance-oracle backend scores
/// candidate moves, whether the dynamics keeps a dirty-agent set, and whether
/// the per-step unhappiness scan is distributed over worker threads.
///
/// The default is the incremental oracle with an eager (exact-policy) scan;
/// dirty-agent tracking is opt-in via [`EngineSpec::fast`] because its lazy
/// re-examination can occasionally pick a different (non-maximal-cost) mover
/// than the strict max-cost policy the paper's experiments specify. The
/// ablation benchmarks pin explicit engines to measure each choice in
/// isolation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineSpec {
    /// Distance-oracle backend scoring candidate moves.
    pub oracle: OracleKind,
    /// Keep a dirty-agent set instead of re-scanning all agents per step.
    /// Ignored while `parallel_scan` is active (the parallel scan is a full
    /// rescan and never consults the dirty set).
    pub dirty_agents: bool,
    /// `Some(threads)` scans agents for unhappiness across worker threads
    /// (useful for large `n`); `None` scans sequentially.
    pub parallel_scan: Option<usize>,
    /// Cap on the persistent oracle's per-source distance cache (number of
    /// parked vectors, each `O(n)` u16s). `None` applies the backend default:
    /// unlimited at `n ≤ 8192`, capped at 8192 sources beyond. Ignored by the
    /// stateless backends.
    pub oracle_cache_budget: Option<usize>,
    /// Cap on the persistent oracle's parked-vector **bytes** (`None` = the
    /// backend's 128 MiB default). Over budget, parked vectors are demoted to
    /// their ball-sparse representation and then evicted. Purely a memory
    /// knob — trajectories are bit-identical under any budget. Ignored by the
    /// stateless backends.
    pub oracle_byte_budget: Option<u64>,
    /// Post-move bulk warming of the persistent oracle's parked vectors
    /// under dirty-agent tracking (on by default; warming never changes
    /// trajectories). `false` is the "cold" ablation mode that reproduces
    /// the pre-warming dirty engine. Only meaningful with `dirty_agents` on
    /// the persistent backend.
    pub warm_parked: bool,
    /// Word-parallel 64-wide bitset BFS waves for the persistent oracle's
    /// bulk (re)pins (on by default). Purely a performance knob — batched and
    /// scalar runs produce bit-identical trajectories; `false` is the scalar
    /// verification baseline (label suffix `+scalar`).
    pub warm_batching: bool,
}

impl Default for EngineSpec {
    fn default() -> Self {
        EngineSpec {
            oracle: OracleKind::Incremental,
            dirty_agents: false,
            parallel_scan: None,
            oracle_cache_budget: None,
            oracle_byte_budget: None,
            warm_parked: true,
            warm_batching: true,
        }
    }
}

impl EngineSpec {
    /// The historical engine: full BFS per candidate, eager full rescans.
    pub fn baseline() -> Self {
        EngineSpec {
            oracle: OracleKind::FullBfs,
            ..EngineSpec::default()
        }
    }

    /// The fastest sequential engine: incremental oracle plus dirty-agent
    /// tracking. Termination is exact, but mover selection may deviate from
    /// the strict policy order when the dirty heuristic under-approximates.
    pub fn fast() -> Self {
        EngineSpec {
            oracle: OracleKind::Incremental,
            dirty_agents: true,
            ..EngineSpec::default()
        }
    }

    /// The persistent engine: distance vectors are carried *across* dynamics
    /// steps (per-source cache + graph change-journal replay) instead of
    /// being re-pinned with a fresh BFS per `(agent, state)` scan, the CSR
    /// snapshot is journal-patched in place, and insertion candidates are
    /// scored arithmetically from the parked vectors. Scans stay eager —
    /// mover selection follows the exact policy order — and the eager re-pin
    /// of every source per step keeps the whole cache fresh for the
    /// arithmetic scoring path, which makes this the fastest engine on most
    /// workloads (see `crates/README.md`).
    pub fn persistent() -> Self {
        EngineSpec {
            oracle: OracleKind::Persistent,
            ..EngineSpec::default()
        }
    }

    /// The persistent oracle feeding its exact changed-vertex export into
    /// dirty-agent tracking, so a step re-examines only agents the applied
    /// move actually affected, while post-move bulk warming keeps every
    /// parked vector at the current version — the dirty engine gets the
    /// same cache-arithmetic scoring fast path as the eager scan on top of
    /// the skipped re-scans. Termination is exact (final confirmation
    /// sweep); mover order may deviate like [`EngineSpec::fast`].
    pub fn fastest() -> Self {
        EngineSpec {
            oracle: OracleKind::Persistent,
            dirty_agents: true,
            ..EngineSpec::default()
        }
    }

    /// [`EngineSpec::fastest`] with warming disabled — the pre-warming dirty
    /// engine, kept as an ablation reference (label suffix `+cold`).
    pub fn fastest_cold() -> Self {
        EngineSpec {
            warm_parked: false,
            ..EngineSpec::fastest()
        }
    }

    /// Sets the warming knob (see [`EngineSpec::warm_parked`]).
    pub fn with_warm_parked(mut self, warm_parked: bool) -> Self {
        self.warm_parked = warm_parked;
        self
    }

    /// Sets the word-parallel wave knob (see [`EngineSpec::warm_batching`]).
    pub fn with_warm_batching(mut self, warm_batching: bool) -> Self {
        self.warm_batching = warm_batching;
        self
    }

    /// Sets the persistent-cache budget (see [`EngineSpec::oracle_cache_budget`]).
    pub fn with_cache_budget(mut self, budget: Option<usize>) -> Self {
        self.oracle_cache_budget = budget;
        self
    }

    /// Sets the parked-vector byte budget (see
    /// [`EngineSpec::oracle_byte_budget`]).
    pub fn with_byte_budget(mut self, budget: Option<u64>) -> Self {
        self.oracle_byte_budget = budget;
        self
    }

    /// Sets the parallel-scan width (`None` = sequential scan).
    pub fn with_parallel_scan(mut self, threads: Option<usize>) -> Self {
        self.parallel_scan = threads;
        self
    }

    /// Short label such as `"incremental+dirty"` used in ablation reports.
    pub fn label(&self) -> String {
        let mut parts = vec![self.oracle.label().to_string()];
        if self.dirty_agents {
            parts.push("dirty".to_string());
        }
        if let Some(t) = self.parallel_scan {
            parts.push(format!("par{t}"));
        }
        if let Some(b) = self.oracle_cache_budget {
            parts.push(format!("lru{b}"));
        }
        if let Some(b) = self.oracle_byte_budget {
            parts.push(format!("mem{b}"));
        }
        if self.dirty_agents && self.oracle == OracleKind::Persistent && !self.warm_parked {
            parts.push("cold".to_string());
        }
        if self.oracle == OracleKind::Persistent && !self.warm_batching {
            parts.push("scalar".to_string());
        }
        parts.join("+")
    }
}

/// Which game family a simulation runs (the empirical study only uses the ASG and
/// the GBG; best responses of the full Buy Game are NP-hard, exactly as the paper
/// notes in §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GameFamily {
    /// Asymmetric Swap Game, SUM distance-cost (Fig. 7).
    AsgSum,
    /// Asymmetric Swap Game, MAX distance-cost (Fig. 8).
    AsgMax,
    /// Greedy Buy Game, SUM distance-cost (Fig. 11 / 12).
    GbgSum,
    /// Greedy Buy Game, MAX distance-cost (Fig. 13 / 14).
    GbgMax,
    /// Bilateral equal-split Buy Game, SUM distance-cost (paper §5). Best
    /// responses enumerate `2^(n-1)` neighbour sets, so sweeps stay at tiny
    /// `n` (≤ [`GameFamily::MAX_BILATERAL_N`]); the consent checks are
    /// delta-scored on the persistent engine.
    BilateralSum,
    /// Bilateral equal-split Buy Game, MAX distance-cost.
    BilateralMax,
    /// The exact Buy Game of Fabrikant et al. (best responses enumerate every
    /// owned-neighbour subset, so sweeps stay at tiny `n` ≤
    /// [`GameFamily::MAX_EXACT_BUY_N`] — exactly like the bilateral family);
    /// SUM distance-cost. Its trajectories are the only ones whose
    /// `strategy_rewrites` move counts are non-trivial at scale, which is
    /// what the trajectory sweeps use it for.
    BuySum,
    /// The exact Buy Game, MAX distance-cost.
    BuyMax,
}

impl GameFamily {
    /// Largest `n` the bilateral families accept (their best-response scans
    /// enumerate every subset of the strategy pool, `|pool| = n - 1`).
    pub const MAX_BILATERAL_N: usize = 16;

    /// Largest `n` the exact Buy Game families accept (same exponential
    /// best-response enumeration as the bilateral game).
    pub const MAX_EXACT_BUY_N: usize = 16;

    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            GameFamily::AsgSum => "SUM-ASG",
            GameFamily::AsgMax => "MAX-ASG",
            GameFamily::GbgSum => "SUM-GBG",
            GameFamily::GbgMax => "MAX-GBG",
            GameFamily::BilateralSum => "SUM-BIL",
            GameFamily::BilateralMax => "MAX-BIL",
            GameFamily::BuySum => "SUM-BG",
            GameFamily::BuyMax => "MAX-BG",
        }
    }

    /// Inverse of [`GameFamily::label`] (plan-spec round trips).
    pub fn parse(s: &str) -> Option<GameFamily> {
        match s {
            "SUM-ASG" => Some(GameFamily::AsgSum),
            "MAX-ASG" => Some(GameFamily::AsgMax),
            "SUM-GBG" => Some(GameFamily::GbgSum),
            "MAX-GBG" => Some(GameFamily::GbgMax),
            "SUM-BIL" => Some(GameFamily::BilateralSum),
            "MAX-BIL" => Some(GameFamily::BilateralMax),
            "SUM-BG" => Some(GameFamily::BuySum),
            "MAX-BG" => Some(GameFamily::BuyMax),
            _ => None,
        }
    }

    /// The distance metric of the family.
    pub fn metric(&self) -> DistanceMetric {
        match self {
            GameFamily::AsgSum
            | GameFamily::GbgSum
            | GameFamily::BilateralSum
            | GameFamily::BuySum => DistanceMetric::Sum,
            GameFamily::AsgMax
            | GameFamily::GbgMax
            | GameFamily::BilateralMax
            | GameFamily::BuyMax => DistanceMetric::Max,
        }
    }

    /// True for the buy games (which need an edge price α).
    pub fn needs_alpha(&self) -> bool {
        matches!(
            self,
            GameFamily::GbgSum
                | GameFamily::GbgMax
                | GameFamily::BilateralSum
                | GameFamily::BilateralMax
                | GameFamily::BuySum
                | GameFamily::BuyMax
        )
    }

    /// Instantiates the family's game for `n` agents with the resolved α —
    /// the single construction point shared by experiment points and sweep
    /// plans.
    ///
    /// # Panics
    /// Panics for a bilateral or exact-Buy family with `n` above its cap
    /// (the exponential best-response enumeration would be unusable anyway).
    pub fn make_game(&self, n: usize, alpha: f64) -> Box<dyn Game + Send + Sync> {
        match self {
            GameFamily::AsgSum => Box::new(AsymSwapGame::sum()),
            GameFamily::AsgMax => Box::new(AsymSwapGame::max()),
            GameFamily::GbgSum => Box::new(GreedyBuyGame::sum(alpha)),
            GameFamily::GbgMax => Box::new(GreedyBuyGame::max(alpha)),
            GameFamily::BuySum | GameFamily::BuyMax => {
                assert!(
                    n <= Self::MAX_EXACT_BUY_N,
                    "exact Buy Game best responses enumerate 2^|pool| strategies; n = {n} exceeds {}",
                    Self::MAX_EXACT_BUY_N
                );
                if *self == GameFamily::BuySum {
                    Box::new(BuyGame::sum(alpha))
                } else {
                    Box::new(BuyGame::max(alpha))
                }
            }
            GameFamily::BilateralSum | GameFamily::BilateralMax => {
                assert!(
                    n <= Self::MAX_BILATERAL_N,
                    "bilateral best responses enumerate 2^(n-1) strategies; n = {n} exceeds {}",
                    Self::MAX_BILATERAL_N
                );
                if *self == GameFamily::BilateralSum {
                    Box::new(BilateralBuyGame::sum(alpha))
                } else {
                    Box::new(BilateralBuyGame::max(alpha))
                }
            }
        }
    }
}

/// How the edge price α is derived from the number of agents. The paper uses
/// α ∈ {n/10, n/4, n/2, n} (§4.2.1, following Demaine et al.).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlphaSpec {
    /// A fixed price independent of `n`.
    Fixed(f64),
    /// `α = fraction · n`.
    FractionOfN(f64),
}

impl AlphaSpec {
    /// Resolves the edge price for `n` agents.
    pub fn resolve(&self, n: usize) -> f64 {
        match self {
            AlphaSpec::Fixed(a) => *a,
            AlphaSpec::FractionOfN(f) => f * n as f64,
        }
    }

    /// Label such as `"n/4"` used in the paper's legends.
    pub fn label(&self) -> String {
        match self {
            AlphaSpec::Fixed(a) => format!("{a}"),
            AlphaSpec::FractionOfN(f) => {
                if (*f - 1.0).abs() < 1e-12 {
                    "n".to_string()
                } else {
                    format!("n/{:.0}", 1.0 / f)
                }
            }
        }
    }
}

/// How the random initial network is generated (§3.4.1 and §4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitialTopology {
    /// Every agent owns exactly `k` edges (bounded-budget ASG workload).
    Budgeted {
        /// The per-agent budget `k`.
        k: usize,
    },
    /// Connected random network with `m = m_per_n · n` edges, uniform ownership
    /// (GBG workload; the paper uses `m ∈ {n, 2n, 4n}`).
    RandomEdges {
        /// Edge count as a multiple of `n`.
        m_per_n: usize,
    },
    /// Path with uniformly random edge-ownership (`rl` in Fig. 12 / 14).
    RandomLine,
    /// Path whose ownership forms a directed line (`dl` in Fig. 12 / 14).
    DirectedLine,
}

impl InitialTopology {
    /// Generates an initial network on `n` agents.
    pub fn generate<R: Rng>(&self, n: usize, rng: &mut R) -> OwnedGraph {
        match self {
            InitialTopology::Budgeted { k } => generators::budgeted_random(n, *k, rng),
            InitialTopology::RandomEdges { m_per_n } => {
                generators::random_with_m_edges(n, m_per_n * n, rng)
            }
            InitialTopology::RandomLine => generators::random_line(n, rng),
            InitialTopology::DirectedLine => generators::directed_line(n),
        }
    }

    /// Label such as `"k=2"`, `"m=4n"`, `"rl"`, `"dl"`.
    pub fn label(&self) -> String {
        match self {
            InitialTopology::Budgeted { k } => format!("k={k}"),
            InitialTopology::RandomEdges { m_per_n } => format!("m={m_per_n}n"),
            InitialTopology::RandomLine => "rl".to_string(),
            InitialTopology::DirectedLine => "dl".to_string(),
        }
    }
}

/// One point of a parameter sweep: everything needed to run its trials.
#[derive(Debug, Clone)]
pub struct ExperimentPoint {
    /// Number of agents.
    pub n: usize,
    /// Game family.
    pub family: GameFamily,
    /// Edge price rule (ignored by the swap games).
    pub alpha: AlphaSpec,
    /// Initial-network generator.
    pub topology: InitialTopology,
    /// Move policy.
    pub policy: Policy,
    /// Number of independent trials.
    pub trials: usize,
    /// Base RNG seed; trial `t` uses `base_seed + t`.
    pub base_seed: u64,
    /// Step limit as a multiple of `n` (simulations in the paper always converged
    /// within a small constant times `n`; the limit only guards against the —
    /// never observed — non-convergent case).
    pub max_steps_factor: usize,
    /// Execution-engine options (oracle backend, dirty-agent set, parallel scan).
    pub engine: EngineSpec,
}

impl ExperimentPoint {
    /// Instantiates the game for this point as a boxed trait object.
    pub fn make_game(&self) -> Box<dyn Game + Send + Sync> {
        self.family.make_game(self.n, self.alpha.resolve(self.n))
    }

    /// The step limit of one trial.
    pub fn max_steps(&self) -> usize {
        self.max_steps_factor * self.n
    }

    /// Short label (family, topology, α, policy) used in reports.
    pub fn label(&self) -> String {
        let mut parts = vec![self.family.label().to_string(), self.topology.label()];
        if self.family.needs_alpha() {
            parts.push(format!("a={}", self.alpha.label()));
        }
        parts.push(self.policy.label().to_string());
        parts.join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn engine_spec_labels_cover_all_backends() {
        assert_eq!(EngineSpec::baseline().label(), "full-bfs");
        assert_eq!(EngineSpec::default().label(), "incremental");
        assert_eq!(EngineSpec::fast().label(), "incremental+dirty");
        assert_eq!(EngineSpec::persistent().label(), "persistent");
        assert_eq!(EngineSpec::fastest().label(), "persistent+dirty");
        assert!(EngineSpec::fastest().warm_parked, "warming is the default");
        assert_eq!(EngineSpec::fastest_cold().label(), "persistent+dirty+cold");
        // The cold suffix only marks configurations where warming would have
        // been active: eager or non-persistent engines never show it.
        assert_eq!(
            EngineSpec::persistent().with_warm_parked(false).label(),
            "persistent"
        );
        assert_eq!(
            EngineSpec::fast().with_warm_parked(false).label(),
            "incremental+dirty"
        );
    }

    #[test]
    fn exact_buy_family_constructs_the_buy_game() {
        assert_eq!(GameFamily::BuySum.label(), "SUM-BG");
        assert_eq!(GameFamily::BuyMax.label(), "MAX-BG");
        assert_eq!(GameFamily::BuyMax.metric(), DistanceMetric::Max);
        assert!(GameFamily::BuySum.needs_alpha());
        let game = GameFamily::BuySum.make_game(8, 2.0);
        assert_eq!(game.name(), "SUM-BG");
        assert_eq!(game.alpha(), 2.0);
        assert!(!game.needs_consent());
    }

    #[test]
    #[should_panic(expected = "exact Buy Game best responses")]
    fn exact_buy_family_rejects_large_n() {
        let _ = GameFamily::BuySum.make_game(GameFamily::MAX_EXACT_BUY_N + 1, 1.0);
    }

    #[test]
    fn alpha_resolution_and_labels() {
        assert_eq!(AlphaSpec::Fixed(2.5).resolve(100), 2.5);
        assert_eq!(AlphaSpec::FractionOfN(0.25).resolve(40), 10.0);
        assert_eq!(AlphaSpec::FractionOfN(0.25).label(), "n/4");
        assert_eq!(AlphaSpec::FractionOfN(1.0).label(), "n");
    }

    #[test]
    fn topology_generation_matches_spec() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = InitialTopology::Budgeted { k: 2 }.generate(20, &mut rng);
        assert_eq!(g.num_edges(), 40);
        let g = InitialTopology::RandomEdges { m_per_n: 2 }.generate(20, &mut rng);
        assert_eq!(g.num_edges(), 40);
        let g = InitialTopology::RandomLine.generate(20, &mut rng);
        assert_eq!(g.num_edges(), 19);
        let g = InitialTopology::DirectedLine.generate(20, &mut rng);
        assert!(g.owns_edge(0, 1));
    }

    #[test]
    fn family_labels_and_metric() {
        assert_eq!(GameFamily::AsgSum.label(), "SUM-ASG");
        assert_eq!(GameFamily::GbgMax.metric(), DistanceMetric::Max);
        assert!(GameFamily::GbgSum.needs_alpha());
        assert!(!GameFamily::AsgMax.needs_alpha());
    }

    #[test]
    fn bilateral_family_constructs_the_consent_game() {
        assert_eq!(GameFamily::BilateralSum.label(), "SUM-BIL");
        assert_eq!(GameFamily::BilateralMax.metric(), DistanceMetric::Max);
        assert!(GameFamily::BilateralSum.needs_alpha());
        let game = GameFamily::BilateralSum.make_game(10, 2.5);
        assert!(game.name().contains("bilateral"));
        assert!(game.needs_consent());
        assert_eq!(game.alpha(), 2.5);
    }

    #[test]
    #[should_panic(expected = "bilateral best responses")]
    fn bilateral_family_rejects_large_n() {
        let _ = GameFamily::BilateralMax.make_game(GameFamily::MAX_BILATERAL_N + 1, 1.0);
    }

    #[test]
    fn point_labels_and_game_construction() {
        let point = ExperimentPoint {
            n: 30,
            family: GameFamily::GbgSum,
            alpha: AlphaSpec::FractionOfN(0.25),
            topology: InitialTopology::RandomEdges { m_per_n: 2 },
            policy: Policy::MaxCost,
            trials: 3,
            base_seed: 7,
            max_steps_factor: 100,
            engine: EngineSpec::default(),
        };
        assert_eq!(point.max_steps(), 3000);
        let game = point.make_game();
        assert_eq!(game.name(), "SUM-GBG");
        assert_eq!(game.alpha(), 7.5);
        assert!(point.label().contains("n/4"));
    }
}
